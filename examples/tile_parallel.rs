//! Vertical separation up close: fused tiles, redundancy, and the
//! lossless guarantee.
//!
//! Plans a 2×2 vertical separation of a conv stack, prints every fused
//! tile's receptive-field chain (the RTC walk of Eqs. (4)–(5)), then
//! executes the tiles on real threads and verifies the merged output is
//! bit-identical to whole-tensor inference — the property DeepThings'
//! overlapping-tile scheme loses and VSM restores.
//!
//! ```text
//! cargo run --example tile_parallel
//! ```

use d3_model::{zoo, Executor, NodeId};
use d3_tensor::{max_abs_diff, Tensor};
use d3_vsm::{parallel_time, TileExecutor, VsmPlan};

fn main() {
    // A 3-layer conv stack on a 32×32 input (small enough to execute the
    // from-scratch engine quickly, deep enough to accumulate halos).
    let graph = zoo::chain_cnn(3, 8, 32);
    let run: Vec<NodeId> = vec![NodeId(1), NodeId(2), NodeId(3)];

    println!("== VSM tile parallelism on a 3-conv stack ==\n");
    for (rows, cols) in [(1, 2), (2, 2), (3, 3), (4, 4)] {
        let plan = VsmPlan::new(&graph, &run, rows, cols).expect("plannable");
        // Pretend every layer costs 10 ms on an edge node.
        let times = vec![0.01; run.len()];
        let nodes = rows * cols;
        println!(
            "{rows}×{cols}: compute redundancy {:.3}, input redundancy {:.3}, {} nodes → speedup {:.2}×",
            plan.redundancy(),
            plan.input_redundancy(),
            nodes,
            times.iter().sum::<f64>() / parallel_time(&plan, &times, nodes),
        );
    }

    // Inspect the 2×2 plan's receptive-field chains.
    let plan = VsmPlan::new(&graph, &run, 2, 2).expect("plannable");
    println!("\nfused tile receptive fields (output tile ⇐ … ⇐ input crop):");
    for tile in &plan.tiles {
        let chain: Vec<String> = tile
            .regions
            .iter()
            .rev()
            .map(|r| format!("[{},{})×[{},{})", r.y0, r.y1, r.x0, r.x1))
            .collect();
        println!("  tile {:?}: {}", tile.pos, chain.join(" ⇐ "));
    }

    // Execute: one thread per tile, merge, compare bit-for-bit.
    let exec = Executor::new(&graph, 42);
    let tiles = TileExecutor::new(&exec, plan);
    let input = Tensor::random(3, 32, 32, 7);
    let whole = tiles.run_whole(&input);
    let parallel = tiles.run_parallel(&input);
    assert_eq!(max_abs_diff(&whole, &parallel), Some(0.0));
    println!("\nparallel tiled output == whole-tensor output (bit-exact) ✓");

    // And the negative control: naive tiling *without* RTC halos would
    // pad at tile borders and diverge. Demonstrate by cropping without
    // halo and comparing one interior tile.
    let naive_in = input.crop(16, 32, 16, 32); // bottom-right quadrant, no halo
    let op = exec.build_op(NodeId(1));
    let naive_out = op.apply(&[&naive_in]);
    let true_tile = {
        let full = op.apply(&[&input]);
        full.crop(16, 32, 16, 32)
    };
    let diff = max_abs_diff(&naive_out, &true_tile).expect("same shape");
    println!("naive halo-free tiling error on the same tile: max |Δ| = {diff:.4} (lossy!)");
    assert!(diff > 0.0);
}
