//! Quickstart: partition a DNN across device/edge/cloud with D3 and
//! verify the lossless guarantee.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use d3_core::{D3System, Deployment, NetworkCondition, Strategy, VsmConfig};
use d3_model::zoo;
use d3_partition::Problem;
use d3_simnet::TierProfiles;
use d3_tensor::{max_abs_diff, Tensor};

fn main() {
    // 1. Pick a model (AlexNet at the paper's 3×224×224) and a network.
    //    The builder takes the graph by value: the system owns it and
    //    could outlive this function or move to another thread.
    let graph = zoo::alexnet(224);
    let d3 = D3System::builder(graph.clone())
        .network(NetworkCondition::WiFi)
        .build();

    println!("== D3 quickstart: {} ==", zoo::display_name(graph.name()));
    println!("partition: {}", d3.describe_partition());
    println!(
        "backbone traffic per image: {:.2} Mb",
        d3.deployment().backbone_bytes as f64 * 8.0 / 1e6
    );

    // 2. Stream frames through the pipeline. (The paper's 30 FPS
    //    saturates this plan's device stage — try it to watch the queue
    //    grow; 15 FPS is sustainable.)
    let stats = d3.stream(15.0, 600);
    println!(
        "stream: mean {:.1} ms | p95 {:.1} ms | throughput {:.1} fps",
        stats.mean_latency_s * 1e3,
        stats.p95_latency_s * 1e3,
        stats.throughput_fps
    );

    // 3. Compare the baselines of the paper's evaluation. Every strategy
    //    resolves to a `Partitioner` policy object and deploys through
    //    `Deployment::plan` — swap in your own policy the same way.
    let problem = Problem::new(
        &graph,
        &TierProfiles::paper_testbed(),
        NetworkCondition::WiFi,
    );
    println!("\nstrategy comparison (single-frame end-to-end latency):");
    for s in Strategy::ALL {
        // `deploy_strategy` is the one-call convenience over
        // `Deployment::plan` (and adds the HPA+VSM joint pass).
        let d = if s == Strategy::HpaVsm {
            d3_engine::deploy_strategy(&problem, s, VsmConfig::default())
        } else {
            Deployment::plan(&problem, s.partitioner().as_ref(), None).ok()
        };
        if let Some(d) = d {
            println!(
                "  {:<13} [{}] {:>8.1} ms",
                s.label(),
                s.partitioner().name(),
                d.frame_latency_s * 1e3
            );
        }
    }

    // 4. Losslessness: distributed (and tiled) execution is bit-identical
    //    to single-node inference. Demonstrated on a small CNN so the
    //    from-scratch executor stays fast.
    let small = zoo::tiny_cnn(16);
    let d3_small = D3System::builder(small).seed(7).build();
    let input = Tensor::random(3, 16, 16, 123);
    let distributed = d3_small.run(&input);
    let single_node = d3_model::Executor::new(d3_small.graph(), 7).run(&input);
    assert_eq!(max_abs_diff(&distributed, &single_node), Some(0.0));
    println!("\nlossless check: distributed output identical to single-node ✓");
}
