//! Live adaptation: the closed observe → decide → apply loop.
//!
//! A served model streams frames while its attached controller watches
//! telemetry. When injected bandwidth drift escapes the hysteresis band,
//! the controller re-solves the partition and the running stream swaps
//! onto the new plan at a frame boundary — zero dropped frames, outputs
//! bit-identical to single-node inference throughout.
//!
//! ```text
//! cargo run --release --example live_adaptation
//! ```

use d3_core::{
    D3Runtime, DriftMonitor, HysteresisLocal, ModelOptions, NetworkCondition, Observation,
    StreamOptions,
};
use d3_model::{zoo, Executor};
use d3_partition::EvenSplit;
use d3_tensor::{max_abs_diff, Tensor};
use std::sync::Arc;

fn main() {
    let graph = Arc::new(zoo::chain_cnn(8, 8, 32));
    let seed = 0xD3;

    // 1. Register and deploy (an even three-way split keeps all tiers
    //    busy so drift has somewhere to move layers), then arm the model
    //    with the paper's adaptation policy: every stream opened on it
    //    self-adapts.
    let mut rt = D3Runtime::new();
    rt.register(
        "cam0",
        graph.clone(),
        ModelOptions::new().seed(seed).partitioner(EvenSplit),
    )
    .unwrap();
    rt.attach_controller("cam0", Box::new(HysteresisLocal(DriftMonitor::default())))
        .unwrap();
    println!("== Live adaptation: {} ==\n", rt.describe());

    // 2. Open the stream (observe: stage workers publish telemetry
    //    every 8 frames; the session's controller consumes it in
    //    adapt()).
    let mut session = rt
        .open_stream("cam0", StreamOptions::new().telemetry_every(8))
        .unwrap();
    let reference = Executor::new(&graph, seed);
    println!(
        "opened stream under Wi-Fi | plan: {:?}\n",
        session.assignment().used_tiers()
    );

    // A day of backbone bandwidth: Wi-Fi, a congested cell uplink, back.
    let phases = [
        (31.53, "wifi"),
        (0.4, "congested uplink"),
        (31.53, "recovered"),
    ];
    let mut frame = 0u64;
    for (mbps, label) in phases {
        // decide + apply: inject the probe's bandwidth reading into the
        // controller; an out-of-band swap happens mid-stream when the
        // drift escapes the band.
        let events = session.observe(&Observation::Network {
            net: NetworkCondition::custom_backbone(mbps),
        });
        if events.is_empty() {
            println!("[{label:>16}] {mbps:>6.2} Mbps -> plan held");
        }
        for event in &events {
            match event {
                d3_core::AdaptEvent::Plan(s) => println!(
                    "[{label:>16}] {mbps:>6.2} Mbps -> repartitioned: {} vertices moved, \
                     stages rebuilt {:?}, kept {:?}, {} in-flight frames drained",
                    s.changed.len(),
                    s.rebuilt,
                    s.reused,
                    s.drained_frames
                ),
                d3_core::AdaptEvent::Pool(p) => println!(
                    "[{label:>16}] {mbps:>6.2} Mbps -> pool resized: {:?} {} -> {} workers",
                    p.tier, p.from, p.to
                ),
                d3_core::AdaptEvent::Codec(c) => println!(
                    "[{label:>16}] {mbps:>6.2} Mbps -> link {} codec -> {}",
                    c.link, c.codec
                ),
            }
        }

        // Stream a burst under this condition; every output must match
        // single-node inference bit for bit, swap or no swap.
        for _ in 0..12 {
            let input = Tensor::random(3, 32, 32, 1000 + frame);
            session.submit_blocking(&input).unwrap();
            let (_, out) = session.recv().unwrap();
            assert_eq!(
                max_abs_diff(&out, &reference.run(&input)),
                Some(0.0),
                "lossless across swaps"
            );
            frame += 1;
        }
        // Measured loop: feed the stage workers' telemetry snapshots to
        // the controller too (compute drift would trigger the same way).
        for event in session.adapt() {
            match event {
                d3_core::AdaptEvent::Plan(s) => println!(
                    "[{label:>16}] telemetry-driven swap: {} vertices moved",
                    s.changed.len()
                ),
                d3_core::AdaptEvent::Pool(p) => println!(
                    "[{label:>16}] telemetry-driven resize: {:?} {} -> {} workers",
                    p.tier, p.from, p.to
                ),
                d3_core::AdaptEvent::Codec(c) => println!(
                    "[{label:>16}] telemetry-driven codec switch: link {} -> {}",
                    c.link, c.codec
                ),
            }
        }
    }

    let report = session.close();
    println!("\n{}", report.summary());
    assert_eq!(report.submitted, frame);
    assert_eq!(report.measured.frames as u64, frame, "zero dropped frames");
    println!(
        "streamed {frame} frames across {} live plan swap(s), all bit-identical ✓",
        report.reconfigurations
    );
}
