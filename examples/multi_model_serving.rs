//! Multi-model serving: one `D3Runtime`, two DNNs, concurrent traffic.
//!
//! Registers two models — each profiled, partitioned and deployed once —
//! then hammers the runtime from several client threads. Every response
//! is checked bit-identical against single-node inference (the paper's
//! lossless guarantee survives concurrency), and the per-model counters
//! show where the traffic went.
//!
//! ```text
//! cargo run --example multi_model_serving
//! ```

use d3_core::{D3Runtime, ModelOptions, NetworkCondition};
use d3_model::{zoo, Executor};
use d3_tensor::{max_abs_diff, Tensor};

fn main() {
    // Registration is the only mutating step: partition plans are
    // written once, then executed for every request.
    let mut rt = D3Runtime::new();
    rt.register(
        "tiny",
        zoo::tiny_cnn(16),
        ModelOptions::new().seed(7).network(NetworkCondition::WiFi),
    )
    .expect("HPA applies");
    rt.register(
        "chain",
        zoo::chain_cnn(4, 8, 16),
        ModelOptions::new()
            .seed(11)
            .network(NetworkCondition::FourG),
    )
    .expect("HPA applies");

    println!("== D3Runtime: {} models registered ==", rt.len());
    println!("{}\n", rt.describe());

    // Reference single-node executors for the lossless check.
    let tiny_ref = Executor::new(rt.system("tiny").unwrap().graph(), 7);
    let chain_ref = Executor::new(rt.system("chain").unwrap().graph(), 11);

    // Four clients share the runtime by reference; each alternates
    // between the two tenants.
    const CLIENTS: usize = 4;
    const REQUESTS_PER_CLIENT: usize = 6;
    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let rt = &rt;
            let (tiny_ref, chain_ref) = (&tiny_ref, &chain_ref);
            scope.spawn(move || {
                for req in 0..REQUESTS_PER_CLIENT {
                    let seed = (client * 100 + req) as u64;
                    if (client + req) % 2 == 0 {
                        let input = Tensor::random(3, 16, 16, seed);
                        let out = rt.serve("tiny", &input).expect("registered");
                        let expect = tiny_ref.run(&input);
                        assert_eq!(max_abs_diff(&out, &expect), Some(0.0));
                    } else {
                        let input = Tensor::random(3, 16, 16, seed);
                        let out = rt.serve("chain", &input).expect("registered");
                        let expect = chain_ref.run(&input);
                        assert_eq!(max_abs_diff(&out, &expect), Some(0.0));
                    }
                }
            });
        }
    });

    println!(
        "served {} requests from {CLIENTS} threads:",
        rt.total_requests()
    );
    for name in rt.models() {
        let stats = rt.stats(name).unwrap();
        println!(
            "  {name:<6} {:>3} requests | mean {:.2} ms",
            stats.requests,
            stats.mean_latency_s * 1e3
        );
    }
    assert_eq!(rt.total_requests(), (CLIENTS * REQUESTS_PER_CLIENT) as u64);
    println!("\nlossless check: every concurrent response bit-identical ✓");
}
