//! Multi-process serving demo: the device stage runs in this process
//! while the edge and cloud stages are hosted by `d3-stage-server`
//! processes behind Unix-domain stage links. Streams a burst of frames,
//! kills and respawns the edge server mid-stream, and checks every
//! output bit-for-bit against single-node inference.
//!
//! ```text
//! cargo run --example multi_process
//! ```
//!
//! When the `d3-stage-server` binary is not next to this example (e.g.
//! `cargo run --example` without a prior full build), the stages are
//! served from background threads of this process instead — same link
//! protocol, same wire bytes, one process.

use d3_core::{D3Runtime, ModelOptions, StreamOptions, SubmitError, Tier};
use d3_engine::link::{serve, StageHost};
use d3_engine::{LinkAddr, RemoteOptions};
use d3_model::{zoo, Executor};
use d3_partition::EvenSplit;
use d3_tensor::{max_abs_diff, Tensor};
use std::path::PathBuf;
use std::process::{Child, Command};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SPEC: &str = "chain_cnn:6:8:16";
const SEED: u64 = 11;
const FRAMES: usize = 12;

/// One hosted stage: a real `d3-stage-server` child process when the
/// binary is available, otherwise an in-thread server on the same link.
enum Stage {
    Process(Child),
    Thread {
        stop: Arc<AtomicBool>,
        join: std::thread::JoinHandle<()>,
    },
}

impl Stage {
    fn stop(self) {
        match self {
            Stage::Process(mut child) => {
                let _ = child.kill();
                let _ = child.wait();
            }
            Stage::Thread { stop, join } => {
                stop.store(true, Ordering::SeqCst);
                let _ = join.join();
            }
        }
    }
}

/// `d3-stage-server` lives two directories up from
/// `target/.../examples/multi_process`.
fn server_binary() -> Option<PathBuf> {
    let exe = std::env::current_exe().ok()?;
    let bin = exe.parent()?.parent()?.join("d3-stage-server");
    bin.is_file().then_some(bin)
}

fn spawn_stage(addr: &LinkAddr) -> Stage {
    let stage = match server_binary() {
        Some(bin) => Stage::Process(
            Command::new(bin)
                .args(["--listen", &addr.to_string(), "--model", SPEC])
                .spawn()
                .expect("spawn d3-stage-server"),
        ),
        None => {
            let graph = zoo::by_spec(SPEC).expect("known spec");
            let mut host = StageHost::new(graph.name().to_string(), Arc::new(graph));
            let listener = addr.listen().expect("bind stage link");
            let stop = Arc::new(AtomicBool::new(false));
            let join = {
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || serve(&listener, &mut host, &stop))
            };
            Stage::Thread { stop, join }
        }
    };
    // Wait for the listener: a probe connect that is immediately
    // dropped, which the server's accept loop tolerates.
    let give_up = Instant::now() + Duration::from_secs(30);
    while addr.connect().is_err() {
        assert!(Instant::now() < give_up, "stage never came up at {addr}");
        std::thread::sleep(Duration::from_millis(10));
    }
    stage
}

fn sock(tag: &str) -> LinkAddr {
    let path = std::env::temp_dir().join(format!("d3-ex-{}-{tag}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    LinkAddr::Uds(path)
}

fn main() {
    let edge_addr = sock("edge");
    let cloud_addr = sock("cloud");
    let in_process = server_binary().is_none();
    println!(
        "hosting edge + cloud stages {} at {edge_addr} / {cloud_addr}",
        if in_process {
            "in background threads"
        } else {
            "as d3-stage-server processes"
        }
    );
    let mut edge = spawn_stage(&edge_addr);
    let cloud = spawn_stage(&cloud_addr);

    // The client runtime: an even device/edge/cloud split of the same
    // model, with the edge and cloud segments proxied over the links.
    let mut rt = D3Runtime::new();
    rt.register(
        "chain",
        zoo::by_spec(SPEC).expect("known spec"),
        ModelOptions::new()
            .partitioner(EvenSplit)
            .seed(SEED)
            .without_vsm(),
    )
    .expect("register model");
    let options = StreamOptions::new()
        .capacity(4)
        .remote(
            Tier::Edge,
            RemoteOptions::new(edge_addr.clone()).retry(Duration::from_millis(20)),
        )
        .remote(Tier::Cloud, RemoteOptions::new(cloud_addr.clone()));
    let session = rt.open_stream("chain", options).expect("open stream");

    let graph = zoo::by_spec(SPEC).expect("known spec");
    let reference = Executor::new(&graph, SEED);
    let frames: Vec<Tensor> = (0..FRAMES as u64)
        .map(|k| Tensor::random(3, 16, 16, 500 + k))
        .collect();

    let mut results: Vec<(u64, Tensor)> = Vec::new();
    for (k, frame) in frames.iter().enumerate() {
        if k == FRAMES / 2 {
            // Mid-stream crash: the proxy's retransmit window replays
            // every un-acked batch against the respawned server.
            println!("killing the edge stage mid-stream and respawning it…");
            edge.stop();
            edge = spawn_stage(&edge_addr);
        }
        loop {
            match session.submit(frame) {
                Ok(_) => break,
                Err(SubmitError::Backpressure) => {
                    let (id, t) = session.recv().expect("recv");
                    results.push((id.0, t));
                }
                Err(e) => panic!("submit failed: {e}"),
            }
        }
    }
    while results.len() < frames.len() {
        let (id, t) = session.recv().expect("drain");
        results.push((id.0, t));
    }
    let report = session.close();

    let mut exact = 0usize;
    for (k, (id, got)) in results.iter().enumerate() {
        assert_eq!(*id, k as u64, "frame {k} out of order");
        let expect = reference.run(&frames[k]);
        assert_eq!(max_abs_diff(got, &expect), Some(0.0), "frame {k} diverged");
        exact += 1;
    }
    println!(
        "{exact}/{} frames in order and bit-identical to single-node \
         inference across an edge-server crash ({} frames measured)",
        frames.len(),
        report.measured.frames
    );

    edge.stop();
    cloud.stop();
    for addr in [edge_addr, cloud_addr] {
        if let LinkAddr::Uds(path) = addr {
            let _ = std::fs::remove_file(path);
        }
    }
}
