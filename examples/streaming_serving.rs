//! Streaming serving: a pipelined `StreamSession` vs a sequential
//! `serve` loop, with a predicted-vs-measured `StreamStats` comparison.
//!
//! Opens a streaming session on a three-tier plan, saturates it, and
//! prints (1) the throughput advantage of resident pipeline stages —
//! each `serve` call respawns tier threads and rebuilds every layer's
//! weights, while a session's stage workers prebuild them once and, on
//! multi-core hosts, additionally overlap adjacent frames — (2) the
//! measured per-stage utilization identifying the bottleneck stage, and
//! (3) the simulator's prediction for the same deployment, side by side.
//!
//! ```text
//! cargo run --example streaming_serving
//! ```

use std::time::Instant;

use d3_core::{D3Runtime, ModelOptions, StreamOptions, SubmitError};
use d3_model::zoo;
use d3_partition::EvenSplit;
use d3_tensor::Tensor;

const FRAMES: usize = 30;

fn main() {
    // EvenSplit forces all three tiers to do real work; zoo::conv_mlp is
    // the weight-heavy classifier-tail shape (à la AlexNet/VGG) where
    // per-frame weight rebuilding dominates a serve loop.
    let mut rt = D3Runtime::new();
    rt.register(
        "stream",
        zoo::conv_mlp(8),
        ModelOptions::new()
            .partitioner(EvenSplit)
            .without_vsm()
            .seed(7),
    )
    .expect("even split applies to every graph");
    println!("== plan ==\n{}\n", rt.describe());

    let frames: Vec<Tensor> = (0..FRAMES)
        .map(|k| Tensor::random(3, 8, 8, k as u64))
        .collect();

    // Baseline: one-shot serve calls, each frame walking all three
    // tiers (and rebuilding their weights) before the next one starts.
    let _ = rt.serve("stream", &frames[0]).unwrap(); // warm-up
    let t0 = Instant::now();
    for frame in &frames {
        let _ = rt.serve("stream", frame).unwrap();
    }
    let sequential_s = t0.elapsed().as_secs_f64();

    // Pipelined: session lifecycle is open → submit/recv → close.
    let session = rt
        .open_stream("stream", StreamOptions::new().capacity(4))
        .expect("plan is monotone");
    let t1 = Instant::now();
    let mut received = 0usize;
    for frame in &frames {
        loop {
            match session.submit(frame) {
                Ok(_frame_id) => break,
                // Admission control: drain a result, then retry.
                Err(SubmitError::Backpressure) => {
                    session.recv().unwrap();
                    received += 1;
                }
                Err(e) => panic!("{e}"),
            }
        }
    }
    while received < FRAMES {
        session.recv().unwrap();
        received += 1;
    }
    let streamed_s = t1.elapsed().as_secs_f64();
    let report = session.close();

    println!("== sequential vs pipelined ({FRAMES} frames) ==");
    println!(
        "  sequential serve loop : {sequential_s:>7.3} s  ({:.1} fps)",
        FRAMES as f64 / sequential_s
    );
    println!(
        "  pipelined stream      : {streamed_s:>7.3} s  ({:.1} fps)",
        FRAMES as f64 / streamed_s
    );
    println!(
        "  speedup               : {:.2}x\n",
        sequential_s / streamed_s
    );

    println!("== measured stream report ==");
    print!("{}", report.summary());
    if let Some((name, util)) = report.bottleneck() {
        println!("  bottleneck: {name} ({:.1}% busy)\n", util * 100.0);
    }

    // The simulator predicts the same deployment in the same shape;
    // drive it at the measured arrival rate for an apples-to-apples row.
    let fps = report.measured.throughput_fps.max(1.0);
    let predicted = report.predicted_stats(fps, FRAMES);
    let measured = &report.measured;
    println!("== predicted vs measured (at {fps:.1} fps) ==");
    println!("  metric              predicted   measured");
    println!(
        "  p50 latency (ms)    {:>9.2}  {:>9.2}",
        predicted.p50_latency_s * 1e3,
        measured.p50_latency_s * 1e3
    );
    println!(
        "  p95 latency (ms)    {:>9.2}  {:>9.2}",
        predicted.p95_latency_s * 1e3,
        measured.p95_latency_s * 1e3
    );
    println!(
        "  throughput (fps)    {:>9.1}  {:>9.1}",
        predicted.throughput_fps, measured.throughput_fps
    );

    assert!(
        streamed_s < sequential_s,
        "resident stages must win when saturated"
    );
}
