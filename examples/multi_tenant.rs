//! Multi-tenant serving: one fleet controller arbitrating two
//! co-resident models' plans.
//!
//! Two models share the edge and cloud tiers. Uncoordinated, both would
//! respond to the same backbone collapse by piling onto the edge,
//! observe the contention, and flee back — oscillating. Here a
//! `FleetController` owns both tenants' adaptation engines: each
//! re-partition solves against *residual* capacity (total minus the
//! other tenant's committed load), a priority weight decides who wins
//! contention, and a global budget plus per-tenant cooldown keep the
//! fleet from thrashing. Frames keep flowing — losslessly — through
//! every coordinated swap.
//!
//! ```text
//! cargo run --release --example multi_tenant
//! ```

use d3_core::{
    D3Runtime, DriftMonitor, HysteresisLocal, ModelOptions, NetworkCondition, Observation,
    StreamOptions, Tier,
};
use d3_model::{zoo, Executor};
use d3_partition::EvenSplit;
use d3_tensor::{max_abs_diff, Tensor};
use std::sync::Arc;

fn main() {
    let graph = Arc::new(zoo::chain_cnn(6, 8, 16));
    let (seed_a, seed_b) = (11u64, 12u64);

    // 1. Register two tenants (an even split keeps every tier busy) and
    //    attach ONE fleet controller over both: "analytics" carries
    //    twice the priority weight of "thumbnails".
    let mut rt = D3Runtime::new();
    for (name, seed) in [("analytics", seed_a), ("thumbnails", seed_b)] {
        rt.register(
            name,
            graph.clone(),
            ModelOptions::new()
                .seed(seed)
                .partitioner(EvenSplit)
                .without_vsm(),
        )
        .unwrap();
    }
    rt.attach_fleet_controller(
        Box::new(HysteresisLocal(DriftMonitor::default())),
        &[("analytics", 2.0), ("thumbnails", 1.0)],
    )
    .unwrap();
    println!("== Multi-tenant fleet ==\n{}\n", rt.describe());

    // 2. One session per tenant; both route adaptation through the
    //    shared arbiter.
    let mut sa = rt.open_stream("analytics", StreamOptions::new()).unwrap();
    let mut sb = rt.open_stream("thumbnails", StreamOptions::new()).unwrap();
    let (ref_a, ref_b) = (Executor::new(&graph, seed_a), Executor::new(&graph, seed_b));

    // The shared-tier ledger before any drift.
    {
        let fleet = rt.fleet_controller().unwrap().lock().unwrap();
        let ledger = fleet.ledger();
        for tier in [Tier::Edge, Tier::Cloud] {
            println!(
                "ledger[{tier}]: {:.3} ms committed across {} tenants",
                ledger.tier_committed_s(tier) * 1e3,
                ledger.commits.len()
            );
        }
        println!();
    }

    // 3. A scripted backbone collapse, seen by both tenants. The fleet
    //    arbitrates: the first tenant to trigger re-solves normally; the
    //    second solves against the capacity the first just committed.
    let mut frame = 0u64;
    for (mbps, label) in [(31.53, "wifi"), (3.0, "collapsed"), (3.0, "steady")] {
        let obs = Observation::Network {
            net: NetworkCondition::custom_backbone(mbps),
        };
        for (name, session) in [("analytics", &mut sa), ("thumbnails", &mut sb)] {
            let events = session.observe(&obs);
            if events.is_empty() {
                println!("[{label:>9}] {name:>10} @ {mbps:>5.2} Mbps -> held");
            }
            for event in &events {
                match event {
                    d3_core::AdaptEvent::Plan(s) => println!(
                        "[{label:>9}] {name:>10} @ {mbps:>5.2} Mbps -> swapped: {} vertices \
                         moved, {} in-flight drained",
                        s.changed.len(),
                        s.drained_frames
                    ),
                    d3_core::AdaptEvent::Pool(p) => println!(
                        "[{label:>9}] {name:>10} @ {mbps:>5.2} Mbps -> resized {:?} to {}",
                        p.tier, p.to
                    ),
                    d3_core::AdaptEvent::Codec(c) => println!(
                        "[{label:>9}] {name:>10} @ {mbps:>5.2} Mbps -> link {} codec -> {}",
                        c.link, c.codec
                    ),
                }
            }
        }
        // Frames keep flowing on both tenants — bit-identical to their
        // solo single-node runs, through every coordinated swap.
        for _ in 0..6 {
            let input = Tensor::random(3, 16, 16, 9000 + frame);
            for (session, reference) in [(&sa, &ref_a), (&sb, &ref_b)] {
                session.submit_blocking(&input).unwrap();
                let (_, out) = session.recv().unwrap();
                assert_eq!(
                    max_abs_diff(&out, &reference.run(&input)),
                    Some(0.0),
                    "lossless across coordinated swaps"
                );
            }
            frame += 1;
        }
    }

    // 4. The arbitration record.
    {
        let fleet = rt.fleet_controller().unwrap().lock().unwrap();
        println!(
            "\nfleet: {} plan change(s) for analytics, {} for thumbnails, \
             {} eviction(s), {} held by budget/cooldown",
            fleet.plan_changes("analytics").unwrap(),
            fleet.plan_changes("thumbnails").unwrap(),
            fleet.evictions,
            fleet.held_by_budget + fleet.held_by_cooldown,
        );
    }
    let (ra, rb) = (sa.close(), sb.close());
    assert_eq!(ra.measured.frames as u64, ra.submitted, "zero drops (a)");
    assert_eq!(rb.measured.frames as u64, rb.submitted, "zero drops (b)");
    println!(
        "streamed {frame} frames per tenant across {} + {} live swap(s), all bit-identical ✓",
        ra.reconfigurations, rb.reconfigurations
    );
}
