//! Battery-budget scenario: a smartphone assistant running AlexNet-class
//! vision queries all day.
//!
//! Latency is not the only currency — the paper's introduction motivates
//! offloading with energy too. This example prices every deployment
//! strategy in joules drawn from the device battery, shows how the radio
//! generation flips the verdict (Wi-Fi offloading saves battery, 4G
//! uploads burn it), and uses the IONN baseline to account for the
//! cold-start cost of shipping model parameters to a fresh server.
//!
//! ```text
//! cargo run --example battery_budget
//! ```

use d3_engine::{deploy_strategy, Strategy, VsmConfig};
use d3_model::zoo;
use d3_partition::{energy, Ionn, Partitioner, Problem};
use d3_simnet::{NetworkCondition, TierProfiles};

fn main() {
    let graph = zoo::alexnet(224);
    let profiles = TierProfiles::paper_testbed();
    println!("== Battery budget: AlexNet queries from a mobile device ==\n");

    // 1. Joules per inference, per strategy, per radio.
    for net in [
        NetworkCondition::WiFi,
        NetworkCondition::FourG,
        NetworkCondition::FiveG,
    ] {
        let p = Problem::new(&graph, &profiles, net);
        println!("--- {net} (radio {} W) ---", net.device_radio_power_w());
        println!(
            "{:<13} {:>11} {:>12} {:>12}",
            "strategy", "latency", "battery J", "queries/Wh"
        );
        for s in [
            Strategy::DeviceOnly,
            Strategy::CloudOnly,
            Strategy::Hpa,
            Strategy::HpaVsm,
        ] {
            let d = deploy_strategy(&p, s, VsmConfig::default()).expect("applies");
            let e = energy(&p, &d.assignment, &profiles);
            println!(
                "{:<13} {:>8.1} ms {:>12.3} {:>12.0}",
                s.label(),
                d.frame_latency_s * 1e3,
                e.device_j(),
                3600.0 / e.device_j().max(1e-9)
            );
        }
        println!();
    }

    // 2. The verdict flips with the radio: quantify it.
    let wifi = Problem::new(&graph, &profiles, NetworkCondition::WiFi);
    let fourg = Problem::new(&graph, &profiles, NetworkCondition::FourG);
    let battery = |p: &Problem, s: Strategy| {
        let d = deploy_strategy(p, s, VsmConfig::default()).expect("applies");
        energy(p, &d.assignment, &profiles).device_j()
    };
    let local = battery(&wifi, Strategy::DeviceOnly);
    println!(
        "offload vs local battery: Wi-Fi {:.2}× cheaper, 4G {:.2}× more expensive",
        local / battery(&wifi, Strategy::CloudOnly),
        battery(&fourg, Strategy::CloudOnly) / local,
    );

    // 3. Cold start: a fresh edge/cloud server has no model weights yet.
    //    IONN amortizes the one-time parameter upload over the expected
    //    query count before committing layers remotely.
    println!("\ncold start (IONN, Wi-Fi): layers offloaded by expected query count");
    for q in [1u64, 100, 1_000, 10_000, 1_000_000] {
        let a = Ionn::with_queries(q).partition(&wifi).expect("chain model");
        let offloaded = a
            .tiers()
            .iter()
            .filter(|t| **t == d3_simnet::Tier::Cloud)
            .count();
        println!(
            "  {q:>9} queries → {offloaded} layers remote, Θ = {:.1} ms",
            a.total_latency(&wifi) * 1e3
        );
    }
}
