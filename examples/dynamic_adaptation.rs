//! Dynamic adaptation: the "D" in D3.
//!
//! Network bandwidth and node load drift over a simulated day. The
//! adaptive engine monitors both with hysteresis thresholds and reacts
//! with HPA's *local* re-partitioning, while a frozen plan (partitioned
//! once at deployment) degrades. This reproduces the run-time behaviour
//! described at the end of §III-E.
//!
//! ```text
//! cargo run --example dynamic_adaptation
//! ```

use d3_core::{D3System, DriftMonitor, NetworkCondition, Observation};
use d3_model::zoo;
use d3_partition::{Hpa, Partitioner, Problem};
use d3_simnet::TierProfiles;

fn main() {
    let graph = zoo::inception_v4(224);
    println!("== Dynamic adaptation: Inception-v4 through a simulated day ==\n");

    // Hour-by-hour backbone bandwidth (Mbps): congested commutes, quiet night.
    let day: Vec<(usize, f64)> = vec![
        (0, 31.53),
        (3, 45.0),
        (6, 22.0),
        (8, 9.0), // morning rush: congested uplink
        (10, 18.0),
        (12, 14.0),
        (15, 25.0),
        (18, 7.5), // evening rush
        (21, 40.0),
        (23, 55.0),
    ];

    // Frozen baseline: partitioned once under the initial condition.
    let initial = NetworkCondition::custom_backbone(day[0].1);
    let frozen_problem = Problem::new(&graph, &TierProfiles::paper_testbed(), initial);
    let frozen = Hpa::paper()
        .partition(&frozen_problem)
        .expect("HPA always applies");

    // Adaptive engine with the paper's threshold band. The builder takes
    // the graph by value (the system owns it via Arc).
    let d3 = D3System::builder(graph.clone()).network(initial).build();
    let mut engine = d3.into_adaptive(DriftMonitor { lo: 0.75, hi: 1.35 });

    println!(
        "{:>5} {:>10} {:>14} {:>14} {:>10}",
        "hour", "Mbps", "frozen Θ", "adaptive Θ", "action"
    );
    for (hour, mbps) in day {
        let net = NetworkCondition::custom_backbone(mbps);
        let triggered = engine.ingest(&Observation::Network { net }).is_some();
        let mut p = Problem::new(&graph, &TierProfiles::paper_testbed(), net);
        p.set_net(net);
        let frozen_theta = frozen.total_latency(&p);
        let adaptive_theta = engine.current_theta();
        println!(
            "{hour:>5} {mbps:>10.1} {:>11.1} ms {:>11.1} ms {:>10}",
            frozen_theta * 1e3,
            adaptive_theta * 1e3,
            if triggered { "repartition" } else { "hold" }
        );
        assert!(adaptive_theta <= frozen_theta + 1e-9);
    }

    println!(
        "\nre-partitions: {} | observations suppressed by hysteresis: {}",
        engine.full_updates + engine.local_updates,
        engine.suppressed
    );

    // Node-level drift: the edge machine gets loaded; a single vertex's
    // measured time quadruples and the engine fixes it locally.
    let victim = d3_model::NodeId(graph.len() / 3);
    let tier = engine.assignment().tier(victim);
    let before = engine.problem().vertex_time(victim, tier);
    let repartitions_before = engine.local_updates;
    let update = engine.ingest(&Observation::VertexTime {
        vertex: victim,
        tier,
        seconds: before * 4.0,
    });
    let verdict = match (&update, engine.local_updates > repartitions_before) {
        (Some(d3_core::ControlUpdate::Plan(u)), _) => {
            format!("locally repartitioned ({} vertices moved)", u.changed.len())
        }
        (Some(d3_core::ControlUpdate::Pool(p)), _) => {
            format!("pool resized ({:?} -> {} workers)", p.tier, p.workers)
        }
        (Some(d3_core::ControlUpdate::Codec(c)), _) => {
            format!("link {} codec switched to {}", c.link, c.codec)
        }
        (None, true) => "repaired locally, plan already optimal".to_string(),
        (None, false) => "absorbed by hysteresis".to_string(),
    };
    println!(
        "load spike on {victim}: {verdict} (local updates so far: {})",
        engine.local_updates
    );
}
