//! Wire codecs: compressed + quantized inter-tier transport, end to end.
//!
//! Three acts:
//!
//! 1. **Frame level** — encode one activation tensor with every codec
//!    and compare on-wire bytes, accuracy deltas and declared bounds.
//! 2. **Partition level** — install a codec's cost profile on a
//!    bandwidth-starved problem's links and watch HPA move the split
//!    point off the device.
//! 3. **Stream level** — serve a live stream whose attached
//!    `CodecSwitcher` engages lossless compression when the backbone
//!    collapses and reverts when it recovers, losslessly throughout.
//!
//! ```text
//! cargo run --release --example wire_codecs
//! ```

use d3_core::{
    CodecSwitcher, D3Runtime, ModelOptions, NetworkCondition, NoAdapt, Observation, StreamOptions,
    WireCodec,
};
use d3_engine::codec;
use d3_model::{zoo, Executor};
use d3_partition::{EvenSplit, Hpa, Partitioner, Problem};
use d3_simnet::{LinkRates, Tier, TierProfiles};
use d3_tensor::Tensor;
use std::sync::Arc;

fn main() {
    // ------------------------------------------------------------------
    // Act 1: one tensor, every codec.
    // ------------------------------------------------------------------
    println!("== Wire codecs ==\n");
    let graph = zoo::chain_cnn(6, 8, 32);
    // A post-ReLU-style activation: rectification zeroes roughly half
    // the values, the sparsity the lossless front-end exploits.
    let mut activation = Tensor::random(8, 32, 32, 7);
    for v in activation.data_mut() {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
    println!(
        "sample: {:?} activation, {} raw wire bytes",
        activation.shape(),
        d3_engine::wire_size(&activation)
    );
    for c in WireCodec::ALL {
        let enc = codec::encode(&activation, c);
        let back = codec::decode(enc.bytes.clone()).unwrap();
        let delta = activation
            .data()
            .iter()
            .zip(back.data())
            .map(|(&a, &b)| (f64::from(a) - f64::from(b)).abs())
            .fold(0.0f64, f64::max);
        println!(
            "  {:>8}: {:>6} bytes on wire (ratio {:.3}), max |Δ| = {:.2e} \
             (declared bound {:.2e})",
            c.name(),
            enc.wire_len(),
            enc.ratio(),
            delta,
            codec::error_bound(c, &activation),
        );
        assert!(delta <= codec::error_bound(c, &activation) + 1e-30);
    }

    // ------------------------------------------------------------------
    // Act 2: codec-aware partitioning.
    // ------------------------------------------------------------------
    println!("\n== Codec-aware split points (2 Mbit/s links) ==\n");
    let mut p = Problem::new(
        &graph,
        &TierProfiles::paper_testbed(),
        NetworkCondition::Custom(LinkRates {
            device_edge_mbps: 2.0,
            edge_cloud_mbps: 2.0,
            device_cloud_mbps: 1.0,
        }),
    );
    let per_tier = |a: &d3_partition::Assignment| {
        let mut n = [0usize; 3];
        for t in a.tiers() {
            n[t.rank()] += 1;
        }
        n
    };
    let raw_plan = Hpa::paper().partition(&p).unwrap();
    println!(
        "  raw transport:      device/edge/cloud = {:?}",
        per_tier(&raw_plan)
    );
    for link in 0..3 {
        p.set_link_codec(link, codec::profile(WireCodec::Lossless));
    }
    let coded_plan = Hpa::paper().partition(&p).unwrap();
    println!(
        "  lossless transport: device/edge/cloud = {:?}",
        per_tier(&coded_plan)
    );
    assert!(
        per_tier(&coded_plan)[Tier::Device.rank()] < per_tier(&raw_plan)[Tier::Device.rank()],
        "compression must pull layers off the starved device"
    );
    println!("  -> cheaper links pulled layers off the device ✓");

    // ------------------------------------------------------------------
    // Act 3: live codec adaptation on a running stream.
    // ------------------------------------------------------------------
    println!("\n== Live codec switching ==\n");
    let g = Arc::new(zoo::chain_cnn(6, 8, 16));
    let mut rt = D3Runtime::new();
    rt.register(
        "cam0",
        g.clone(),
        ModelOptions::new().seed(0xD3).partitioner(EvenSplit),
    )
    .unwrap();
    rt.attach_controller(
        "cam0",
        Box::new(CodecSwitcher::new(
            Box::new(NoAdapt),
            WireCodec::Lossless,
            4.0,
            10.0,
        )),
    )
    .unwrap();
    let mut session = rt.open_stream("cam0", StreamOptions::new()).unwrap();
    let reference = Executor::new(&g, 0xD3);
    let mut frame = 0u64;
    for (mbps, label) in [
        (31.53, "wifi"),
        (3.0, "collapsing"),
        (3.0, "collapsed"),
        (20.0, "recovering"),
        (20.0, "recovered"),
    ] {
        let events = session.observe(&Observation::Network {
            net: NetworkCondition::custom_backbone(mbps),
        });
        for event in &events {
            if let d3_core::AdaptEvent::Codec(c) = event {
                println!(
                    "[{label:>10}] {mbps:>5.2} Mbps -> link {} codec -> {}",
                    c.link, c.codec
                );
            }
        }
        if events.is_empty() {
            println!(
                "[{label:>10}] {mbps:>5.2} Mbps -> held (codecs {:?})",
                session.link_codecs().map(WireCodec::name)
            );
        }
        // Frames keep flowing, bit-identical under every codec state.
        for _ in 0..4 {
            let input = Tensor::random(3, 16, 16, 4000 + frame);
            session.submit_blocking(&input).unwrap();
            let (_, out) = session.recv().unwrap();
            assert_eq!(
                d3_tensor::max_abs_diff(&out, &reference.run(&input)),
                Some(0.0),
                "lossless across codec switches"
            );
            frame += 1;
        }
    }
    let report = session.close();
    println!(
        "\nstreamed {frame} frames; codec ledger: {} raw -> {} on-wire bytes \
         (ratio {:.3}), max accuracy delta {:.1e}",
        report.link_raw_bytes,
        report.link_wire_bytes,
        report.compression_ratio(),
        report.max_accuracy_delta
    );
    assert_eq!(report.max_accuracy_delta, 0.0, "lossless codec only");
    assert!(
        report.link_wire_bytes < report.link_raw_bytes,
        "the collapsed phases streamed compressed"
    );
    println!("all outputs bit-identical to single-node inference ✓");
}
