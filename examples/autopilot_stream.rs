//! Autopilot scenario: the mission-critical, privacy-sensitive workload
//! that motivates the paper's introduction.
//!
//! A vehicle camera produces 30 FPS frames feeding a Darknet-53 backbone
//! (the YOLOv3 feature extractor). Shipping raw frames to the cloud is
//! unacceptable over a metered cellular uplink; running everything on the
//! in-vehicle device is too slow. This example compares every deployment
//! strategy across the Table III network conditions and reports latency,
//! sustainable throughput and backbone traffic.
//!
//! ```text
//! cargo run --example autopilot_stream
//! ```

use d3_engine::{bottleneck_s, deploy_strategy, Strategy, VsmConfig};
use d3_model::zoo;
use d3_partition::Problem;
use d3_simnet::{NetworkCondition, TierProfiles};

fn main() {
    let graph = zoo::darknet53(224);
    let profiles = TierProfiles::paper_testbed();
    println!("== Autopilot: Darknet-53 backbone, 30 FPS camera ==\n");

    for net in NetworkCondition::TABLE3 {
        println!("--- backbone: {net} ---");
        println!(
            "{:<13} {:>12} {:>14} {:>16}",
            "strategy", "latency", "max fps", "cloud Mb/image"
        );
        let problem = Problem::new(&graph, &profiles, net);
        for s in Strategy::ALL {
            let Some(d) = deploy_strategy(&problem, s, VsmConfig::default()) else {
                continue; // Neurosurgeon cannot split a DAG
            };
            let max_fps = 1.0 / bottleneck_s(&d.stages).max(1e-9);
            println!(
                "{:<13} {:>9.1} ms {:>11.1} fps {:>13.2} Mb",
                s.label(),
                d.frame_latency_s * 1e3,
                max_fps,
                d.backbone_bytes as f64 * 8.0 / 1e6,
            );
        }
        println!();
    }

    // The punchline the paper's intro builds toward: under a constrained
    // uplink, D3 keeps latency low *and* raw frames never leave the LAN.
    let problem = Problem::new(&graph, &profiles, NetworkCondition::FourG);
    let d3 = deploy_strategy(&problem, Strategy::HpaVsm, VsmConfig::default()).expect("applies");
    let cloud =
        deploy_strategy(&problem, Strategy::CloudOnly, VsmConfig::default()).expect("applies");
    println!(
        "Under 4G, D3 is {:.1}× faster than cloud-only and ships {:.0}% of its backbone bytes.",
        cloud.frame_latency_s / d3.frame_latency_s,
        100.0 * d3.backbone_bytes as f64 / cloud.backbone_bytes.max(1) as f64,
    );
}
