//! # d3-repro
//!
//! Workspace umbrella crate for the reproduction of *Dynamic DNN
//! Decomposition for Lossless Synergistic Inference* (ICDCS 2021).
//! Re-exports the member crates so the root `examples/` and `tests/` can
//! exercise the whole system; see `d3-core` for the public API.

#![forbid(unsafe_code)]

pub use d3_core as core;
pub use d3_engine as engine;
pub use d3_model as model;
pub use d3_partition as partition;
pub use d3_profiler as profiler;
pub use d3_simnet as simnet;
pub use d3_tensor as tensor;
pub use d3_vsm as vsm;

// The headline API, flattened for discoverability: the multi-model
// serving runtime (one-shot and streaming), the single-system facade,
// and the pluggable partition-policy trait.
pub use d3_core::{
    AdaptEvent, AutoscalePolicy, BatchOptions, D3Runtime, D3System, FrameId, ModelOptions,
    ModelStats, PoolOptions, PoolResize, PoolSize, ServeError, StagePoolStats, StreamOptions,
    StreamRecvError, StreamReport, StreamSession, SubmitError, Tier,
};
pub use d3_partition::{PartitionError, Partitioner};
