//! `d3-stage-server` — hosts one pipeline stage behind a stage link.
//!
//! ```text
//! d3-stage-server --listen uds:/tmp/d3-edge.sock --model chain_cnn:6:8:16
//! d3-stage-server --listen tcp:127.0.0.1:9301 --model resnet18:64
//! ```
//!
//! The server builds the spec'd zoo graph and then serves stage-link
//! connections: a client hello declares which segment to execute
//! (member vertices, weight seed, forward set), batches execute with
//! the exact decode → compute → encode semantics of an in-process
//! stage worker, and every batch is answered with a result that doubles
//! as its ack. Crash recovery is entirely client-side — the pipeline's
//! proxy replays un-acked batches on reconnect — so killing and
//! restarting this process mid-stream loses no frames.

use d3_engine::link::{serve, LinkAddr, StageHost};
use d3_model::zoo;
use std::process::ExitCode;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

const USAGE: &str = "\
d3-stage-server — host one D3 pipeline stage behind a stage link

USAGE:
    d3-stage-server --listen <uds:PATH | tcp:HOST:PORT> --model <SPEC>

OPTIONS:
    --listen <ADDR>   where to accept the stage link (uds:… or tcp:…)
    --model <SPEC>    zoo spec to host, e.g. chain_cnn:6:8:16, alexnet:224

The client's hello selects the segment; the same server binary hosts a
device, edge or cloud stage of any plan over the spec'd model.
";

fn parse_args() -> Result<(LinkAddr, String), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (mut listen, mut model) = (None, None);
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--listen" => {
                let v = value("--listen")?;
                listen =
                    Some(LinkAddr::parse(&v).ok_or_else(|| format!("bad listen address {v:?}"))?);
            }
            "--model" => model = Some(value("--model")?),
            "--help" | "-h" | "help" => return Err("help requested".to_string()),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    match (listen, model) {
        (Some(addr), Some(spec)) => Ok((addr, spec)),
        _ => Err("both --listen and --model are required".to_string()),
    }
}

fn run() -> Result<(), String> {
    let (addr, spec) = parse_args()?;
    let graph = zoo::by_spec(&spec).ok_or_else(|| format!("unknown model spec {spec:?}"))?;
    // Register under the graph's *name*: the pipeline's hello carries
    // the name of the graph it runs, and both sides build from the same
    // spec family, so the names agree exactly when the models do.
    let name = graph.name().to_string();
    let mut host = StageHost::new(name.clone(), Arc::new(graph));
    let listener = addr
        .listen()
        .map_err(|e| format!("cannot listen at {addr}: {e}"))?;
    println!("d3-stage-server: serving {name} ({spec}) at {addr}");
    // Runs until the process is killed; the client's retransmit window
    // owns crash recovery.
    let stop = AtomicBool::new(false);
    serve(&listener, &mut host, &stop);
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
