//! `d3` — command-line interface to the D3 reproduction.
//!
//! ```text
//! d3 models
//! d3 partition vgg16 --net 4g
//! d3 compare darknet53 --net wifi
//! d3 stream resnet18 --fps 30 --frames 3000
//! d3 tiles inception_v4 --nodes 4
//! d3 energy alexnet --net 5g
//! ```

use d3_engine::{bottleneck_s, deploy_strategy, Strategy, VsmConfig};
use d3_model::{zoo, DnnGraph};
use d3_partition::{energy, Hpa, Partitioner, Problem};
use d3_simnet::{NetworkCondition, Tier, TierProfiles};
use d3_vsm::find_tileable_runs;
use std::process::ExitCode;

const USAGE: &str = "\
d3 — dynamic DNN decomposition for lossless synergistic inference

USAGE:
    d3 <COMMAND> [MODEL] [OPTIONS]

COMMANDS:
    models                       list the evaluation models
    partition <model>            run HPA and show the 3-tier split
    compare   <model>            compare all deployment strategies
    stream    <model>            stream frames through the pipeline
    tiles     <model>            show VSM tileable runs and redundancy
    energy    <model>            per-inference energy accounting
    help                         show this message

MODELS:
    alexnet | vgg16 | resnet18 | darknet53 | inception_v4 | mobilenet_v1

OPTIONS:
    --net <wifi|4g|5g|optical|MBPS>   network condition   [default: wifi]
    --input <N>                       input size N×N      [default: 224]
    --fps <F>                         frame rate          [default: 30]
    --frames <N>                      frames to stream    [default: 3000]
    --nodes <N>                       edge nodes for VSM  [default: 4]
";

struct Args {
    command: String,
    model: Option<String>,
    net: NetworkCondition,
    input: usize,
    fps: f64,
    frames: usize,
    nodes: usize,
}

fn parse_args() -> Result<Args, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter().peekable();
    let command = it.next().cloned().unwrap_or_else(|| "help".into());
    let mut args = Args {
        command,
        model: None,
        net: NetworkCondition::WiFi,
        input: 224,
        fps: 30.0,
        frames: 3000,
        nodes: 4,
    };
    while let Some(tok) = it.next() {
        match tok.as_str() {
            "--net" => {
                let v = it.next().ok_or("--net needs a value")?;
                args.net = match v.to_lowercase().as_str() {
                    "wifi" | "wi-fi" => NetworkCondition::WiFi,
                    "4g" => NetworkCondition::FourG,
                    "5g" => NetworkCondition::FiveG,
                    "optical" => NetworkCondition::Optical,
                    other => {
                        let mbps: f64 = other
                            .parse()
                            .map_err(|_| format!("unknown network `{other}`"))?;
                        NetworkCondition::custom_backbone(mbps)
                    }
                };
            }
            "--input" => {
                args.input = it
                    .next()
                    .ok_or("--input needs a value")?
                    .parse()
                    .map_err(|_| "--input must be an integer")?;
            }
            "--fps" => {
                args.fps = it
                    .next()
                    .ok_or("--fps needs a value")?
                    .parse()
                    .map_err(|_| "--fps must be a number")?;
            }
            "--frames" => {
                args.frames = it
                    .next()
                    .ok_or("--frames needs a value")?
                    .parse()
                    .map_err(|_| "--frames must be an integer")?;
            }
            "--nodes" => {
                args.nodes = it
                    .next()
                    .ok_or("--nodes needs a value")?
                    .parse()
                    .map_err(|_| "--nodes must be an integer")?;
            }
            other if !other.starts_with("--") && args.model.is_none() => {
                args.model = Some(other.to_string());
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(args)
}

fn load_model(name: &str, input: usize) -> Result<DnnGraph, String> {
    match name {
        "alexnet" => Ok(zoo::alexnet(input)),
        "vgg16" => Ok(zoo::vgg16(input)),
        "resnet18" => Ok(zoo::resnet18(input)),
        "darknet53" => Ok(zoo::darknet53(input)),
        "inception_v4" | "inceptionv4" => Ok(zoo::inception_v4(input)),
        "mobilenet_v1" | "mobilenet" => Ok(zoo::mobilenet_v1(input)),
        other => Err(format!(
            "unknown model `{other}` (try `d3 models` for the list)"
        )),
    }
}

fn require_model(args: &Args) -> Result<DnnGraph, String> {
    let name = args
        .model
        .as_deref()
        .ok_or("this command needs a model argument")?;
    load_model(name, args.input)
}

fn cmd_models() {
    println!(
        "{:<14} {:>12} {:>12} {:>10} {:>8}",
        "model", "params", "GFLOPs", "vertices", "DAG?"
    );
    let mut models = zoo::all_models(224);
    models.push(zoo::mobilenet_v1(224));
    for g in models {
        println!(
            "{:<14} {:>12} {:>12.2} {:>10} {:>8}",
            g.name(),
            g.total_params(),
            g.total_flops() as f64 / 1e9,
            g.len(),
            if g.is_chain() { "chain" } else { "DAG" }
        );
    }
}

fn cmd_partition(args: &Args) -> Result<(), String> {
    let g = require_model(args)?;
    let profiles = TierProfiles::paper_testbed();
    let p = Problem::new(&g, &profiles, args.net);
    let a = Hpa::paper().partition(&p).expect("HPA always applies");
    println!(
        "HPA partition of {} under {} ({}×{} input):",
        zoo::display_name(g.name()),
        args.net,
        args.input,
        args.input
    );
    for tier in Tier::ALL {
        let seg = a.segment(tier);
        let names: Vec<&str> = seg
            .iter()
            .filter(|id| **id != g.input())
            .map(|id| g.node(*id).name.as_str())
            .collect();
        let shown = if names.len() > 8 {
            format!(
                "{} … {} ({} layers)",
                names[..4].join(", "),
                names[names.len() - 2..].join(", "),
                names.len()
            )
        } else {
            names.join(", ")
        };
        println!("  {tier:<7} {shown}");
    }
    println!("  theta: {:.2} ms", a.total_latency(&p) * 1e3);
    println!(
        "  backbone: {:.2} Mb/image",
        a.backbone_bytes(&p) as f64 * 8.0 / 1e6
    );
    Ok(())
}

fn cmd_compare(args: &Args) -> Result<(), String> {
    let g = require_model(args)?;
    let profiles = TierProfiles::paper_testbed();
    let p = Problem::new(&g, &profiles, args.net);
    let vsm = VsmConfig {
        edge_nodes: args.nodes,
        ..VsmConfig::default()
    };
    println!(
        "{:<13} {:>11} {:>10} {:>14}",
        "strategy", "latency", "max fps", "cloud Mb/img"
    );
    for s in Strategy::ALL {
        match deploy_strategy(&p, s, vsm) {
            Some(d) => println!(
                "{:<13} {:>8.1} ms {:>7.1} fps {:>11.2} Mb",
                s.label(),
                d.frame_latency_s * 1e3,
                1.0 / bottleneck_s(&d.stages).max(1e-9),
                d.backbone_bytes as f64 * 8.0 / 1e6
            ),
            None => println!("{:<13} {:>11}", s.label(), "n/a (DAG)"),
        }
    }
    Ok(())
}

fn cmd_stream(args: &Args) -> Result<(), String> {
    let g = require_model(args)?;
    let profiles = TierProfiles::paper_testbed();
    let p = Problem::new(&g, &profiles, args.net);
    let d = deploy_strategy(&p, Strategy::HpaVsm, VsmConfig::default())
        .expect("HPA+VSM always applies");
    let stats = d.stream(args.fps, args.frames);
    println!(
        "{} | {} | {} frames @ {} fps",
        zoo::display_name(g.name()),
        args.net,
        args.frames,
        args.fps
    );
    println!(
        "  mean {:.1} ms | p95 {:.1} ms | max {:.1} ms | throughput {:.1} fps",
        stats.mean_latency_s * 1e3,
        stats.p95_latency_s * 1e3,
        stats.max_latency_s * 1e3,
        stats.throughput_fps
    );
    let cap = 1.0 / bottleneck_s(&d.stages).max(1e-9);
    if args.fps > cap {
        println!("  note: pipeline saturates at {cap:.1} fps — the queue grows without bound");
    }
    // A short Gantt of the first frames: stages and links interleaved.
    let traces = d3_engine::simulate_stream_trace(&d.stages, args.fps, args.frames.min(8));
    let horizon = traces
        .last()
        .map(|t| t.spans.last().map_or(0.1, |s| s.1))
        .unwrap_or(0.1);
    let resolution = (horizon / 100.0).max(1e-4);
    println!(
        "
{}",
        d3_engine::render_gantt(&d.stages, &traces, 8, resolution)
    );
    Ok(())
}

fn cmd_tiles(args: &Args) -> Result<(), String> {
    let g = require_model(args)?;
    let profiles = TierProfiles::paper_testbed();
    let p = Problem::new(&g, &profiles, args.net);
    let all: Vec<_> = g.layer_ids().collect();
    let runs = find_tileable_runs(&g, &all, 2);
    println!(
        "{}: {} tileable runs (whole network scanned)",
        zoo::display_name(g.name()),
        runs.len()
    );
    let mut shown = 0;
    for run in &runs {
        let times: Vec<f64> = run
            .iter()
            .map(|&id| p.vertex_time(id, Tier::Edge))
            .collect();
        let Some(((rows, cols), t)) = d3_vsm::best_uniform_grid(&g, run, &times, args.nodes) else {
            continue;
        };
        let serial: f64 = times.iter().sum();
        let plan = d3_vsm::VsmPlan::new(&g, run, rows, cols).expect("searched grid");
        println!(
            "  {} → {} ({} layers): best {}×{} grid, redundancy {:.3}, speedup {:.2}×",
            g.node(run[0]).name,
            g.node(*run.last().expect("non-empty")).name,
            run.len(),
            rows,
            cols,
            plan.redundancy(),
            serial / t.max(1e-12)
        );
        shown += 1;
        if shown >= 10 {
            println!("  … ({} more runs)", runs.len() - shown);
            break;
        }
    }
    Ok(())
}

fn cmd_energy(args: &Args) -> Result<(), String> {
    let g = require_model(args)?;
    let profiles = TierProfiles::paper_testbed();
    let p = Problem::new(&g, &profiles, args.net);
    println!(
        "{:<13} {:>12} {:>12} {:>12} {:>12}",
        "strategy", "device J", "radio J", "total J", "battery J"
    );
    for s in Strategy::ALL {
        let Some(d) = deploy_strategy(&p, s, VsmConfig::default()) else {
            continue;
        };
        let e = energy(&p, &d.assignment, &profiles);
        println!(
            "{:<13} {:>12.3} {:>12.3} {:>12.3} {:>12.3}",
            s.label(),
            e.compute_j[0],
            e.device_radio_j,
            e.total_j(),
            e.device_j()
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match args.command.as_str() {
        "models" => {
            cmd_models();
            Ok(())
        }
        "partition" => cmd_partition(&args),
        "compare" => cmd_compare(&args),
        "stream" => cmd_stream(&args),
        "tiles" => cmd_tiles(&args),
        "energy" => cmd_energy(&args),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
