//! Vendored stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this crate
//! implements the slice of proptest's API the workspace's property
//! tests use: the [`strategy::Strategy`] trait over ranges, tuples,
//! [`strategy::Just`], `prop_map`, unions (`prop_oneof!`),
//! [`collection::vec`], [`arbitrary::any`], and the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from the real crate: cases are drawn from a fixed
//! deterministic generator (seeded from the test name), and failing
//! cases are reported but **not shrunk**.

#![forbid(unsafe_code)]

/// Deterministic case generation and failure reporting.
pub mod test_runner {
    /// A failed property case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Builds a failure with a message.
        #[must_use]
        pub fn fail(message: String) -> Self {
            Self(message)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            self.0.fmt(f)
        }
    }

    /// The deterministic generator driving all strategies (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Seeds the generator from a test name, so every run of a test
        /// replays the same cases.
        #[must_use]
        pub fn deterministic(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self(h)
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, 1)`.
        pub fn next_unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform draw from `[0, bound)`.
        ///
        /// # Panics
        ///
        /// Panics when `bound` is zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty sampling range");
            self.next_u64() % bound
        }
    }

    /// Per-`proptest!` block configuration.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::test_runner::TestRng;

    /// Generates values of an output type from random bits.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (for [`Union`] / `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The strategy behind [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice among several strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over `options`.
        ///
        /// # Panics
        ///
        /// Panics when `options` is empty.
        #[must_use]
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].sample(rng)
        }
    }

    macro_rules! int_ranges {
        ($($t:ty),+) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64 + 1;
                    lo + rng.below(span) as $t
                }
            }
        )+};
    }

    int_ranges!(usize, u64, u32, u16, u8);

    macro_rules! float_ranges {
        ($($t:ty),+) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + rng.next_unit_f64() as $t * (self.end - self.start)
                }
            }
        )+};
    }

    float_ranges!(f64, f32);

    macro_rules! tuple_strategies {
        ($(($($s:ident . $idx:tt),+))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )+};
    }

    tuple_strategies! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    }
}

/// Strategies over collections.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Length bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    /// The strategy behind [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() as u32
        }
    }

    impl Arbitrary for usize {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() as usize
        }
    }

    /// The strategy behind [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`'s whole domain.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// The glob-import surface mirroring `proptest::prelude`.
pub mod prelude {
    /// Idiomatic `prop::collection::vec(..)` access.
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Uniform choice among strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Asserts a condition inside a property, failing the case (not
/// panicking) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property, failing the case when unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left != right {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                left, right
            )));
        }
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ..) { .. }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                $(
                    let $arg =
                        $crate::strategy::Strategy::sample(&($strategy), &mut rng);
                )+
                let outcome = (|| -> ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > { $body Ok(()) })();
                if let Err(e) = outcome {
                    panic!("property {} failed at case {case}: {e}", stringify!($name));
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..=9, y in 10u64..20, z in -0.5f64..0.5) {
            prop_assert!((3..=9).contains(&x));
            prop_assert!((10..20).contains(&y));
            prop_assert!((-0.5..0.5).contains(&z));
        }

        #[test]
        fn oneof_and_map_compose(
            v in prop::collection::vec(prop_oneof![Just(1usize), Just(4)], 1..=3),
            flag in any::<bool>(),
        ) {
            prop_assert!(!v.is_empty() && v.len() <= 3);
            prop_assert!(v.iter().all(|&x| x == 1 || x == 4));
            let tagged = (0usize..2).prop_map(move |i| (i, flag));
            let mut rng = crate::test_runner::TestRng::deterministic("inner");
            let (i, f) = crate::strategy::Strategy::sample(&tagged, &mut rng);
            prop_assert!(i < 2);
            prop_assert_eq!(f, flag);
        }
    }
}
