//! Vendored stand-in for the `bytes` crate.
//!
//! Implements the slice of the API the workspace's wire codec uses:
//! [`Bytes`] (cheaply cloneable shared buffer with a read cursor),
//! [`BytesMut`] (growable builder), and the [`Buf`]/[`BufMut`]
//! little-endian accessors.

#![forbid(unsafe_code)]

use std::sync::Arc;

/// A cheaply cloneable, immutable byte buffer with a read cursor.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    pos: usize,
}

impl Bytes {
    /// Wraps a static byte slice.
    #[must_use]
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self::from(bytes.to_vec())
    }

    /// The unread remainder as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    /// Total unread length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether no unread bytes remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A new buffer viewing `range` of the unread remainder.
    ///
    /// # Panics
    ///
    /// Panics when the range is out of bounds.
    #[must_use]
    pub fn slice(&self, range: std::ops::Range<usize>) -> Self {
        Self::from(self.as_slice()[range].to_vec())
    }

    /// Copies the unread remainder into a vector.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self {
            data: Arc::new(data),
            pos: 0,
        }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

/// A growable byte buffer (builder for [`Bytes`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer with reserved capacity.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Freezes into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

/// Read-side accessors (stand-in for `bytes::Buf`).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Reads `n` bytes, advancing the cursor.
    ///
    /// # Panics
    ///
    /// Panics when fewer than `n` bytes remain.
    fn take_bytes(&mut self, n: usize) -> Vec<u8>;

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let b = self.take_bytes(4);
        u32::from_le_bytes([b[0], b[1], b[2], b[3]])
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_bytes(&mut self, n: usize) -> Vec<u8> {
        assert!(self.len() >= n, "buffer underflow");
        let out = self.data[self.pos..self.pos + n].to_vec();
        self.pos += n;
        out
    }
}

/// Write-side accessors (stand-in for `bytes::BufMut`).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, bytes: &[u8]);

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, bytes: &[u8]) {
        self.data.extend_from_slice(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le_values() {
        let mut b = BytesMut::with_capacity(8);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_f32_le(1.5);
        let mut frozen = b.freeze();
        assert_eq!(frozen.remaining(), 8);
        assert_eq!(frozen.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(frozen.get_f32_le(), 1.5);
        assert_eq!(frozen.remaining(), 0);
    }

    #[test]
    fn clones_share_data_but_not_cursor() {
        let mut a = Bytes::from(vec![1, 2, 3, 4]);
        let b = a.clone();
        a.take_bytes(2);
        assert_eq!(a.as_slice(), &[3, 4]);
        assert_eq!(b.as_slice(), &[1, 2, 3, 4]);
        assert_ne!(a, b);
    }
}
