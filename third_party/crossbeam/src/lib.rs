//! Vendored stand-in for the `crossbeam` crate.
//!
//! Implements the two facilities the workspace uses, on top of the
//! standard library:
//!
//! - [`channel::unbounded`] / [`channel::bounded`]: MPMC channels (std's
//!   `mpsc` receivers are not cloneable, so these wrap a mutex-guarded
//!   queue with condvars). Bounded channels block or reject
//!   ([`channel::Sender::try_send`]) once `cap` messages queue — the
//!   backpressure primitive the streaming pipeline is built on,
//! - [`thread::scope`]: crossbeam-style scoped threads delegating to
//!   `std::thread::scope` (stabilized since the original dependency was
//!   introduced), preserving crossbeam's `scope.spawn(|scope| ...)` and
//!   `Result`-returning signatures.

#![forbid(unsafe_code)]

/// Multi-producer multi-consumer FIFO channels, unbounded or bounded.
///
/// With the `model` feature the internal `Mutex`/`Condvar` are the
/// loomlite model-checker shims: every channel operation becomes a
/// scheduling point a model execution can explore, while outside a
/// model execution the shims pass through to `std` unchanged.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::Arc;

    #[cfg(not(feature = "model"))]
    use std::sync::{Condvar, Mutex};

    #[cfg(feature = "model")]
    use loomlite::sync::{Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        /// Capacity bound; `None` for unbounded channels.
        cap: Option<usize>,
        /// Signalled when a message arrives or the last sender leaves.
        ready: Condvar,
        /// Signalled when queue space frees or the last receiver leaves.
        space: Condvar,
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cloneable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error from [`Sender::try_send`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is bounded and at capacity.
        Full(T),
        /// All receivers are gone.
        Disconnected(T),
    }

    /// Error returned when the channel is empty and all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error from [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message queued right now.
        Empty,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    /// Error from [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    fn channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            cap,
            ready: Condvar::new(),
            space: Condvar::new(),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    /// Creates an unbounded MPMC channel.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel(None)
    }

    /// Creates a bounded MPMC channel holding at most `cap` messages;
    /// [`Sender::send`] blocks and [`Sender::try_send`] rejects while the
    /// channel is full.
    ///
    /// # Panics
    ///
    /// Panics when `cap` is zero (this stand-in does not implement
    /// rendezvous channels).
    #[must_use]
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap > 0, "zero-capacity channels are not supported");
        channel(Some(cap))
    }

    impl<T> Sender<T> {
        /// Enqueues a message; on a bounded channel, blocks while full.
        ///
        /// # Errors
        ///
        /// Returns [`SendError`] when every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.state.lock().expect("channel poisoned");
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.shared.cap {
                    Some(cap) if state.queue.len() >= cap => {
                        state = self.shared.space.wait(state).expect("channel poisoned");
                    }
                    _ => break,
                }
            }
            state.queue.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }

        /// Enqueues a message without blocking.
        ///
        /// # Errors
        ///
        /// Returns [`TrySendError::Full`] when a bounded channel is at
        /// capacity and [`TrySendError::Disconnected`] when every
        /// receiver has been dropped; the message is handed back either
        /// way.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut state = self.shared.state.lock().expect("channel poisoned");
            if state.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if let Some(cap) = self.shared.cap {
                if state.queue.len() >= cap {
                    return Err(TrySendError::Full(value));
                }
            }
            state.queue.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let mut state = self.shared.state.lock().expect("channel poisoned");
            state.senders += 1;
            drop(state);
            Self {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().expect("channel poisoned");
            state.senders -= 1;
            let disconnected = state.senders == 0;
            drop(state);
            if disconnected {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] when the channel is empty and every
        /// sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.state.lock().expect("channel poisoned");
            loop {
                if let Some(value) = state.queue.pop_front() {
                    drop(state);
                    self.shared.space.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.ready.wait(state).expect("channel poisoned");
            }
        }

        /// Blocks until a message arrives, but at most for `timeout`.
        ///
        /// # Errors
        ///
        /// Returns [`RecvTimeoutError::Timeout`] when nothing arrived in
        /// time and [`RecvTimeoutError::Disconnected`] when the channel
        /// is empty and every sender has been dropped.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            // An un-timed model has no deadlines: under the virtual
            // scheduler a timed receive degenerates to a blocking one
            // (an immediate-timeout variant would hand the explorer an
            // unbounded spin loop). Timeout behaviour is timing, not
            // ordering; it stays covered by the non-model tests.
            #[cfg(feature = "model")]
            if loomlite::is_model_active() {
                return match self.recv() {
                    Ok(value) => Ok(value),
                    Err(RecvError) => Err(RecvTimeoutError::Disconnected),
                };
            }
            let deadline = std::time::Instant::now() + timeout;
            let mut state = self.shared.state.lock().expect("channel poisoned");
            loop {
                if let Some(value) = state.queue.pop_front() {
                    drop(state);
                    self.shared.space.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                let Some(remaining) = deadline
                    .checked_duration_since(now)
                    .filter(|d| !d.is_zero())
                else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, _timed_out) = self
                    .shared
                    .ready
                    .wait_timeout(state, remaining)
                    .expect("channel poisoned");
                state = guard;
            }
        }

        /// Dequeues a message without blocking.
        ///
        /// # Errors
        ///
        /// Returns [`TryRecvError::Empty`] when nothing is queued and
        /// [`TryRecvError::Disconnected`] when additionally every sender
        /// has been dropped.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.state.lock().expect("channel poisoned");
            if let Some(value) = state.queue.pop_front() {
                drop(state);
                self.shared.space.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }
    }

    impl<T> Receiver<T> {
        /// Number of messages currently queued (a snapshot; other
        /// senders/receivers may change it immediately).
        #[must_use]
        pub fn len(&self) -> usize {
            self.shared
                .state
                .lock()
                .expect("channel poisoned")
                .queue
                .len()
        }

        /// Whether the queue is empty right now (snapshot semantics, see
        /// [`Receiver::len`]).
        #[must_use]
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            let mut state = self.shared.state.lock().expect("channel poisoned");
            state.receivers += 1;
            drop(state);
            Self {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().expect("channel poisoned");
            state.receivers -= 1;
            let disconnected = state.receivers == 0;
            drop(state);
            if disconnected {
                self.shared.space.notify_all();
            }
        }
    }
}

/// Crossbeam-style scoped threads over `std::thread::scope`.
pub mod thread {
    use std::any::Any;

    /// A scope handle passed to [`scope`] and to every spawned closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish.
        ///
        /// # Errors
        ///
        /// Returns the panic payload if the thread panicked.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope so it
        /// can spawn further threads (crossbeam's signature).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope)),
            }
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be
    /// spawned; all threads are joined before `scope` returns.
    ///
    /// # Errors
    ///
    /// Unlike crossbeam, `std::thread::scope` propagates panics of
    /// unjoined children by panicking, so the `Err` arm is never
    /// produced — it exists to keep crossbeam's signature (callers
    /// `.expect(...)` the result).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvTimeoutError, TryRecvError, TrySendError};

    #[test]
    fn mpmc_fan_in_fan_out() {
        let (tx, rx) = unbounded::<usize>();
        let rx2 = rx.clone();
        let tx2 = tx.clone();
        super::thread::scope(|scope| {
            scope.spawn(move |_| {
                for i in 0..50 {
                    tx.send(i).unwrap();
                }
            });
            scope.spawn(move |_| {
                for i in 50..100 {
                    tx2.send(i).unwrap();
                }
            });
            let a = scope.spawn(move |_| {
                let mut got = 0;
                while rx.recv().is_ok() {
                    got += 1;
                }
                got
            });
            let b = scope.spawn(move |_| {
                let mut got = 0;
                while rx2.recv().is_ok() {
                    got += 1;
                }
                got
            });
            let total = a.join().unwrap() + b.join().unwrap();
            assert_eq!(total, 100);
        })
        .unwrap();
    }

    #[test]
    fn recv_errors_once_senders_gone() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn bounded_try_send_rejects_when_full() {
        let (tx, rx) = bounded::<u8>(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn bounded_send_blocks_until_space() {
        let (tx, rx) = bounded::<u8>(1);
        tx.send(1).unwrap();
        super::thread::scope(|scope| {
            scope.spawn(|_| {
                // Blocks until the main thread drains the queue.
                tx.send(2).unwrap();
            });
            std::thread::sleep(std::time::Duration::from_millis(10));
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        })
        .unwrap();
    }

    #[test]
    fn send_errors_once_receivers_gone() {
        let (tx, rx) = bounded::<u8>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
        assert_eq!(tx.try_send(2), Err(TrySendError::Disconnected(2)));
    }

    #[test]
    fn recv_timeout_times_out_receives_and_reports_disconnect() {
        let (tx, rx) = bounded::<u8>(2);
        let short = std::time::Duration::from_millis(5);
        assert_eq!(rx.recv_timeout(short), Err(RecvTimeoutError::Timeout));
        tx.send(4).unwrap();
        assert_eq!(rx.recv_timeout(short), Ok(4));
        drop(tx);
        assert_eq!(rx.recv_timeout(short), Err(RecvTimeoutError::Disconnected));
    }

    #[test]
    fn try_recv_reports_disconnect() {
        let (tx, rx) = bounded::<u8>(1);
        tx.send(9).unwrap();
        drop(tx);
        assert_eq!(rx.try_recv(), Ok(9));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }
}
