//! Vendored stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no registry access, so this crate provides
//! the slice of criterion's API the workspace's `benches/` use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`],
//! [`BenchmarkId`], [`black_box`] and the `criterion_group!` /
//! `criterion_main!` macros — with a simple mean-over-N timer instead of
//! criterion's statistical machinery. Timings print to stdout; there is
//! no HTML report.

#![forbid(unsafe_code)]

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{parameter}", name.into()),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.id.fmt(f)
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    last_mean: Option<Duration>,
}

/// Target wall-clock spent measuring one benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);

impl Bencher {
    /// Runs `routine` repeatedly (one warm-up, then as many timed passes
    /// as fit the budget, at least three) and records the mean.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let mut total = Duration::ZERO;
        let mut runs = 0u32;
        while runs < 3 || (total < MEASURE_BUDGET && runs < 10_000) {
            let start = Instant::now();
            black_box(routine());
            total += start.elapsed();
            runs += 1;
        }
        self.last_mean = Some(total / runs);
    }
}

/// The harness entry point (stand-in for `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, mut f: F) {
    let mut bencher = Bencher { last_mean: None };
    f(&mut bencher);
    match bencher.last_mean {
        Some(mean) => println!("bench {id:<50} {mean:>12.2?}/iter"),
        None => println!("bench {id:<50} (no measurement)"),
    }
}

impl Criterion {
    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
        }
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl<'a> BenchmarkGroup<'a> {
    /// Benchmarks `f` under `group/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{id}", self.name), f);
        self
    }

    /// Benchmarks `f` with a borrowed input under `group/id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl std::fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{id}", self.name), |b| f(b, input));
        self
    }

    /// Finishes the group (report flushing in real criterion; a no-op
    /// here).
    pub fn finish(self) {}
}

/// Declares a benchmark group function runnable by [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` runs harness-less bench binaries with test
            // flags; don't burn time benchmarking in that mode.
            if std::env::args().any(|a| a == "--test" || a == "--list") {
                return;
            }
            $( $group(); )+
        }
    };
}
