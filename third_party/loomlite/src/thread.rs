//! Shim threading: `spawn`/`join`, `yield_now`, `sleep` and
//! `park`/`unpark` that participate in the model scheduler, deferring to
//! `std::thread` in passthrough mode.

use crate::exec::{self, BlockKind, Execution};
use std::sync::{Arc, Mutex as StdMutex};

enum Imp<T> {
    Std(std::thread::JoinHandle<T>),
    Model {
        execution: Arc<Execution>,
        id: usize,
        result: Arc<StdMutex<Option<T>>>,
    },
}

/// Handle to a spawned thread; mirrors `std::thread::JoinHandle`.
pub struct JoinHandle<T>(Imp<T>);

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result.
    ///
    /// # Errors
    ///
    /// Returns the thread's panic payload if it panicked — though under
    /// a model execution a panicking thread fails the whole schedule, so
    /// model-mode `join` only ever returns `Ok` (the joiner unwinds via
    /// the scheduler instead of observing the panic).
    pub fn join(self) -> std::thread::Result<T> {
        match self.0 {
            Imp::Std(handle) => handle.join(),
            Imp::Model {
                execution,
                id,
                result,
            } => {
                let (_, me) = exec::current()
                    .expect("loomlite: model JoinHandle joined from outside the model");
                if !execution.is_finished(id) {
                    exec::block(&execution, me, id, BlockKind::Join);
                }
                match result
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .take()
                {
                    Some(value) => Ok(value),
                    // The target panicked: its payload became the
                    // schedule's failure; unwind this thread too.
                    None => std::panic::panic_any(LoomliteJoinAbort),
                }
            }
        }
    }

    /// Wakes the thread from [`park`], or banks the permit for its next
    /// park — `std`'s `Thread::unpark`, surfaced on the handle (the
    /// shim has no `Thread` type).
    pub fn unpark(&self) {
        match &self.0 {
            Imp::Std(handle) => handle.thread().unpark(),
            Imp::Model { execution, id, .. } => execution.unpark(*id),
        }
    }
}

/// Internal marker payload: joining a panicked model thread unwinds the
/// joiner; the scheduler treats any panic during an aborting execution
/// as part of the teardown.
struct LoomliteJoinAbort;

/// Spawns a thread. Inside a model execution the thread is registered
/// with the scheduler and only runs when given the turn; otherwise this
/// is `std::thread::spawn`.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match exec::current() {
        None => JoinHandle(Imp::Std(std::thread::spawn(f))),
        Some((execution, _)) => {
            let result: Arc<StdMutex<Option<T>>> = Arc::new(StdMutex::new(None));
            let slot = result.clone();
            let id = exec::spawn_model_thread(&execution, move || {
                let value = f();
                *slot
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(value);
            });
            JoinHandle(Imp::Model {
                execution,
                id,
                result,
            })
        }
    }
}

/// A scheduling point (model) / `std::thread::yield_now` (passthrough).
pub fn yield_now() {
    match exec::current() {
        None => std::thread::yield_now(),
        Some((execution, me)) => exec::yield_point(&execution, me),
    }
}

/// Sleeping has no meaning under a virtual scheduler: in model mode
/// this is a single scheduling point (as if the duration elapsed with
/// no intervening wakeup); in passthrough mode a real sleep.
pub fn sleep(duration: std::time::Duration) {
    match exec::current() {
        None => std::thread::sleep(duration),
        Some((execution, me)) => exec::yield_point(&execution, me),
    }
}

/// Blocks the calling thread until unparked (or consumes a banked
/// permit). Mirrors `std::thread::park`; pair with
/// [`JoinHandle::unpark`].
pub fn park() {
    match exec::current() {
        None => std::thread::park(),
        Some((execution, me)) => {
            if execution.take_unpark_permit(me) {
                exec::yield_point(&execution, me);
            } else {
                exec::block(&execution, me, me, BlockKind::Park);
            }
        }
    }
}
