//! The controlled scheduler: one OS thread per model thread, a single
//! "turn" token deciding which may run, and a bounded DFS over the
//! branch points where more than one thread was runnable.

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// Panic payload the scheduler throws to unwind threads of an aborted
/// execution (one that already recorded a failure). Caught and swallowed
/// by [`run_thread`]; never user-visible.
struct Abort;

/// What a blocked thread is waiting for. `on` is a resource key — a shim
/// object address for `Mutex`/`Condvar`, a thread id for `Join`/`Park`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum BlockKind {
    /// Waiting to acquire a shim mutex.
    Mutex,
    /// Waiting on a shim condvar.
    Condvar,
    /// Waiting for a thread to finish.
    Join,
    /// Parked, waiting for an unpark.
    Park,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ThreadState {
    Runnable,
    Blocked { on: usize, kind: BlockKind },
    Finished,
}

#[derive(Clone, Copy, Debug)]
struct Choice {
    taken: usize,
    options: usize,
}

struct ThreadSlot {
    state: ThreadState,
    /// The `park`/`unpark` permit: an unpark with no parked thread is
    /// remembered and consumes the next park.
    unpark_permit: bool,
}

struct Inner {
    threads: Vec<ThreadSlot>,
    /// Which thread currently holds the turn token. `None` once the
    /// execution has completed or aborted.
    active: Option<usize>,
    /// The schedule: replayed up to `cursor`, extended (first-option)
    /// past it. Only decisions with more than one candidate thread are
    /// recorded.
    choices: Vec<Choice>,
    cursor: usize,
    branches: usize,
    max_branches: usize,
    /// Preemptions taken so far on this schedule: times the turn moved
    /// away from a thread that could have kept running. Forced switches
    /// (the active thread blocked or finished) are free.
    preemptions: usize,
    /// CHESS-style context bound: once `preemptions` reaches this, a
    /// still-runnable active thread keeps the turn instead of branching.
    max_preemptions: usize,
    /// Threads not yet `Finished` (blocked ones count).
    running: usize,
    failure: Option<String>,
    aborting: bool,
}

/// One model execution: shared by the driver and every model thread.
pub(crate) struct Execution {
    inner: StdMutex<Inner>,
    /// Model threads wait here for their turn.
    turn: StdCondvar,
    /// The driver waits here for `running == 0`.
    driver: StdCondvar,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
}

/// The calling thread's execution context, if it is a model thread.
/// `None` means passthrough mode: shims defer to std.
pub(crate) fn current() -> Option<(Arc<Execution>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

fn panic_abort() -> ! {
    std::panic::panic_any(Abort)
}

fn lock_inner(exec: &Execution) -> StdMutexGuard<'_, Inner> {
    exec.inner
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Execution {
    fn new(prefix: Vec<Choice>, max_branches: usize, max_preemptions: usize) -> Self {
        Self {
            inner: StdMutex::new(Inner {
                threads: vec![ThreadSlot {
                    state: ThreadState::Runnable,
                    unpark_permit: false,
                }],
                active: Some(0),
                choices: prefix,
                cursor: 0,
                branches: 0,
                max_branches,
                preemptions: 0,
                max_preemptions,
                running: 1,
                failure: None,
                aborting: false,
            }),
            turn: StdCondvar::new(),
            driver: StdCondvar::new(),
        }
    }

    /// Records a failure (first one wins) and aborts the execution:
    /// every thread panics with [`Abort`] at its next scheduling point.
    fn fail_locked(&self, inner: &mut Inner, msg: String) {
        if inner.failure.is_none() {
            inner.failure = Some(msg);
        }
        inner.aborting = true;
        inner.active = None;
        self.turn.notify_all();
        self.driver.notify_all();
    }

    /// Hands the turn token to the next runnable thread, recording a
    /// branch when the choice was real (more than one candidate).
    fn pick_next(&self, inner: &mut Inner) {
        if inner.aborting {
            self.turn.notify_all();
            return;
        }
        let prev = inner.active;
        let mut runnable: Vec<usize> = inner
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.state == ThreadState::Runnable)
            .map(|(id, _)| id)
            .collect();
        // Context bounding (CHESS): once the preemption budget is
        // spent, a thread that can keep running must keep running —
        // only *forced* switches (the active thread blocked or
        // finished) still branch. This collapses the schedule space
        // from exponential in scheduling points to exponential in the
        // (small) bound, while still covering every schedule reachable
        // with ≤ bound preemptions.
        if inner.preemptions >= inner.max_preemptions {
            if let Some(p) = prev {
                if runnable.contains(&p) {
                    runnable = vec![p];
                }
            }
        }
        if runnable.is_empty() {
            if inner.running == 0 {
                inner.active = None;
                self.driver.notify_all();
            } else {
                let blocked: Vec<String> = inner
                    .threads
                    .iter()
                    .enumerate()
                    .filter_map(|(id, t)| match t.state {
                        ThreadState::Blocked { kind, .. } => Some(format!("t{id}:{kind:?}")),
                        _ => None,
                    })
                    .collect();
                self.fail_locked(
                    inner,
                    format!(
                        "deadlock: all live threads blocked ({})",
                        blocked.join(", ")
                    ),
                );
            }
            self.turn.notify_all();
            return;
        }
        let index = if runnable.len() == 1 {
            0
        } else {
            inner.branches += 1;
            if inner.branches > inner.max_branches {
                self.fail_locked(
                    inner,
                    format!("schedule exceeded max_branches = {}", inner.max_branches),
                );
                return;
            }
            if inner.cursor < inner.choices.len() {
                let taken = inner.choices[inner.cursor].taken;
                if taken >= runnable.len() {
                    self.fail_locked(
                        inner,
                        format!(
                            "seed mismatch at branch {}: choice {taken} of {} runnable — \
                             the model is non-deterministic or the seed is stale",
                            inner.cursor,
                            runnable.len()
                        ),
                    );
                    return;
                }
                taken
            } else {
                inner.choices.push(Choice {
                    taken: 0,
                    options: runnable.len(),
                });
                0
            }
        };
        if runnable.len() > 1 {
            // Keep `options` honest on replayed prefixes (a parsed seed
            // carries a sentinel) so odometer backtracking stays valid.
            inner.choices[inner.cursor].options = runnable.len();
            inner.cursor += 1;
        }
        let chosen = runnable[index];
        if let Some(p) = prev {
            // Moving the turn off a thread that could have continued
            // spends one unit of the preemption budget.
            if chosen != p && inner.threads[p].state == ThreadState::Runnable {
                inner.preemptions += 1;
            }
        }
        inner.active = Some(chosen);
        self.turn.notify_all();
    }

    /// The universal scheduling point: restate the calling thread
    /// (`None` = stay runnable, i.e. a yield; `Some` = block), pick a
    /// successor, and wait for the turn token to come back.
    pub(crate) fn switch(&self, me: usize, block_on: Option<(usize, BlockKind)>) {
        let mut inner = lock_inner(self);
        if inner.aborting {
            drop(inner);
            panic_abort();
        }
        inner.threads[me].state = match block_on {
            None => ThreadState::Runnable,
            Some((on, kind)) => ThreadState::Blocked { on, kind },
        };
        self.pick_next(&mut inner);
        loop {
            if inner.aborting {
                drop(inner);
                panic_abort();
            }
            if inner.active == Some(me) {
                return;
            }
            inner = self
                .turn
                .wait(inner)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Wakes every thread blocked on (`on`, `kind`). The woken threads
    /// become runnable but do not run until scheduled.
    pub(crate) fn wake_all(&self, on: usize, kind: BlockKind) {
        let mut inner = lock_inner(self);
        for t in &mut inner.threads {
            if t.state == (ThreadState::Blocked { on, kind }) {
                t.state = ThreadState::Runnable;
            }
        }
    }

    /// Wakes the lowest-id thread blocked on (`on`, `kind`) — the
    /// deterministic stand-in for "some waiter". Returns whether one
    /// was found.
    pub(crate) fn wake_one(&self, on: usize, kind: BlockKind) -> bool {
        let mut inner = lock_inner(self);
        for t in &mut inner.threads {
            if t.state == (ThreadState::Blocked { on, kind }) {
                t.state = ThreadState::Runnable;
                return true;
            }
        }
        false
    }

    /// Registers a new model thread (runnable, not yet scheduled) and
    /// returns its id. Called by the spawning thread, which keeps the
    /// turn token.
    pub(crate) fn register_thread(&self) -> usize {
        let mut inner = lock_inner(self);
        inner.threads.push(ThreadSlot {
            state: ThreadState::Runnable,
            unpark_permit: false,
        });
        inner.running += 1;
        inner.threads.len() - 1
    }

    /// Whether `id` has finished (join fast-path). Because only the
    /// calling thread runs, the answer cannot change before the caller's
    /// next scheduling point.
    pub(crate) fn is_finished(&self, id: usize) -> bool {
        lock_inner(self).threads[id].state == ThreadState::Finished
    }

    /// `park` support: consumes the pending unpark permit if present.
    pub(crate) fn take_unpark_permit(&self, me: usize) -> bool {
        let mut inner = lock_inner(self);
        let had = inner.threads[me].unpark_permit;
        inner.threads[me].unpark_permit = false;
        had
    }

    /// `unpark` support: wakes a parked thread or banks the permit.
    pub(crate) fn unpark(&self, target: usize) {
        let mut inner = lock_inner(self);
        if inner.threads[target].state
            == (ThreadState::Blocked {
                on: target,
                kind: BlockKind::Park,
            })
        {
            inner.threads[target].state = ThreadState::Runnable;
        } else {
            inner.threads[target].unpark_permit = true;
        }
    }

    /// Marks `id` finished, wakes its joiners, records a panic as the
    /// execution's failure, and passes the turn on.
    fn finish_thread(&self, id: usize, panic_msg: Option<String>) {
        let mut inner = lock_inner(self);
        inner.threads[id].state = ThreadState::Finished;
        inner.running -= 1;
        for t in &mut inner.threads {
            if t.state
                == (ThreadState::Blocked {
                    on: id,
                    kind: BlockKind::Join,
                })
            {
                t.state = ThreadState::Runnable;
            }
        }
        if let Some(msg) = panic_msg {
            self.fail_locked(&mut inner, format!("thread {id} panicked: {msg}"));
        }
        if inner.running == 0 {
            inner.active = None;
            self.driver.notify_all();
            self.turn.notify_all();
        } else if !inner.aborting {
            self.pick_next(&mut inner);
        }
    }
}

/// A yield: a scheduling point where the calling thread stays runnable.
pub(crate) fn yield_point(exec: &Arc<Execution>, me: usize) {
    exec.switch(me, None);
}

/// Blocks the calling thread on (`on`, `kind`) until woken *and*
/// rescheduled.
pub(crate) fn block(exec: &Arc<Execution>, me: usize, on: usize, kind: BlockKind) {
    exec.switch(me, Some((on, kind)));
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> Option<String> {
    if payload.is::<Abort>() {
        return None;
    }
    Some(match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(payload) => match payload.downcast::<&'static str>() {
            Ok(s) => (*s).to_string(),
            Err(_) => "<non-string panic payload>".to_string(),
        },
    })
}

/// The body every model OS thread runs: install the thread-local
/// context, wait for the first turn, run the user closure, tear down.
pub(crate) fn run_thread(exec: Arc<Execution>, id: usize, body: impl FnOnce()) {
    CURRENT.with(|c| *c.borrow_mut() = Some((exec.clone(), id)));
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        // Wait for the first turn inside the unwind guard so an abort
        // while queued still reaches finish_thread.
        {
            let mut inner = lock_inner(&exec);
            loop {
                if inner.aborting {
                    drop(inner);
                    panic_abort();
                }
                if inner.active == Some(id) {
                    break;
                }
                inner = exec
                    .turn
                    .wait(inner)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }
        body();
    }));
    let panic_msg = match outcome {
        Ok(()) => None,
        Err(payload) => panic_message(payload),
    };
    exec.finish_thread(id, panic_msg);
    CURRENT.with(|c| *c.borrow_mut() = None);
}

/// Used by `thread::spawn` to hand the spawned closure its context.
pub(crate) fn spawn_model_thread(
    exec: &Arc<Execution>,
    body: impl FnOnce() + Send + 'static,
) -> usize {
    let id = exec.register_thread();
    let exec2 = exec.clone();
    std::thread::spawn(move || run_thread(exec2, id, body));
    id
}

struct Outcome {
    failure: Option<String>,
    choices: Vec<Choice>,
}

fn run_one(
    f: &Arc<dyn Fn() + Send + Sync>,
    prefix: Vec<Choice>,
    max_branches: usize,
    max_preemptions: usize,
) -> Outcome {
    let exec = Arc::new(Execution::new(prefix, max_branches, max_preemptions));
    let exec2 = exec.clone();
    let f2 = f.clone();
    let root = std::thread::spawn(move || run_thread(exec2, 0, move || f2()));
    let outcome = {
        let mut inner = lock_inner(&exec);
        while inner.running > 0 {
            inner = exec
                .driver
                .wait(inner)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        Outcome {
            failure: inner.failure.clone(),
            choices: inner.choices.clone(),
        }
    };
    let _ = root.join();
    outcome
}

/// A seed names a schedule completely: the preemption bound it was
/// explored under (`p<k>:` prefix; absent = unbounded) plus the
/// dash-separated branch choices. The bound is part of the seed because
/// it decides *where* branches occur — replaying bound-2 choices under
/// a different bound would desynchronise the cursor.
fn seed_of(bound: usize, choices: &[Choice]) -> String {
    let choices = choices
        .iter()
        .map(|c| c.taken.to_string())
        .collect::<Vec<_>>()
        .join("-");
    if bound == usize::MAX {
        choices
    } else {
        format!("p{bound}:{choices}")
    }
}

fn parse_seed(seed: &str) -> (usize, Vec<Choice>) {
    let (bound, choices) = match seed.strip_prefix('p').and_then(|rest| rest.split_once(':')) {
        Some((bound, choices)) => (
            bound
                .trim()
                .parse()
                .unwrap_or_else(|_| panic!("malformed loomlite seed bound {bound:?}")),
            choices,
        ),
        None => (usize::MAX, seed),
    };
    let choices = choices
        .split('-')
        .filter(|part| !part.is_empty())
        .map(|part| Choice {
            taken: part
                .trim()
                .parse()
                .unwrap_or_else(|_| panic!("malformed loomlite seed component {part:?}")),
            // Sentinel: the real option count is recomputed (and
            // validated against `taken`) when the branch replays.
            options: usize::MAX,
        })
        .collect();
    (bound, choices)
}

/// Outcome of a completed (non-failing) exploration.
#[derive(Debug, Clone, Copy)]
pub struct Report {
    /// Schedules executed.
    pub schedules: usize,
    /// Whether the whole schedule space *within the preemption bound*
    /// was exhausted (`false` means the [`Builder::max_schedules`] cap
    /// stopped the search).
    pub complete: bool,
}

/// Exploration configuration. The defaults exhaust small models (2–3
/// threads, a handful of sync operations each) in well under a second.
#[derive(Debug, Clone, Copy)]
pub struct Builder {
    max_schedules: usize,
    max_branches: usize,
    max_preemptions: usize,
}

impl Default for Builder {
    fn default() -> Self {
        Self {
            max_schedules: 100_000,
            max_branches: 10_000,
            max_preemptions: 2,
        }
    }
}

impl Builder {
    /// A builder with the default bounds.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps how many schedules the DFS may execute before giving up
    /// (reported via [`Report::complete`]).
    #[must_use]
    pub fn max_schedules(mut self, n: usize) -> Self {
        self.max_schedules = n;
        self
    }

    /// Caps scheduling decisions *within* one schedule; exceeding it is
    /// reported as a failure (it means the model diverges).
    #[must_use]
    pub fn max_branches(mut self, n: usize) -> Self {
        self.max_branches = n;
        self
    }

    /// Caps *preemptions* per schedule (default 2): switches away from
    /// a thread that could have kept running. Forced switches — the
    /// active thread blocked or finished — are always free, so every
    /// blocking handshake is still fully explored. Empirically (CHESS)
    /// almost all interleaving bugs manifest within two preemptions,
    /// and the bound is what keeps channel-heavy models exhaustible.
    /// `usize::MAX` disables the bound.
    #[must_use]
    pub fn max_preemptions(mut self, n: usize) -> Self {
        self.max_preemptions = n;
        self
    }

    /// Explores interleavings of `f` depth-first until the space (within
    /// the preemption bound) is exhausted or
    /// [`max_schedules`](Self::max_schedules) is hit.
    ///
    /// # Panics
    ///
    /// Panics on the first failing schedule — assertion failure, panic,
    /// or deadlock — with a message carrying the replay seed (also
    /// printed to stderr).
    pub fn check<F>(&self, f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
        let mut prefix: Vec<Choice> = Vec::new();
        let mut schedules = 0usize;
        loop {
            let outcome = run_one(&f, prefix, self.max_branches, self.max_preemptions);
            schedules += 1;
            if let Some(msg) = outcome.failure {
                let seed = seed_of(self.max_preemptions, &outcome.choices);
                eprintln!("loomlite: schedule {schedules} failed; replay with seed \"{seed}\"");
                panic!("loomlite: model failure [seed {seed}]: {msg}");
            }
            if schedules >= self.max_schedules {
                return Report {
                    schedules,
                    complete: false,
                };
            }
            // Odometer backtracking: bump the deepest branch that still
            // has untried options, dropping exhausted suffixes.
            let mut next = outcome.choices;
            loop {
                match next.last_mut() {
                    None => {
                        return Report {
                            schedules,
                            complete: true,
                        }
                    }
                    Some(last) if last.taken + 1 < last.options => {
                        last.taken += 1;
                        break;
                    }
                    Some(_) => {
                        next.pop();
                    }
                }
            }
            prefix = next;
        }
    }
}

/// Explores interleavings of `f` with the default [`Builder`] bounds.
///
/// # Panics
///
/// Panics on the first failing schedule, with a replay seed in the
/// message.
pub fn model<F>(f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::new().check(f)
}

/// Re-runs `f` under exactly the schedule a failure message named —
/// `seed` is the dash-separated choice list from
/// `"loomlite: model failure [seed ...]"`.
///
/// # Panics
///
/// Panics (with the same failure text) if the replayed schedule fails,
/// and on a malformed or stale seed. Returns normally if the schedule
/// passes.
pub fn replay<F>(seed: &str, f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    let (bound, choices) = parse_seed(seed);
    let outcome = run_one(&f, choices, Builder::default().max_branches, bound);
    if let Some(msg) = outcome.failure {
        panic!(
            "loomlite: model failure [seed {}]: {msg}",
            seed_of(bound, &outcome.choices)
        );
    }
}
