//! # loomlite
//!
//! A minimal [loom](https://github.com/tokio-rs/loom)-style concurrency
//! model checker, vendored for this workspace (no crates.io access).
//!
//! The idea: a test body spawns threads through [`thread::spawn`] and
//! synchronises through the shim types in [`sync`]. Under
//! [`model`]/[`Builder::check`] those shims hand control to a
//! cooperative scheduler that runs exactly **one** thread at a time and
//! treats every synchronisation operation as a *scheduling point*. The
//! checker then enumerates thread interleavings by bounded depth-first
//! search over the scheduling decisions, re-running the test body once
//! per schedule, and reports the first schedule that panics, fails an
//! assertion, or deadlocks.
//!
//! Every failure message carries a **seed** — the dash-separated list of
//! branch choices that produced the failing schedule. [`replay`] re-runs
//! exactly that schedule, so a counterexample found by the (possibly
//! hours-long) exploration reproduces in milliseconds under a debugger.
//!
//! ## Passthrough mode
//!
//! Outside an active model execution the shims defer to their `std`
//! equivalents, so code routed through loomlite under a `model` cfg
//! behaves identically to std when a regular test (or the release
//! binary) exercises it. This is what lets the vendored crossbeam and
//! the engine's hot-state structures compile against the shims
//! unconditionally once the `model` feature is on.
//!
//! ## Scope and caveats
//!
//! - Atomics are modelled with **sequentially consistent** semantics
//!   regardless of the `Ordering` argument: loomlite explores thread
//!   interleavings, not weak-memory reorderings. It therefore finds
//!   lost updates, broken handshakes, deadlocks and lost/duplicated
//!   messages, but not `Relaxed`-ordering-specific bugs.
//! - Exploration is bounded by [`Builder::max_schedules`],
//!   [`Builder::max_branches`] and a CHESS-style preemption bound
//!   ([`Builder::max_preemptions`], default 2): schedules with more
//!   than that many *optional* context switches are pruned, while
//!   forced switches (a thread blocking) stay free. A [`Report`] says
//!   whether the space within the bounds was exhausted. Seeds embed
//!   the preemption bound (`p2:…`), so replay is exact.
//! - The test body must be deterministic apart from scheduling (no wall
//!   clock, no OS randomness) or seeds will not replay.
//!
//! ## Example
//!
//! ```
//! use loomlite::sync::Mutex;
//! use loomlite::{model, thread};
//! use std::sync::Arc;
//!
//! let report = model(|| {
//!     let counter = Arc::new(Mutex::new(0u32));
//!     let handles: Vec<_> = (0..2)
//!         .map(|_| {
//!             let counter = counter.clone();
//!             thread::spawn(move || {
//!                 let mut guard = counter.lock().unwrap();
//!                 *guard += 1;
//!             })
//!         })
//!         .collect();
//!     for handle in handles {
//!         handle.join().unwrap();
//!     }
//!     assert_eq!(*counter.lock().unwrap(), 2);
//! });
//! assert!(report.complete, "two-thread mutex space is tiny");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod exec;
pub mod sync;
pub mod thread;

pub use exec::{model, replay, Builder, Report};

/// Whether the calling thread is running inside a model execution.
///
/// Code shared between model and passthrough builds uses this to gate
/// behaviour that only makes sense under the virtual scheduler (e.g.
/// the vendored crossbeam treats timed receives as blocking ones in
/// model executions — an un-timed model has no deadlines).
#[must_use]
pub fn is_model_active() -> bool {
    exec::current().is_some()
}
