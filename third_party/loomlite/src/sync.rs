//! Shim synchronisation primitives: `std`-shaped `Mutex`, `Condvar` and
//! atomics that insert scheduling points under a model execution and
//! defer to `std` otherwise (passthrough mode).
//!
//! Signatures mirror `std::sync` closely enough that code written
//! against `std` compiles unchanged after swapping the import — the
//! property the vendored crossbeam's `model` feature relies on.

use crate::exec::{self, BlockKind};
use std::sync::{Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};
pub use std::sync::{LockResult, PoisonError};

/// A mutual-exclusion lock. In a model execution, acquisition is a
/// scheduling point and contention is resolved by the explorer; in
/// passthrough mode it is a plain `std::sync::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    data: StdMutex<T>,
    /// Model-side ownership (the thread id holding the lock). Only
    /// consulted inside a model execution; the std lock above is then
    /// uncontended by construction (one thread runs at a time).
    owner: StdMutex<Option<usize>>,
}

/// RAII guard for [`Mutex`]; releases (and wakes model waiters) on drop.
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    inner: Option<StdMutexGuard<'a, T>>,
    model: bool,
}

impl<T> Mutex<T> {
    /// A new unlocked mutex around `value`.
    pub const fn new(value: T) -> Self {
        Self {
            data: StdMutex::new(value),
            owner: StdMutex::new(None),
        }
    }

    fn key(&self) -> usize {
        std::ptr::from_ref(self) as usize
    }

    fn data_guard(&self) -> (StdMutexGuard<'_, T>, bool) {
        match self.data.try_lock() {
            Ok(guard) => (guard, false),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => (poisoned.into_inner(), true),
            Err(std::sync::TryLockError::WouldBlock) => {
                unreachable!("loomlite invariant: model-owned mutex data contended")
            }
        }
    }

    /// Acquires the lock, blocking (in model mode: descheduling) until
    /// available.
    ///
    /// # Errors
    ///
    /// Mirrors `std`: poisoned in passthrough mode when a holder
    /// panicked. Model executions abort the whole schedule on panic
    /// instead, so model-mode acquisition never observes poison from a
    /// *model* thread.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match exec::current() {
            None => match self.data.lock() {
                Ok(inner) => Ok(MutexGuard {
                    lock: self,
                    inner: Some(inner),
                    model: false,
                }),
                Err(poisoned) => Err(PoisonError::new(MutexGuard {
                    lock: self,
                    inner: Some(poisoned.into_inner()),
                    model: false,
                })),
            },
            Some((execution, me)) => {
                loop {
                    exec::yield_point(&execution, me);
                    let mut owner = self.owner.lock().unwrap_or_else(PoisonError::into_inner);
                    if owner.is_none() {
                        *owner = Some(me);
                        break;
                    }
                    drop(owner);
                    exec::block(&execution, me, self.key(), BlockKind::Mutex);
                }
                let (inner, poisoned) = self.data_guard();
                let guard = MutexGuard {
                    lock: self,
                    inner: Some(inner),
                    model: true,
                };
                if poisoned {
                    Err(PoisonError::new(guard))
                } else {
                    Ok(guard)
                }
            }
        }
    }

    /// Consumes the mutex, returning the inner value.
    ///
    /// # Errors
    ///
    /// Poisoned when a (passthrough) holder panicked.
    pub fn into_inner(self) -> LockResult<T> {
        self.data.into_inner()
    }
}

impl<T> MutexGuard<'_, T> {
    /// Releases the model-side ownership and wakes waiters, leaving the
    /// guard inert. Used by [`Condvar::wait`] and `Drop`.
    fn release(&mut self) {
        self.inner = None;
        if self.model {
            self.model = false;
            let mut owner = self
                .lock
                .owner
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            *owner = None;
            drop(owner);
            if let Some((execution, _)) = exec::current() {
                execution.wake_all(self.lock.key(), BlockKind::Mutex);
            }
        }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.release();
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner
            .as_ref()
            .expect("loomlite: guard used after release")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_mut()
            .expect("loomlite: guard used after release")
    }
}

/// Result of [`Condvar::wait_timeout`] (std's equivalent has no public
/// constructor, so the shim defines its own).
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended by timeout rather than notification.
    #[must_use]
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable over the shim [`Mutex`]. Model-mode
/// notification deterministically wakes the lowest-id waiter
/// (`notify_one`) or all waiters (`notify_all`).
#[derive(Debug, Default)]
pub struct Condvar {
    inner: StdCondvar,
}

impl Condvar {
    /// A new condvar.
    pub const fn new() -> Self {
        Self {
            inner: StdCondvar::new(),
        }
    }

    fn key(&self) -> usize {
        std::ptr::from_ref(self) as usize
    }

    /// Atomically releases `guard` and waits for a notification, then
    /// reacquires the lock.
    ///
    /// # Errors
    ///
    /// Mirrors `std` poison semantics in passthrough mode.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let lock = guard.lock;
        match exec::current() {
            None => {
                let std_guard = guard
                    .inner
                    .take()
                    .expect("loomlite: guard used after release");
                drop(guard);
                match self.inner.wait(std_guard) {
                    Ok(inner) => Ok(MutexGuard {
                        lock,
                        inner: Some(inner),
                        model: false,
                    }),
                    Err(poisoned) => Err(PoisonError::new(MutexGuard {
                        lock,
                        inner: Some(poisoned.into_inner()),
                        model: false,
                    })),
                }
            }
            Some((execution, me)) => {
                guard.release();
                drop(guard);
                exec::block(&execution, me, self.key(), BlockKind::Condvar);
                lock.lock()
            }
        }
    }

    /// [`wait`](Self::wait) with a timeout. In model executions there
    /// is no wall clock: the wait is treated as timing out after a
    /// single scheduling point (callers loop on their predicate, so
    /// this only trades blocking for polling in model runs).
    ///
    /// # Errors
    ///
    /// Mirrors `std` poison semantics in passthrough mode.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: std::time::Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        let lock = guard.lock;
        match exec::current() {
            None => {
                let mut guard = guard;
                let std_guard = guard
                    .inner
                    .take()
                    .expect("loomlite: guard used after release");
                drop(guard);
                match self.inner.wait_timeout(std_guard, timeout) {
                    Ok((inner, timed_out)) => Ok((
                        MutexGuard {
                            lock,
                            inner: Some(inner),
                            model: false,
                        },
                        WaitTimeoutResult(timed_out.timed_out()),
                    )),
                    Err(poisoned) => {
                        let (inner, timed_out) = poisoned.into_inner();
                        Err(PoisonError::new((
                            MutexGuard {
                                lock,
                                inner: Some(inner),
                                model: false,
                            },
                            WaitTimeoutResult(timed_out.timed_out()),
                        )))
                    }
                }
            }
            Some((execution, me)) => {
                let mut guard = guard;
                guard.release();
                drop(guard);
                exec::yield_point(&execution, me);
                match lock.lock() {
                    Ok(guard) => Ok((guard, WaitTimeoutResult(true))),
                    Err(poisoned) => Err(PoisonError::new((
                        poisoned.into_inner(),
                        WaitTimeoutResult(true),
                    ))),
                }
            }
        }
    }

    /// Wakes one waiter (model: the lowest-id one, deterministically).
    pub fn notify_one(&self) {
        match exec::current() {
            None => self.inner.notify_one(),
            Some((execution, _)) => {
                execution.wake_one(self.key(), BlockKind::Condvar);
            }
        }
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        match exec::current() {
            None => self.inner.notify_all(),
            Some((execution, _)) => {
                execution.wake_all(self.key(), BlockKind::Condvar);
            }
        }
    }
}

/// Shim atomics: every operation is a scheduling point in a model
/// execution. Semantics are sequentially consistent regardless of the
/// `Ordering` argument (see the crate docs for scope).
pub mod atomic {
    use crate::exec;
    pub use std::sync::atomic::Ordering;

    macro_rules! shim_atomic {
        ($(#[$doc:meta])* $name:ident, $std:ident, $value:ty) => {
            $(#[$doc])*
            #[derive(Debug, Default)]
            pub struct $name(std::sync::atomic::$std);

            impl $name {
                /// A new atomic holding `value`.
                pub const fn new(value: $value) -> Self {
                    Self(std::sync::atomic::$std::new(value))
                }

                fn sched(&self) {
                    if let Some((execution, me)) = exec::current() {
                        exec::yield_point(&execution, me);
                    }
                }

                /// Loads the value (scheduling point in model mode).
                pub fn load(&self, order: Ordering) -> $value {
                    self.sched();
                    self.0.load(order)
                }

                /// Stores `value` (scheduling point in model mode).
                pub fn store(&self, value: $value, order: Ordering) {
                    self.sched();
                    self.0.store(value, order);
                }

                /// Swaps in `value`, returning the previous value.
                pub fn swap(&self, value: $value, order: Ordering) -> $value {
                    self.sched();
                    self.0.swap(value, order)
                }

                /// Compare-and-exchange; the read-modify-write itself is
                /// atomic, the scheduling point sits before it.
                pub fn compare_exchange(
                    &self,
                    current: $value,
                    new: $value,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$value, $value> {
                    self.sched();
                    self.0.compare_exchange(current, new, success, failure)
                }
            }
        };
    }

    macro_rules! shim_atomic_arith {
        ($name:ident, $value:ty) => {
            impl $name {
                /// Adds `value`, returning the previous value.
                pub fn fetch_add(&self, value: $value, order: Ordering) -> $value {
                    self.sched();
                    self.0.fetch_add(value, order)
                }

                /// Subtracts `value`, returning the previous value.
                pub fn fetch_sub(&self, value: $value, order: Ordering) -> $value {
                    self.sched();
                    self.0.fetch_sub(value, order)
                }

                /// Returns the maximum of the current value and `value`,
                /// storing it.
                pub fn fetch_max(&self, value: $value, order: Ordering) -> $value {
                    self.sched();
                    self.0.fetch_max(value, order)
                }
            }
        };
    }

    shim_atomic!(
        /// Shim over `std::sync::atomic::AtomicBool`.
        AtomicBool,
        AtomicBool,
        bool
    );
    shim_atomic!(
        /// Shim over `std::sync::atomic::AtomicU8`.
        AtomicU8,
        AtomicU8,
        u8
    );
    shim_atomic!(
        /// Shim over `std::sync::atomic::AtomicU64`.
        AtomicU64,
        AtomicU64,
        u64
    );
    shim_atomic!(
        /// Shim over `std::sync::atomic::AtomicUsize`.
        AtomicUsize,
        AtomicUsize,
        usize
    );
    shim_atomic_arith!(AtomicU64, u64);
    shim_atomic_arith!(AtomicUsize, usize);
}
