//! Vendored stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this crate
//! re-implements the (tiny) slice of the rand 0.9 API the workspace
//! uses: [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`],
//! [`Rng::random`] for `f32`/`f64`, and [`distr::Uniform`] sampling.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a
//! high-quality, deterministic PRNG. It is **not** the upstream StdRng
//! (ChaCha12), so absolute random streams differ from crates.io builds,
//! but every consumer in this workspace only relies on determinism for a
//! fixed seed, which this provides.

#![forbid(unsafe_code)]

/// Seedable random generators (stand-in for `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values producible by [`Rng::random`] (stand-in for
/// `rand::distr::StandardUniform` sampling).
pub trait Standard: Sized {
    /// Draws one value from the standard distribution for the type.
    fn draw(rng: &mut dyn RngCore) -> Self;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing generator methods (stand-in for `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws one value of type `T` (uniform in `[0, 1)` for floats).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }
}

impl<R: RngCore> Rng for R {}

impl Standard for f64 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl Standard for u64 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for
    /// `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Distributions (stand-in for `rand::distr`).
pub mod distr {
    use super::RngCore;

    /// Error from invalid distribution parameters.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Error;

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "invalid distribution parameters")
        }
    }

    impl std::error::Error for Error {}

    /// Types samplable from a distribution.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore>(&self, rng: &mut R) -> T;
    }

    /// Types [`Uniform`] can range over.
    pub trait SampleUniform: Copy + PartialOrd {
        /// Whether the value is finite (uniform bounds must be).
        fn finite(self) -> bool;
        /// Linear interpolation `low + unit * (high - low)`.
        fn lerp(low: Self, high: Self, unit: f64) -> Self;
    }

    impl SampleUniform for f32 {
        fn finite(self) -> bool {
            self.is_finite()
        }

        fn lerp(low: Self, high: Self, unit: f64) -> Self {
            low + unit as f32 * (high - low)
        }
    }

    impl SampleUniform for f64 {
        fn finite(self) -> bool {
            self.is_finite()
        }

        fn lerp(low: Self, high: Self, unit: f64) -> Self {
            low + unit * (high - low)
        }
    }

    /// Uniform distribution over `[low, high)`.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Uniform<T> {
        low: T,
        high: T,
    }

    impl<T: SampleUniform> Uniform<T> {
        /// Builds a uniform distribution over `[low, high)`.
        ///
        /// # Errors
        ///
        /// Fails when the bounds are not finite or out of order.
        pub fn new(low: T, high: T) -> Result<Self, Error> {
            if low >= high || !low.finite() || !high.finite() {
                return Err(Error);
            }
            Ok(Self { low, high })
        }
    }

    impl<T: SampleUniform> Distribution<T> for Uniform<T> {
        fn sample<R: RngCore>(&self, rng: &mut R) -> T {
            let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            T::lerp(self.low, self.high, unit)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{distr::Distribution, distr::Uniform, Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<f64>(), b.random::<f64>());
        }
    }

    #[test]
    fn floats_land_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn uniform_respects_bounds() {
        let dist = Uniform::new(-1.0f32, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = dist.sample(&mut rng);
            assert!((-1.0..1.0).contains(&x));
        }
        assert!(Uniform::new(1.0f32, -1.0).is_err());
    }
}
