//! No-op derive macros backing the vendored `serde` stand-in.
//!
//! The workspace only *derives* `Serialize`/`Deserialize` to mark wire
//! types; nothing serializes through serde at build time (the real codec
//! is the hand-rolled wire format in `d3-engine`). These derives
//! therefore expand to nothing, keeping the annotations compiling until
//! the real `serde` can be vendored or fetched.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
