//! Vendored stand-in for the `serde` crate.
//!
//! The workspace derives `Serialize`/`Deserialize` on a handful of
//! simnet config types but never serializes through serde at build time
//! (the wire codec in `d3-engine` is hand-rolled). With no registry
//! access, this stub keeps those derives compiling by expanding them to
//! nothing; swap it for the real `serde` by editing the workspace
//! `Cargo.toml` once a registry is reachable.

#![forbid(unsafe_code)]

pub use serde_derive_stub::{Deserialize, Serialize};
