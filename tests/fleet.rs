//! End-to-end tests of the multi-tenant fleet controller and the
//! measured-bandwidth prober — the fleet-scope half of the adaptation
//! loop.
//!
//! The headline guarantees pinned here:
//!
//! - two co-resident models under a scripted link-degradation trace
//!   reach a **stable joint plan** (no plan flapping: at most one
//!   reconfiguration per tenant after the drift settles), with
//!   per-tenant **losslessness** (every submitted frame returned, in
//!   order, bit-identical to solo single-node runs),
//! - priority eviction reaches the victim's *session* through the fleet
//!   mailbox and picks the lower-weight tenant,
//! - a single-tenant fleet is bit-identical to the existing
//!   `attach_controller` path,
//! - the bandwidth prober's measured `Observation::Network` tracks a
//!   shaped (injected-bandwidth) link within tolerance, and a controller
//!   fed by the prober makes the same decision as one fed the injected
//!   observation directly.

use d3_core::{
    AdaptEvent, D3Runtime, D3System, DriftMonitor, FleetOptions, HysteresisLocal, LinkShaping,
    ModelOptions, NetworkCondition, Observation, ProbeOptions, StreamOptions,
};
use d3_model::{zoo, Executor};
use d3_partition::EvenSplit;
use d3_simnet::LinkRates;
use d3_tensor::{max_abs_diff, Tensor};
use d3_test_support::{
    chain_graph, frame_burst, network_rates, FakeClock, ScriptedObservations, SEED,
};
use std::sync::Arc;
use std::time::Duration;

/// Two even-split tenants in one runtime (distinct weight seeds so the
/// models are genuinely different).
fn two_tenant_runtime() -> D3Runtime {
    let mut rt = D3Runtime::new();
    for (name, seed) in [("a", SEED), ("b", SEED + 1)] {
        rt.register(
            name,
            chain_graph(),
            ModelOptions::new()
                .partitioner(EvenSplit)
                .without_vsm()
                .seed(seed),
        )
        .unwrap();
    }
    rt
}

#[test]
fn two_tenant_contention_converges_without_oscillation() {
    let g = Arc::new(chain_graph());
    let mut rt = two_tenant_runtime();
    rt.attach_fleet_controller(
        Box::new(HysteresisLocal(DriftMonitor::default())),
        &[("a", 2.0), ("b", 1.0)],
    )
    .unwrap();
    let mut sa = rt
        .open_stream("a", StreamOptions::new().capacity(16))
        .unwrap();
    let mut sb = rt
        .open_stream("b", StreamOptions::new().capacity(16))
        .unwrap();
    assert_eq!(sa.fleet_tenant(), Some("a"));
    let exec_a = Executor::new(&g, SEED);
    let exec_b = Executor::new(&g, SEED + 1);

    // The scripted drift: the backbone degrades 31.53 → 3 Mbps over 4
    // steps, then holds for 6 — both tenants see every step. The trace
    // replays against a FakeClock (one second per step), so the script's
    // timeline is deterministic and assertable.
    let ramp = 4usize;
    let mut trace = ScriptedObservations::degradation(31.53, 3.0, ramp, 6);
    let steps = trace.len();
    let inputs_a = frame_burst(steps, (3, 16, 16), 2000);
    let inputs_b = frame_burst(steps, (3, 16, 16), 3000);
    let clock = FakeClock::new();
    let mut at_settle = None;
    trace.play(&clock, Duration::from_secs(1), |step, obs| {
        let _ = sa.observe(obs);
        let _ = sb.observe(obs);
        // Frames keep flowing mid-drift on both tenants.
        sa.submit_blocking(&inputs_a[step]).unwrap();
        sb.submit_blocking(&inputs_b[step]).unwrap();
        let (ida, outa) = sa.recv().unwrap();
        let (idb, outb) = sb.recv().unwrap();
        assert_eq!(ida.0 as usize, step, "tenant a out of order");
        assert_eq!(idb.0 as usize, step, "tenant b out of order");
        assert_eq!(
            max_abs_diff(&outa, &exec_a.run(&inputs_a[step])),
            Some(0.0),
            "tenant a frame {step} diverged from its solo run"
        );
        assert_eq!(
            max_abs_diff(&outb, &exec_b.run(&inputs_b[step])),
            Some(0.0),
            "tenant b frame {step} diverged from its solo run"
        );
        if step + 1 == ramp {
            at_settle = Some((sa.reconfigurations(), sb.reconfigurations()));
        }
    });
    assert_eq!(
        clock.now(),
        Duration::from_secs(steps as u64),
        "the scripted timeline advanced deterministically"
    );
    // The drift made at least one tenant actually repartition.
    assert!(
        sa.reconfigurations() + sb.reconfigurations() >= 1,
        "a 10x backbone collapse must repartition someone"
    );
    // Stability: once the trace settles, at most one further
    // reconfiguration per tenant — no oscillation.
    let (settle_a, settle_b) = at_settle.expect("trace covers the ramp");
    assert!(
        sa.reconfigurations() - settle_a <= 1,
        "tenant a flapped after convergence: {} -> {}",
        settle_a,
        sa.reconfigurations()
    );
    assert!(
        sb.reconfigurations() - settle_b <= 1,
        "tenant b flapped after convergence: {} -> {}",
        settle_b,
        sb.reconfigurations()
    );
    // Zero drops on both tenants.
    let (ra, rb) = (sa.close(), sb.close());
    assert_eq!(ra.measured.frames as u64, ra.submitted, "tenant a dropped");
    assert_eq!(rb.measured.frames as u64, rb.submitted, "tenant b dropped");
}

#[test]
fn single_tenant_fleet_is_bit_identical_to_attach_controller() {
    let g = Arc::new(chain_graph());
    let build_rt = || {
        let mut rt = D3Runtime::new();
        rt.register(
            "m",
            chain_graph(),
            ModelOptions::new()
                .partitioner(EvenSplit)
                .without_vsm()
                .seed(SEED),
        )
        .unwrap();
        rt
    };
    let mut solo_rt = build_rt();
    solo_rt
        .attach_controller("m", Box::new(HysteresisLocal(DriftMonitor::default())))
        .unwrap();
    let mut fleet_rt = build_rt();
    fleet_rt
        .attach_fleet_controller(
            Box::new(HysteresisLocal(DriftMonitor::default())),
            &[("m", 1.0)],
        )
        .unwrap();
    let mut solo = solo_rt.open_stream("m", StreamOptions::new()).unwrap();
    let mut fleet = fleet_rt.open_stream("m", StreamOptions::new()).unwrap();
    let exec = Executor::new(&g, SEED);

    let trace = ScriptedObservations::bandwidth_trace(&[31.53, 6.0, 6.2, 45.0, 2.0, 31.53, 3.0]);
    for (step, batch) in trace.enumerate() {
        for obs in &batch {
            let solo_events = solo.observe(obs);
            let fleet_events = fleet.observe(obs);
            assert_eq!(
                solo_events.len(),
                fleet_events.len(),
                "step {step}: decision diverged"
            );
        }
        assert_eq!(
            solo.assignment().tiers(),
            fleet.assignment().tiers(),
            "step {step}: plans diverged"
        );
        // Both streams serve losslessly at every point of the trace.
        let input = Tensor::random(3, 16, 16, 4000 + step as u64);
        let expect = exec.run(&input);
        for session in [&solo, &fleet] {
            session.submit_blocking(&input).unwrap();
            let (_, got) = session.recv().unwrap();
            assert_eq!(max_abs_diff(&got, &expect), Some(0.0));
        }
    }
    assert_eq!(solo.reconfigurations(), fleet.reconfigurations());
    assert!(
        solo.reconfigurations() >= 1,
        "the trace must swap at least once"
    );
    let _ = (solo.close(), fleet.close());
}

#[test]
fn priority_eviction_reaches_the_victim_session() {
    let g = Arc::new(chain_graph());
    let mut rt = two_tenant_runtime();
    // A microscopic frame period guarantees any shared-tier load is an
    // overcommit, forcing the eviction path on the first repartition.
    rt.attach_fleet_controller_with(
        Box::new(HysteresisLocal(DriftMonitor::default())),
        &[("a", 2.0), ("b", 1.0)],
        FleetOptions::new().frame_period(1e-7).cooldown(0),
    )
    .unwrap();
    let mut hi = rt
        .open_stream("a", StreamOptions::new().capacity(16))
        .unwrap();
    let mut lo = rt
        .open_stream("b", StreamOptions::new().capacity(16))
        .unwrap();

    // The high-priority tenant's drift triggers; arbitration must queue
    // an eviction for the low-priority tenant.
    let events = hi.observe(&Observation::Network {
        net: NetworkCondition::custom_backbone(2.0),
    });
    assert!(
        events.iter().any(|e| matches!(e, AdaptEvent::Plan(_))),
        "the triggering tenant repartitions, got {events:?}"
    );
    {
        let fleet = rt.fleet_controller().unwrap().lock().unwrap();
        assert!(fleet.evictions >= 1, "overcommit must evict: {fleet:?}");
        // The victim (both shared tiers were overcommitted, so possibly
        // evicted from each in turn) is the low-weight tenant; the
        // high-priority caller is never evicted.
        assert!(
            fleet.plan_changes("b").unwrap() >= 1,
            "the victim is tenant b"
        );
        assert_eq!(
            fleet.plan_changes("a"),
            Some(1),
            "a only self-repartitioned"
        );
    }
    // The victim's session picks the coordinated updates up from its
    // mailbox and applies them mid-stream.
    assert_eq!(lo.reconfigurations(), 0, "not yet delivered");
    let delivered = lo.poll_fleet();
    assert!(
        !delivered.is_empty() && delivered.iter().all(|e| matches!(e, AdaptEvent::Plan(_))),
        "the eviction reaches the victim session, got {delivered:?}"
    );
    assert_eq!(lo.reconfigurations(), delivered.len() as u64);
    // Both tenants keep serving losslessly after the coordinated swap.
    let exec_a = Executor::new(&g, SEED);
    let exec_b = Executor::new(&g, SEED + 1);
    for (session, exec, seed) in [(&hi, &exec_a, 5000u64), (&lo, &exec_b, 6000)] {
        let input = Tensor::random(3, 16, 16, seed);
        session.submit_blocking(&input).unwrap();
        let (_, got) = session.recv().unwrap();
        assert_eq!(max_abs_diff(&got, &exec.run(&input)), Some(0.0));
    }
    let _ = (hi.close(), lo.close());
}

#[test]
fn prober_tracks_injected_bandwidth_within_tolerance() {
    // Shape (inject) known link bandwidths; the prober's measured
    // Network observations must track them. Measured rates sit at or
    // below the shaped value (queueing adds to wire time) but within
    // the same band — far from the Wi-Fi belief they start at.
    let mut rt = D3Runtime::new();
    rt.register(
        "m",
        chain_graph(),
        ModelOptions::new()
            .partitioner(EvenSplit)
            .without_vsm()
            .seed(SEED),
    )
    .unwrap();
    let session = rt
        .open_stream(
            "m",
            StreamOptions::new()
                .capacity(4)
                .telemetry_every(0)
                .shape_links(LinkShaping::links(8.0, 2.0))
                .probe(ProbeOptions::new().every(1).window(2)),
        )
        .unwrap();
    let tap = session.telemetry();
    for input in &frame_burst(10, (3, 16, 16), 7000) {
        session.submit_blocking(input).unwrap();
        let _ = session.recv().unwrap();
    }
    let rates = network_rates(&tap);
    assert!(!rates.is_empty(), "the prober never published");
    let last = rates.last().unwrap();
    assert!(
        last.device_edge_mbps > 8.0 * 0.35 && last.device_edge_mbps < 8.0 * 1.2,
        "device-edge estimate {} not near the injected 8 Mbps",
        last.device_edge_mbps
    );
    assert!(
        last.edge_cloud_mbps > 2.0 * 0.35 && last.edge_cloud_mbps < 2.0 * 1.2,
        "backbone estimate {} not near the injected 2 Mbps",
        last.edge_cloud_mbps
    );
    let _ = session.close();
}

#[test]
fn prober_driven_controller_matches_injected_baseline() {
    // The same (collapsed) backbone, seen two ways: (a) a live session
    // whose controller ingests the prober's *measured* observations via
    // adapt(), and (b) a baseline controller fed the injected condition
    // directly. Both must make the same decision — a full repartition
    // that strictly cuts backbone traffic. (Plan *identity* is not
    // asserted: the measured device-edge estimate legitimately includes
    // scheduling/queue time, so its exact value — and a marginal
    // vertex's tier — can differ from the injected ideal.)
    let shaped = LinkRates {
        device_edge_mbps: 84.95, // Wi-Fi LAN, so the measured d-e link matches the belief
        edge_cloud_mbps: 2.0,    // collapsed backbone
        device_cloud_mbps: 18.75,
    };
    let mut rt = D3Runtime::new();
    rt.register(
        "m",
        chain_graph(),
        ModelOptions::new()
            .partitioner(EvenSplit)
            .without_vsm()
            .seed(SEED),
    )
    .unwrap();
    rt.attach_controller("m", Box::new(HysteresisLocal(DriftMonitor::default())))
        .unwrap();
    let mut session = rt
        .open_stream(
            "m",
            StreamOptions::new()
                .capacity(4)
                .telemetry_every(0)
                .shape_links(LinkShaping::links(
                    shaped.device_edge_mbps,
                    shaped.edge_cloud_mbps,
                ))
                .probe(ProbeOptions::new().every(1).window(2)),
        )
        .unwrap();
    let mut events = Vec::new();
    for input in &frame_burst(12, (3, 16, 16), 8000) {
        session.submit_blocking(input).unwrap();
        let _ = session.recv().unwrap();
        events.extend(session.adapt());
    }
    assert!(
        events.iter().any(|e| matches!(e, AdaptEvent::Plan(_))),
        "the measured backbone collapse must repartition, got {events:?}"
    );
    assert!(session.reconfigurations() >= 1);

    // The injected-observation baseline on the same drift.
    let build_engine = || {
        D3System::builder(chain_graph())
            .partitioner(EvenSplit)
            .without_vsm()
            .seed(SEED)
            .build()
            .into_adaptive(DriftMonitor::default())
    };
    let start_backbone_bytes = build_engine().committed_link_bytes()[1];
    assert!(
        start_backbone_bytes > 0,
        "the even split must cross the backbone to begin with"
    );
    let mut baseline = build_engine();
    let update = baseline.ingest(&Observation::Network {
        net: NetworkCondition::Custom(shaped),
    });
    assert!(update.is_some(), "the injected collapse repartitions too");
    assert_eq!(baseline.full_updates, 1);
    // Decision parity: both controllers responded to the collapsed
    // backbone by strictly cutting the bytes their plan ships across it.
    let live = session.controller().unwrap();
    assert!(live.full_updates >= 1, "the measured collapse went unseen");
    for (who, bytes) in [
        ("measured-driven", live.committed_link_bytes()[1]),
        ("injected-driven", baseline.committed_link_bytes()[1]),
    ] {
        assert!(
            bytes < start_backbone_bytes,
            "{who} plan still ships {bytes} bytes over the collapsed backbone \
             (was {start_backbone_bytes})"
        );
    }
    let _ = session.close();
}

#[test]
fn fleet_attachment_errors_and_accessors_are_typed() {
    let mut rt = D3Runtime::new();
    rt.register("a", zoo::tiny_cnn(16), ModelOptions::new())
        .unwrap();
    let err = rt
        .attach_fleet_controller(
            Box::new(HysteresisLocal::default()),
            &[("a", 1.0), ("ghost", 1.0)],
        )
        .unwrap_err();
    assert_eq!(
        err,
        d3_core::ServeError::UnknownModel("ghost".into()),
        "unknown tenants are rejected"
    );
    assert!(rt.fleet_controller().is_none(), "failed attach leaves none");
    rt.attach_fleet_controller(Box::new(HysteresisLocal::default()), &[("a", 1.0)])
        .unwrap();
    assert!(rt.fleet_controller().is_some());
    // Non-tenant models keep the plain (controller-less) session path.
    rt.register("other", zoo::tiny_cnn(16), ModelOptions::new())
        .unwrap();
    let other = rt.open_stream("other", StreamOptions::new()).unwrap();
    assert!(other.fleet_tenant().is_none());
    let _ = other.close();
    assert!(rt.detach_fleet_controller().is_some());
    assert!(rt.detach_fleet_controller().is_none());
}
