//! Structural audit of the model zoo against published architectures —
//! the reproduction is only as good as its models.

use d3_model::{zoo, LayerKind, NodeId};
use d3_simnet::NodeProfile;

#[test]
fn alexnet_conv_channel_progression() {
    let g = zoo::alexnet(224);
    let convs: Vec<usize> = g
        .nodes()
        .iter()
        .filter_map(|n| match &n.kind {
            LayerKind::Conv { spec, .. } => Some(spec.out_c),
            _ => None,
        })
        .collect();
    assert_eq!(convs, vec![96, 256, 384, 384, 256]);
}

#[test]
fn vgg16_channel_progression() {
    let g = zoo::vgg16(224);
    let convs: Vec<usize> = g
        .nodes()
        .iter()
        .filter_map(|n| match &n.kind {
            LayerKind::Conv { spec, .. } => Some(spec.out_c),
            _ => None,
        })
        .collect();
    assert_eq!(
        convs,
        vec![64, 64, 128, 128, 256, 256, 256, 512, 512, 512, 512, 512, 512]
    );
}

#[test]
fn resnet18_graph_depth() {
    // 2 + 8 blocks × (2 convs + add + relu) along the longest path, plus
    // classifier tail: the longest distance must reflect the deep path,
    // not the shortcuts.
    let g = zoo::resnet18(224);
    let depth = *g.longest_distances().iter().max().unwrap();
    // conv1, maxpool, 8×(conv,conv,add,relu), gap, fc, softmax = 2+32+3.
    assert_eq!(depth, 37);
}

#[test]
fn darknet53_weighted_layer_count() {
    // The name: 52 convs + 1 fc = 53 weighted layers.
    let g = zoo::darknet53(224);
    let convs = g
        .nodes()
        .iter()
        .filter(|n| matches!(n.kind, LayerKind::Conv { .. }))
        .count();
    let fcs = g
        .nodes()
        .iter()
        .filter(|n| matches!(n.kind, LayerKind::Dense { .. }))
        .count();
    assert_eq!(convs + fcs, 53);
}

#[test]
fn inception_v4_branch_fanout_at_modules() {
    // Every inception module's input feeds 4 branches (pool + 3 conv
    // paths); check a representative concat has at least 3 predecessors.
    let g = zoo::inception_v4(224);
    for name in [
        "inceptionA1.concat",
        "inceptionB3.concat",
        "inceptionC2.concat",
    ] {
        let node = g.nodes().iter().find(|n| n.name == name).unwrap();
        assert!(
            node.preds.len() >= 3,
            "{name} has only {} inputs",
            node.preds.len()
        );
    }
}

#[test]
fn mobilenet_alternates_dw_and_pw() {
    let g = zoo::mobilenet_v1(224);
    for i in 1..=13 {
        let dw = g
            .nodes()
            .iter()
            .find(|n| n.name == format!("sep{i}.dw"))
            .unwrap();
        assert!(matches!(dw.kind, LayerKind::DepthwiseConv { .. }));
        let pw = g
            .nodes()
            .iter()
            .find(|n| n.name == format!("sep{i}.pw"))
            .unwrap();
        match &pw.kind {
            LayerKind::Conv { spec, .. } => assert_eq!((spec.kh, spec.kw), (1, 1)),
            other => panic!("sep{i}.pw is {other:?}"),
        }
    }
}

#[test]
fn fig1_motivation_holds_on_the_rpi_model() {
    // The observation the whole paper builds on: intermediate outputs are
    // much smaller than the worst-case early feature maps, and per-layer
    // cost is wildly uneven.
    let rpi = NodeProfile::raspberry_pi4();
    let g = zoo::vgg16(224);
    let lat: Vec<f64> = g.layer_ids().map(|id| rpi.layer_latency(&g, id)).collect();
    let max = lat.iter().cloned().fold(0.0f64, f64::max);
    let mean = lat.iter().sum::<f64>() / lat.len() as f64;
    assert!(max > 2.0 * mean, "per-layer cost should be uneven");
    // Late tensors are far smaller than early ones.
    let early = g.node(NodeId(1)).output_bytes();
    let late = g
        .nodes()
        .iter()
        .find(|n| n.name == "maxpool5")
        .unwrap()
        .output_bytes();
    assert!(early > 100 * late);
}

#[test]
fn every_zoo_model_has_consistent_bytes_accounting() {
    let mut models = zoo::all_models(96);
    models.push(zoo::mobilenet_v1(96));
    for g in models {
        for id in g.layer_ids() {
            let n = g.node(id);
            // input bytes of a vertex = sum of its preds' output bytes.
            let expect: u64 = n.preds.iter().map(|p| g.node(*p).output_bytes()).sum();
            assert_eq!(g.input_bytes(id), expect, "{}: {}", g.name(), n.name);
        }
    }
}
