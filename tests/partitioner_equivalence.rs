//! Equivalence tests for the `Partitioner` redesign: every strategy
//! object must produce exactly the assignment (same Θ, same tiers) its
//! legacy free function produced before the API change, on the paper's
//! evaluation models under the paper profiles.

#![allow(deprecated)] // the whole point: compare against the legacy API

use d3_model::zoo;
use d3_partition::{
    dads, exhaustive_optimal, hpa, ionn, neurosurgeon, Assignment, Dads, ExhaustiveOracle,
    FixedTier, Hpa, HpaOptions, Ionn, Neurosurgeon, PartitionError, Partitioner, Problem,
};
use d3_simnet::{NetworkCondition, Tier, TierProfiles};

fn paper_problem(g: &d3_model::DnnGraph, net: NetworkCondition) -> Problem {
    Problem::new(g, &TierProfiles::paper_testbed(), net)
}

/// The models the paper evaluates and the ISSUE pins for equivalence.
fn paper_models() -> Vec<d3_model::DnnGraph> {
    vec![zoo::alexnet(224), zoo::vgg16(224), zoo::darknet53(224)]
}

fn assert_same(a: &Assignment, b: &Assignment, what: &str) {
    assert_eq!(a.tiers(), b.tiers(), "{what}: tier vectors diverge");
}

#[test]
fn hpa_trait_matches_legacy_free_function() {
    for g in paper_models() {
        for net in [NetworkCondition::WiFi, NetworkCondition::FourG] {
            let p = paper_problem(&g, net);
            let legacy = hpa(&p, &HpaOptions::paper());
            let modern = Hpa::paper().partition(&p).unwrap();
            assert_same(&modern, &legacy, &format!("hpa {} {net}", g.name()));
            assert_eq!(modern.total_latency(&p), legacy.total_latency(&p));
        }
    }
}

#[test]
fn hpa_trait_matches_legacy_under_ablation_options() {
    let g = zoo::darknet53(224);
    let p = paper_problem(&g, NetworkCondition::WiFi);
    for opts in [
        HpaOptions::paper().without_sis(),
        HpaOptions::paper().without_io_heuristic(),
        HpaOptions::paper().without_cut_search(),
        HpaOptions::paper().with_tiers(&[Tier::Edge, Tier::Cloud]),
    ] {
        let legacy = hpa(&p, &opts);
        let modern = Hpa(opts.clone()).partition(&p).unwrap();
        assert_same(&modern, &legacy, &format!("hpa options {opts:?}"));
    }
}

#[test]
fn dads_trait_matches_legacy_free_function() {
    for g in paper_models() {
        for net in [NetworkCondition::WiFi, NetworkCondition::FourG] {
            let p = paper_problem(&g, net);
            let legacy = dads(&p);
            let modern = Dads.partition(&p).unwrap();
            assert_same(&modern, &legacy, &format!("dads {} {net}", g.name()));
        }
    }
}

#[test]
fn neurosurgeon_trait_matches_legacy_free_function() {
    for g in paper_models() {
        let p = paper_problem(&g, NetworkCondition::WiFi);
        match (Neurosurgeon.partition(&p), neurosurgeon(&p)) {
            (Ok(modern), Ok(legacy)) => {
                assert!(g.is_chain());
                assert_same(&modern, &legacy, &format!("neurosurgeon {}", g.name()));
            }
            (Err(modern), Err(_)) => {
                // darknet53 is a DAG: both APIs must refuse it.
                assert!(!g.is_chain());
                assert_eq!(
                    modern,
                    PartitionError::NotAChain {
                        algorithm: "Neurosurgeon"
                    }
                );
            }
            (modern, legacy) => {
                panic!("{}: trait {modern:?} vs legacy {legacy:?}", g.name())
            }
        }
    }
}

#[test]
fn ionn_trait_matches_legacy_free_function() {
    for g in paper_models() {
        let p = paper_problem(&g, NetworkCondition::WiFi);
        for queries in [1u64, 100, u64::MAX] {
            match (Ionn::with_queries(queries).partition(&p), ionn(&p, queries)) {
                (Ok(modern), Ok(legacy)) => {
                    assert_same(&modern, &legacy, &format!("ionn {} q={queries}", g.name()));
                }
                (Err(e), Err(_)) => {
                    assert!(!g.is_chain());
                    assert_eq!(e, PartitionError::NotAChain { algorithm: "IONN" });
                }
                (modern, legacy) => {
                    panic!("{}: trait {modern:?} vs legacy {legacy:?}", g.name())
                }
            }
        }
    }
}

#[test]
fn exhaustive_trait_matches_legacy_free_function() {
    // Oracle only runs on small graphs; use the synthetic zoo.
    for g in [zoo::chain_cnn(5, 4, 8), zoo::tiny_cnn(16)] {
        let p = paper_problem(&g, NetworkCondition::WiFi);
        for monotone_only in [false, true] {
            let legacy = exhaustive_optimal(&p, &Tier::ALL, monotone_only);
            let modern = ExhaustiveOracle {
                allowed: Tier::ALL.to_vec(),
                monotone_only,
            }
            .partition(&p)
            .unwrap();
            assert_same(
                &modern,
                &legacy,
                &format!("exhaustive {} monotone={monotone_only}", g.name()),
            );
        }
    }
}

#[test]
fn fixed_tier_matches_uniform_assignments() {
    for g in paper_models() {
        let p = paper_problem(&g, NetworkCondition::WiFi);
        for tier in Tier::ALL {
            let legacy = Assignment::uniform(g.len(), tier);
            let modern = FixedTier(tier).partition(&p).unwrap();
            assert_same(&modern, &legacy, &format!("fixed {tier:?} {}", g.name()));
        }
    }
}

#[test]
fn strategy_enum_routes_to_equivalent_partitioners() {
    use d3_core::Strategy;
    for g in paper_models() {
        let p = paper_problem(&g, NetworkCondition::WiFi);
        for (strategy, legacy) in [
            (
                Strategy::DeviceOnly,
                Some(Assignment::uniform(g.len(), Tier::Device)),
            ),
            (
                Strategy::EdgeOnly,
                Some(Assignment::uniform(g.len(), Tier::Edge)),
            ),
            (
                Strategy::CloudOnly,
                Some(Assignment::uniform(g.len(), Tier::Cloud)),
            ),
            (Strategy::Neurosurgeon, neurosurgeon(&p).ok()),
            (Strategy::Dads, Some(dads(&p))),
            (Strategy::Hpa, Some(hpa(&p, &HpaOptions::paper()))),
        ] {
            let modern = strategy.partitioner().partition(&p).ok();
            match (modern, legacy) {
                (Some(m), Some(l)) => assert_same(&m, &l, &format!("{strategy:?} {}", g.name())),
                (None, None) => {}
                (m, l) => panic!("{strategy:?} {}: {m:?} vs {l:?}", g.name()),
            }
        }
    }
}
