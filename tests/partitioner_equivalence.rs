//! Behaviour-pinning tests for the [`Partitioner`] strategy objects.
//!
//! These began life as equivalence tests against the legacy free
//! functions (`hpa`, `dads`, …); with the deprecated shims removed, they
//! now pin the trait objects' behaviour directly: determinism, the
//! invariants each policy guarantees, the cross-policy identities the
//! papers prove, and that [`Strategy`]'s routing resolves to the same
//! plans as the trait objects it names.

use d3_core::Strategy;
use d3_model::zoo;
use d3_partition::{
    Assignment, Dads, ExhaustiveOracle, FixedTier, Hpa, HpaOptions, Ionn, Neurosurgeon,
    PartitionError, Partitioner, Problem,
};
use d3_simnet::{NetworkCondition, Tier, TierProfiles};

fn paper_problem(g: &d3_model::DnnGraph, net: NetworkCondition) -> Problem {
    Problem::new(g, &TierProfiles::paper_testbed(), net)
}

/// The models the paper evaluates and this suite pins.
fn paper_models() -> Vec<d3_model::DnnGraph> {
    vec![zoo::alexnet(224), zoo::vgg16(224), zoo::darknet53(224)]
}

fn assert_same(a: &Assignment, b: &Assignment, what: &str) {
    assert_eq!(a.tiers(), b.tiers(), "{what}: tier vectors diverge");
}

#[test]
fn every_policy_is_deterministic() {
    let policies: Vec<Box<dyn Partitioner>> = vec![
        Box::new(Hpa::paper()),
        Box::new(Dads),
        Box::new(Neurosurgeon),
        Box::new(Ionn::with_queries(100)),
        Box::new(FixedTier(Tier::Edge)),
    ];
    for g in paper_models() {
        for net in [NetworkCondition::WiFi, NetworkCondition::FourG] {
            let p = paper_problem(&g, net);
            for policy in &policies {
                match (policy.partition(&p), policy.partition(&p)) {
                    (Ok(a), Ok(b)) => {
                        assert_same(&a, &b, &format!("{} {} {net}", policy.name(), g.name()));
                    }
                    (Err(a), Err(b)) => assert_eq!(a, b),
                    (a, b) => panic!("{}: non-deterministic {a:?} vs {b:?}", policy.name()),
                }
            }
        }
    }
}

#[test]
fn hpa_plans_are_monotone_and_beat_single_tier_baselines() {
    for g in paper_models() {
        for net in [NetworkCondition::WiFi, NetworkCondition::FourG] {
            let p = paper_problem(&g, net);
            let plan = Hpa::paper().partition(&p).unwrap();
            let name = g.name();
            assert!(plan.is_monotone(&p), "hpa {name} {net}");
            let theta = plan.total_latency(&p);
            for tier in Tier::ALL {
                let single = FixedTier(tier).partition(&p).unwrap().total_latency(&p);
                assert!(
                    theta <= single + 1e-9,
                    "hpa {name} {net}: {theta} vs {tier:?}-only {single}"
                );
            }
        }
    }
}

#[test]
fn hpa_ablation_options_still_produce_valid_plans() {
    let g = zoo::darknet53(224);
    let p = paper_problem(&g, NetworkCondition::WiFi);
    let reference = Hpa::paper().partition(&p).unwrap();
    for opts in [
        HpaOptions::paper().without_sis(),
        HpaOptions::paper().without_io_heuristic(),
        HpaOptions::paper().without_cut_search(),
        HpaOptions::paper().with_tiers(&[Tier::Edge, Tier::Cloud]),
    ] {
        let restricted = opts.allowed.clone();
        let plan = Hpa(opts.clone()).partition(&p).unwrap();
        assert!(plan.is_monotone(&p), "hpa options {opts:?}");
        for id in g.layer_ids() {
            assert!(
                restricted.contains(&plan.tier(id)),
                "hpa options {opts:?}: {id} left the allowed tier set"
            );
        }
        // The full-featured configuration is never worse than ablations
        // on the paper's own benchmark model.
        assert!(reference.total_latency(&p) <= plan.total_latency(&p) + 1e-9);
    }
}

#[test]
fn dads_is_the_optimal_two_tier_split() {
    // DADS's min-cut must match the exhaustive edge/cloud optimum on
    // graphs small enough to enumerate.
    for g in [zoo::chain_cnn(5, 4, 8), zoo::tiny_cnn(16)] {
        let p = paper_problem(&g, NetworkCondition::WiFi);
        let dads_plan = Dads.partition(&p).unwrap();
        let oracle = ExhaustiveOracle {
            allowed: vec![Tier::Edge, Tier::Cloud],
            monotone_only: false,
        }
        .partition(&p)
        .unwrap();
        // Equally-optimal plans may sum per-layer f64 terms in different
        // orders; compare with a relative tolerance, not exact equality.
        let (got, want) = (dads_plan.total_latency(&p), oracle.total_latency(&p));
        assert!(
            (got - want).abs() <= 1e-9 + want * 1e-9,
            "dads not optimal on {}: {got} vs {want}",
            g.name()
        );
    }
}

#[test]
fn chain_policies_reject_dags_with_one_typed_error() {
    for g in paper_models() {
        let p = paper_problem(&g, NetworkCondition::WiFi);
        match Neurosurgeon.partition(&p) {
            Ok(plan) => {
                assert!(g.is_chain());
                assert!(plan.is_monotone(&p));
                // Neurosurgeon never uses the edge tier.
                for id in g.layer_ids() {
                    let name = g.name();
                    assert_ne!(plan.tier(id), Tier::Edge, "{name}");
                }
            }
            Err(e) => {
                assert!(!g.is_chain());
                assert_eq!(
                    e,
                    PartitionError::NotAChain {
                        algorithm: "Neurosurgeon"
                    }
                );
            }
        }
        if !g.is_chain() {
            assert_eq!(
                Ionn::with_queries(100).partition(&p),
                Err(PartitionError::NotAChain { algorithm: "IONN" })
            );
        }
    }
}

#[test]
fn ionn_steady_state_matches_neurosurgeon() {
    // With infinite queries the upload amortizes away: IONN and
    // Neurosurgeon choose equally good splits (SoCC'18, §4).
    for g in paper_models().into_iter().filter(|g| g.is_chain()) {
        let p = paper_problem(&g, NetworkCondition::WiFi);
        let ionn = Ionn::with_queries(u64::MAX).partition(&p).unwrap();
        let ns = Neurosurgeon.partition(&p).unwrap();
        assert_eq!(ionn.total_latency(&p), ns.total_latency(&p), "{}", g.name());
    }
}

#[test]
fn ionn_upload_amortization_is_monotone_cloudward() {
    let g = zoo::alexnet(224);
    let p = paper_problem(&g, NetworkCondition::WiFi);
    let cloud_count = |q: u64| {
        Ionn::with_queries(q)
            .partition(&p)
            .unwrap()
            .tiers()
            .iter()
            .filter(|t| **t == Tier::Cloud)
            .count()
    };
    let mut last = 0;
    for q in [1u64, 100, 10_000, u64::MAX] {
        let cloud = cloud_count(q);
        assert!(cloud >= last, "q={q}: {cloud} < {last}");
        last = cloud;
    }
}

#[test]
fn exhaustive_oracle_bounds_every_policy() {
    // On enumerable graphs no policy may beat the unrestricted oracle.
    for g in [zoo::chain_cnn(5, 4, 8), zoo::tiny_cnn(16)] {
        let p = paper_problem(&g, NetworkCondition::WiFi);
        let best = ExhaustiveOracle::default()
            .partition(&p)
            .unwrap()
            .total_latency(&p);
        let policies: Vec<Box<dyn Partitioner>> = vec![
            Box::new(Hpa::paper()),
            Box::new(Dads),
            Box::new(Neurosurgeon),
            Box::new(FixedTier(Tier::Device)),
        ];
        for policy in policies {
            if let Ok(plan) = policy.partition(&p) {
                assert!(
                    plan.total_latency(&p) + 1e-12 >= best,
                    "{} beat the oracle on {}",
                    policy.name(),
                    g.name()
                );
            }
        }
    }
}

#[test]
fn fixed_tier_matches_uniform_assignments() {
    for g in paper_models() {
        let p = paper_problem(&g, NetworkCondition::WiFi);
        for tier in Tier::ALL {
            let uniform = Assignment::uniform(g.len(), tier);
            let fixed = FixedTier(tier).partition(&p).unwrap();
            assert_same(&fixed, &uniform, &format!("fixed {tier:?} {}", g.name()));
        }
    }
}

#[test]
fn strategy_enum_routes_to_equivalent_partitioners() {
    // Strategy::partitioner() must resolve to the same plan as invoking
    // the underlying trait object directly.
    for g in paper_models() {
        let p = paper_problem(&g, NetworkCondition::WiFi);
        let direct: Vec<(Strategy, Result<Assignment, PartitionError>)> = vec![
            (Strategy::DeviceOnly, FixedTier(Tier::Device).partition(&p)),
            (Strategy::EdgeOnly, FixedTier(Tier::Edge).partition(&p)),
            (Strategy::CloudOnly, FixedTier(Tier::Cloud).partition(&p)),
            (Strategy::Neurosurgeon, Neurosurgeon.partition(&p)),
            (Strategy::Dads, Dads.partition(&p)),
            (Strategy::Hpa, Hpa::paper().partition(&p)),
        ];
        for (strategy, expected) in direct {
            let routed = strategy.partitioner().partition(&p);
            match (routed, expected) {
                (Ok(m), Ok(l)) => assert_same(&m, &l, &format!("{strategy:?} {}", g.name())),
                (Err(a), Err(b)) => assert_eq!(a, b),
                (m, l) => panic!("{strategy:?} {}: {m:?} vs {l:?}", g.name()),
            }
        }
    }
}
