//! End-to-end losslessness: the paper's central claim.
//!
//! Distributed D3 inference — HPA partitioning across device/edge/cloud
//! worker threads, wire-encoded tensors, VSM tile-parallel edge runs —
//! must produce **bit-identical** outputs to single-node inference, for
//! every evaluation model. Models run at reduced input sizes so the
//! from-scratch executor stays fast; topology (and therefore the
//! partition/tiling logic being tested) is identical to full scale.

use d3_engine::{run_distributed, VsmConfig};
use d3_model::{zoo, Executor};
use d3_partition::{Assignment, Hpa, Partitioner, Problem};
use d3_simnet::{NetworkCondition, Tier, TierProfiles};
use d3_tensor::{max_abs_diff, Tensor};

fn check(g: &d3_model::DnnGraph, seed: u64, vsm: Option<VsmConfig>, net: NetworkCondition) {
    let profiles = TierProfiles::paper_testbed();
    let problem = Problem::new(g, &profiles, net);
    let assignment = Hpa::paper()
        .partition(&problem)
        .expect("HPA always applies");
    let shape = g.input_shape();
    let input = Tensor::random(shape.c, shape.h, shape.w, seed ^ 0xF00D);
    let expect = Executor::new(g, seed).run(&input);
    let got = run_distributed(g, seed, &assignment, vsm, &input).unwrap();
    assert_eq!(
        max_abs_diff(&got, &expect),
        Some(0.0),
        "{}: distributed inference diverged from single-node",
        g.name()
    );
}

#[test]
fn alexnet_lossless() {
    let g = zoo::alexnet(96);
    check(&g, 11, None, NetworkCondition::WiFi);
    check(&g, 11, Some(VsmConfig::default()), NetworkCondition::FourG);
}

#[test]
fn vgg16_lossless() {
    let g = zoo::vgg16(64);
    check(&g, 22, Some(VsmConfig::default()), NetworkCondition::WiFi);
}

#[test]
fn resnet18_lossless() {
    let g = zoo::resnet18(64);
    check(&g, 33, Some(VsmConfig::default()), NetworkCondition::FiveG);
}

#[test]
fn darknet53_lossless() {
    let g = zoo::darknet53(64);
    check(&g, 44, Some(VsmConfig::default()), NetworkCondition::FourG);
}

#[test]
fn inception_v4_lossless() {
    let g = zoo::inception_v4(96);
    check(&g, 55, Some(VsmConfig::default()), NetworkCondition::WiFi);
}

#[test]
fn mobilenet_v1_lossless() {
    // The extension model: depthwise-separable stacks through VSM.
    let g = zoo::mobilenet_v1(64);
    check(&g, 66, Some(VsmConfig::default()), NetworkCondition::WiFi);
}

#[test]
fn forced_three_way_split_is_lossless() {
    // Don't rely on HPA choices: pin a genuine device/edge/cloud split.
    let g = zoo::vgg16(64);
    let n = g.len();
    let mut tiers = vec![Tier::Device; n];
    for (i, t) in tiers.iter_mut().enumerate() {
        if (4..12).contains(&i) {
            *t = Tier::Edge;
        } else if i >= 12 {
            *t = Tier::Cloud;
        }
    }
    let a = Assignment::new(tiers);
    let input = Tensor::random(3, 64, 64, 77);
    let expect = Executor::new(&g, 5).run(&input);
    let got = run_distributed(&g, 5, &a, Some(VsmConfig::default()), &input).unwrap();
    assert_eq!(max_abs_diff(&got, &expect), Some(0.0));
}

#[test]
fn every_table3_network_yields_lossless_plans() {
    // The partition changes with the network; losslessness must not.
    let g = zoo::alexnet(96);
    for net in NetworkCondition::TABLE3 {
        check(&g, 7, Some(VsmConfig::default()), net);
    }
}

#[test]
fn tile_grids_do_not_affect_results() {
    let g = zoo::vgg16(64);
    let profiles = TierProfiles::paper_testbed();
    let problem = Problem::new(&g, &profiles, NetworkCondition::FourG);
    let assignment = Hpa::paper()
        .partition(&problem)
        .expect("HPA always applies");
    let input = Tensor::random(3, 64, 64, 3);
    let expect = Executor::new(&g, 9).run(&input);
    for (rows, cols) in [(1, 1), (2, 2), (3, 3), (1, 4)] {
        let cfg = VsmConfig {
            edge_nodes: rows * cols,
            grid: (rows, cols),
            min_run_len: 2,
        };
        let got = run_distributed(&g, 9, &assignment, Some(cfg), &input).unwrap();
        assert_eq!(
            max_abs_diff(&got, &expect),
            Some(0.0),
            "grid {rows}x{cols} diverged"
        );
    }
}
