//! End-to-end tests of the closed adaptation loop: live telemetry,
//! policy-driven repartitioning, and mid-stream plan swaps.
//!
//! The headline guarantees pinned here:
//!
//! - a running `StreamSession` swaps plans at a frame boundary with
//!   **zero dropped frames** and **bit-identical outputs** on both sides
//!   of the swap (with and without VSM edge tiling),
//! - injected bandwidth drift makes an attached controller repartition
//!   a *running* stream,
//! - the controller driven through a live session makes exactly the
//!   decisions the simulation-driven controller makes on the same
//!   observation trace.

use d3_core::{
    AdaptEvent, Assignment, AutoscalePolicy, D3Runtime, D3System, Deployment, DriftMonitor,
    FrameId, HysteresisLocal, NetworkCondition, Observation, PlanUpdate, Problem, StreamOptions,
    Tier, TierProfiles, UpdateScope,
};
use d3_model::{DnnGraph, Executor};
use d3_partition::EvenSplit;
use d3_tensor::{max_abs_diff, Tensor};
use d3_test_support::{chain_graph as graph, even_split_runtime_with, frame_burst, SEED};
use std::sync::Arc;
use std::time::Duration;

fn runtime_with(graph: DnnGraph, vsm: bool) -> D3Runtime {
    even_split_runtime_with("m", graph, SEED, vsm)
}

fn update_to(g: &Arc<DnnGraph>, from: &Assignment, to: Assignment) -> PlanUpdate {
    let problem = Problem::new(
        g.clone(),
        &TierProfiles::paper_testbed(),
        NetworkCondition::WiFi,
    );
    PlanUpdate {
        changed: from.diff(&to),
        deployment: Deployment::new(&problem, to, None),
        scope: UpdateScope::Full,
    }
}

/// Streams frames across an `apply_plan` swap and checks every output
/// against single-node inference, frame for frame.
fn swap_roundtrip(vsm: bool) {
    let g = Arc::new(graph());
    let rt = runtime_with(graph(), vsm);
    let mut session = rt.open_stream("m", StreamOptions::new()).unwrap();
    let exec = Executor::new(&g, SEED);
    let inputs = frame_burst(8, (3, 16, 16), 200);

    // Keep two frames in flight across the boundary.
    session.submit_blocking(&inputs[0]).unwrap();
    session.submit_blocking(&inputs[1]).unwrap();
    let before = session.assignment().clone();
    let swap = session
        .apply_plan(&update_to(
            &g,
            &before,
            Assignment::uniform(g.len(), Tier::Cloud),
        ))
        .unwrap();
    assert_eq!(
        swap.drained_frames, 2,
        "in-flight frames drained, not dropped"
    );
    assert!(!swap.changed.is_empty());

    for input in &inputs[2..] {
        session.submit_blocking(input).unwrap();
    }
    for (k, input) in inputs.iter().enumerate() {
        let (id, got) = session.recv().unwrap();
        assert_eq!(id, FrameId(k as u64), "submission order across the swap");
        assert_eq!(
            max_abs_diff(&got, &exec.run(input)),
            Some(0.0),
            "vsm={vsm}: frame {k} diverged across the swap"
        );
    }
    let report = session.close();
    assert_eq!(
        report.measured.frames as u64, report.submitted,
        "zero drops"
    );
    assert_eq!(report.measured.frames, inputs.len());
    assert_eq!(report.reconfigurations, 1);
}

#[test]
fn apply_plan_swap_is_bit_identical_without_vsm() {
    swap_roundtrip(false);
}

#[test]
fn apply_plan_swap_is_bit_identical_with_vsm_tiling() {
    swap_roundtrip(true);
}

#[test]
fn bandwidth_drift_repartitions_a_running_stream() {
    let g = Arc::new(graph());
    let mut rt = runtime_with(graph(), false);
    rt.attach_controller("m", Box::new(HysteresisLocal(DriftMonitor::default())))
        .unwrap();
    let mut session = rt.open_stream("m", StreamOptions::new()).unwrap();
    let exec = Executor::new(&g, SEED);
    let inputs = frame_burst(9, (3, 16, 16), 300);

    // Phase 1: steady state under Wi-Fi.
    for input in &inputs[..3] {
        session.submit_blocking(input).unwrap();
    }
    // Injected drift: the backbone collapses 31.53 → 0.5 Mbps while
    // frames are in flight. The controller must resolve a new plan and
    // swap it in mid-stream.
    let before = session.assignment().clone();
    let events = session.observe(&Observation::Network {
        net: NetworkCondition::custom_backbone(0.5),
    });
    let [d3_core::AdaptEvent::Plan(swap)] = events.as_slice() else {
        panic!("a 60x bandwidth collapse must produce one plan swap, not {events:?}");
    };
    assert!(!swap.changed.is_empty());
    assert_eq!(session.reconfigurations(), 1);
    assert_ne!(
        session.assignment().tiers(),
        before.tiers(),
        "the deployed plan actually moved"
    );

    // Phase 2: the stream keeps running on the new plan.
    for input in &inputs[3..] {
        session.submit_blocking(input).unwrap();
    }
    for (k, input) in inputs.iter().enumerate() {
        let (id, got) = session.recv().unwrap();
        assert_eq!(id, FrameId(k as u64));
        assert_eq!(
            max_abs_diff(&got, &exec.run(input)),
            Some(0.0),
            "frame {k} diverged across the drift-triggered swap"
        );
    }
    let report = session.close();
    assert_eq!(
        report.measured.frames as u64, report.submitted,
        "zero drops"
    );
    assert_eq!(report.reconfigurations, 1);
}

#[test]
fn measured_driven_controller_matches_simulated_driven_on_same_trace() {
    // The same observation trace drives (a) a standalone controller fed
    // by hand — the pre-redesign "simulated observations" path — and
    // (b) a live session's attached controller, which also applies every
    // update to its running pipeline. Decisions must be identical.
    let g = Arc::new(graph());
    let trace: Vec<Observation> = [31.53, 6.0, 6.2, 45.0, 3.0, 31.53]
        .into_iter()
        .map(|mbps| Observation::Network {
            net: NetworkCondition::custom_backbone(mbps),
        })
        .collect();

    let mut simulated = D3System::builder(g.clone())
        .partitioner(EvenSplit)
        .without_vsm()
        .seed(SEED)
        .build()
        .into_adaptive(DriftMonitor::default());

    let mut rt = runtime_with(graph(), false);
    rt.attach_controller("m", Box::new(HysteresisLocal(DriftMonitor::default())))
        .unwrap();
    let mut session = rt.open_stream("m", StreamOptions::new()).unwrap();
    let exec = Executor::new(&g, SEED);

    for (step, obs) in trace.iter().enumerate() {
        let sim_update = simulated.ingest(obs);
        let live_events = session.observe(obs);
        assert_eq!(
            sim_update.is_some(),
            !live_events.is_empty(),
            "step {step}: decision diverged"
        );
        assert_eq!(
            session.controller().unwrap().assignment().tiers(),
            simulated.assignment().tiers(),
            "step {step}: plans diverged"
        );
        assert_eq!(
            session.assignment().tiers(),
            simulated.assignment().tiers(),
            "step {step}: the pipeline lags its controller"
        );
        // The stream serves losslessly at every point of the trace.
        let input = Tensor::random(3, 16, 16, 400 + step as u64);
        session.submit_blocking(&input).unwrap();
        let (_, got) = session.recv().unwrap();
        assert_eq!(max_abs_diff(&got, &exec.run(&input)), Some(0.0));
    }
    let live = session.controller().unwrap();
    assert_eq!(live.full_updates, simulated.full_updates);
    assert_eq!(live.local_updates, simulated.local_updates);
    assert_eq!(live.suppressed, simulated.suppressed);
    assert!(
        session.reconfigurations() >= 1,
        "the trace's swings must have swapped plans at least once"
    );
    let _ = session.close();
}

#[test]
fn queue_pressure_autoscales_the_device_pool_mid_stream() {
    // The full autoscaling loop, measured end to end: a stalled device
    // stage backs its ingress queue up, the stage workers publish
    // QueueDepth telemetry, the attached AutoscalePolicy votes to scale
    // up, and adapt() resizes the pool at a lossless frame boundary.
    let g = Arc::new(graph());
    let mut rt = runtime_with(graph(), false);
    rt.attach_controller(
        "m",
        Box::new(AutoscalePolicy::new(1, 4).thresholds(4, 0).patience(1)),
    )
    .unwrap();
    let mut session = rt
        .open_stream(
            "m",
            StreamOptions::new()
                .capacity(16)
                .telemetry_every(1)
                .inject_delay(Tier::Device, 1, Duration::from_millis(5)),
        )
        .unwrap();
    let exec = Executor::new(&g, SEED);
    let inputs = frame_burst(12, (3, 16, 16), 600);
    for input in &inputs {
        session.submit_blocking(input).unwrap();
    }
    // Drain two results so at least one device telemetry window has
    // been published with a deep queue behind it, then adapt.
    let mut got: Vec<(usize, Tensor)> = Vec::new();
    for _ in 0..2 {
        let (id, t) = session.recv().unwrap();
        got.push((id.0 as usize, t));
    }
    let events = session.adapt();
    assert!(
        matches!(
            events.as_slice(),
            [AdaptEvent::Pool(p)] if p.tier == Tier::Device && p.to == 2
        ),
        "expected a device scale-up, got {events:?}"
    );
    assert_eq!(session.pool()[0], 2);
    while session.pending() > 0 {
        let (id, t) = session.recv().unwrap();
        got.push((id.0 as usize, t));
    }
    // Submission order held across the resize, outputs bit-identical.
    let ids: Vec<usize> = got.iter().map(|(k, _)| *k).collect();
    assert_eq!(ids, (0..inputs.len()).collect::<Vec<_>>());
    for (k, t) in &got {
        assert_eq!(
            max_abs_diff(t, &exec.run(&inputs[*k])),
            Some(0.0),
            "frame {k} diverged across the autoscale resize"
        );
    }
    let report = session.close();
    assert_eq!(
        report.measured.frames as u64, report.submitted,
        "zero drops"
    );
    assert_eq!(report.stage_pools[0].resize_events, 1);
    assert_eq!(report.stage_pools[0].workers, 2);
    let controller = rt
        .detach_controller("m")
        .expect("the autoscale prototype stays attached");
    assert_eq!(controller.name(), "autoscale");
}

#[test]
fn telemetry_driven_adapt_keeps_the_stream_lossless() {
    // Drive the full measured loop: tight telemetry windows, periodic
    // adapt() calls. Wall-clock noise may or may not trigger swaps —
    // either way the stream must stay lossless and drop nothing.
    let g = Arc::new(graph());
    let mut rt = runtime_with(graph(), false);
    rt.attach_controller("m", Box::new(HysteresisLocal(DriftMonitor::default())))
        .unwrap();
    let mut session = rt
        .open_stream("m", StreamOptions::new().telemetry_every(4))
        .unwrap();
    let exec = Executor::new(&g, SEED);
    for k in 0..24u64 {
        let input = Tensor::random(3, 16, 16, 500 + k);
        session.submit_blocking(&input).unwrap();
        let (_, got) = session.recv().unwrap();
        assert_eq!(max_abs_diff(&got, &exec.run(&input)), Some(0.0));
        if k % 6 == 5 {
            let _ = session.adapt();
        }
    }
    let report = session.close();
    assert_eq!(
        report.measured.frames as u64, report.submitted,
        "zero drops"
    );
    assert_eq!(report.measured.frames, 24);
}
