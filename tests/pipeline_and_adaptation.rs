//! Integration tests for the online execution engine: pipeline semantics
//! against the analytical objective, and end-to-end runtime adaptation.

use d3_core::{D3System, DriftMonitor, NetworkCondition, Observation, Strategy, VsmConfig};
use d3_engine::{bottleneck_s, deploy_strategy};
use d3_model::{zoo, NodeId};
use d3_partition::Problem;
use d3_simnet::TierProfiles;

fn problem(g: &d3_model::DnnGraph, net: NetworkCondition) -> Problem {
    Problem::new(g, &TierProfiles::paper_testbed(), net)
}

#[test]
fn single_frame_stream_equals_deployment_latency() {
    for g in zoo::all_models(224) {
        let p = problem(&g, NetworkCondition::WiFi);
        for s in Strategy::ALL {
            let Some(d) = deploy_strategy(&p, s, VsmConfig::default()) else {
                continue;
            };
            let one = d.stream(30.0, 1);
            assert!(
                (one.mean_latency_s - d.frame_latency_s).abs() < 1e-9,
                "{} {}: DES single frame {} vs analytical {}",
                g.name(),
                s.label(),
                one.mean_latency_s,
                d.frame_latency_s
            );
        }
    }
}

#[test]
fn theta_matches_pipeline_on_chain_models() {
    // On chains every tensor has exactly one consumer, so the paper's
    // per-link objective Θ and the deployment's deduplicated transfer
    // accounting must agree to the nanosecond.
    for g in [zoo::alexnet(224), zoo::vgg16(224)] {
        let p = problem(&g, NetworkCondition::FiveG);
        let d = deploy_strategy(&p, Strategy::Hpa, VsmConfig::default()).unwrap();
        assert!((d.theta_s - d.frame_latency_s).abs() < 1e-9);
    }
}

#[test]
fn saturated_stream_latency_grows_with_queueing() {
    let g = zoo::vgg16(224);
    let p = problem(&g, NetworkCondition::WiFi);
    let d = deploy_strategy(&p, Strategy::DeviceOnly, VsmConfig::default()).unwrap();
    // Device-only VGG cannot sustain 30 FPS; the queue must build up.
    let short = d.stream(30.0, 10).mean_latency_s;
    let long = d.stream(30.0, 100).mean_latency_s;
    assert!(
        long > short * 2.0,
        "expected queue growth: {short} vs {long}"
    );
}

#[test]
fn throughput_is_bounded_by_bottleneck() {
    let g = zoo::resnet18(224);
    let p = problem(&g, NetworkCondition::WiFi);
    for s in [Strategy::Hpa, Strategy::EdgeOnly, Strategy::HpaVsm] {
        let d = deploy_strategy(&p, s, VsmConfig::default()).unwrap();
        let stats = d.stream(1000.0, 400);
        let cap = 1.0 / bottleneck_s(&d.stages).max(1e-12);
        assert!(
            stats.throughput_fps <= cap * 1.01,
            "{}: {} fps exceeds cap {}",
            s.label(),
            stats.throughput_fps,
            cap
        );
    }
}

#[test]
fn vsm_raises_sustainable_throughput_when_edge_bound() {
    // Under 4G, HPA parks the conv bulk at the edge; VSM must then raise
    // the pipeline's sustainable frame rate.
    let g = zoo::darknet53(224);
    let p = problem(&g, NetworkCondition::FourG);
    let plain = deploy_strategy(&p, Strategy::Hpa, VsmConfig::default()).unwrap();
    let tiled = deploy_strategy(&p, Strategy::HpaVsm, VsmConfig::default()).unwrap();
    let cap = |d: &d3_engine::Deployment| 1.0 / bottleneck_s(&d.stages).max(1e-12);
    assert!(
        cap(&tiled) > cap(&plain),
        "VSM should raise throughput: {} vs {}",
        cap(&tiled),
        cap(&plain)
    );
}

#[test]
fn adaptive_engine_tracks_bandwidth_swings_end_to_end() {
    let g = zoo::inception_v4(224);
    let d3 = D3System::builder(&g)
        .network(NetworkCondition::WiFi)
        .build();
    let mut engine = d3.into_adaptive(DriftMonitor::default());
    let mut updates = 0;
    for mbps in [31.53, 6.0, 6.2, 45.0, 44.0, 3.0, 31.53] {
        let before = engine.full_updates + engine.local_updates;
        engine.ingest(&Observation::Network {
            net: NetworkCondition::custom_backbone(mbps),
        });
        if engine.full_updates + engine.local_updates > before {
            updates += 1;
        }
        assert!(engine.assignment().is_monotone(engine.problem()));
    }
    assert!(updates >= 3, "big swings must trigger re-partitions");
    assert!(engine.suppressed >= 1, "small jitter must be suppressed");
}

#[test]
fn adaptive_vertex_drift_stays_local() {
    let g = zoo::darknet53(224);
    let d3 = D3System::builder(&g).build();
    let mut engine = d3.into_adaptive(DriftMonitor::default());
    let id = NodeId(30);
    let tier = engine.assignment().tier(id);
    let t = engine.problem().vertex_time(id, tier);
    let before_theta = engine.current_theta();
    engine.ingest(&Observation::VertexTime {
        vertex: id,
        tier,
        seconds: t * 10.0,
    });
    // Whatever happened, the plan stays valid and Θ stays finite.
    assert!(engine.assignment().is_monotone(engine.problem()));
    assert!(engine.current_theta().is_finite());
    assert!(engine.current_theta() < before_theta * 20.0);
}

#[test]
fn d3_system_full_cycle_on_every_model() {
    for g in zoo::all_models(224) {
        let d3 = D3System::builder(&g).build();
        let stats = d3.stream(30.0, 100);
        assert!(stats.frames == 100);
        assert!(stats.mean_latency_s > 0.0 && stats.mean_latency_s.is_finite());
        assert!(d3.deployment().vsm_redundancy >= 1.0);
    }
}
