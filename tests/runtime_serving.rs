//! Concurrency tests for `D3Runtime`: several threads hammer `serve`
//! across multiple registered models, and every response must be
//! bit-identical to single-node inference — the paper's lossless
//! guarantee must survive both distribution *and* concurrency.

use d3_core::{D3Runtime, D3System, ModelOptions, NetworkCondition, ServeError};
use d3_model::{zoo, Executor};
use d3_tensor::{max_abs_diff, Tensor};

#[test]
fn runtime_is_send_sync_and_static() {
    fn assert_send_sync<T: Send + Sync + 'static>() {}
    assert_send_sync::<D3Runtime>();
    assert_send_sync::<D3System>();
}

#[test]
fn concurrent_serving_is_bit_identical_across_models() {
    let mut rt = D3Runtime::new();
    rt.register("tiny", zoo::tiny_cnn(16), ModelOptions::new().seed(7))
        .unwrap();
    rt.register(
        "chain",
        zoo::chain_cnn(3, 8, 16),
        ModelOptions::new()
            .seed(11)
            .network(NetworkCondition::FourG),
    )
    .unwrap();

    // Single-node references, built from the same weight seeds.
    let tiny_ref = Executor::new(rt.system("tiny").unwrap().graph(), 7);
    let chain_ref = Executor::new(rt.system("chain").unwrap().graph(), 11);

    const THREADS: usize = 4;
    const REQUESTS: usize = 5;
    std::thread::scope(|scope| {
        for thread in 0..THREADS {
            let rt = &rt;
            let (tiny_ref, chain_ref) = (&tiny_ref, &chain_ref);
            scope.spawn(move || {
                for req in 0..REQUESTS {
                    let seed = (thread * 1000 + req) as u64;
                    let input = Tensor::random(3, 16, 16, seed);
                    let (name, reference) = if (thread + req) % 2 == 0 {
                        ("tiny", &tiny_ref)
                    } else {
                        ("chain", &chain_ref)
                    };
                    let out = rt.serve(name, &input).expect("model registered");
                    let expect = reference.run(&input);
                    assert_eq!(
                        max_abs_diff(&out, &expect),
                        Some(0.0),
                        "thread {thread} req {req} on {name}: lossy response"
                    );
                }
            });
        }
    });

    // Counters account for every request exactly once.
    let total = (THREADS * REQUESTS) as u64;
    assert_eq!(rt.total_requests(), total);
    let tiny = rt.stats("tiny").unwrap();
    let chain = rt.stats("chain").unwrap();
    assert_eq!(tiny.requests + chain.requests, total);
    assert!(tiny.requests > 0 && chain.requests > 0);
    assert!(tiny.total_latency_s > 0.0);
    assert!((tiny.mean_latency_s - tiny.total_latency_s / tiny.requests as f64).abs() < 1e-12);
}

#[test]
fn same_model_served_from_many_threads_matches_single_thread() {
    let mut rt = D3Runtime::new();
    rt.register("tiny", zoo::tiny_cnn(16), ModelOptions::new().seed(3))
        .unwrap();
    let input = Tensor::random(3, 16, 16, 42);
    let reference = rt.serve("tiny", &input).unwrap();

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..6)
            .map(|_| {
                let (rt, input) = (&rt, &input);
                scope.spawn(move || rt.serve("tiny", input).unwrap())
            })
            .collect();
        for handle in handles {
            let out = handle.join().unwrap();
            assert_eq!(max_abs_diff(&out, &reference), Some(0.0));
        }
    });
    assert_eq!(rt.stats("tiny").unwrap().requests, 7);
}

#[test]
fn runtime_moves_into_a_thread_with_its_models() {
    let mut rt = D3Runtime::new();
    rt.register("tiny", zoo::tiny_cnn(16), ModelOptions::new().seed(5))
        .unwrap();
    let handle = std::thread::spawn(move || {
        let input = Tensor::random(3, 16, 16, 8);
        rt.serve("tiny", &input).map(|t| t.data().len())
    });
    assert!(handle.join().unwrap().unwrap() > 0);
}

#[test]
fn serve_errors_do_not_poison_the_runtime() {
    let mut rt = D3Runtime::new();
    rt.register("tiny", zoo::tiny_cnn(16), ModelOptions::new())
        .unwrap();
    let bad_shape = Tensor::random(3, 4, 4, 0);
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let (rt, bad_shape) = (&rt, &bad_shape);
            scope.spawn(move || {
                assert!(matches!(
                    rt.serve("tiny", bad_shape),
                    Err(ServeError::ShapeMismatch { .. })
                ));
                assert!(matches!(
                    rt.serve("ghost", bad_shape),
                    Err(ServeError::UnknownModel(_))
                ));
            });
        }
    });
    assert_eq!(rt.total_requests(), 0);
    let good = Tensor::random(3, 16, 16, 1);
    assert!(rt.serve("tiny", &good).is_ok());
}
