//! End-to-end tests of the wire-codec subsystem: codec streams against
//! the raw baseline, the prober's on-wire byte ledger, codec-aware
//! partitioning, and bandwidth-driven codec adaptation.
//!
//! The headline guarantees pinned here:
//!
//! - a stream running the **lossless** codec is frame-for-frame
//!   bit-identical to the raw wire path (and to single-node inference),
//! - the prober accounts **on-wire** bytes: raw == wire with no codec
//!   (the regression the probe path must never lose), wire < raw with
//!   one,
//! - installing a codec profile on the partition problem's links
//!   provably moves the optimal split point tier-ward, while the raw
//!   profile stays bit-identical to the pre-codec cost model,
//! - a `CodecSwitcher` engages compression on measured bandwidth
//!   collapse and reverts with hysteresis — live against a session, and
//!   gated by the fleet's reconfiguration budget in multi-tenant mode.

use d3_core::{AdaptEvent, CodecSwitcher, Observation};
use d3_engine::codec::{self, WireCodec};
use d3_engine::stream::StreamPipeline;
use d3_engine::{
    AdaptiveEngine, ControlUpdate, FleetController, FleetOptions, NoAdapt, ProbeOptions,
    StreamOptions,
};
use d3_model::{DnnGraph, Executor};
use d3_partition::{Hpa, HpaOptions, Partitioner, Problem};
use d3_simnet::{LinkRates, NetworkCondition, Tier, TierProfiles};
use d3_tensor::Tensor;
use d3_test_support::{
    chain_graph, even_split_deployment, even_split_runtime, frame_burst, SEED, STREAM_SEED,
};
use std::sync::Arc;

/// Streams `frames` through a fresh even-split pipeline under `options`
/// and returns the outputs in submission order plus the closing report.
fn stream_outputs(
    options: StreamOptions,
    frames: &[Tensor],
) -> (Vec<Tensor>, d3_engine::StreamReport) {
    let g = Arc::new(chain_graph());
    let d = even_split_deployment(&g);
    let pipeline = StreamPipeline::new(g, STREAM_SEED, &d, None, options).unwrap();
    let mut out = Vec::with_capacity(frames.len());
    for input in frames {
        pipeline.submit(input).unwrap();
        let (_, got) = pipeline.recv().unwrap();
        out.push(got);
    }
    (out, pipeline.close())
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

#[test]
fn lossless_codec_stream_is_bit_identical_to_raw() {
    let frames = frame_burst(6, (3, 16, 16), 900);
    let (raw, raw_report) = stream_outputs(StreamOptions::new(), &frames);
    let (coded, coded_report) =
        stream_outputs(StreamOptions::new().codec(WireCodec::Lossless), &frames);
    for (k, (a, b)) in raw.iter().zip(&coded).enumerate() {
        assert_eq!(bits(a), bits(b), "frame {k} diverged under the codec");
    }
    // And both match single-node inference (the paper's lossless claim).
    let g = chain_graph();
    let exec = Executor::new(&g, STREAM_SEED);
    for (k, (input, got)) in frames.iter().zip(&coded).enumerate() {
        assert_eq!(bits(&exec.run(input)), bits(got), "frame {k} not lossless");
    }
    // The raw stream's ledger is trivial; the codec stream actually
    // compressed and stayed bit-exact while doing it.
    assert_eq!(raw_report.link_raw_bytes, raw_report.link_wire_bytes);
    assert_eq!(raw_report.compression_ratio(), 1.0);
    assert_eq!(raw_report.max_accuracy_delta, 0.0);
    assert!(coded_report.link_raw_bytes > 0);
    assert!(
        coded_report.link_wire_bytes < coded_report.link_raw_bytes,
        "lossless codec failed to shrink chain-CNN activations: {} -> {}",
        coded_report.link_raw_bytes,
        coded_report.link_wire_bytes
    );
    assert!(coded_report.compression_ratio() < 1.0);
    assert_eq!(
        coded_report.max_accuracy_delta, 0.0,
        "a bit-exact path reported quantization error"
    );
    // Same frames either way: the codec changes bytes, not behavior.
    assert_eq!(raw_report.link_raw_bytes, coded_report.link_raw_bytes);
}

#[test]
fn quantized_stream_reports_its_accuracy_delta() {
    let frames = frame_burst(4, (3, 16, 16), 950);
    let (outputs, report) = stream_outputs(StreamOptions::new().codec(WireCodec::F16), &frames);
    assert!(outputs
        .iter()
        .all(|t| t.data().iter().all(|v| v.is_finite())));
    assert!(
        report.max_accuracy_delta > 0.0,
        "f16 quantization of random activations must round somewhere"
    );
    assert!(
        report.max_accuracy_delta < 1.0,
        "f16 error blew past any plausible bound: {}",
        report.max_accuracy_delta
    );
    // f16 halves the payload; headers keep the ratio a bit above 0.5.
    assert!(
        report.compression_ratio() < 0.66,
        "f16 ratio {} not near half",
        report.compression_ratio()
    );
}

#[test]
fn prober_ledger_is_raw_equals_wire_without_codec() {
    // The regression test for the no-codec probe path: the ledger's two
    // sides must be the *same* number, byte for byte.
    let g = Arc::new(chain_graph());
    let d = even_split_deployment(&g);
    let pipeline = StreamPipeline::new(
        g,
        STREAM_SEED,
        &d,
        None,
        StreamOptions::new().probe(ProbeOptions::new().every(1).window(2)),
    )
    .unwrap();
    for input in &frame_burst(6, (3, 16, 16), 1000) {
        pipeline.submit(input).unwrap();
        let _ = pipeline.recv().unwrap();
    }
    let traffic = pipeline.probed_traffic().expect("probing is on");
    let _ = pipeline.close();
    for (link, t) in traffic.iter().enumerate() {
        assert!(t.raw_bytes > 0, "link {link} saw no traffic");
        assert_eq!(
            t.raw_bytes, t.wire_bytes,
            "link {link}: no codec, yet raw and on-wire bytes differ"
        );
    }
}

#[test]
fn prober_ledger_reflects_on_wire_bytes_under_a_codec() {
    let g = Arc::new(chain_graph());
    let d = even_split_deployment(&g);
    let pipeline = StreamPipeline::new(
        g,
        STREAM_SEED,
        &d,
        None,
        StreamOptions::new()
            .codec(WireCodec::Lossless)
            .probe(ProbeOptions::new().every(1).window(2)),
    )
    .unwrap();
    for input in &frame_burst(6, (3, 16, 16), 1100) {
        pipeline.submit(input).unwrap();
        let _ = pipeline.recv().unwrap();
    }
    let traffic = pipeline.probed_traffic().expect("probing is on");
    let _ = pipeline.close();
    for (link, t) in traffic.iter().enumerate() {
        assert!(
            t.wire_bytes < t.raw_bytes,
            "link {link}: the prober is not accounting post-codec bytes \
             (raw {}, wire {})",
            t.raw_bytes,
            t.wire_bytes
        );
    }
}

/// The pinned bandwidth-constrained problem: every inter-tier link at
/// 2 Mbit/s, where HPA keeps `chain_cnn(6, 8, 32)` entirely on-device
/// under raw transfer costs.
fn constrained_problem() -> (DnnGraph, Problem) {
    let g = d3_model::zoo::chain_cnn(6, 8, 32);
    let p = Problem::new(
        &g,
        &TierProfiles::paper_testbed(),
        NetworkCondition::Custom(LinkRates {
            device_edge_mbps: 2.0,
            edge_cloud_mbps: 2.0,
            device_cloud_mbps: 1.0,
        }),
    );
    (g, p)
}

#[test]
fn codec_profile_moves_the_split_point_tierward() {
    let (g, mut p) = constrained_problem();
    let raw_plan = Hpa::paper().partition(&p).unwrap();
    let on_device = |a: &d3_partition::Assignment| {
        (0..g.len())
            .filter(|&i| a.tiers()[i] == Tier::Device)
            .count()
    };
    // Raw transfer at 2 Mbit/s: shipping 8 KiB activations is slower
    // than the slow device computing the whole chain itself.
    assert_eq!(
        on_device(&raw_plan),
        g.len(),
        "premise: raw stays on-device"
    );

    for link in 0..3 {
        p.set_link_codec(link, codec::profile(WireCodec::Lossless));
    }
    let coded_plan = Hpa::paper().partition(&p).unwrap();
    assert!(coded_plan.is_monotone(&p));
    assert!(
        on_device(&coded_plan) < on_device(&raw_plan),
        "cheaper links must pull layers off the device: raw {:?} vs coded {:?}",
        raw_plan.tiers(),
        coded_plan.tiers()
    );
    // And the move pays: under the codec-adjusted cost model the new cut
    // is strictly faster than staying device-only.
    assert!(coded_plan.total_latency(&p) < raw_plan.total_latency(&p));
}

#[test]
fn raw_codec_profile_is_bit_identical_to_the_pre_codec_cost_model() {
    for mbps in [0.5, 2.0, 8.0, 31.53] {
        let g = chain_graph();
        let pristine = Problem::new(
            &g,
            &TierProfiles::paper_testbed(),
            NetworkCondition::custom_backbone(mbps),
        );
        let mut touched = Problem::new(
            &g,
            &TierProfiles::paper_testbed(),
            NetworkCondition::custom_backbone(mbps),
        );
        for link in 0..3 {
            touched.set_link_codec(link, d3_partition::CodecProfile::raw());
        }
        let a = Hpa::paper().partition(&pristine).unwrap();
        let b = Hpa::paper().partition(&touched).unwrap();
        assert_eq!(a.tiers(), b.tiers(), "{mbps} Mbps: plans diverged");
        // Exact f64 equality: the raw profile takes the literal pre-codec
        // arithmetic path, not a ratio-1.0 rescale of it.
        assert_eq!(
            a.total_latency(&pristine).to_bits(),
            b.total_latency(&touched).to_bits(),
            "{mbps} Mbps: raw-profile cost model drifted from the original"
        );
    }
}

#[test]
fn codec_switcher_engages_on_collapse_and_reverts_with_hysteresis() {
    let (_, p) = constrained_problem();
    let policy = CodecSwitcher::new(Box::new(NoAdapt), WireCodec::Lossless, 4.0, 10.0);
    let mut engine = AdaptiveEngine::new(p, HpaOptions::paper(), Box::new(policy));
    let obs = |mbps: f64| Observation::Network {
        net: NetworkCondition::custom_backbone(mbps),
    };

    // Healthy backbone: nothing to do.
    assert!(engine.ingest(&obs(30.0)).is_none());
    // Collapse: the first low reading only builds the streak (patience
    // 2), the second engages compression on the starved backbone link.
    assert!(engine.ingest(&obs(3.0)).is_none());
    let update = engine.ingest(&obs(3.0)).expect("second low vote engages");
    let ControlUpdate::Codec(u) = update else {
        panic!("expected a codec switch, got {update:?}");
    };
    assert_eq!((u.link, u.codec), (1, WireCodec::Lossless));
    assert!(!engine.problem().link_codec(1).is_raw());
    assert!(
        engine.problem().link_codec(0).is_raw(),
        "LAN link untouched"
    );
    assert_eq!(engine.codec_updates, 1);

    // Inside the hysteresis band: stay engaged.
    assert!(engine.ingest(&obs(7.0)).is_none());
    assert!(engine.ingest(&obs(7.0)).is_none());
    // Recovery above the disengage threshold: revert to raw.
    assert!(engine.ingest(&obs(20.0)).is_none());
    let update = engine.ingest(&obs(20.0)).expect("second high vote reverts");
    assert!(
        matches!(
            update,
            ControlUpdate::Codec(u) if u.link == 1 && u.codec == WireCodec::Raw
        ),
        "expected a revert, got {update:?}"
    );
    assert!(engine.problem().link_codec(1).is_raw());
    assert_eq!(engine.codec_updates, 2);
}

#[test]
fn session_applies_codec_switches_live_and_stays_lossless() {
    let g = Arc::new(chain_graph());
    let mut rt = even_split_runtime("m", chain_graph(), SEED);
    rt.attach_controller(
        "m",
        Box::new(CodecSwitcher::new(
            Box::new(NoAdapt),
            WireCodec::Lossless,
            4.0,
            10.0,
        )),
    )
    .unwrap();
    let mut session = rt.open_stream("m", StreamOptions::new()).unwrap();
    let exec = Executor::new(&g, SEED);
    assert_eq!(session.link_codecs(), [WireCodec::Raw; 2]);

    let collapse = Observation::Network {
        net: NetworkCondition::custom_backbone(3.0),
    };
    assert!(session.observe(&collapse).is_empty(), "patience is 2");
    let events = session.observe(&collapse);
    assert!(
        matches!(
            events.as_slice(),
            [AdaptEvent::Codec(u)] if u.link == 1 && u.codec == WireCodec::Lossless
        ),
        "the collapse must switch the backbone codec, got {events:?}"
    );
    assert_eq!(
        session.link_codecs(),
        [WireCodec::Raw, WireCodec::Lossless],
        "the running pipeline did not pick the switch up"
    );
    // A codec switch is not a plan swap: no drain, no reconfiguration.
    assert_eq!(session.reconfigurations(), 0);

    // The stream keeps serving bit-identically on the compressed link.
    for (k, input) in frame_burst(4, (3, 16, 16), 1200).iter().enumerate() {
        session.submit_blocking(input).unwrap();
        let (_, got) = session.recv().unwrap();
        assert_eq!(
            bits(&exec.run(input)),
            bits(&got),
            "frame {k} diverged after the live codec switch"
        );
    }
    let report = session.close();
    assert!(report.link_wire_bytes < report.link_raw_bytes);
    assert_eq!(report.max_accuracy_delta, 0.0);
}

#[test]
fn fleet_budget_gates_codec_switches() {
    // Two tenants, a one-reconfiguration budget window of 4 ingests:
    // tenant a's codec switch spends the window's budget, so tenant b's
    // switch is withheld until the window rolls — then re-fires, because
    // a withheld CodecSwitcher re-proposes from the problem's state.
    let engine = || {
        let (_, p) = constrained_problem();
        AdaptiveEngine::new(
            p,
            HpaOptions::paper(),
            Box::new(CodecSwitcher::new(
                Box::new(NoAdapt),
                WireCodec::Lossless,
                4.0,
                10.0,
            )),
        )
    };
    let mut fleet = FleetController::new(FleetOptions::new().budget(1, 4).cooldown(0));
    fleet.register("a", 1.0, engine());
    fleet.register("b", 1.0, engine());
    let low = Observation::Network {
        net: NetworkCondition::custom_backbone(3.0),
    };

    assert!(fleet.ingest("a", &low).is_empty()); // a: streak 1
    let updates = fleet.ingest("a", &low); // a: engages, spends the budget
    assert!(
        matches!(
            updates.as_slice(),
            [d3_engine::FleetUpdate { tenant, update: ControlUpdate::Codec(u) }]
                if tenant == "a" && u.link == 1
        ),
        "tenant a's switch must pass the fresh budget, got {updates:?}"
    );
    assert!(fleet.ingest("b", &low).is_empty()); // b: streak 1
    assert!(
        fleet.ingest("b", &low).is_empty(),
        "tenant b's switch must be withheld by the spent budget"
    );
    assert_eq!(fleet.held_by_budget, 1);
    assert!(
        fleet.engine("b").unwrap().problem().link_codec(1).is_raw(),
        "a withheld switch must not touch the problem"
    );

    // Ingest 5 opens a new budget window; the still-starved link
    // re-proposes and now goes through.
    assert!(fleet.ingest("b", &low).is_empty()); // b: streak 1 again
    let updates = fleet.ingest("b", &low);
    assert!(
        matches!(
            updates.as_slice(),
            [d3_engine::FleetUpdate { tenant, update: ControlUpdate::Codec(u) }]
                if tenant == "b" && u.link == 1 && u.codec == WireCodec::Lossless
        ),
        "tenant b's switch must re-fire after the window rolls, got {updates:?}"
    );
    assert!(!fleet.engine("b").unwrap().problem().link_codec(1).is_raw());
}

#[test]
fn mid_stream_manual_codec_switches_stay_lossless() {
    // Flip codecs on a *running* pipeline, twice, with frames in flight
    // across each flip: every output must stay bit-identical. Frames are
    // self-describing, so no quiesce is needed.
    let g = Arc::new(chain_graph());
    let d = even_split_deployment(&g);
    let pipeline =
        StreamPipeline::new(g.clone(), STREAM_SEED, &d, None, StreamOptions::new()).unwrap();
    let exec = Executor::new(&g, STREAM_SEED);
    let frames = frame_burst(9, (3, 16, 16), 1300);
    for (k, input) in frames.iter().enumerate() {
        if k == 3 {
            pipeline.set_link_codec(0, WireCodec::Lossless);
            pipeline.set_link_codec(1, WireCodec::Lossless);
            assert_eq!(pipeline.link_codecs(), [WireCodec::Lossless; 2]);
        }
        if k == 6 {
            pipeline.set_link_codec(0, WireCodec::Raw);
            assert_eq!(
                pipeline.link_codecs(),
                [WireCodec::Raw, WireCodec::Lossless]
            );
        }
        pipeline.submit(input).unwrap();
        let (_, got) = pipeline.recv().unwrap();
        assert_eq!(
            bits(&exec.run(input)),
            bits(&got),
            "frame {k} diverged across a live codec flip"
        );
    }
    let report = pipeline.close();
    assert_eq!(report.reconfigurations, 0, "codec flips are not plan swaps");
    assert!(report.link_wire_bytes < report.link_raw_bytes);
}
