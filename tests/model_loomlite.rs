//! Self-tests for the vendored `loomlite` model checker: the explorer
//! must find a deliberately planted race, report a replayable seed, and
//! replay that seed to the exact same failure. These run without the
//! `model` feature — loomlite itself is feature-free.

use loomlite::sync::atomic::{AtomicU64, Ordering};
use loomlite::sync::Mutex;
use loomlite::{model, replay, thread, Builder};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// The toy two-thread counter with a planted lost-update race: each
/// thread does a non-atomic read-modify-write (load then store), so an
/// interleaving where both load before either stores loses an
/// increment.
fn racy_counter() {
    let counter = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..2)
        .map(|_| {
            let counter = counter.clone();
            thread::spawn(move || {
                let seen = counter.load(Ordering::SeqCst);
                counter.store(seen + 1, Ordering::SeqCst);
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    assert_eq!(counter.load(Ordering::SeqCst), 2, "lost update");
}

/// Extracts the replay seed from a loomlite failure message:
/// `loomlite: model failure [seed 0-1-2]: ...`.
fn seed_of_failure(payload: &(dyn std::any::Any + Send)) -> (String, String) {
    let message = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .expect("loomlite failures carry string payloads");
    let start = message
        .find("[seed ")
        .expect("failure message names a seed")
        + "[seed ".len();
    let end = message[start..]
        .find(']')
        .expect("seed is bracket-delimited")
        + start;
    (message[start..end].to_string(), message)
}

#[test]
fn explorer_finds_the_planted_race() {
    let outcome = catch_unwind(AssertUnwindSafe(|| model(racy_counter)));
    let payload = outcome.expect_err("the lost update must be found");
    let (seed, message) = seed_of_failure(&*payload);
    assert!(
        message.contains("lost update"),
        "failure is the planted assertion, got: {message}"
    );
    assert!(
        !seed.is_empty(),
        "a two-thread race needs at least one real scheduling decision"
    );
}

#[test]
fn seeded_replay_reproduces_the_exact_failure() {
    let outcome = catch_unwind(AssertUnwindSafe(|| model(racy_counter)));
    let payload = outcome.expect_err("the lost update must be found");
    let (seed, explored_message) = seed_of_failure(&*payload);

    // Same seed → same schedule → same failure, twice over.
    let mut replayed = Vec::new();
    for _ in 0..2 {
        let outcome = catch_unwind(AssertUnwindSafe(|| replay(&seed, racy_counter)));
        let payload = outcome.expect_err("the seed replays to the failure");
        let (replay_seed, replay_message) = seed_of_failure(&*payload);
        assert_eq!(replay_seed, seed, "replay followed the given schedule");
        replayed.push(replay_message);
    }
    assert_eq!(replayed[0], replayed[1], "replay is deterministic");
    assert_eq!(
        replayed[0], explored_message,
        "replay reproduces the explorer's failure verbatim"
    );
}

#[test]
fn mutex_guarded_counter_survives_exhaustive_exploration() {
    let report = model(|| {
        let counter = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let counter = counter.clone();
                thread::spawn(move || {
                    let mut guard = counter.lock().unwrap();
                    *guard += 1;
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(*counter.lock().unwrap(), 2);
    });
    assert!(report.complete, "two mutexed increments are a tiny space");
    assert!(
        report.schedules > 1,
        "lock contention must yield real scheduling decisions"
    );
}

#[test]
fn deadlock_is_detected_and_named() {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        model(|| {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (a.clone(), b.clone());
            let handle = thread::spawn(move || {
                let _b = b2.lock().unwrap();
                let _a = a2.lock().unwrap();
            });
            let _a = a.lock().unwrap();
            let _b = b.lock().unwrap();
            drop((_a, _b));
            handle.join().unwrap();
        })
    }));
    let payload = outcome.expect_err("AB/BA lock order must deadlock somewhere");
    let (_, message) = seed_of_failure(&*payload);
    assert!(message.contains("deadlock"), "got: {message}");
}

#[test]
fn park_unpark_handshake_is_modelled() {
    let report = Builder::new().max_schedules(10_000).check(|| {
        let flag = Arc::new(AtomicU64::new(0));
        let flag2 = flag.clone();
        let parked = thread::spawn(move || {
            while flag2.load(Ordering::SeqCst) == 0 {
                thread::park();
            }
        });
        flag.store(1, Ordering::SeqCst);
        parked.unpark();
        parked.join().unwrap();
    });
    assert!(report.complete, "the handshake space must be exhausted");
}
