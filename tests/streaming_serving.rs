//! Integration tests for the streaming serving API: the pipelined
//! `StreamSession` must beat sequential `serve` loops on throughput,
//! while staying bit-identical to one-shot inference frame for frame
//! (the paper's lossless claim).
//!
//! The throughput edge is structural, not scheduling luck: a session's
//! stage workers materialize their segment weights **once**
//! (`SegmentExecutor`) and stay resident, whereas every `serve` call
//! respawns tier threads and rebuilds every layer's weights; on
//! multi-core hosts the stages additionally overlap adjacent frames.

use std::time::{Duration, Instant};

use d3_core::{
    BatchOptions, D3Runtime, ModelOptions, PoolOptions, ServeError, StreamOptions, SubmitError,
    Tier,
};
use d3_model::zoo;
use d3_tensor::{max_abs_diff, Tensor};
// The shared builder kit: even-split runtimes (every pipeline stage does
// real work) and deterministic frame bursts. [`zoo::conv_mlp`] is the
// weight-heavy shape where per-frame weight rebuilding dominates a
// `serve` loop.
use d3_test_support::{even_split_runtime as runtime_with, frame_burst};

#[test]
fn saturated_stream_beats_sequential_serve_throughput() {
    let rt = runtime_with("mlp", zoo::conv_mlp(8), 11);
    let frames = frame_burst(20, (3, 8, 8), 500);

    // Warm both paths (first serve pays one-off page-in costs).
    let _ = rt.serve("mlp", &frames[0]).unwrap();

    let t0 = Instant::now();
    for frame in &frames {
        let _ = rt.serve("mlp", frame).unwrap();
    }
    let sequential_s = t0.elapsed().as_secs_f64();
    let sequential_fps = frames.len() as f64 / sequential_s;

    let session = rt
        .open_stream("mlp", StreamOptions::new().capacity(4))
        .unwrap();
    let t1 = Instant::now();
    let mut received = 0usize;
    for frame in &frames {
        loop {
            match session.submit(frame) {
                Ok(_) => break,
                Err(SubmitError::Backpressure) => {
                    session.recv().unwrap();
                    received += 1;
                }
                Err(e) => panic!("unexpected submit error: {e}"),
            }
        }
    }
    while received < frames.len() {
        session.recv().unwrap();
        received += 1;
    }
    let streamed_s = t1.elapsed().as_secs_f64();
    let report = session.close();

    assert!(
        streamed_s < sequential_s,
        "pipelined stream ({streamed_s:.3}s) not faster than sequential serve ({sequential_s:.3}s)"
    );
    assert!(
        report.measured.throughput_fps > sequential_fps,
        "measured throughput {:.1} fps <= sequential {:.1} fps",
        report.measured.throughput_fps,
        sequential_fps
    );
    assert_eq!(report.measured.frames, frames.len());
    assert_eq!(report.submitted, frames.len() as u64);
}

#[test]
fn stream_report_exposes_per_stage_utilization_and_bottleneck() {
    let rt = runtime_with("mlp", zoo::conv_mlp(8), 12);
    let session = rt.open_stream("mlp", StreamOptions::new()).unwrap();
    for k in 0..12u64 {
        session
            .submit_blocking(&Tensor::random(3, 8, 8, 700 + k))
            .unwrap();
    }
    while session.pending() > 0 {
        session.recv().unwrap();
    }
    let report = session.close();

    // Interleaved [stage, link, stage, link, stage], like the simulator.
    assert_eq!(report.measured.utilization.len(), 5);
    assert_eq!(
        report.server_names,
        vec!["device", "device→", "edge", "edge→", "cloud"]
    );
    for &u in &report.measured.utilization {
        assert!((0.0..=1.0 + 1e-6).contains(&u), "utilization {u}");
    }
    let (bottleneck_name, bottleneck_util) = report.bottleneck().unwrap();
    assert!(report.server_names.iter().any(|n| n == bottleneck_name));
    for &u in &report.measured.utilization {
        assert!(u <= bottleneck_util + 1e-12);
    }
    // The three compute stages all ran real layers under a saturating
    // submit loop, so each must have accumulated busy time.
    for name in ["device", "edge", "cloud"] {
        assert!(
            report.utilization_of(name).unwrap() > 0.0,
            "{name} stage never worked"
        );
    }
    // Latency percentiles are ordered like the simulator's.
    let m = &report.measured;
    assert!(m.p50_latency_s <= m.p95_latency_s + 1e-12);
    assert!(m.p95_latency_s <= m.max_latency_s + 1e-12);
    // And the predicted pipeline is available in the same shape.
    let predicted = report.predicted_stats(30.0, 100);
    assert_eq!(predicted.utilization.len(), m.utilization.len());
}

#[test]
fn streamed_outputs_are_bit_identical_frame_for_frame() {
    // Forced 3-tier split, no VSM.
    let rt = runtime_with("chain", zoo::chain_cnn(6, 8, 16), 21);
    let frames = frame_burst(10, (3, 16, 16), 900);
    let expected: Vec<Tensor> = frames
        .iter()
        .map(|f| rt.serve("chain", f).unwrap())
        .collect();

    let session = rt.open_stream("chain", StreamOptions::new()).unwrap();
    let mut ids = Vec::new();
    for frame in &frames {
        ids.push(session.submit_blocking(frame).unwrap());
    }
    for (k, expect) in expected.iter().enumerate() {
        let (id, got) = session.recv().unwrap();
        assert_eq!(id, ids[k], "results out of submission order");
        assert_eq!(
            max_abs_diff(&got, expect),
            Some(0.0),
            "frame {k} diverged from one-shot serve"
        );
    }
    let _ = session.close();
}

#[test]
fn streamed_outputs_stay_lossless_with_vsm_edge_tiling() {
    // Paper-default HPA + VSM deployment: the edge stage may run its
    // conv runs tile-parallel; streamed outputs must still match.
    let mut rt = D3Runtime::new();
    rt.register("tiny", zoo::tiny_cnn(16), ModelOptions::new().seed(5))
        .unwrap();
    let frames = frame_burst(6, (3, 16, 16), 40);
    let expected: Vec<Tensor> = frames
        .iter()
        .map(|f| rt.serve("tiny", f).unwrap())
        .collect();

    let session = rt.open_stream("tiny", StreamOptions::new()).unwrap();
    for frame in &frames {
        session.submit_blocking(frame).unwrap();
    }
    for (k, expect) in expected.iter().enumerate() {
        let (_, got) = session.recv().unwrap();
        assert_eq!(max_abs_diff(&got, expect), Some(0.0), "frame {k} diverged");
    }
    let report = session.close();
    assert_eq!(report.measured.frames, frames.len());
}

#[test]
fn backpressure_sheds_load_instead_of_buffering() {
    let rt = runtime_with("mlp", zoo::conv_mlp(8), 31);
    let session = rt
        .open_stream("mlp", StreamOptions::new().capacity(1))
        .unwrap();
    let input = Tensor::random(3, 8, 8, 77);
    let mut rejected = 0u64;
    for _ in 0..100 {
        if session.submit(&input) == Err(SubmitError::Backpressure) {
            rejected += 1;
        }
    }
    assert!(rejected > 0, "a capacity-1 queue never pushed back");
    let report = session.close();
    assert_eq!(report.rejected, rejected);
    // Every admitted frame still completed.
    assert_eq!(report.measured.frames as u64, report.submitted);
}

#[test]
fn open_stream_errors_are_typed() {
    let rt = runtime_with("mlp", zoo::conv_mlp(8), 41);
    assert_eq!(
        rt.open_stream("ghost", StreamOptions::new()).err(),
        Some(ServeError::UnknownModel("ghost".into()))
    );
    let session = rt.open_stream("mlp", StreamOptions::new()).unwrap();
    let wrong = Tensor::random(3, 16, 16, 1);
    assert!(matches!(
        session.submit(&wrong),
        Err(SubmitError::ShapeMismatch { .. })
    ));
    let _ = session.close();
}

/// Streams `frames` through `session`-like options and returns the
/// measured throughput, asserting every output bit-identical to `serve`.
fn run_stream(rt: &D3Runtime, model: &str, options: StreamOptions, frames: &[Tensor]) -> f64 {
    let expected: Vec<Tensor> = frames.iter().map(|f| rt.serve(model, f).unwrap()).collect();
    let session = rt.open_stream(model, options).unwrap();
    let mut received = 0usize;
    for frame in frames {
        loop {
            match session.submit(frame) {
                Ok(_) => break,
                Err(SubmitError::Backpressure) => {
                    let (id, got) = session.recv().unwrap();
                    assert_eq!(
                        max_abs_diff(&got, &expected[id.0 as usize]),
                        Some(0.0),
                        "frame {id} diverged"
                    );
                    received += 1;
                }
                Err(e) => panic!("unexpected submit error: {e}"),
            }
        }
    }
    while received < frames.len() {
        let (id, got) = session.recv().unwrap();
        assert_eq!(
            max_abs_diff(&got, &expected[id.0 as usize]),
            Some(0.0),
            "frame {id} diverged"
        );
        received += 1;
    }
    let report = session.close();
    assert_eq!(report.measured.frames, frames.len());
    report.measured.throughput_fps
}

#[test]
fn pooled_session_is_bit_identical_to_serve() {
    let rt = runtime_with("chain", zoo::chain_cnn(6, 8, 16), 61);
    let frames = frame_burst(20, (3, 16, 16), 1100);
    let fps = run_stream(
        &rt,
        "chain",
        StreamOptions::new()
            .capacity(8)
            .pool(PoolOptions::uniform(2)),
        &frames,
    );
    assert!(fps > 0.0);
}

#[test]
fn batched_session_is_bit_identical_to_serve() {
    let rt = runtime_with("mlp", zoo::conv_mlp(8), 62);
    let frames = frame_burst(16, (3, 8, 8), 1200);
    let fps = run_stream(
        &rt,
        "mlp",
        StreamOptions::new()
            .capacity(16)
            .batching(BatchOptions::frames(4).deadline(Duration::from_millis(50))),
        &frames,
    );
    assert!(fps > 0.0);
}

#[test]
fn four_device_workers_double_throughput_on_a_device_bound_stage() {
    // The acceptance bar for worker pools: a device-bottlenecked model
    // must stream ≥ 2x faster with 4 device workers than with 1, with
    // bit-identical, submission-ordered outputs (run_stream checks
    // both). The bottleneck is a latency-bound device stage (injected
    // 8 ms stall per frame — an RPC-bound or contended accelerator), so
    // the speedup measures pipeline concurrency, not host core count.
    let rt = runtime_with("chain", zoo::chain_cnn(4, 8, 16), 63);
    let frames = frame_burst(24, (3, 16, 16), 1300);
    let stall = Duration::from_millis(8);
    let base = StreamOptions::new()
        .capacity(16)
        .inject_delay(Tier::Device, 1, stall);
    let fps_1 = run_stream(&rt, "chain", base.clone(), &frames);
    let fps_4 = run_stream(&rt, "chain", base.workers(Tier::Device, 4), &frames);
    assert!(
        fps_4 >= 2.0 * fps_1,
        "4 device workers: {fps_4:.1} fps, single worker: {fps_1:.1} fps — speedup {:.2}x < 2x",
        fps_4 / fps_1
    );
}

#[test]
fn mid_stream_pool_resize_is_lossless_at_session_level() {
    let rt = runtime_with("chain", zoo::chain_cnn(6, 8, 16), 64);
    let frames = frame_burst(10, (3, 16, 16), 1400);
    let expected: Vec<Tensor> = frames
        .iter()
        .map(|f| rt.serve("chain", f).unwrap())
        .collect();
    let mut session = rt
        .open_stream("chain", StreamOptions::new().capacity(16))
        .unwrap();
    for frame in &frames[..4] {
        session.submit_blocking(frame).unwrap();
    }
    let resize = session.resize_pool(Tier::Edge, 3).unwrap();
    assert_eq!((resize.from, resize.to), (1, 3));
    assert_eq!(session.pool(), [1, 3, 1]);
    for frame in &frames[4..] {
        session.submit_blocking(frame).unwrap();
    }
    for (k, expect) in expected.iter().enumerate() {
        let (id, got) = session.recv().unwrap();
        assert_eq!(id.0 as usize, k, "order across the resize");
        assert_eq!(max_abs_diff(&got, expect), Some(0.0), "frame {k} diverged");
    }
    let report = session.close();
    assert_eq!(
        report.measured.frames as u64, report.submitted,
        "zero drops"
    );
    assert_eq!(report.stage_pools[1].resize_events, 1);
}

#[test]
fn model_rotation_with_models_and_unregister() {
    let mut rt = D3Runtime::new();
    rt.register("v1", zoo::tiny_cnn(16), ModelOptions::new().seed(1))
        .unwrap();
    assert_eq!(rt.models(), vec!["v1"]);
    // Roll out v2 alongside, then retire v1 — no runtime rebuild.
    rt.register("v2", zoo::tiny_cnn(16), ModelOptions::new().seed(2))
        .unwrap();
    assert_eq!(rt.models(), vec!["v1", "v2"]);
    let retired = rt.unregister("v1").unwrap();
    assert_eq!(retired.graph().name(), "tiny_cnn");
    assert_eq!(rt.models(), vec!["v2"]);
    assert!(rt.serve("v2", &Tensor::random(3, 16, 16, 3)).is_ok());
    assert_eq!(
        rt.serve("v1", &Tensor::random(3, 16, 16, 3)).err(),
        Some(ServeError::UnknownModel("v1".into()))
    );
}
