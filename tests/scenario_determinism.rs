//! Determinism properties of the scenario layer: the same
//! [`WorkloadGen`] seed must reproduce its trace bit-for-bit, and
//! replaying one trace twice — as scripted [`Observation::Network`]
//! batches under a [`FakeClock`], or live through the pipeline's
//! `shape_links` seam — must yield identical observation sequences.
//! These are the properties that make a scenario-matrix failure
//! replayable from nothing but its seed.

use d3_core::Observation;
use d3_engine::stream::{StreamOptions, StreamPipeline};
use d3_model::zoo;
use d3_simnet::{LinkRates, NetworkCondition};
use d3_tensor::Tensor;
use d3_test_support::{even_split_deployment, FakeClock, WorkloadGen, STREAM_SEED};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// An arbitrary workload description: every builder knob drawn from its
/// meaningful range, including unshaped (infinite) link rates. The
/// vendored proptest only ranges over integers, so fractional knobs are
/// drawn as integers and scaled.
fn gen_strategy() -> impl Strategy<Value = WorkloadGen> {
    let rate = || (0u32..=100).prop_map(|r| if r == 0 { f64::INFINITY } else { f64::from(r) });
    (
        (any::<u64>(), 1usize..=16, 0u32..=16, 0u32..=100),
        (0usize..=3, 10u32..=80),
        (rate(), rate(), 0u32..=50),
        (0u32..=100, 0u32..=100),
    )
        .prop_map(
            |((seed, steps, base, diurnal), (crowds, mult), (de, ec, jitter), (arr, dep))| {
                WorkloadGen::new(seed)
                    .steps(steps)
                    .load(f64::from(base), f64::from(diurnal) / 100.0)
                    .flash_crowds(crowds, f64::from(mult) / 10.0)
                    .bandwidth(de, ec, f64::from(jitter) / 100.0)
                    .churn(f64::from(arr) / 100.0, f64::from(dep) / 100.0)
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The generator is a pure function of its description: generating
    /// twice — or from a clone — yields bit-identical traces.
    #[test]
    fn same_seed_generates_bit_identical_traces(gen in gen_strategy()) {
        let a = gen.generate();
        let b = gen.generate();
        prop_assert_eq!(&a, &b);
        let c = gen.clone().generate();
        prop_assert_eq!(&a, &c);
    }

    /// Replaying a trace's scripted bandwidth observations twice under a
    /// fake clock yields identical [`Observation::Network`] sequences
    /// and identical final clock readings.
    #[test]
    fn scripted_replay_is_deterministic_under_fake_clock(gen in gen_strategy()) {
        let trace = gen.generate();
        let step = Duration::from_millis(10);
        let run = || {
            let clock = FakeClock::new();
            let mut seen = Vec::new();
            trace.scripted_bandwidth().play(&clock, step, |_, obs| {
                if let Observation::Network { net } = obs {
                    seen.push(net.rates());
                }
            });
            (seen, clock.now())
        };
        let (a, at) = run();
        let (b, bt) = run();
        prop_assert_eq!(a.len(), trace.steps.len());
        prop_assert_eq!(a, b);
        prop_assert_eq!(at, bt);
    }
}

/// Replaying one trace through the live `shape_links` seam twice — two
/// pipelines, same deployment, stepping `set_link_shaping` through the
/// trace while streaming — applies an identical sequence of network
/// observations both times.
#[test]
fn shape_links_replay_applies_identical_network_sequences() {
    let trace = WorkloadGen::new(77)
        .steps(6)
        .load(1.0, 0.0)
        .bandwidth(48.0, 24.0, 0.25)
        .collapse(2, 2, 0.5)
        .generate();
    let replay = || {
        let g = Arc::new(zoo::tiny_cnn(8));
        let d = even_split_deployment(&g);
        let options = StreamOptions::new().shape_links(trace.steps[0].shaping());
        let pipeline = StreamPipeline::new(g.clone(), STREAM_SEED, &d, None, options).unwrap();
        let shape = g.input_shape();
        let input = Tensor::random(shape.c, shape.h, shape.w, 1);
        let mut nets = Vec::new();
        for step in &trace.steps {
            pipeline.set_link_shaping(step.shaping());
            let applied = pipeline.link_shaping();
            nets.push(Observation::Network {
                net: NetworkCondition::Custom(LinkRates {
                    device_edge_mbps: applied.device_edge_mbps,
                    edge_cloud_mbps: applied.edge_cloud_mbps,
                    device_cloud_mbps: f64::INFINITY,
                }),
            });
            pipeline.submit(&input).unwrap();
            pipeline.recv().unwrap();
        }
        let report = pipeline.close();
        assert_eq!(report.submitted, trace.steps.len() as u64);
        nets
    };
    assert_eq!(replay(), replay());
}
