//! Real multi-process serving, end to end: the streaming pipeline's
//! edge/cloud stages run in separate `d3-stage-server` OS processes
//! behind Unix-domain stage links, and the three ISSUE-8 acceptance
//! claims are asserted against them:
//!
//! 1. a 3-stage pipeline over UDS is **bit-identical and in order**
//!    versus the in-process run;
//! 2. killing and respawning the edge stage server mid-stream loses
//!    **zero frames** (the proxy's retransmit window replays un-acked
//!    batches against identical weights);
//! 3. a peer held down past its deadline triggers the session's
//!    **failover reroute** — the failed tier's vertices move to a live
//!    tier via `apply_plan`, and every admitted frame still arrives.

use d3_core::{D3Runtime, StreamOptions, SubmitError, Tier};
use d3_engine::{LinkAddr, RemoteOptions};
use d3_tensor::{max_abs_diff, Tensor};
use d3_test_support::{chain_graph, even_split_runtime, frame_burst, reference_outputs, SEED};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// The zoo spec both sides build: the stage servers from the CLI flag,
/// the client runtime from [`chain_graph`]. The graph's *name*
/// (`chain_cnn`) is what the link hello carries.
const MODEL_SPEC: &str = "chain_cnn:6:8:16";

/// A unique-per-test UDS socket path (kept short: the kernel caps UDS
/// paths at ~100 bytes).
fn sock_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("d3-mp-{}-{tag}.sock", std::process::id()))
}

/// One `d3-stage-server` child process; killed on drop.
struct StageServer {
    child: Child,
    addr: LinkAddr,
}

impl StageServer {
    /// Spawns the real stage-server binary on `sock` and waits until
    /// its listener accepts connections.
    fn spawn(sock: &Path) -> StageServer {
        let listen = format!("uds:{}", sock.display());
        let child = Command::new(env!("CARGO_BIN_EXE_d3-stage-server"))
            .args(["--listen", &listen, "--model", MODEL_SPEC])
            .stdout(Stdio::null())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn d3-stage-server");
        let addr = LinkAddr::parse(&listen).expect("valid uds address");
        let give_up = Instant::now() + Duration::from_secs(30);
        loop {
            // A successful probe connect (immediately dropped) proves the
            // listener is up; the server's accept loop shrugs it off.
            match addr.connect() {
                Ok(_) => break,
                Err(e) => {
                    assert!(
                        Instant::now() < give_up,
                        "stage server never came up at {addr}: {e}"
                    );
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        }
        StageServer { child, addr }
    }

    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for StageServer {
    fn drop(&mut self) {
        self.kill();
        if let LinkAddr::Uds(path) = &self.addr {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Streams `frames` through a session opened with `options`, returning
/// `(id, output)` pairs in delivery order.
fn run_stream(rt: &D3Runtime, options: StreamOptions, frames: &[Tensor]) -> Vec<(u64, Tensor)> {
    let session = rt.open_stream("chain", options).expect("open stream");
    let mut out = Vec::new();
    for frame in frames {
        loop {
            match session.submit(frame) {
                Ok(_) => break,
                Err(SubmitError::Backpressure) => {
                    let (id, t) = session.recv().expect("mid-burst recv");
                    out.push((id.0, t));
                }
                Err(e) => panic!("unexpected submit error: {e}"),
            }
        }
    }
    while out.len() < frames.len() {
        let (id, t) = session.recv().expect("drain recv");
        out.push((id.0, t));
    }
    let report = session.close();
    assert_eq!(report.measured.frames, frames.len());
    out
}

/// Every frame delivered exactly once, in submission order, and each
/// output bit-identical to the single-node reference.
fn assert_lossless_in_order(results: &[(u64, Tensor)], expect: &[Tensor]) {
    assert_eq!(results.len(), expect.len(), "frame count");
    for (k, (id, got)) in results.iter().enumerate() {
        assert_eq!(*id, k as u64, "delivery order");
        assert_eq!(
            max_abs_diff(got, &expect[k]),
            Some(0.0),
            "frame {k} diverged from the single-node reference"
        );
    }
}

/// Claim 1: device in-process, edge and cloud in separate OS processes
/// over UDS — outputs in order and bit-identical to both the all-local
/// pipeline and single-node inference.
#[test]
fn three_stage_pipeline_over_uds_is_bit_identical_and_in_order() {
    let edge = StageServer::spawn(&sock_path("edge-id"));
    let cloud = StageServer::spawn(&sock_path("cloud-id"));
    let rt = even_split_runtime("chain", chain_graph(), SEED);
    let frames = frame_burst(12, (3, 16, 16), 900);
    let expect = reference_outputs(&chain_graph(), SEED, &frames);

    let local = run_stream(&rt, StreamOptions::new().capacity(4), &frames);
    let remote = run_stream(
        &rt,
        StreamOptions::new()
            .capacity(4)
            .remote(Tier::Edge, RemoteOptions::new(edge.addr.clone()))
            .remote(Tier::Cloud, RemoteOptions::new(cloud.addr.clone())),
        &frames,
    );

    assert_lossless_in_order(&local, &expect);
    assert_lossless_in_order(&remote, &expect);
}

/// Claim 2: kill the edge stage server mid-stream, respawn it on the
/// same socket — the retransmit window replays every un-acked batch on
/// reconnect and the stream completes with zero lost, zero duplicated,
/// in-order, bit-identical frames.
#[test]
fn killing_and_respawning_the_edge_server_loses_no_frames() {
    let sock = sock_path("edge-kill");
    let mut edge = StageServer::spawn(&sock);
    let rt = even_split_runtime("chain", chain_graph(), SEED);
    let frames = frame_burst(10, (3, 16, 16), 2000);
    let expect = reference_outputs(&chain_graph(), SEED, &frames);

    let options = StreamOptions::new().capacity(4).remote(
        Tier::Edge,
        RemoteOptions::new(edge.addr.clone())
            .retry(Duration::from_millis(20))
            // Generous: this test exercises crash *recovery*, so the
            // respawn must always beat the failover deadline.
            .deadline(Duration::from_secs(120)),
    );
    let session = rt.open_stream("chain", options).expect("open stream");

    let mut out = Vec::new();
    let submit = |frame: &Tensor, out: &mut Vec<(u64, Tensor)>| loop {
        match session.submit(frame) {
            Ok(_) => break,
            Err(SubmitError::Backpressure) => {
                let (id, t) = session.recv().expect("mid-burst recv");
                out.push((id.0, t));
            }
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    };

    // First half in flight — then the edge process dies with batches
    // un-acked in the proxy's retransmit window.
    for frame in &frames[..5] {
        submit(frame, &mut out);
    }
    edge.kill();

    // Respawn on the same socket; keep streaming through the outage —
    // the proxy reconnects and replays in the background.
    let _edge2 = StageServer::spawn(&sock);
    for frame in &frames[5..] {
        submit(frame, &mut out);
    }
    while out.len() < frames.len() {
        let (id, t) = session.recv().expect("drain recv");
        out.push((id.0, t));
    }
    let report = session.close();
    assert_eq!(report.measured.frames, frames.len());
    assert_lossless_in_order(&out, &expect);
}

/// Claim 3: a peer that stays down past its deadline flips the proxy to
/// failed; `check_failover` then reroutes the failed tier's vertices to
/// a live tier through `apply_plan`, and every admitted frame — the
/// stranded in-flight tail included — still arrives in order,
/// bit-identical.
#[test]
fn peer_down_past_deadline_fails_over_to_cloud() {
    // No server is ever started on this socket: the peer is down from
    // the first dial and stays down.
    let addr = LinkAddr::parse(&format!("uds:{}", sock_path("edge-down").display()))
        .expect("valid uds address");
    let rt = even_split_runtime("chain", chain_graph(), SEED);
    let frames = frame_burst(6, (3, 16, 16), 3000);
    let expect = reference_outputs(&chain_graph(), SEED, &frames);

    let options = StreamOptions::new().capacity(8).remote(
        Tier::Edge,
        RemoteOptions::new(addr)
            .retry(Duration::from_millis(10))
            .deadline(Duration::from_millis(250)),
    );
    let mut session = rt.open_stream("chain", options).expect("open stream");
    assert!(
        session.assignment().tiers().contains(&Tier::Edge),
        "the plan must actually have an edge segment to fail over"
    );

    // Admit the whole burst while the edge peer is unreachable: frames
    // pile up in the dead proxy's window and upstream queues.
    for frame in &frames {
        session.submit(frame).expect("capacity covers the burst");
    }

    // The reader declares the peer failed once it stays down past the
    // deadline; the session then reroutes around it.
    let give_up = Instant::now() + Duration::from_secs(30);
    let (failed, swap) = loop {
        if let Some(outcome) = session.check_failover() {
            break outcome;
        }
        assert!(Instant::now() < give_up, "failover never triggered");
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(failed, Tier::Edge);
    assert!(!swap.changed.is_empty(), "the reroute moved vertices");
    assert!(
        session
            .assignment()
            .tiers()
            .iter()
            .all(|&t| t != Tier::Edge),
        "no vertex may remain on the failed tier"
    );
    // Failover is terminal for this peer: nothing further to fail.
    assert!(session.check_failover().is_none());

    // Every admitted frame arrives — rerouted, in order, bit-identical.
    let mut out = Vec::new();
    while out.len() < frames.len() {
        let (id, t) = session.recv().expect("post-failover recv");
        out.push((id.0, t));
    }
    let report = session.close();
    assert_eq!(report.measured.frames, frames.len());
    assert_lossless_in_order(&out, &expect);
}
