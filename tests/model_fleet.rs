//! Model-checked schedules for the fleet controller's coordination
//! mailbox (`d3_engine::flow::Mailbox`): the arbiter posts coordinated
//! updates from its own thread while tenant sessions drain and supersede
//! concurrently. See `tests/model_stream.rs` for how these explorations
//! work.
#![cfg(feature = "model")]

use d3_engine::flow::Mailbox;
use loomlite::{model, thread};
use std::sync::{Arc, Mutex as StdMutex};

/// The supersession invariant under every post/supersede/take schedule:
/// a supersedable plan is either dropped by the supersede or delivered
/// by exactly one take — never both, never neither — while the durable
/// pool update always survives to exactly one take.
#[test]
fn model_mailbox_supersession_never_loses_durable_items() {
    let report = model(|| {
        let mailbox = Arc::new(Mailbox::new());
        let taken = Arc::new(StdMutex::new(Vec::new()));
        let dropped = Arc::new(StdMutex::new(0usize));

        // The arbiter thread queues an eviction plan (supersedable) and
        // a pool resize (durable) for the tenant.
        let arbiter = {
            let mailbox = Arc::clone(&mailbox);
            thread::spawn(move || {
                mailbox.post("evict-plan", true);
                mailbox.post("pool-resize", false);
            })
        };
        // The tenant's own plan change supersedes stale plans, then its
        // session drains the mailbox — racing the arbiter's posts.
        let tenant = {
            let mailbox = Arc::clone(&mailbox);
            let taken = Arc::clone(&taken);
            let dropped = Arc::clone(&dropped);
            thread::spawn(move || {
                *dropped.lock().unwrap() += mailbox.supersede();
                taken.lock().unwrap().extend(mailbox.take());
            })
        };
        arbiter.join().unwrap();
        tenant.join().unwrap();
        // The session's next poll drains whatever the race left behind.
        taken.lock().unwrap().extend(mailbox.take());

        let taken = taken.lock().unwrap().clone();
        let dropped = *dropped.lock().unwrap();
        let plans = taken.iter().filter(|u| **u == "evict-plan").count();
        let pools = taken.iter().filter(|u| **u == "pool-resize").count();
        assert_eq!(
            dropped + plans,
            1,
            "the plan is dropped or delivered exactly once (dropped={dropped}, delivered={plans})"
        );
        assert_eq!(pools, 1, "the durable pool update always arrives once");
        assert!(mailbox.is_empty(), "nothing is left behind");
    });
    assert!(
        report.complete,
        "mailbox schedule space must be exhausted, ran {} schedules",
        report.schedules
    );
}

/// Two arbiters posting durable updates while the owner drains midway:
/// every posted item is delivered exactly once across the takes, in
/// post order per arbiter, under every interleaving.
#[test]
fn model_mailbox_concurrent_posts_all_delivered_exactly_once() {
    let report = model(|| {
        let mailbox = Arc::new(Mailbox::new());
        let posters: Vec<_> = ["a", "b"]
            .into_iter()
            .map(|tag| {
                let mailbox = Arc::clone(&mailbox);
                thread::spawn(move || {
                    mailbox.post(tag, false);
                })
            })
            .collect();
        // The owner races a drain against the posts.
        let early = mailbox.take();
        for p in posters {
            p.join().unwrap();
        }
        let mut all = early;
        all.extend(mailbox.take());
        all.sort_unstable();
        assert_eq!(all, ["a", "b"], "each post delivered exactly once");
    });
    assert!(
        report.complete,
        "concurrent-post schedule space must be exhausted, ran {} schedules",
        report.schedules
    );
}
