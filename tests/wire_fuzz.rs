//! Adversarial-input fuzzing for every decode surface a remote peer can
//! reach: the raw tensor wire format, all four codec framings, and the
//! stage-link message framing. A corrupt or truncated byte stream from
//! a crashed / hostile peer must surface as a **typed error** — never a
//! panic, never an unbounded allocation — because the streaming
//! pipeline's reconnect path turns decode errors into retransmits,
//! while a panic would take the whole process down.

use bytes::Bytes;
use d3_engine::codec::{self, WireCodec};
use d3_engine::link::{
    decode_msg, encode_msg, node_from_wire, node_to_wire, remap_frame_payload, Hello, LinkMsg,
    WireBatch, WireFrame, WireNodeError, LINK_MAGIC,
};
use d3_model::NodeId;
use d3_tensor::Tensor;
use proptest::prelude::*;

fn small_tensor() -> impl Strategy<Value = Tensor> {
    (1usize..4, 1usize..6, 1usize..6, any::<u64>())
        .prop_map(|(c, h, w, seed)| Tensor::random(c, h, w, seed))
}

/// Arbitrary byte soup (as a strategy over `u32` since the vendored
/// proptest has no `u8` Arbitrary).
fn soup() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u32..256, 0..96).prop_map(|v| v.into_iter().map(|b| b as u8).collect())
}

fn ascii_name() -> impl Strategy<Value = String> {
    prop::collection::vec(0u32..26, 0..12)
        .prop_map(|v| v.into_iter().map(|c| (b'a' + c as u8) as char).collect())
}

fn id_list() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(any::<u32>(), 0..8)
}

fn payload_bytes() -> impl Strategy<Value = Bytes> {
    prop::collection::vec(0u32..256, 0..32)
        .prop_map(|v| Bytes::from(v.into_iter().map(|b| b as u8).collect::<Vec<u8>>()))
}

fn wire_frame() -> impl Strategy<Value = WireFrame> {
    (
        any::<u64>(),
        prop::collection::vec((any::<u32>(), payload_bytes()), 0..3),
    )
        .prop_map(|(id, payload)| WireFrame { id, payload })
}

fn wire_batch() -> impl Strategy<Value = WireBatch> {
    (
        any::<u64>(),
        0u32..8,
        any::<u64>(),
        // Finite only: NaN would break the `PartialEq` round-trip check,
        // and the encoder only ever writes finite quantization deltas.
        -1e3f64..1e3,
        prop::collection::vec(wire_frame(), 0..4),
    )
        .prop_map(
            |(first_id, codec, raw_bytes, accuracy_delta, frames)| WireBatch {
                first_id,
                codec: codec as u8,
                raw_bytes,
                accuracy_delta,
                frames,
            },
        )
}

fn link_msg() -> impl Strategy<Value = LinkMsg> {
    prop_oneof![
        (
            ascii_name(),
            any::<u64>(),
            id_list(),
            id_list(),
            id_list(),
            any::<u32>(),
            any::<bool>(),
        )
            .prop_map(
                |(model, seed, members, needed, forward, output_node, is_last)| {
                    LinkMsg::Hello(Hello {
                        model,
                        seed,
                        members,
                        needed,
                        forward,
                        output_node,
                        is_last,
                    })
                }
            ),
        wire_batch().prop_map(LinkMsg::Batch),
        wire_batch().prop_map(LinkMsg::Result),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Any strict truncation of a raw wire frame is a typed error.
    #[test]
    fn wire_decode_rejects_truncation(t in small_tensor(), cut in any::<usize>()) {
        let full = d3_engine::encode(&t);
        let keep = cut % full.len();
        let got = d3_engine::decode(Bytes::from(full.as_slice()[..keep].to_vec()));
        prop_assert!(got.is_err(), "truncated to {keep}/{} yet decoded", full.len());
    }

    /// Single-bit corruption of a wire frame never panics; corrupting
    /// the magic word is always detected.
    #[test]
    fn wire_decode_survives_bit_flips(t in small_tensor(), at in any::<usize>(), bit in 0usize..8) {
        let mut raw = d3_engine::encode(&t).as_slice().to_vec();
        let i = at % raw.len();
        raw[i] ^= 1 << bit;
        let got = d3_engine::decode(Bytes::from(raw));
        if i < 4 {
            prop_assert!(got.is_err(), "flipped magic byte {i} yet decoded");
        }
    }

    /// Every codec's framing rejects strict truncation with an error —
    /// the universal decoder must notice missing payload, not fabricate
    /// a short tensor.
    #[test]
    fn codec_decode_rejects_truncation(t in small_tensor(), cut in any::<usize>()) {
        for c in WireCodec::ALL {
            let enc = codec::encode(&t, c);
            let full = enc.bytes.as_slice();
            let keep = cut % full.len();
            let got = codec::decode(Bytes::from(full[..keep].to_vec()));
            prop_assert!(got.is_err(), "{c}: truncated to {keep}/{} yet decoded", full.len());
        }
    }

    /// Single-bit corruption of any codec frame never panics (payload
    /// flips may legitimately decode to different values; header flips
    /// must never crash or over-allocate).
    #[test]
    fn codec_decode_survives_bit_flips(
        t in small_tensor(),
        which in 0usize..4,
        at in any::<usize>(),
        bit in 0usize..8,
    ) {
        let c = WireCodec::ALL[which];
        let mut raw = codec::encode(&t, c).bytes.as_slice().to_vec();
        let i = at % raw.len();
        raw[i] ^= 1 << bit;
        let _ = codec::decode(Bytes::from(raw));
    }

    /// Arbitrary byte soup through both tensor decoders: typed error or
    /// a structurally valid tensor, never a panic.
    #[test]
    fn tensor_decoders_survive_soup(bytes in soup()) {
        let _ = d3_engine::decode(Bytes::from(bytes.clone()));
        let _ = codec::decode(Bytes::from(bytes));
    }

    /// Link messages round-trip exactly through the frame codec.
    #[test]
    fn link_msg_roundtrip(msg in link_msg()) {
        let frame = encode_msg(&msg);
        let back = decode_msg(frame.as_slice());
        prop_assert_eq!(back, Ok(msg));
    }

    /// Any strict truncation of a link frame is a typed error: the body
    /// length prefix must match the buffer exactly.
    #[test]
    fn link_decode_rejects_truncation(msg in link_msg(), cut in any::<usize>()) {
        let full = encode_msg(&msg);
        let keep = cut % full.len();
        let got = decode_msg(&full.as_slice()[..keep]);
        prop_assert!(got.is_err(), "truncated to {keep}/{} yet decoded", full.len());
    }

    /// Corrupting the link frame header (magic or length) is always
    /// detected; corrupting the body never panics.
    #[test]
    fn link_decode_survives_bit_flips(msg in link_msg(), at in any::<usize>(), bit in 0usize..8) {
        let mut raw = encode_msg(&msg).as_slice().to_vec();
        let i = at % raw.len();
        raw[i] ^= 1 << bit;
        let got = decode_msg(&raw);
        if i < 8 {
            prop_assert!(got.is_err(), "flipped header byte {i} yet decoded");
        }
    }

    /// Byte soup that does not open with the link magic is rejected.
    #[test]
    fn link_decode_rejects_soup(bytes in soup()) {
        let magic_ok =
            bytes.len() >= 4 && bytes[..4] == LINK_MAGIC.to_le_bytes();
        let got = decode_msg(&bytes);
        if !magic_ok {
            prop_assert!(got.is_err());
        }
    }

    /// The failover remap's typed node-id conversion: an arbitrary wire
    /// id either round-trips exactly (`node_to_wire ∘ node_from_wire` is
    /// the identity) or errors — precisely when it names no vertex of
    /// the graph. Never a panic, never a fabricated id.
    #[test]
    fn node_id_wire_roundtrip(id in any::<u32>(), nodes in 0usize..2048) {
        match node_from_wire(id, nodes) {
            Ok(node) => {
                prop_assert!(node.index() < nodes);
                prop_assert_eq!(node.index(), id as usize);
                prop_assert_eq!(node_to_wire(node), Ok(id));
            }
            Err(WireNodeError::OutOfRange { id: bad, nodes: n }) => {
                prop_assert!(id as usize >= nodes);
                prop_assert_eq!((bad, n), (id, nodes));
            }
            Err(e) => prop_assert!(false, "unexpected error {e:?}"),
        }
    }

    /// Remapping an arbitrary wire frame against an arbitrary graph size
    /// never panics; it succeeds iff every payload id is in range, and a
    /// success preserves ids and payload bytes exactly.
    #[test]
    fn frame_remap_validates_every_payload_id(wf in wire_frame(), nodes in 0usize..2048) {
        let all_in_range = wf.payload.iter().all(|(id, _)| (*id as usize) < nodes);
        match remap_frame_payload(&wf, nodes) {
            Ok(payload) => {
                prop_assert!(all_in_range);
                prop_assert_eq!(payload.len(), wf.payload.len());
                for ((node, bytes), (id, orig)) in payload.iter().zip(&wf.payload) {
                    prop_assert_eq!(*node, NodeId(*id as usize));
                    prop_assert_eq!(bytes.as_slice(), orig.as_slice());
                }
            }
            Err(WireNodeError::OutOfRange { id, nodes: n }) => {
                prop_assert!(!all_in_range);
                prop_assert!(id as usize >= n);
                prop_assert_eq!(n, nodes);
            }
            Err(e) => prop_assert!(false, "unexpected error {e:?}"),
        }
    }
}

/// A frame whose header declares an absurd body length must be rejected
/// before any allocation happens — the length sanity check is what
/// bounds a malicious peer's memory impact.
#[test]
fn link_decode_rejects_absurd_length_claims() {
    let mut raw = Vec::new();
    raw.extend_from_slice(&LINK_MAGIC.to_le_bytes());
    raw.extend_from_slice(&u32::MAX.to_le_bytes());
    raw.push(0);
    assert!(decode_msg(&raw).is_err());

    // Batch claiming 2^32-1 frames in a 40-byte body: the per-field
    // plausibility guards must fire before `Vec::with_capacity`.
    let batch = WireBatch {
        first_id: 0,
        codec: 0,
        raw_bytes: 0,
        accuracy_delta: 0.0,
        frames: Vec::new(),
    };
    let mut frame = encode_msg(&LinkMsg::Batch(batch)).as_slice().to_vec();
    let n = frame.len();
    frame[n - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(decode_msg(&frame).is_err());
}
