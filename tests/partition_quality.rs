//! Cross-crate partition-quality guarantees: HPA against baselines and
//! against the exhaustive optimum, on the real evaluation models.

use d3_model::zoo;
use d3_partition::{Assignment, Dads, ExhaustiveOracle, Hpa, Neurosurgeon, Partitioner, Problem};
use d3_simnet::{NetworkCondition, Tier, TierProfiles};

fn problem(g: &d3_model::DnnGraph, net: NetworkCondition) -> Problem {
    Problem::new(g, &TierProfiles::paper_testbed(), net)
}

#[test]
fn hpa_dominates_every_single_tier_everywhere() {
    for g in zoo::all_models(224) {
        for net in NetworkCondition::TABLE3 {
            let p = problem(&g, net);
            let theta = Hpa::paper().partition(&p).unwrap().total_latency(&p);
            for tier in Tier::ALL {
                let base = Assignment::uniform(g.len(), tier).total_latency(&p);
                assert!(
                    theta <= base + 1e-9,
                    "{} under {net}: HPA {theta} vs {tier}-only {base}",
                    g.name()
                );
            }
        }
    }
}

#[test]
fn hpa_never_loses_to_neurosurgeon_or_dads() {
    for g in zoo::all_models(224) {
        for net in NetworkCondition::TABLE3 {
            let p = problem(&g, net);
            let theta = Hpa::paper().partition(&p).unwrap().total_latency(&p);
            let d = Dads.partition(&p).unwrap().total_latency(&p);
            assert!(
                theta <= d + 1e-9,
                "{} {net}: HPA {theta} vs DADS {d}",
                g.name()
            );
            if let Ok(ns) = Neurosurgeon.partition(&p) {
                let ns = ns.total_latency(&p);
                assert!(theta <= ns + 1e-9, "{} {net}: HPA vs NS {ns}", g.name());
            }
        }
    }
}

#[test]
fn hpa_beats_dads_strictly_somewhere() {
    // The headline of Fig. 10: three tiers beat two somewhere material.
    let mut best_gain: f64 = 1.0;
    for g in zoo::all_models(224) {
        for net in NetworkCondition::TABLE3 {
            let p = problem(&g, net);
            let h = Hpa::paper().partition(&p).unwrap().total_latency(&p);
            let d = Dads.partition(&p).unwrap().total_latency(&p);
            best_gain = best_gain.max(d / h);
        }
    }
    assert!(
        best_gain > 1.3,
        "expected a material HPA-over-DADS gain somewhere, best {best_gain:.2}×"
    );
}

#[test]
fn hpa_gap_to_optimum_is_bounded_on_small_dags() {
    let mut worst: f64 = 1.0;
    for seed in 0..20 {
        let g = zoo::random_dag(seed, 3, 2, 8);
        if g.len() - 1 > 12 {
            continue;
        }
        for net in [NetworkCondition::WiFi, NetworkCondition::FourG] {
            let p = problem(&g, net);
            let h = Hpa::paper().partition(&p).unwrap().total_latency(&p);
            let opt = ExhaustiveOracle {
                allowed: Tier::ALL.to_vec(),
                monotone_only: true,
            }
            .partition(&p)
            .unwrap()
            .total_latency(&p);
            assert!(h + 1e-12 >= opt, "heuristic cannot beat the oracle");
            worst = worst.max(h / opt);
        }
    }
    assert!(worst < 1.5, "HPA worst observed gap {worst:.3}×");
}

#[test]
fn dads_equals_two_tier_optimum_on_small_dags() {
    for seed in 0..12 {
        let g = zoo::random_dag(seed, 3, 2, 8);
        if g.len() - 1 > 12 {
            continue;
        }
        let p = problem(&g, NetworkCondition::FiveG);
        let got = Dads.partition(&p).unwrap().total_latency(&p);
        let want = ExhaustiveOracle {
            allowed: vec![Tier::Edge, Tier::Cloud],
            monotone_only: false,
        }
        .partition(&p)
        .unwrap()
        .total_latency(&p);
        assert!(
            (got - want).abs() <= 1e-9 + want * 1e-9,
            "seed {seed}: {got} vs {want}"
        );
    }
}

#[test]
fn assignments_are_monotone_for_all_algorithms() {
    for g in zoo::all_models(224) {
        let p = problem(&g, NetworkCondition::WiFi);
        assert!(Hpa::paper().partition(&p).unwrap().is_monotone(&p));
        assert!(Dads.partition(&p).unwrap().is_monotone(&p));
        if let Ok(ns) = Neurosurgeon.partition(&p) {
            assert!(ns.is_monotone(&p));
        }
    }
}

#[test]
fn more_backbone_bandwidth_never_hurts_hpa() {
    let g = zoo::inception_v4(224);
    let mut last = f64::INFINITY;
    for mbps in [5.0, 10.0, 20.0, 40.0, 80.0, 160.0] {
        let p = problem(&g, NetworkCondition::custom_backbone(mbps));
        let theta = Hpa::paper().partition(&p).unwrap().total_latency(&p);
        assert!(
            theta <= last + 1e-9,
            "Θ rose from {last} to {theta} at {mbps} Mbps"
        );
        last = theta;
    }
}
