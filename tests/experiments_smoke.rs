//! Smoke test over the full experiment harness: every table and figure of
//! the paper regenerates, and the headline claims hold in the output.

use d3_bench::{ablations, figures, tables};
use d3_engine::{deploy_strategy, Strategy, VsmConfig};
use d3_model::zoo;
use d3_partition::Problem;
use d3_simnet::{NetworkCondition, TierProfiles};

#[test]
fn every_section_renders() {
    // all_sections() is the exact content of `all_experiments`.
    let sections = d3_bench::all_sections();
    assert_eq!(
        sections.len(),
        19,
        "11 paper artefacts + 4 ablations + 4 extensions"
    );
    for s in &sections {
        assert!(!s.title.is_empty());
        assert!(s.body.len() > 40, "`{}` is suspiciously empty", s.title);
    }
}

#[test]
fn fig1_conv2_dominates_vgg_early_layers() {
    // The motivating observation: some conv layers are disproportionately
    // expensive on the device (Fig. 1a's conv2 spike).
    let s = figures::fig1();
    assert!(s.body.contains("conv2"));
}

#[test]
fn fig4_regression_is_accurate() {
    let s = figures::fig4();
    // The rendered section embeds R² per tier; parse them out.
    let r2s: Vec<f64> = s
        .body
        .lines()
        .filter_map(|l| l.strip_prefix("MAPE"))
        .filter_map(|l| l.split("R² = ").nth(1))
        .filter_map(|v| v.trim().parse().ok())
        .collect();
    assert_eq!(r2s.len(), 2, "CPU and GPU accuracies reported");
    for r2 in r2s {
        assert!(r2 > 0.9, "regression R² {r2} too low for Fig. 4's claim");
    }
}

#[test]
fn fig13_d3_never_ships_more_than_cloud_only() {
    for g in zoo::all_models(224) {
        for net in NetworkCondition::TABLE3 {
            let p = Problem::new(&g, &TierProfiles::paper_testbed(), net);
            let cloud = deploy_strategy(&p, Strategy::CloudOnly, VsmConfig::default())
                .unwrap()
                .backbone_bytes;
            let d3 = deploy_strategy(&p, Strategy::HpaVsm, VsmConfig::default())
                .unwrap()
                .backbone_bytes;
            assert!(
                d3 <= cloud,
                "{} {net}: D3 ships {d3} B vs cloud-only {cloud} B",
                g.name()
            );
        }
    }
}

#[test]
fn fig12_vsm_helps_somewhere_materially() {
    // The paper's headline: HPA+VSM up to 3.4× over the state of the art.
    let mut best: f64 = 1.0;
    for g in zoo::all_models(224) {
        for net in NetworkCondition::TABLE3 {
            let p = Problem::new(&g, &TierProfiles::paper_testbed(), net);
            let dads = deploy_strategy(&p, Strategy::Dads, VsmConfig::default())
                .unwrap()
                .frame_latency_s;
            let d3 = deploy_strategy(&p, Strategy::HpaVsm, VsmConfig::default())
                .unwrap()
                .frame_latency_s;
            best = best.max(dads / d3);
        }
    }
    assert!(
        best > 1.5,
        "expected a material D3-over-DADS gain, best {best:.2}×"
    );
}

#[test]
fn ablation_components_never_beat_full_hpa() {
    // Rendering exercises the full ablation matrix; here check semantics.
    let _ = ablations::ablation_hpa_components();
    let _ = tables::table2();
}
