//! Model-checked schedules for the streaming pipeline's extracted flow
//! units (`d3_engine::flow`): the per-stage resequencer, the dense-id
//! admission lock, the quiesce/respawn handshake, the batch former and
//! the session multiplexer (`SessionMux`) behind the shared pipeline.
//!
//! `cargo test --features model` routes the engine's hot state and the
//! vendored crossbeam internals through the loomlite shims, so each
//! `model(..)` block below re-runs its body once per thread interleaving
//! until the schedule space is exhausted — the assertions therefore hold
//! under *every* ordering the real pipeline could exhibit, not just the
//! ones a lucky test run happens to see. A failure prints a seed that
//! `loomlite::replay` turns back into the exact failing schedule.
#![cfg(feature = "model")]

use crossbeam::channel::bounded;
use d3_engine::flow::{self, Admission, Coalesce, MuxAdmitError, SessionMux};
use loomlite::{model, thread};
use std::sync::atomic::AtomicU64;
use std::sync::{Arc, Mutex as StdMutex};
use std::time::Duration;

/// Two pooled workers complete their units in every relative order the
/// scheduler can produce; the resequencer must deliver them dense and
/// in submission order under every schedule.
#[test]
fn model_resequencer_delivers_dense_order_under_all_schedules() {
    let report = model(|| {
        let (tx_seq, rx_seq) = bounded::<(u64, usize, u64)>(2);
        let mut producers = Vec::new();
        // Worker A completes frame 1, worker B completes frame 0 — the
        // minimal out-of-order pool.
        for id in [1u64, 0] {
            let tx = tx_seq.clone();
            producers.push(thread::spawn(move || {
                tx.send((id, 1, id * 10)).unwrap();
            }));
        }
        drop(tx_seq);
        let mut delivered = Vec::new();
        flow::run_resequencer(&rx_seq, 0, |v| {
            delivered.push(v);
            true
        });
        for p in producers {
            p.join().unwrap();
        }
        assert_eq!(delivered, [0, 10], "dense in-order delivery");
    });
    assert!(
        report.complete,
        "resequencer schedule space must be exhausted, ran {} schedules",
        report.schedules
    );
}

/// Concurrent submitters racing a full bounded queue: ids are consumed
/// only on successful sends, so the admitted ids are exactly
/// `0..successes` — dense — no matter who wins which race.
#[test]
fn model_admission_ids_stay_dense_under_concurrent_submitters() {
    let report = model(|| {
        let admission = Arc::new(Admission::new(0));
        let (tx, rx) = bounded::<u64>(2);
        let wins = Arc::new(StdMutex::new(Vec::new()));
        let mut submitters = Vec::new();
        for _ in 0..2 {
            let admission = Arc::clone(&admission);
            let tx = tx.clone();
            let wins = Arc::clone(&wins);
            submitters.push(thread::spawn(move || {
                for _ in 0..2 {
                    if let Ok(id) = admission.admit(|id| tx.try_send(id)) {
                        wins.lock().unwrap().push(id);
                    }
                }
            }));
        }
        for s in submitters {
            s.join().unwrap();
        }
        // Capacity 2, four attempts: exactly two admissions succeed and
        // they hold the dense ids 0 and 1 — rejections burned nothing.
        let mut wins = wins.lock().unwrap().clone();
        wins.sort_unstable();
        assert_eq!(wins, [0, 1], "successful admissions hold dense ids");
        assert_eq!(admission.next_id(), 2);
        let mut queued = Vec::new();
        while let Ok(id) = rx.try_recv() {
            queued.push(id);
        }
        queued.sort_unstable();
        assert_eq!(queued, [0, 1], "queue holds exactly the admitted ids");
    });
    assert!(
        report.complete,
        "admission schedule space must be exhausted, ran {} schedules",
        report.schedules
    );
}

/// The quiesce/respawn handshake across a worker-pool generation swap:
/// generation 1 (two pooled workers) is quiesced — ingress closed,
/// workers drained and joined, results resequenced — then generation 2
/// respawns from the admission counter's next id. No frame is lost or
/// duplicated across the boundary, under every schedule.
#[test]
fn model_quiesce_respawn_loses_and_duplicates_no_frame() {
    let report = model(|| {
        let admission = Arc::new(Admission::new(0));
        let mut delivered = Vec::new();

        // Generation 1: the stream admits two frames, then quiesce
        // begins — admissions stop (tx_in dropped) with both frames
        // still in flight. Two pooled workers race to drain the ingress
        // queue and complete out of order into the resequencer channel.
        let (tx_in, rx_in) = bounded::<u64>(2);
        let (tx_seq, rx_seq) = bounded::<(u64, usize, u64)>(2);
        for _ in 0..2 {
            admission.admit(|id| tx_in.try_send(id)).unwrap();
        }
        drop(tx_in);
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let rx = rx_in.clone();
                let tx = tx_seq.clone();
                thread::spawn(move || {
                    while let Ok(id) = rx.recv() {
                        tx.send((id, 1, id)).unwrap();
                    }
                })
            })
            .collect();
        drop(tx_seq);
        // The quiescing thread resequences the in-flight tail, then
        // joins the generation.
        flow::run_resequencer(&rx_seq, 0, |v| {
            delivered.push(v);
            true
        });
        for w in workers {
            w.join().unwrap();
        }

        // Generation 2: respawn from the admission counter — the same
        // handshake StreamPipeline::respawn uses for start_seq. A
        // single-worker stage is FIFO by construction, so its drain
        // runs inline on the quiescing thread.
        let start_seq = admission.next_id();
        assert_eq!(start_seq, 2, "generation 1 admitted two frames");
        let (tx_in, rx_in) = bounded::<u64>(1);
        admission.admit(|id| tx_in.try_send(id)).unwrap();
        drop(tx_in);
        let mut seq = flow::Resequencer::new(start_seq);
        while let Ok(id) = rx_in.recv() {
            delivered.extend(seq.push(id, 1, id));
        }
        delivered.extend(seq.drain());

        // Across both generations: every admitted frame exactly once,
        // in submission order.
        assert_eq!(delivered, [0, 1, 2], "no loss, no duplication");
    });
    assert!(
        report.complete,
        "quiesce handshake schedule space must be exhausted, ran {} schedules",
        report.schedules
    );
}

/// Two sessions admit frames from racing threads through one shared
/// `SessionMux`: under every interleaving the global ids stay dense
/// (0..4, the wire/resequencer contract) while each session's own seqs
/// stay dense from 0 (the per-session in-order contract).
#[test]
fn model_mux_concurrent_admits_keep_global_and_session_ids_dense() {
    let report = model(|| {
        let mux = Arc::new(SessionMux::<u64>::new(4, 0));
        let a = mux.attach(1.0);
        let b = mux.attach(1.0);
        let mut admitters = Vec::new();
        for sid in [a, b] {
            let mux = Arc::clone(&mux);
            admitters.push(thread::spawn(move || {
                (0..2)
                    .map(|_| {
                        mux.admit(sid, Duration::ZERO, (), |_, _| Ok::<(), ()>(()))
                            .expect("capacity 4, quota 2: never throttled")
                    })
                    .collect::<Vec<_>>()
            }));
        }
        let minted: Vec<_> = admitters.into_iter().map(|t| t.join().unwrap()).collect();
        let mut globals: Vec<u64> = minted.iter().flatten().map(|m| m.global).collect();
        globals.sort_unstable();
        assert_eq!(globals, [0, 1, 2, 3], "global ids dense across sessions");
        for session in &minted {
            let seqs: Vec<u64> = session.iter().map(|m| m.seq).collect();
            assert_eq!(seqs, [0, 1], "per-session seqs dense and in order");
        }
        assert_eq!(mux.next_id(), 4);
    });
    assert!(
        report.complete,
        "mux admission schedule space must be exhausted, ran {} schedules",
        report.schedules
    );
}

/// Completions for one session arrive from two racing router threads in
/// either order; the per-session outbox must still hand the consumer its
/// frames in submission order under every schedule.
#[test]
fn model_mux_racing_routers_cannot_reorder_a_session() {
    let report = model(|| {
        let mux = Arc::new(SessionMux::<u64>::new(2, 0));
        let s = mux.attach(1.0);
        for _ in 0..2 {
            mux.admit(s, Duration::ZERO, (), |_, _| Ok::<(), ()>(()))
                .unwrap();
        }
        let routers: Vec<_> = [(1u64, 11u64), (0, 10)]
            .into_iter()
            .map(|(global, item)| {
                let mux = Arc::clone(&mux);
                thread::spawn(move || {
                    assert!(mux.route(global, item, Duration::ZERO), "route owned frame");
                })
            })
            .collect();
        for r in routers {
            r.join().unwrap();
        }
        let delivered: Vec<_> = std::iter::from_fn(|| mux.pop(s)).collect();
        assert_eq!(
            delivered,
            [(0, 10), (1, 11)],
            "session sees submission order no matter who routed first"
        );
    });
    assert!(
        report.complete,
        "mux routing schedule space must be exhausted, ran {} schedules",
        report.schedules
    );
}

/// Weighted quotas are starvation-free under contention: two sessions
/// each hold a quota of one on a capacity-2 gate. Saturating your own
/// quota throttles only you; routing your completion frees your share
/// again — under every schedule, independent of the other session.
#[test]
fn model_mux_quota_floor_is_starvation_free() {
    let report = model(|| {
        let mux = Arc::new(SessionMux::<u64>::new(2, 0));
        let a = mux.attach(1.0);
        let b = mux.attach(1.0);
        let mut drivers = Vec::new();
        for sid in [a, b] {
            let mux = Arc::clone(&mux);
            drivers.push(thread::spawn(move || {
                let ok = |_: u64, _: ()| Ok::<(), ()>(());
                let first = mux.admit(sid, Duration::ZERO, (), ok).unwrap();
                // Quota 1 and one frame in flight: the second attempt
                // must throttle regardless of the other session.
                assert!(matches!(
                    mux.admit(sid, Duration::ZERO, (), ok),
                    Err(MuxAdmitError::Throttled(()))
                ));
                // Completing the in-flight frame frees the share.
                assert!(mux.route(first.global, 1, Duration::ZERO));
                mux.admit(sid, Duration::ZERO, (), ok)
                    .expect("freed share admits again");
                assert_eq!(mux.pop(sid), Some((0, 1)));
            }));
        }
        for d in drivers {
            d.join().unwrap();
        }
        assert_eq!(mux.next_id(), 4, "two successful admissions per session");
    });
    assert!(
        report.complete,
        "mux quota schedule space must be exhausted, ran {} schedules",
        report.schedules
    );
}

#[derive(Debug, PartialEq)]
struct Units(Vec<u64>);

impl Coalesce for Units {
    fn units(&self) -> usize {
        self.0.len()
    }
    fn absorb(&mut self, other: Self) {
        self.0.extend(other.0);
    }
}

/// The batch former under model schedules: timed receives degenerate to
/// blocking ones (a model has no deadlines), so every schedule exercises
/// the size trigger and the disconnect flush — and must ship every frame
/// exactly once, in order, within the batch bound.
#[test]
fn model_batcher_ships_every_frame_once_within_bound() {
    let report = model(|| {
        let clock = d3_engine::Clock::manual(Arc::new(AtomicU64::new(0)));
        let (tx_in, rx_in) = bounded::<Units>(2);
        let (tx_out, rx_out) = bounded::<Units>(4);
        let producer = thread::spawn(move || {
            for id in 0..3u64 {
                tx_in.send(Units(vec![id])).unwrap();
            }
        });
        flow::run_batcher(
            &rx_in,
            &tx_out,
            2,
            std::time::Duration::from_secs(1),
            &clock,
        );
        producer.join().unwrap();
        drop(tx_out);
        let mut shipped = Vec::new();
        while let Ok(batch) = rx_out.try_recv() {
            assert!(batch.units() <= 2, "batch bound respected");
            shipped.extend(batch.0);
        }
        assert_eq!(shipped, [0, 1, 2], "every frame exactly once, in order");
    });
    assert!(
        report.complete,
        "batcher schedule space must be exhausted, ran {} schedules",
        report.schedules
    );
}
