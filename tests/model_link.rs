//! Model-checked schedules for the stage-link flow units
//! (`d3_engine::flow::Retransmit` / `PeerHealth`) — the state machines
//! the remote-stage proxy in `stream.rs` runs its exactly-once and
//! failover guarantees on.
//!
//! `cargo test --features model` re-runs each `model(..)` body once per
//! thread interleaving until the schedule space is exhausted, so the
//! assertions below hold under *every* relative ordering of offer, ack,
//! reconnect-replay and deadline-check the real feeder/reader thread
//! pair could exhibit — not just the orderings a lucky run happens to
//! see.
#![cfg(feature = "model")]

use crossbeam::channel::bounded;
use d3_engine::flow::{PeerHealth, PeerStatus, Retransmit};
use loomlite::sync::Mutex;
use loomlite::{model, thread};
use std::sync::Arc;
use std::time::Duration;

/// The feeder offers and transmits batches while a reconnect replays
/// whatever is pending at an arbitrary moment in between: every replayed
/// batch arrives as a duplicate result sooner or later, and the ack's
/// window-membership test must deduplicate it under every schedule —
/// each frame is delivered exactly once, and the window drains to empty.
#[test]
fn model_replay_duplicates_are_acked_exactly_once() {
    let report = model(|| {
        let retx = Arc::new(Mutex::new(Retransmit::<u64>::new(2)));
        // The "wire": result ids flowing back to the proxy reader. Four
        // slots hold the worst case (two firsts plus two replays), so no
        // send can block and every interleaving runs to completion.
        let (wire_tx, wire_rx) = bounded::<u64>(4);

        // Feeder: offer each batch into the window, then transmit it.
        let feeder = {
            let retx = Arc::clone(&retx);
            let wire = wire_tx.clone();
            thread::spawn(move || {
                for id in 0..2u64 {
                    retx.lock().unwrap().offer(id, 1, id).unwrap();
                    wire.send(id).unwrap();
                }
            })
        };
        // Reconnect: replay everything un-acked at this instant — racing
        // the feeder's fresh sends and the reader's acks.
        let reconnect = {
            let retx = Arc::clone(&retx);
            let wire = wire_tx.clone();
            thread::spawn(move || {
                let pending: Vec<u64> = retx
                    .lock()
                    .unwrap()
                    .replay()
                    .map(|(first, _, _)| first)
                    .collect();
                for id in pending {
                    wire.send(id).unwrap();
                }
            })
        };
        feeder.join().unwrap();
        reconnect.join().unwrap();
        drop(wire_tx);

        // Reader: ack every result off the wire; a second arrival of the
        // same id is no longer in the window and must be dropped.
        let mut delivered = Vec::new();
        let mut duplicates = 0usize;
        while let Ok(id) = wire_rx.try_recv() {
            match retx.lock().unwrap().ack(id) {
                Some(item) => delivered.push(item),
                None => duplicates += 1,
            }
        }
        delivered.sort_unstable();
        assert_eq!(delivered, [0, 1], "each frame delivered exactly once");
        assert!(retx.lock().unwrap().is_empty(), "window fully acked");
        assert!(duplicates <= 2, "at most one duplicate per replayed id");
    });
    assert!(
        report.complete,
        "replay/ack schedule space must be exhausted, ran {} schedules",
        report.schedules
    );
}

/// A disconnect mid-stream: the reader acks only the results that made
/// it back before the link dropped; quiesce then drains the window. The
/// acked set and the stranded set must partition the offered frames —
/// nothing lost, nothing in both — under every ack/offer interleaving.
#[test]
fn model_disconnect_strands_unacked_frames_exactly_once() {
    let report = model(|| {
        let retx = Arc::new(Mutex::new(Retransmit::<u64>::new(2)));
        let (wire_tx, wire_rx) = bounded::<u64>(2);

        let feeder = {
            let retx = Arc::clone(&retx);
            thread::spawn(move || {
                for id in 0..2u64 {
                    retx.lock().unwrap().offer(id, 1, id).unwrap();
                    // A send may race the peer's death; the frame then
                    // simply stays un-acked in the window — the same
                    // shrug the real feeder gives a broken socket.
                    let _ = wire_tx.send(id);
                }
            })
        };
        // Reader: exactly one result returns before the peer dies.
        let acked = {
            let retx = Arc::clone(&retx);
            thread::spawn(move || {
                let id = wire_rx.recv().unwrap();
                retx.lock()
                    .unwrap()
                    .ack(id)
                    .into_iter()
                    .collect::<Vec<u64>>()
            })
        };
        feeder.join().unwrap();
        let acked = acked.join().unwrap();

        // Quiesce: the stranded tail is re-injected upstream.
        let stranded: Vec<u64> = retx
            .lock()
            .unwrap()
            .drain()
            .into_iter()
            .map(|(_, _, item)| item)
            .collect();
        let mut all: Vec<u64> = acked.iter().chain(&stranded).copied().collect();
        all.sort_unstable();
        assert_eq!(all, [0, 1], "acked ∪ stranded covers every frame once");
        assert!(
            retx.lock().unwrap().is_empty(),
            "drain leaves nothing behind"
        );
    });
    assert!(
        report.complete,
        "disconnect schedule space must be exhausted, ran {} schedules",
        report.schedules
    );
}

/// The failover ladder under a racing reconnect and deadline check: the
/// reader's deadline check may declare the peer failed at the same
/// moment a reconnect succeeds. Whatever order the schedule picks, the
/// outcome must be one of the two legal states — and `Failed` must be
/// terminal: a late reconnect never resurrects a peer the failover
/// already rerouted around.
#[test]
fn model_peer_failed_is_terminal_under_racing_reconnect() {
    let report = model(|| {
        let deadline = Duration::from_millis(10);
        let health = Arc::new(Mutex::new(PeerHealth::new(deadline, Duration::ZERO)));

        // Reconnect path: the dial finally succeeded.
        let connector = {
            let health = Arc::clone(&health);
            thread::spawn(move || {
                health.lock().unwrap().on_connected();
            })
        };
        // Reader loop: the deadline has elapsed; check promotes a
        // still-down peer to failed.
        let checker = {
            let health = Arc::clone(&health);
            thread::spawn(move || health.lock().unwrap().check(deadline))
        };
        connector.join().unwrap();
        let checked = checker.join().unwrap();

        let mut h = health.lock().unwrap();
        match checked {
            // The check saw the peer still down at the deadline: failed,
            // and the connect (whenever it landed) must not undo it.
            PeerStatus::Failed => {
                h.on_connected();
                assert!(h.is_failed(), "failed is terminal");
            }
            // The connect won the race: the peer is up and a later
            // disconnect restarts the down clock instead of failing.
            PeerStatus::Connected => {
                h.on_disconnect(deadline);
                assert_eq!(h.status(), PeerStatus::Down { since: deadline });
                assert_eq!(h.check(deadline), PeerStatus::Down { since: deadline });
                assert_eq!(h.check(deadline + deadline), PeerStatus::Failed);
            }
            PeerStatus::Down { .. } => {
                panic!("check at the deadline cannot leave the peer merely down")
            }
        }
    });
    assert!(
        report.complete,
        "failover schedule space must be exhausted, ran {} schedules",
        report.schedules
    );
}
