//! Property-based tests over the reproduction's core invariants.

use d3_engine::codec::{self, WireCodec};
use d3_model::{zoo, Activation, DnnGraph, Executor, LayerKind, NodeId};
use d3_partition::{Assignment, Hpa, Partitioner, Problem};
use d3_simnet::{NetworkCondition, Tier, TierProfiles};
use d3_tensor::ops::{ConvSpec, PoolKind, PoolSpec};
use d3_tensor::{max_abs_diff, Region, Tensor};
use d3_vsm::{reverse_tile, SpatialParams, TileExecutor, TileGrid, VsmPlan};
use proptest::prelude::*;

/// Random conv-stack description for the losslessness property.
#[derive(Debug, Clone)]
struct StackSpec {
    hw: usize,
    layers: Vec<(usize, usize, usize, bool)>, // (k, s, p, is_pool)
    rows: usize,
    cols: usize,
    seed: u64,
}

fn stack_strategy() -> impl Strategy<Value = StackSpec> {
    (
        16usize..=28,
        prop::collection::vec(
            (
                prop_oneof![Just(1usize), Just(2), Just(3), Just(5)],
                1usize..=2,
                0usize..=2,
                any::<bool>(),
            ),
            1..=3,
        ),
        1usize..=3,
        1usize..=3,
        any::<u64>(),
    )
        .prop_map(|(hw, layers, rows, cols, seed)| StackSpec {
            hw,
            layers,
            rows,
            cols,
            seed,
        })
}

fn build_stack(spec: &StackSpec) -> Option<(DnnGraph, Vec<NodeId>)> {
    let mut g = DnnGraph::new("prop_stack", d3_tensor::Shape3::new(3, spec.hw, spec.hw));
    let mut prev = g.input();
    let mut run = Vec::new();
    let mut ch = 3usize;
    for (i, &(k, s, p, is_pool)) in spec.layers.iter().enumerate() {
        // Reject configurations whose kernel exceeds the padded plane.
        let cur = g.node(prev).shape;
        if cur.h + 2 * p < k || cur.w + 2 * p < k {
            return None;
        }
        let kind = if is_pool {
            LayerKind::Pool {
                spec: PoolSpec::new(PoolKind::Max, k, s, p),
            }
        } else {
            let out_c = 4 + (i % 3) * 2;
            let kind = LayerKind::Conv {
                spec: ConvSpec::new(ch, out_c, k, s, p),
                batch_norm: i % 2 == 0,
                activation: if i % 2 == 0 {
                    Activation::Relu
                } else {
                    Activation::Leaky(0.1)
                },
            };
            ch = out_c;
            kind
        };
        let id = g.add_layer(format!("l{i}"), kind, &[prev]).ok()?;
        run.push(id);
        prev = id;
    }
    g.chain("gap", LayerKind::GlobalAvgPool, prev);
    Some((g, run))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// VSM tiling is lossless for arbitrary conv/pool stacks and grids.
    #[test]
    fn tiled_execution_is_lossless(spec in stack_strategy()) {
        let Some((g, run)) = build_stack(&spec) else {
            return Ok(());
        };
        let out_shape = g.node(*run.last().unwrap()).shape;
        let rows = spec.rows.min(out_shape.h);
        let cols = spec.cols.min(out_shape.w);
        let plan = match VsmPlan::new(&g, &run, rows.max(1), cols.max(1)) {
            Ok(p) => p,
            Err(_) => return Ok(()),
        };
        prop_assert!(plan.output_is_partition());
        // Overlap usually makes redundancy ≥ 1, but strided layers can
        // leave *dead* upstream outputs that RTC legitimately skips, so
        // the only hard bound is positivity.
        prop_assert!(plan.redundancy() > 0.0);
        let exec = Executor::new(&g, spec.seed);
        let tex = TileExecutor::new(&exec, plan);
        let input = Tensor::random(3, spec.hw, spec.hw, spec.seed ^ 1);
        let whole = tex.run_whole(&input);
        let tiled = tex.run_sequential(&input);
        prop_assert_eq!(max_abs_diff(&whole, &tiled), Some(0.0));
    }

    /// RTC always returns a region covering the receptive field of the
    /// requested output tile (clamped to the plane).
    #[test]
    fn rtc_covers_receptive_field(
        k in 1usize..=5,
        s in 1usize..=3,
        p in 0usize..=2,
        h in 8usize..=32,
        oy in 0usize..6,
        ox in 0usize..6,
        th in 1usize..4,
        tw in 1usize..4,
    ) {
        if h + 2 * p < k {
            return Ok(());
        }
        let params = SpatialParams { kh: k, kw: k, sh: s, sw: s, ph: p, pw: p };
        let out_h = (h + 2 * p - k) / s + 1;
        if oy + th > out_h || ox + tw > out_h {
            return Ok(());
        }
        let out = Region::new(oy, oy + th, ox, ox + tw);
        let input = reverse_tile(&params, out, h, h);
        // Every in-plane input position of every output entry is covered.
        for y in oy..oy + th {
            for x in ox..ox + tw {
                for ky in 0..k {
                    for kx in 0..k {
                        let gy = (y * s + ky) as isize - p as isize;
                        let gx = (x * s + kx) as isize - p as isize;
                        if gy < 0 || gx < 0 || gy as usize >= h || gx as usize >= h {
                            continue; // padding, synthesized at run time
                        }
                        let (gy, gx) = (gy as usize, gx as usize);
                        prop_assert!(
                            gy >= input.y0 && gy < input.y1 && gx >= input.x0 && gx < input.x1,
                            "output ({y},{x}) needs input ({gy},{gx}) outside {input:?}"
                        );
                    }
                }
            }
        }
    }

    /// Tile grids partition the plane: disjoint and complete.
    #[test]
    fn grids_partition_planes(
        rows in 1usize..=5,
        cols in 1usize..=5,
        h in 5usize..=40,
        w in 5usize..=40,
    ) {
        let g = TileGrid::new(rows.min(h), cols.min(w), h, w);
        let tiles = g.tiles();
        let area: usize = tiles.iter().map(Region::area).sum();
        prop_assert_eq!(area, h * w);
        for i in 0..tiles.len() {
            for j in i + 1..tiles.len() {
                prop_assert!(!tiles[i].intersects(&tiles[j]));
            }
        }
    }

    /// HPA output is always monotone (Prop. 1) and never worse than any
    /// single-tier plan, on random DAGs and random backbone bandwidths.
    #[test]
    fn hpa_invariants_on_random_dags(
        seed in 0u64..500,
        depth in 1usize..5,
        width in 1usize..3,
        mbps in 2.0f64..200.0,
    ) {
        let g = zoo::random_dag(seed, depth, width, 8);
        let p = Problem::new(
            &g,
            &TierProfiles::paper_testbed(),
            NetworkCondition::custom_backbone(mbps),
        );
        let a = Hpa::paper().partition(&p).unwrap();
        prop_assert!(a.is_monotone(&p));
        let theta = a.total_latency(&p);
        for tier in Tier::ALL {
            let base = Assignment::uniform(g.len(), tier).total_latency(&p);
            prop_assert!(theta <= base + 1e-9);
        }
    }

    /// Wire encoding round-trips arbitrary tensors bit-exactly.
    #[test]
    fn wire_roundtrip(c in 1usize..4, h in 1usize..8, w in 1usize..8, seed in any::<u64>()) {
        let t = Tensor::random(c, h, w, seed);
        let back = d3_engine::decode(d3_engine::encode(&t)).unwrap();
        prop_assert_eq!(back, t);
    }

    /// Every codec's frames survive the universal decoder with the
    /// original shape, and the bit-exact paths (raw, lossless) return
    /// the *identical bit pattern* — NaN payloads, infinities, negative
    /// zero and all.
    #[test]
    fn codec_lossless_roundtrip_is_bit_exact(t in codec_tensor_strategy()) {
        for c in WireCodec::ALL {
            let enc = codec::encode(&t, c);
            let back = codec::decode(enc.bytes.clone()).unwrap();
            prop_assert_eq!(back.shape(), t.shape());
            if !c.is_lossy() {
                prop_assert_eq!(tensor_bits(&back), tensor_bits(&t));
                prop_assert_eq!(enc.accuracy_delta, 0.0);
            }
            // Compression never cheats the ledger: the frame on the wire
            // is exactly what the accounting claims.
            prop_assert_eq!(enc.wire_len(), enc.bytes.len() as u64);
            prop_assert_eq!(enc.raw_len, d3_engine::wire_size(&t));
        }
    }

    /// Quantized paths stay within their *declared* error bound, and the
    /// accuracy delta reported in the encode ledger equals the delta an
    /// independent decode-and-compare measures.
    #[test]
    fn codec_quantized_error_within_declared_bound(t in finite_tensor_strategy()) {
        for c in [WireCodec::F16, WireCodec::I8] {
            let bound = codec::error_bound(c, &t);
            let enc = codec::encode(&t, c);
            let back = codec::decode(enc.bytes.clone()).unwrap();
            let independent = t
                .data()
                .iter()
                .zip(back.data())
                .map(|(&a, &b)| (f64::from(a) - f64::from(b)).abs())
                .fold(0.0f64, f64::max);
            prop_assert!(
                independent <= bound + 1e-30,
                "{}: measured delta {independent} exceeds declared bound {bound}", c
            );
            // The encode-side ledger must agree with an independent
            // decode-and-compare, exactly.
            prop_assert_eq!(enc.accuracy_delta, independent);
        }
    }

    /// Lossless frames of VSM-style crops (tiles cut out of a larger
    /// activation plane) round-trip bit-exactly — the shape codec frames
    /// actually take at a tiled edge stage boundary.
    #[test]
    fn codec_roundtrips_cropped_tiles(
        c in 1usize..4,
        h in 4usize..12,
        w in 4usize..12,
        y0 in 0usize..4,
        x0 in 0usize..4,
        seed in any::<u64>(),
    ) {
        let plane = Tensor::random(c, h, w, seed);
        let tile = plane.crop(y0.min(h - 1), h, x0.min(w - 1), w);
        let enc = codec::encode(&tile, WireCodec::Lossless);
        let back = codec::decode(enc.bytes).unwrap();
        prop_assert_eq!(tensor_bits(&back), tensor_bits(&tile));
        prop_assert_eq!(back.shape(), tile.shape());
    }

    /// Stream simulation: mean latency is bounded below by the unloaded
    /// single-frame latency and throughput never exceeds the arrival rate.
    #[test]
    fn stream_stats_sane(
        s1 in 1e-4f64..0.05,
        s2 in 1e-4f64..0.05,
        x1 in 0.0f64..0.02,
        fps in 1.0f64..120.0,
    ) {
        let stages = vec![
            d3_engine::StageSpec { name: "a".into(), service_s: s1, transfer_out_s: x1 },
            d3_engine::StageSpec { name: "b".into(), service_s: s2, transfer_out_s: 0.0 },
        ];
        let stats = d3_engine::simulate_stream(&stages, fps, 50);
        let unloaded = s1 + x1 + s2;
        prop_assert!(stats.mean_latency_s >= unloaded - 1e-12);
        prop_assert!(stats.throughput_fps <= fps * 1.01 + 1.0);
        prop_assert!(stats.max_latency_s + 1e-12 >= stats.mean_latency_s);
    }
}

/// The exact bit pattern of a tensor's payload — the comparison the
/// bit-exact codec properties need (`f32` equality would already fail on
/// NaN and conflate `0.0` with `-0.0`).
fn tensor_bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

/// Wraps a value vector into a tensor (empty vectors become the empty
/// `1×0×0` tensor — a legal frame the codecs must survive).
fn tensor_of(values: Vec<f32>) -> Tensor {
    if values.is_empty() {
        Tensor::from_vec(1, 0, 0, values)
    } else {
        let n = values.len();
        Tensor::from_vec(1, 1, n, values)
    }
}

/// Adversarial codec payloads: zeros (the activation-sparsity case the
/// lossless front-end exploits), denormals-from-bits, NaN, ±∞, −0.0 and
/// ordinary values — in tensors from empty up to ~96 elements.
fn codec_tensor_strategy() -> impl Strategy<Value = Tensor> {
    prop::collection::vec(
        prop_oneof![
            Just(0.0f32),
            Just(-0.0f32),
            Just(f32::NAN),
            Just(f32::INFINITY),
            Just(f32::NEG_INFINITY),
            any::<u32>().prop_map(f32::from_bits),
            -10.0f32..10.0,
        ],
        0..=96,
    )
    .prop_map(tensor_of)
}

/// Finite payloads only — what the quantized paths quantize (non-finite
/// inputs take the bit-exact raw fallback, covered above). Mixes zeros
/// in so per-tensor scale/zero-point ranges straddle zero.
fn finite_tensor_strategy() -> impl Strategy<Value = Tensor> {
    prop::collection::vec(
        prop_oneof![Just(0.0f32), -100.0f32..100.0, -0.5f32..0.5],
        0..=96,
    )
    .prop_map(tensor_of)
}
