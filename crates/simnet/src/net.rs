//! Inter-tier network model: the measured uplink rates of Table III.
//!
//! The paper's link weight between two vertices on different tiers is
//! `output bytes / bandwidth` (§III-D); within a tier the delay is taken
//! as zero (§III-A). The four named conditions reproduce Table III
//! exactly; [`NetworkCondition::custom_backbone`] supports the Fig. 11
//! bandwidth sweep.

use crate::Tier;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Average uplink rates between tiers, in Mbit/s.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkRates {
    /// Device ↔ edge (always the 5 GHz Wi-Fi LAN in the paper).
    pub device_edge_mbps: f64,
    /// Edge ↔ cloud (the backbone link being varied).
    pub edge_cloud_mbps: f64,
    /// Device ↔ cloud.
    pub device_cloud_mbps: f64,
}

/// A named network condition from Table III, or a custom one.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NetworkCondition {
    /// Everything over 5 GHz Wi-Fi (802.11ac).
    WiFi,
    /// LAN over Wi-Fi; backbone over 4G.
    FourG,
    /// LAN over Wi-Fi; backbone over 5G.
    FiveG,
    /// Edge→cloud over an optical link; device→cloud over Wi-Fi.
    Optical,
    /// Custom rates (used by the Fig. 11 bandwidth sweep).
    Custom(LinkRates),
}

impl NetworkCondition {
    /// The four named conditions in the paper's presentation order.
    pub const TABLE3: [NetworkCondition; 4] = [
        NetworkCondition::WiFi,
        NetworkCondition::FourG,
        NetworkCondition::FiveG,
        NetworkCondition::Optical,
    ];

    /// The Table III uplink-rate row for this condition.
    pub fn rates(&self) -> LinkRates {
        match self {
            NetworkCondition::WiFi => LinkRates {
                device_edge_mbps: 84.95,
                edge_cloud_mbps: 31.53,
                device_cloud_mbps: 18.75,
            },
            NetworkCondition::FourG => LinkRates {
                device_edge_mbps: 84.95,
                edge_cloud_mbps: 13.79,
                device_cloud_mbps: 6.12,
            },
            NetworkCondition::FiveG => LinkRates {
                device_edge_mbps: 84.95,
                edge_cloud_mbps: 22.75,
                device_cloud_mbps: 11.64,
            },
            NetworkCondition::Optical => LinkRates {
                // The paper: with an optical backbone the device still
                // reaches the cloud via its 5 GHz Wi-Fi.
                device_edge_mbps: 84.95,
                edge_cloud_mbps: 50.23,
                device_cloud_mbps: 18.75,
            },
            NetworkCondition::Custom(r) => *r,
        }
    }

    /// A condition whose LAN stays at Wi-Fi rates while the LAN↔cloud
    /// backbone runs at `mbps` (both edge→cloud and device→cloud take the
    /// swept value, as in Fig. 11's x-axis "bandwidth between the LAN and
    /// the cloud node").
    pub fn custom_backbone(mbps: f64) -> Self {
        NetworkCondition::Custom(LinkRates {
            device_edge_mbps: 84.95,
            edge_cloud_mbps: mbps,
            device_cloud_mbps: mbps * 18.75 / 31.53, // keep WiFi's d:e ratio
        })
    }

    /// Bandwidth (Mbit/s) between two tiers; `None` within a tier.
    pub fn bandwidth_mbps(&self, a: Tier, b: Tier) -> Option<f64> {
        let r = self.rates();
        match (a.min(b), a.max(b)) {
            (Tier::Device, Tier::Edge) => Some(r.device_edge_mbps),
            (Tier::Edge, Tier::Cloud) => Some(r.edge_cloud_mbps),
            (Tier::Device, Tier::Cloud) => Some(r.device_cloud_mbps),
            _ => None, // same tier
        }
    }

    /// Transmission delay in seconds for `bytes` crossing from tier `a` to
    /// tier `b` — the link weight `t^[a,b]_ij` of the paper. Zero within a
    /// tier; symmetric (the paper assumes equal two-way delays).
    pub fn transfer_s(&self, bytes: u64, a: Tier, b: Tier) -> f64 {
        match self.bandwidth_mbps(a, b) {
            None => 0.0,
            Some(mbps) => (bytes as f64 * 8.0) / (mbps * 1e6),
        }
    }
}

impl NetworkCondition {
    /// Average transmit power (watts) drawn by the *device's* radio while
    /// it uploads over this condition's device-side link. Typical
    /// smartphone figures: Wi-Fi ≈ 0.9 W, 4G ≈ 2.5 W, 5G ≈ 3.2 W.
    pub fn device_radio_power_w(&self) -> f64 {
        match self {
            NetworkCondition::WiFi | NetworkCondition::Optical => 0.9,
            NetworkCondition::FourG => 2.5,
            NetworkCondition::FiveG => 3.2,
            NetworkCondition::Custom(_) => 0.9, // Wi-Fi-class by default
        }
    }
}

impl fmt::Display for NetworkCondition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkCondition::WiFi => write!(f, "Wi-Fi"),
            NetworkCondition::FourG => write!(f, "4G"),
            NetworkCondition::FiveG => write!(f, "5G"),
            NetworkCondition::Optical => write!(f, "Optical Network"),
            NetworkCondition::Custom(r) => {
                write!(f, "Custom({:.1} Mbps backbone)", r.edge_cloud_mbps)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_values_reproduced() {
        let wifi = NetworkCondition::WiFi.rates();
        assert_eq!(wifi.device_edge_mbps, 84.95);
        assert_eq!(wifi.edge_cloud_mbps, 31.53);
        assert_eq!(wifi.device_cloud_mbps, 18.75);
        assert_eq!(NetworkCondition::FourG.rates().edge_cloud_mbps, 13.79);
        assert_eq!(NetworkCondition::FiveG.rates().device_cloud_mbps, 11.64);
        assert_eq!(NetworkCondition::Optical.rates().edge_cloud_mbps, 50.23);
    }

    #[test]
    fn backbone_ordering_matches_paper() {
        // 4G < 5G < Wi-Fi < Optical on the edge→cloud link.
        let bw = |c: NetworkCondition| c.rates().edge_cloud_mbps;
        assert!(bw(NetworkCondition::FourG) < bw(NetworkCondition::FiveG));
        assert!(bw(NetworkCondition::FiveG) < bw(NetworkCondition::WiFi));
        assert!(bw(NetworkCondition::WiFi) < bw(NetworkCondition::Optical));
    }

    #[test]
    fn intra_tier_transfer_is_free() {
        let c = NetworkCondition::WiFi;
        assert_eq!(c.transfer_s(1 << 20, Tier::Edge, Tier::Edge), 0.0);
        assert_eq!(c.bandwidth_mbps(Tier::Cloud, Tier::Cloud), None);
    }

    #[test]
    fn transfer_is_symmetric() {
        let c = NetworkCondition::FiveG;
        let a = c.transfer_s(123_456, Tier::Device, Tier::Cloud);
        let b = c.transfer_s(123_456, Tier::Cloud, Tier::Device);
        assert_eq!(a, b);
        assert!(a > 0.0);
    }

    #[test]
    fn transfer_math_checks_out() {
        // 1 MB over 8 Mbps = 1 second.
        let c = NetworkCondition::Custom(LinkRates {
            device_edge_mbps: 8.0,
            edge_cloud_mbps: 8.0,
            device_cloud_mbps: 8.0,
        });
        let t = c.transfer_s(1_000_000, Tier::Device, Tier::Edge);
        assert!((t - 1.0).abs() < 1e-9);
    }

    #[test]
    fn custom_backbone_scales_device_link_proportionally() {
        let c = NetworkCondition::custom_backbone(31.53);
        let r = c.rates();
        assert!((r.device_cloud_mbps - 18.75).abs() < 1e-9);
        assert_eq!(r.device_edge_mbps, 84.95);
    }

    #[test]
    fn faster_backbone_means_smaller_delay() {
        let slow = NetworkCondition::custom_backbone(10.0);
        let fast = NetworkCondition::custom_backbone(100.0);
        let bytes = 500_000;
        assert!(
            slow.transfer_s(bytes, Tier::Edge, Tier::Cloud)
                > fast.transfer_s(bytes, Tier::Edge, Tier::Cloud)
        );
    }
}
