//! The three computing tiers of the edge-computing paradigm (§III-A).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A computing tier. The paper defines the pipeline order `d ≻ e ≻ c`:
/// data flows from the device tier, across the edge, to the cloud, and
/// computation resources grow in the same direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Tier {
    /// The device tier (`d`): the mobile node that owns the raw input.
    Device,
    /// The edge tier (`e`): LAN-attached edge node(s).
    Edge,
    /// The cloud tier (`c`): the remote datacenter server.
    Cloud,
}

impl Tier {
    /// All tiers in pipeline order `d, e, c`.
    pub const ALL: [Tier; 3] = [Tier::Device, Tier::Edge, Tier::Cloud];

    /// Position in the pipeline: device = 0, edge = 1, cloud = 2.
    pub const fn rank(self) -> usize {
        match self {
            Tier::Device => 0,
            Tier::Edge => 1,
            Tier::Cloud => 2,
        }
    }

    /// The paper's order relation `a ≻ b`: `a` strictly precedes `b` in
    /// the data-flow pipeline (device ≻ edge ≻ cloud).
    pub const fn precedes(self, other: Tier) -> bool {
        self.rank() < other.rank()
    }

    /// `a ⪰ b`: `a` precedes or equals `b`.
    pub const fn precedes_eq(self, other: Tier) -> bool {
        self.rank() <= other.rank()
    }

    /// Tiers at or after `self` in pipeline order — the candidates a
    /// vertex may be assigned to once its predecessors sit at `self`
    /// (Proposition 1).
    pub fn and_later(self) -> &'static [Tier] {
        &Self::ALL[self.rank()..]
    }

    /// Index of the inter-tier link between `self` and `other` in the
    /// canonical `[device↔edge, edge↔cloud, device↔cloud]` order — the
    /// field order of [`LinkRates`](crate::LinkRates) and the wire
    /// format of every per-link accounting array. `None` within a tier.
    pub const fn link_index(self, other: Tier) -> Option<usize> {
        let (lo, hi) = if self.rank() <= other.rank() {
            (self.rank(), other.rank())
        } else {
            (other.rank(), self.rank())
        };
        match (lo, hi) {
            (0, 1) => Some(0),
            (1, 2) => Some(1),
            (0, 2) => Some(2),
            _ => None, // same tier
        }
    }

    /// Short lowercase tag (`d`, `e`, `c`) matching the paper's notation.
    pub const fn tag(self) -> &'static str {
        match self {
            Tier::Device => "d",
            Tier::Edge => "e",
            Tier::Cloud => "c",
        }
    }
}

impl fmt::Display for Tier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Tier::Device => "device",
            Tier::Edge => "edge",
            Tier::Cloud => "cloud",
        };
        write!(f, "{name}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_order() {
        assert!(Tier::Device.precedes(Tier::Edge));
        assert!(Tier::Edge.precedes(Tier::Cloud));
        assert!(Tier::Device.precedes(Tier::Cloud));
        assert!(!Tier::Cloud.precedes(Tier::Device));
        assert!(!Tier::Edge.precedes(Tier::Edge));
        assert!(Tier::Edge.precedes_eq(Tier::Edge));
    }

    #[test]
    fn ord_matches_rank() {
        assert!(Tier::Device < Tier::Edge);
        assert!(Tier::Edge < Tier::Cloud);
        let max = Tier::ALL.iter().copied().max().unwrap();
        assert_eq!(max, Tier::Cloud);
    }

    #[test]
    fn and_later_gives_proposition1_candidates() {
        assert_eq!(Tier::Device.and_later(), &Tier::ALL[..]);
        assert_eq!(Tier::Edge.and_later(), &[Tier::Edge, Tier::Cloud]);
        assert_eq!(Tier::Cloud.and_later(), &[Tier::Cloud]);
    }

    #[test]
    fn tags_and_display() {
        assert_eq!(Tier::Device.tag(), "d");
        assert_eq!(Tier::Cloud.to_string(), "cloud");
    }
}
