//! # d3-simnet
//!
//! The simulated testbed of the D3 reproduction: computing [`Tier`]s,
//! analytical hardware cost models ([`NodeProfile`], [`TierProfiles`])
//! standing in for the paper's physical Raspberry Pi / Jetson / i7 / RTX
//! machines, and the Table III network conditions
//! ([`NetworkCondition`]).
//!
//! ## Example
//!
//! ```
//! use d3_simnet::{NetworkCondition, Tier, TierProfiles};
//! use d3_model::zoo;
//!
//! let profiles = TierProfiles::paper_testbed();
//! let net = NetworkCondition::WiFi;
//! let g = zoo::alexnet(224);
//! let conv1 = g.layer_ids().next().unwrap();
//! // Per-layer latency is strictly ordered t_d > t_e > t_c.
//! let t_d = profiles.layer_latency(&g, conv1, Tier::Device);
//! let t_c = profiles.layer_latency(&g, conv1, Tier::Cloud);
//! assert!(t_d > t_c);
//! // Link weight: output bytes over the Table III bandwidth.
//! let delay = net.transfer_s(g.node(conv1).output_bytes(), Tier::Device, Tier::Edge);
//! assert!(delay > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod net;
mod node;
mod tier;

pub use net::{LinkRates, NetworkCondition};
pub use node::{Efficiency, NodeProfile, TierProfiles};
pub use tier::Tier;
