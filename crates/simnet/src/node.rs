//! Analytical hardware cost model.
//!
//! The paper measures per-layer latency on physical nodes (Raspberry Pi 4,
//! Jetson Nano, i7-8700, RTX 2080 Ti). This module substitutes an
//! analytical *roofline-style* model: a layer costs a fixed dispatch
//! overhead, plus compute time at an effective (kind-dependent) fraction
//! of peak FLOP/s, plus memory traffic over the node's bandwidth:
//!
//! ```text
//! t(layer) = overhead
//!          + flops / (peak_gflops * eff(kind) * 1e9)
//!          + bytes_moved / (mem_bw_gbps * 1e9)
//! ```
//!
//! The substitution preserves what D3's algorithms consume — a per-layer,
//! per-tier latency with `t_d > t_e > t_c` and realistic relative
//! magnitudes (convolutions dominate, dense layers are memory-bound,
//! Fig. 1's shapes). Absolute milliseconds will differ from the authors'
//! testbed; see EXPERIMENTS.md.

use crate::Tier;
use d3_model::{DnnGraph, LayerKind, NodeId};
use serde::{Deserialize, Serialize};

/// Effective fraction of peak FLOP/s achieved per operator family.
///
/// Convolutions vectorize well; dense layers are memory-bound at
/// inference batch 1; pooling/elementwise ops are bandwidth-dominated.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Efficiency {
    /// Convolution efficiency.
    pub conv: f64,
    /// Dense/fully-connected efficiency.
    pub dense: f64,
    /// Pooling efficiency.
    pub pool: f64,
    /// Elementwise (add/activation/softmax/norm) efficiency.
    pub elementwise: f64,
}

/// An execution node: the compute side of a device, edge or cloud machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeProfile {
    /// Human-readable hardware name.
    pub name: String,
    /// Peak single-precision throughput in GFLOP/s.
    pub peak_gflops: f64,
    /// Sustained memory bandwidth in GB/s.
    pub mem_bw_gbps: f64,
    /// Fixed per-layer dispatch overhead in seconds (kernel launch /
    /// scheduling).
    pub overhead_s: f64,
    /// Per-kind efficiency factors.
    pub eff: Efficiency,
    /// Utilization ramp (FLOPs): small kernels cannot saturate the
    /// hardware, so effective throughput is scaled by
    /// `sqrt(flops / (flops + ramp_flops))`. This mild nonlinearity is
    /// what makes the profiler's linear regression (Fig. 4) genuinely
    /// approximate rather than trivially exact.
    pub ramp_flops: f64,
    /// Average power draw while computing, in watts. Used by the energy
    /// accounting (the metric Neurosurgeon optimizes and the paper's
    /// intro motivates: DNN inference "consumes considerable energy").
    pub busy_power_w: f64,
}

impl NodeProfile {
    /// Raspberry Pi 4 Model B (4 GB): the paper's Fig. 1 measurement
    /// device and the implementation's device node (§IV).
    pub fn raspberry_pi4() -> Self {
        Self {
            name: "Raspberry Pi 4B".into(),
            peak_gflops: 24.0, // 4 × Cortex-A72 @1.5 GHz, NEON
            mem_bw_gbps: 2.5,  // sustained, batch-1 inference
            overhead_s: 25e-6,
            eff: Efficiency {
                conv: 0.30,
                dense: 0.08,
                pool: 0.10,
                elementwise: 0.10,
            },
            ramp_flops: 2e5,
            busy_power_w: 6.0,
        }
    }

    /// NVIDIA Jetson Nano 2GB: the device node of Table II.
    pub fn jetson_nano() -> Self {
        Self {
            name: "Jetson Nano 2GB".into(),
            peak_gflops: 236.0, // 128-core Maxwell @ FP32
            mem_bw_gbps: 10.0,  // sustained share of the 25.6 GB/s LPDDR4
            overhead_s: 60e-6,  // GPU kernel launch
            // Tuned so the device stays strictly slower than the edge
            // (t_d > t_e, §III-C) while remaining capable enough that
            // hosting early layers on it beats shipping raw frames — the
            // premise of three-tier decomposition.
            eff: Efficiency {
                conv: 0.22,
                dense: 0.08,
                pool: 0.07,
                elementwise: 0.07,
            },
            ramp_flops: 4e6,
            busy_power_w: 10.0,
        }
    }

    /// Intel Core i7-8700 with 8 GB RAM: the paper's edge node.
    pub fn edge_i7_8700() -> Self {
        Self {
            name: "Intel i7-8700".into(),
            peak_gflops: 614.0, // 6 cores × 3.2 GHz × 32 FLOP/cycle (AVX2 FMA)
            mem_bw_gbps: 8.0,   // sustained GEMV bandwidth, batch-1
            overhead_s: 15e-6,
            // Framework CPU inference sustains ~10 % of peak on convs
            // (im2col + GEMM at batch 1), which is what makes the edge
            // node the bottleneck of the pipeline in Table II.
            eff: Efficiency {
                conv: 0.11,
                dense: 0.08,
                pool: 0.08,
                elementwise: 0.10,
            },
            ramp_flops: 1e6,
            busy_power_w: 95.0,
        }
    }

    /// NVIDIA GeForce RTX 2080 Ti with 256 GB host RAM: the paper's cloud
    /// node.
    pub fn cloud_rtx2080ti() -> Self {
        Self {
            name: "RTX 2080 Ti".into(),
            peak_gflops: 13_450.0,
            mem_bw_gbps: 300.0, // sustained share of the 616 GB/s GDDR6
            overhead_s: 30e-6,  // kernel launch + PCIe staging
            eff: Efficiency {
                conv: 0.55,
                dense: 0.20,
                pool: 0.25,
                elementwise: 0.25,
            },
            ramp_flops: 2e7,
            busy_power_w: 250.0,
        }
    }

    /// Effective throughput for a layer kind and problem size, in FLOP/s.
    /// Small kernels under-utilize the hardware (see `ramp_flops`).
    fn effective_flops(&self, kind: &LayerKind, flops: f64) -> f64 {
        let eff = match kind {
            LayerKind::Conv { .. } => self.eff.conv,
            // Depthwise convs have conv-like kernels but almost no data
            // reuse: they run at bandwidth-bound (pool-like) efficiency.
            LayerKind::DepthwiseConv { .. } => self.eff.pool,
            LayerKind::Dense { .. } => self.eff.dense,
            LayerKind::Pool { .. } | LayerKind::GlobalAvgPool => self.eff.pool,
            _ => self.eff.elementwise,
        };
        let utilization = (flops / (flops + self.ramp_flops)).sqrt();
        self.peak_gflops * eff * 1e9 * utilization.max(1e-3)
    }

    /// Ground-truth latency (seconds) of executing vertex `id` of `graph`
    /// on this node. The virtual input vertex costs nothing.
    pub fn layer_latency(&self, graph: &DnnGraph, id: NodeId) -> f64 {
        let node = graph.node(id);
        if matches!(node.kind, LayerKind::Input { .. }) {
            return 0.0;
        }
        let flops = graph.flops(id) as f64;
        let bytes = (graph.input_bytes(id)
            + node.output_bytes()
            + 4 * node.kind.param_count() as u64) as f64;
        self.overhead_s
            + flops / self.effective_flops(&node.kind, flops)
            + bytes / (self.mem_bw_gbps * 1e9)
    }

    /// Energy (joules) of executing vertex `id` on this node:
    /// busy power times compute latency.
    pub fn layer_energy(&self, graph: &DnnGraph, id: NodeId) -> f64 {
        self.busy_power_w * self.layer_latency(graph, id)
    }

    /// Latency of executing an entire graph serially on this node.
    pub fn graph_latency(&self, graph: &DnnGraph) -> f64 {
        graph.ids().map(|id| self.layer_latency(graph, id)).sum()
    }

    /// Latency of executing a subset of vertices serially on this node.
    pub fn segment_latency(&self, graph: &DnnGraph, members: &[NodeId]) -> f64 {
        members
            .iter()
            .map(|&id| self.layer_latency(graph, id))
            .sum()
    }
}

/// The per-tier hardware assignment used by an experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TierProfiles {
    /// Device-tier node.
    pub device: NodeProfile,
    /// Edge-tier node.
    pub edge: NodeProfile,
    /// Cloud-tier node.
    pub cloud: NodeProfile,
}

impl TierProfiles {
    /// The evaluation testbed: Jetson Nano 2GB device (Table II — the
    /// capable mobile device whose contribution is D3's whole premise,
    /// cf. §I "the latest smartphone has … 1.37 TFLOPS"), i7-8700 edge,
    /// RTX 2080 Ti cloud.
    pub fn paper_testbed() -> Self {
        Self {
            device: NodeProfile::jetson_nano(),
            edge: NodeProfile::edge_i7_8700(),
            cloud: NodeProfile::cloud_rtx2080ti(),
        }
    }

    /// The §IV implementation variant with a Raspberry Pi 4 as the
    /// device node (used by Fig. 1, which measures on an RPi4).
    pub fn rpi_testbed() -> Self {
        Self {
            device: NodeProfile::raspberry_pi4(),
            edge: NodeProfile::edge_i7_8700(),
            cloud: NodeProfile::cloud_rtx2080ti(),
        }
    }

    /// The Table II testbed (alias of [`TierProfiles::paper_testbed`]).
    pub fn table2_testbed() -> Self {
        Self::paper_testbed()
    }

    /// The node serving a tier.
    pub fn node(&self, tier: Tier) -> &NodeProfile {
        match tier {
            Tier::Device => &self.device,
            Tier::Edge => &self.edge,
            Tier::Cloud => &self.cloud,
        }
    }

    /// Per-layer latency on a given tier — the vertex weight
    /// `T_vi = {t_d, t_e, t_c}` of the paper's model.
    pub fn layer_latency(&self, graph: &DnnGraph, id: NodeId, tier: Tier) -> f64 {
        self.node(tier).layer_latency(graph, id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use d3_model::zoo;

    #[test]
    fn tiers_are_typically_faster_along_pipeline() {
        // The paper's assumption "typically t_d > t_e > t_c" (§III-C).
        // Our model reproduces the realistic exception too: for very cheap
        // layers the cloud GPU's launch overhead can exceed the edge CPU's
        // time, so we assert strict ordering only for layers with
        // meaningful compute, plus for whole-graph latency.
        // Memory-bound dense layers are the other realistic exception:
        // the Jetson's unified memory out-streams the CPU's sustained
        // GEMV bandwidth, so the strict check covers compute-bound convs.
        let p = TierProfiles::paper_testbed();
        let g = zoo::vgg16(224);
        for id in g.layer_ids() {
            let is_conv = matches!(g.node(id).kind, d3_model::LayerKind::Conv { .. });
            if g.flops(id) < 50_000_000 || !is_conv {
                continue;
            }
            let d = p.layer_latency(&g, id, Tier::Device);
            let e = p.layer_latency(&g, id, Tier::Edge);
            let c = p.layer_latency(&g, id, Tier::Cloud);
            assert!(d > e, "layer {id}: device {d} ≤ edge {e}");
            assert!(e > c, "layer {id}: edge {e} ≤ cloud {c}");
        }
        let d = p.device.graph_latency(&g);
        let e = p.edge.graph_latency(&g);
        let c = p.cloud.graph_latency(&g);
        assert!(d > e && e > c);
    }

    #[test]
    fn input_vertex_costs_nothing() {
        let p = NodeProfile::raspberry_pi4();
        let g = zoo::alexnet(224);
        assert_eq!(p.layer_latency(&g, g.input()), 0.0);
    }

    #[test]
    fn fig1_vgg16_rpi_magnitudes() {
        // Fig. 1a: VGG-16 conv layers on an RPi4 peak around 0.4–0.6 s
        // (conv2) and the full network takes seconds.
        let p = NodeProfile::raspberry_pi4();
        let g = zoo::vgg16(224);
        let conv2 = g.nodes().iter().find(|n| n.name == "conv2").unwrap().id;
        let t = p.layer_latency(&g, conv2);
        assert!(t > 0.2 && t < 1.2, "conv2 on RPi4 = {t:.3}s");
        let total = p.graph_latency(&g);
        assert!(total > 2.0 && total < 12.0, "VGG-16 on RPi4 = {total:.2}s");
    }

    #[test]
    fn fig1_resnet18_rpi_magnitudes() {
        // Fig. 1b: ResNet-18 per-block latencies ≤ ~0.1 s, total well under
        // VGG-16.
        let p = NodeProfile::raspberry_pi4();
        let g = zoo::resnet18(224);
        let total = p.graph_latency(&g);
        let vgg = p.graph_latency(&zoo::vgg16(224));
        assert!(total < vgg / 3.0, "resnet {total:.2}s vs vgg {vgg:.2}s");
    }

    #[test]
    fn cloud_runs_vgg_in_milliseconds() {
        let p = NodeProfile::cloud_rtx2080ti();
        let g = zoo::vgg16(224);
        let t = p.graph_latency(&g);
        assert!(t < 0.05, "VGG-16 on 2080Ti = {t:.4}s");
    }

    #[test]
    fn dense_layers_are_memory_bound() {
        // VGG fc1 (25088→4096, 102M params) should cost more in memory
        // traffic than in FLOPs on the edge node.
        let p = NodeProfile::edge_i7_8700();
        let g = zoo::vgg16(224);
        let fc1 = g.nodes().iter().find(|n| n.name == "fc1").unwrap();
        let flop_time = 2.0 * 25088.0 * 4096.0 / (p.peak_gflops * p.eff.dense * 1e9);
        let mem_time = (4 * fc1.kind.param_count()) as f64 / (p.mem_bw_gbps * 1e9);
        assert!(mem_time > flop_time * 0.5, "fc1 should be memory-heavy");
    }

    #[test]
    fn segment_latency_is_additive() {
        let p = NodeProfile::edge_i7_8700();
        let g = zoo::alexnet(224);
        let all: Vec<_> = g.ids().collect();
        let (a, b) = all.split_at(5);
        let total = p.segment_latency(&g, a) + p.segment_latency(&g, b);
        assert!((total - p.graph_latency(&g)).abs() < 1e-12);
    }
}
