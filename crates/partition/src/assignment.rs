//! Tier assignments and the total-latency objective Θ.

use crate::Problem;
use d3_model::NodeId;
use d3_simnet::Tier;

/// A complete tier assignment: `tiers[i]` is the tier executing vertex
/// `vi`. The virtual input `v0` is always at the device tier (it *is* the
/// data source).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    tiers: Vec<Tier>,
}

impl Assignment {
    /// Creates an assignment from a tier vector.
    ///
    /// # Panics
    ///
    /// Panics when `v0` is not assigned to the device tier.
    pub fn new(tiers: Vec<Tier>) -> Self {
        assert!(!tiers.is_empty(), "empty assignment");
        assert_eq!(tiers[0], Tier::Device, "v0 must stay at the device tier");
        Self { tiers }
    }

    /// An assignment placing every real layer at `tier` (`v0` stays at the
    /// device). These are the paper's device-only / edge-only / cloud-only
    /// baselines.
    pub fn uniform(n: usize, tier: Tier) -> Self {
        let mut tiers = vec![tier; n];
        tiers[0] = Tier::Device;
        Self { tiers }
    }

    /// Number of vertices covered.
    pub fn len(&self) -> usize {
        self.tiers.len()
    }

    /// Whether the assignment is empty (never true for valid instances).
    pub fn is_empty(&self) -> bool {
        self.tiers.is_empty()
    }

    /// Tier of a vertex.
    pub fn tier(&self, id: NodeId) -> Tier {
        self.tiers[id.index()]
    }

    /// Sets the tier of a vertex.
    pub fn set_tier(&mut self, id: NodeId, tier: Tier) {
        self.tiers[id.index()] = tier;
    }

    /// Borrow the raw tier vector.
    pub fn tiers(&self) -> &[Tier] {
        &self.tiers
    }

    /// Vertices assigned to a tier, ascending — a tier's *segment*.
    pub fn segment(&self, tier: Tier) -> Vec<NodeId> {
        self.tiers
            .iter()
            .enumerate()
            .filter(|(_, t)| **t == tier)
            .map(|(i, _)| NodeId(i))
            .collect()
    }

    /// Vertices whose tier differs between `self` and `other` — the plan
    /// diff that drives minimal live reconfiguration (only pipeline
    /// stages containing a changed vertex need rebuilding).
    ///
    /// # Panics
    ///
    /// Panics when the two assignments cover different vertex counts.
    #[must_use]
    pub fn diff(&self, other: &Assignment) -> Vec<NodeId> {
        assert_eq!(
            self.tiers.len(),
            other.tiers().len(),
            "assignments cover different graphs"
        );
        self.tiers
            .iter()
            .zip(other.tiers())
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(i, _)| NodeId(i))
            .collect()
    }

    /// Whether every DAG link flows forward in the pipeline
    /// (`tier(u) ⪰ tier(v)` never violated): the Proposition 1 invariant
    /// HPA maintains.
    pub fn is_monotone(&self, problem: &Problem) -> bool {
        problem
            .graph()
            .links()
            .iter()
            .all(|(u, v)| self.tier(*u).precedes_eq(self.tier(*v)))
    }

    /// The paper's objective
    /// `Θ = Σ_i t^li_i + Σ_(vi,vj) t^[li,lj]_ij`: total processing plus
    /// transmission latency — the end-to-end latency of one serial
    /// inference.
    pub fn total_latency(&self, problem: &Problem) -> f64 {
        let g = problem.graph();
        let mut total = 0.0;
        for id in g.ids() {
            total += problem.vertex_time(id, self.tier(id));
        }
        for (u, v) in g.links() {
            total += problem.link_time(u, self.tier(u), self.tier(v));
        }
        total
    }

    /// Per-tier processing time (no transmission): the stage times of
    /// Table II.
    pub fn stage_times(&self, problem: &Problem) -> [f64; 3] {
        let mut out = [0.0; 3];
        for id in problem.graph().ids() {
            let t = self.tier(id);
            out[t.rank()] += problem.vertex_time(id, t);
        }
        out
    }

    /// Total transmission time across tier boundaries for one inference.
    pub fn transmission_latency(&self, problem: &Problem) -> f64 {
        problem
            .graph()
            .links()
            .iter()
            .map(|(u, v)| problem.link_time(*u, self.tier(*u), self.tier(*v)))
            .sum()
    }

    /// Bytes crossing from the LAN (device/edge) to the cloud per
    /// inference — the backbone communication overhead of Fig. 13.
    /// Each link `(u, v)` with `u` in the LAN and `v` at the cloud ships
    /// `u`'s output once (outputs consumed by several cloud vertices are
    /// transferred once, as a real system would).
    pub fn backbone_bytes(&self, problem: &Problem) -> u64 {
        let g = problem.graph();
        let mut total = 0;
        for node in g.nodes() {
            if self.tier(node.id) == Tier::Cloud {
                continue;
            }
            let crosses = node.succs.iter().any(|s| self.tier(*s) == Tier::Cloud);
            if crosses {
                total += node.output_bytes();
            }
        }
        total
    }

    /// Which tiers actually execute at least one real layer.
    pub fn used_tiers(&self) -> Vec<Tier> {
        Tier::ALL
            .into_iter()
            .filter(|t| self.tiers.iter().enumerate().any(|(i, x)| i > 0 && x == t))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use d3_model::zoo;
    use d3_simnet::{NetworkCondition, TierProfiles};

    fn problem(g: &d3_model::DnnGraph) -> Problem {
        Problem::new(g, &TierProfiles::paper_testbed(), NetworkCondition::WiFi)
    }

    #[test]
    fn uniform_assignments() {
        let g = zoo::alexnet(224);
        let a = Assignment::uniform(g.len(), Tier::Cloud);
        assert_eq!(a.tier(g.input()), Tier::Device);
        assert_eq!(a.tier(NodeId(1)), Tier::Cloud);
        assert_eq!(a.segment(Tier::Cloud).len(), g.len() - 1);
    }

    #[test]
    fn device_only_has_no_transmission() {
        let g = zoo::alexnet(224);
        let p = problem(&g);
        let a = Assignment::uniform(g.len(), Tier::Device);
        assert_eq!(a.transmission_latency(&p), 0.0);
        assert_eq!(a.backbone_bytes(&p), 0);
        assert!(a.is_monotone(&p));
    }

    #[test]
    fn cloud_only_pays_raw_input_transfer() {
        let g = zoo::alexnet(224);
        let p = problem(&g);
        let a = Assignment::uniform(g.len(), Tier::Cloud);
        let expect = p.input_transfer(Tier::Device, Tier::Cloud);
        assert!((a.transmission_latency(&p) - expect).abs() < 1e-12);
        assert_eq!(a.backbone_bytes(&p), 3 * 224 * 224 * 4);
    }

    #[test]
    fn theta_decomposes_into_stage_and_transmission() {
        let g = zoo::resnet18(224);
        let p = problem(&g);
        let mut a = Assignment::uniform(g.len(), Tier::Edge);
        // Push the tail of the network to the cloud.
        for id in g.ids().skip(g.len() - 10) {
            a.set_tier(id, Tier::Cloud);
        }
        let theta = a.total_latency(&p);
        let stages: f64 = a.stage_times(&p).iter().sum();
        let tx = a.transmission_latency(&p);
        assert!((theta - (stages + tx)).abs() < 1e-12);
        assert!(tx > 0.0);
    }

    #[test]
    fn monotonicity_detects_backward_flow() {
        let g = zoo::alexnet(224);
        let p = problem(&g);
        let mut a = Assignment::uniform(g.len(), Tier::Cloud);
        assert!(a.is_monotone(&p));
        // Move a mid layer back to the device: cloud → device link appears.
        a.set_tier(NodeId(5), Tier::Device);
        assert!(!a.is_monotone(&p));
    }

    #[test]
    fn backbone_bytes_counts_shared_output_once() {
        // diamond: stem feeds two branches; if both branches sit in the
        // cloud the stem output crosses once.
        let g = zoo::diamond_net(16);
        let p = problem(&g);
        let mut a = Assignment::uniform(g.len(), Tier::Cloud);
        let stem = NodeId(1);
        a.set_tier(stem, Tier::Device);
        let expect = g.node(stem).output_bytes();
        // v0 raw input no longer crosses (stem consumes it on device).
        assert_eq!(a.backbone_bytes(&p), expect);
    }

    #[test]
    fn used_tiers_ignores_v0() {
        let g = zoo::alexnet(224);
        let a = Assignment::uniform(g.len(), Tier::Cloud);
        assert_eq!(a.used_tiers(), vec![Tier::Cloud]);
    }

    #[test]
    #[should_panic(expected = "v0 must stay")]
    fn v0_must_be_device() {
        Assignment::new(vec![Tier::Edge, Tier::Edge]);
    }
}
