//! # d3-partition
//!
//! DNN partitioning algorithms for the D3 reproduction (ICDCS 2021):
//!
//! - [`Problem`] / [`Assignment`]: the weighted-DAG partition instance and
//!   the total-latency objective Θ of §III-C,
//! - [`Partitioner`]: the unified trait over every partition policy, with
//!   strategy objects [`Hpa`], [`Neurosurgeon`], [`Dads`], [`Ionn`],
//!   [`ExhaustiveOracle`] and [`FixedTier`], all failing through one
//!   [`PartitionError`],
//! - [`mod@hpa`]: the paper's Horizontal Partition Algorithm (Algorithm 1) —
//!   three-way device/edge/cloud splits with Proposition 1 pruning, the
//!   Table I pairwise look-ahead and Proposition 2 SIS updates,
//! - [`dynamic`]: threshold-gated *local* re-partitioning under resource
//!   and network drift,
//! - baselines: [`mod@neurosurgeon`] (chain split, ASPLOS'17), [`mod@dads`]
//!   (min-cut DAG split, INFOCOM'19 — on a from-scratch Dinic max-flow),
//!   [`mod@ionn`] (upload-amortized chain split, SoCC'18), and an
//!   [`exhaustive`] oracle for optimality-gap tests,
//! - [`placement`]: the Table I pairwise placement latencies.
//!
//! ## Example
//!
//! ```
//! use d3_partition::{Hpa, Partitioner, Problem};
//! use d3_simnet::{NetworkCondition, TierProfiles};
//! use d3_model::zoo;
//!
//! let g = zoo::vgg16(224);
//! let profiles = TierProfiles::paper_testbed();
//! let problem = Problem::new(&g, &profiles, NetworkCondition::WiFi);
//! let plan = Hpa::paper().partition(&problem).unwrap();
//! assert!(plan.is_monotone(&problem));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assignment;
pub mod dads;
pub mod dynamic;
pub mod energy;
pub mod exhaustive;
pub mod hpa;
pub mod ionn;
pub mod maxflow;
pub mod neurosurgeon;
mod partitioner;
pub mod placement;
mod problem;

pub use assignment::Assignment;
pub use dads::two_tier_mincut;
pub use dynamic::{repartition_local, DriftMonitor, LocalUpdate};
pub use energy::{energy, neurosurgeon_energy, EnergyReport};
pub use hpa::{best_layered_cut, hpa_greedy, HpaOptions};
pub use maxflow::FlowNetwork;
pub use partitioner::{
    Dads, EvenSplit, ExhaustiveOracle, FixedTier, Hpa, Ionn, Neurosurgeon, PartitionError,
    Partitioner,
};
pub use placement::{pair_latency, table1, PlacementRow};
pub use problem::{CodecProfile, Problem};
