//! Per-inference energy accounting.
//!
//! The paper motivates offloading with both latency *and* energy ("DNN
//! inference requires abundant computation resources and consumes
//! considerable energy", §I), and its Neurosurgeon baseline originally
//! optimizes either objective. This module prices an [`Assignment`]:
//! compute joules per tier (busy power × compute seconds) plus the
//! *device radio* joules spent uploading across tier boundaries — the
//! battery cost that matters on the mobile side.

use crate::{Assignment, Problem};
use d3_model::NodeId;
use d3_simnet::{Tier, TierProfiles};

/// Energy breakdown of one inference under an assignment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyReport {
    /// Compute joules per tier (`[device, edge, cloud]`).
    pub compute_j: [f64; 3],
    /// Device radio joules (uploads leaving the device tier).
    pub device_radio_j: f64,
}

impl EnergyReport {
    /// Total joules across the whole system.
    pub fn total_j(&self) -> f64 {
        self.compute_j.iter().sum::<f64>() + self.device_radio_j
    }

    /// Joules drawn from the *device's* battery: its compute plus its
    /// radio — the quantity a mobile deployment minimizes.
    pub fn device_j(&self) -> f64 {
        self.compute_j[Tier::Device.rank()] + self.device_radio_j
    }
}

/// Prices one inference of `assignment`. Compute time comes from the
/// ground-truth hardware model in `profiles` (not the problem's possibly
/// estimated weights), radio time from the problem's network condition.
pub fn energy(problem: &Problem, assignment: &Assignment, profiles: &TierProfiles) -> EnergyReport {
    let g = problem.graph();
    let mut compute_j = [0.0f64; 3];
    for id in g.ids() {
        let tier = assignment.tier(id);
        compute_j[tier.rank()] += profiles.node(tier).layer_energy(g, id);
    }
    // Device radio: every tensor leaving the device tier, once per
    // destination tier (matching the engine's transfer dedup).
    let radio_w = problem.net().device_radio_power_w();
    let mut radio_s = 0.0;
    for node in g.nodes() {
        if assignment.tier(node.id) != Tier::Device {
            continue;
        }
        let mut dests: Vec<Tier> = node
            .succs
            .iter()
            .map(|s| assignment.tier(*s))
            .filter(|t| *t != Tier::Device)
            .collect();
        dests.sort();
        dests.dedup();
        for dest in dests {
            radio_s += problem.link_time(node.id, Tier::Device, dest);
        }
    }
    EnergyReport {
        compute_j,
        device_radio_j: radio_w * radio_s,
    }
}

/// Energy-aware Neurosurgeon: the baseline's *energy* objective — the
/// chain split minimizing joules drawn from the device's battery
/// (device compute + radio upload; cloud energy is the provider's
/// problem).
///
/// # Errors
///
/// Returns [`PartitionError::NotAChain`](crate::PartitionError::NotAChain)
/// for DAG topologies.
pub fn neurosurgeon_energy(
    problem: &Problem,
    profiles: &TierProfiles,
) -> Result<Assignment, crate::PartitionError> {
    let g = problem.graph();
    if !g.is_chain() {
        return Err(crate::PartitionError::NotAChain {
            algorithm: "Neurosurgeon",
        });
    }
    let n = g.len();
    let radio_w = problem.net().device_radio_power_w();
    let mut best: Option<(f64, usize)> = None;
    for k in 0..n {
        let mut joules = 0.0;
        for i in 0..=k {
            joules += profiles.device.layer_energy(g, NodeId(i));
        }
        if k + 1 < n {
            joules += radio_w * problem.link_time(NodeId(k), Tier::Device, Tier::Cloud);
        }
        if best.is_none_or(|(b, _)| joules < b) {
            best = Some((joules, k));
        }
    }
    let (_, k) = best.expect("non-empty chain");
    let tiers = (0..n)
        .map(|i| if i <= k { Tier::Device } else { Tier::Cloud })
        .collect();
    Ok(Assignment::new(tiers))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hpa::{solve as hpa, HpaOptions};
    use crate::neurosurgeon::solve as neurosurgeon;
    use d3_model::zoo;
    use d3_simnet::NetworkCondition;

    fn setup(g: &d3_model::DnnGraph, net: NetworkCondition) -> (Problem, TierProfiles) {
        let profiles = TierProfiles::paper_testbed();
        (Problem::new(g, &profiles, net), profiles)
    }

    #[test]
    fn device_only_spends_no_radio_energy() {
        let g = zoo::alexnet(224);
        let (p, profiles) = setup(&g, NetworkCondition::WiFi);
        let a = Assignment::uniform(g.len(), Tier::Device);
        let e = energy(&p, &a, &profiles);
        assert_eq!(e.device_radio_j, 0.0);
        assert!(e.compute_j[0] > 0.0);
        assert_eq!(e.compute_j[1] + e.compute_j[2], 0.0);
        assert!((e.total_j() - e.device_j()).abs() < 1e-12);
    }

    #[test]
    fn cloud_only_battery_cost_is_pure_radio() {
        let g = zoo::alexnet(224);
        let (p, profiles) = setup(&g, NetworkCondition::FourG);
        let a = Assignment::uniform(g.len(), Tier::Cloud);
        let e = energy(&p, &a, &profiles);
        assert_eq!(e.compute_j[0], 0.0);
        // Raw input over 4G at 2.5 W: 4.82 Mb / 6.12 Mbps × 2.5 W ≈ 2 J.
        let expect = 2.5 * p.input_transfer(Tier::Device, Tier::Cloud);
        assert!((e.device_radio_j - expect).abs() < 1e-9);
        // Energy insight the model surfaces: on a slow, hot 4G uplink,
        // shipping the raw image costs *more* battery than running small
        // AlexNet locally on the efficient Jetson — offloading only pays
        // over Wi-Fi.
        let local = energy(&p, &Assignment::uniform(g.len(), Tier::Device), &profiles);
        assert!(
            e.device_j() > local.device_j(),
            "4G upload should cost more"
        );
        let (p_wifi, _) = setup(&g, NetworkCondition::WiFi);
        let wifi = energy(&p_wifi, &a, &profiles);
        assert!(
            wifi.device_j() < local.device_j(),
            "Wi-Fi offloading should save battery"
        );
    }

    #[test]
    fn offloading_saves_device_battery_for_big_models() {
        // VGG-16 on the device costs far more battery than shipping the
        // input — the paper's motivation quantified.
        let g = zoo::vgg16(224);
        let (p, profiles) = setup(&g, NetworkCondition::WiFi);
        let local = energy(&p, &Assignment::uniform(g.len(), Tier::Device), &profiles);
        let hpa_plan = hpa(&p, &HpaOptions::paper());
        let offloaded = energy(&p, &hpa_plan, &profiles);
        assert!(
            offloaded.device_j() < local.device_j() / 2.0,
            "offloaded {} J vs local {} J",
            offloaded.device_j(),
            local.device_j()
        );
    }

    #[test]
    fn energy_neurosurgeon_offloads_at_least_as_much_as_latency_variant() {
        // The device's radio is cheap relative to its compute power draw,
        // so the energy objective favors offloading earlier (or equally).
        let g = zoo::alexnet(224);
        let (p, profiles) = setup(&g, NetworkCondition::WiFi);
        let lat = neurosurgeon(&p).unwrap();
        let en = neurosurgeon_energy(&p, &profiles).unwrap();
        let device_count =
            |a: &Assignment| a.tiers().iter().filter(|t| **t == Tier::Device).count();
        assert!(device_count(&en) <= device_count(&lat));
        // And it must actually minimize device joules among chain cuts.
        let best = energy(&p, &en, &profiles).device_j();
        for k in 0..g.len() {
            let tiers: Vec<Tier> = (0..g.len())
                .map(|i| if i <= k { Tier::Device } else { Tier::Cloud })
                .collect();
            let alt = energy(&p, &Assignment::new(tiers), &profiles).device_j();
            assert!(best <= alt + 1e-9);
        }
    }

    #[test]
    fn radio_power_scales_with_network_generation() {
        let g = zoo::alexnet(224);
        let a = Assignment::uniform(g.len(), Tier::Cloud);
        let (p_wifi, profiles) = setup(&g, NetworkCondition::WiFi);
        let (p_5g, _) = setup(&g, NetworkCondition::FiveG);
        let wifi = energy(&p_wifi, &a, &profiles).device_radio_j;
        let fiveg = energy(&p_5g, &a, &profiles).device_radio_j;
        // 5G: slower uplink (11.64 vs 18.75 Mbps) AND hotter radio.
        assert!(fiveg > wifi);
    }
}
