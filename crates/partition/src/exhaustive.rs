//! Exhaustive enumeration oracle.
//!
//! DAG partitioning with multiple vertex and link weights is NP-hard
//! (§III-E cites Garey & Johnson and the acyclic-partitioning literature),
//! which is why HPA is a heuristic. On *small* graphs, however, the
//! optimum is computable by brute force; the test-suite uses it to bound
//! HPA's optimality gap and to verify DADS's min-cut reduction.

use crate::{Assignment, PartitionError, Problem};
use d3_simnet::Tier;

/// Hard cap on enumerable vertices: `3^16 ≈ 43M` assignments is the most
/// the tests should ever chew through.
pub const MAX_EXHAUSTIVE_VERTICES: usize = 16;

/// Finds the minimum-Θ assignment by enumerating every tier assignment.
///
/// Thin shim over the [`ExhaustiveOracle`](crate::ExhaustiveOracle)
/// partitioner, kept for source compatibility (including its panicking
/// contract).
///
/// # Panics
///
/// Panics when the graph has more than [`MAX_EXHAUSTIVE_VERTICES`] real
/// layers or `allowed` is empty.
#[deprecated(
    since = "0.2.0",
    note = "use `ExhaustiveOracle { allowed, monotone_only }.partition(problem)` instead"
)]
pub fn exhaustive_optimal(problem: &Problem, allowed: &[Tier], monotone_only: bool) -> Assignment {
    match solve(problem, allowed, monotone_only) {
        Ok(assignment) => assignment,
        Err(PartitionError::EmptyTierSet) => panic!("allowed tier set is empty"),
        Err(PartitionError::TooLarge { layers, .. }) => {
            panic!("graph too large for exhaustive search ({layers} layers)")
        }
        Err(e) => panic!("exhaustive search failed: {e}"),
    }
}

/// Oracle implementation shared by the
/// [`ExhaustiveOracle`](crate::ExhaustiveOracle) partitioner and the
/// legacy [`exhaustive_optimal`] shim: enumerates every tier assignment
/// of the real layers over `allowed` tiers. With `monotone_only`, only
/// assignments obeying Proposition 1 (pipeline-forward data flow) are
/// considered — the space HPA searches.
pub(crate) fn solve(
    problem: &Problem,
    allowed: &[Tier],
    monotone_only: bool,
) -> Result<Assignment, PartitionError> {
    let g = problem.graph();
    let n = g.len() - 1; // real layers
    if allowed.is_empty() {
        return Err(PartitionError::EmptyTierSet);
    }
    if n > MAX_EXHAUSTIVE_VERTICES {
        return Err(PartitionError::TooLarge {
            layers: n,
            max: MAX_EXHAUSTIVE_VERTICES,
        });
    }
    let k = allowed.len();
    let combos = (k as u64).pow(n as u32);
    let mut best: Option<(f64, Assignment)> = None;
    let mut tiers = vec![Tier::Device; g.len()];
    for code in 0..combos {
        let mut c = code;
        for i in 0..n {
            tiers[i + 1] = allowed[(c % k as u64) as usize];
            c /= k as u64;
        }
        let asg = Assignment::new(tiers.clone());
        if monotone_only && !asg.is_monotone(problem) {
            continue;
        }
        let theta = asg.total_latency(problem);
        if best.as_ref().is_none_or(|(b, _)| theta < *b) {
            best = Some((theta, asg));
        }
    }
    Ok(best.expect("at least one assignment").1)
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)] // the legacy shims stay covered until removal

    use super::*;
    use crate::hpa::{hpa, HpaOptions};
    use d3_model::zoo;
    use d3_simnet::{NetworkCondition, TierProfiles};

    fn problem(g: &d3_model::DnnGraph, net: NetworkCondition) -> Problem {
        Problem::new(g, &TierProfiles::paper_testbed(), net)
    }

    #[test]
    fn finds_obvious_optimum() {
        // All compute free -> optimum avoids all transfers (device-only).
        let g = zoo::chain_cnn(4, 8, 8);
        let zeros = vec![[0.0; 3]; g.len()];
        let p = Problem::from_weights(&g, zeros, NetworkCondition::WiFi);
        let a = exhaustive_optimal(&p, &Tier::ALL, false);
        for id in g.layer_ids() {
            assert_eq!(a.tier(id), Tier::Device);
        }
    }

    #[test]
    fn monotone_restriction_never_beats_unrestricted() {
        for seed in 0..8 {
            let g = zoo::random_dag(seed, 3, 2, 8);
            if g.len() - 1 > 10 {
                continue;
            }
            let p = problem(&g, NetworkCondition::WiFi);
            let free = exhaustive_optimal(&p, &Tier::ALL, false).total_latency(&p);
            let mono = exhaustive_optimal(&p, &Tier::ALL, true).total_latency(&p);
            assert!(mono + 1e-12 >= free);
        }
    }

    #[test]
    fn hpa_is_near_optimal_on_small_graphs() {
        // HPA is a heuristic; quantify its gap against the true monotone
        // optimum on a batch of random DAGs and small chains.
        let mut worst: f64 = 1.0;
        for seed in 0..12 {
            let g = zoo::random_dag(seed, 3, 2, 12);
            if g.len() - 1 > 12 {
                continue;
            }
            for net in [NetworkCondition::WiFi, NetworkCondition::FourG] {
                let p = problem(&g, net);
                let h = hpa(&p, &HpaOptions::paper()).total_latency(&p);
                let opt = exhaustive_optimal(&p, &Tier::ALL, true).total_latency(&p);
                worst = worst.max(h / opt);
            }
        }
        assert!(worst < 1.6, "HPA worst-case gap {worst:.3}× exceeds bound");
    }

    #[test]
    fn hpa_matches_optimum_on_tiny_chain() {
        let g = zoo::chain_cnn(5, 4, 8);
        let p = problem(&g, NetworkCondition::WiFi);
        let h = hpa(&p, &HpaOptions::paper()).total_latency(&p);
        let opt = exhaustive_optimal(&p, &Tier::ALL, true).total_latency(&p);
        assert!(h <= opt * 1.25, "HPA {h} vs optimum {opt}");
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn refuses_big_graphs() {
        let g = zoo::vgg16(224);
        let p = problem(&g, NetworkCondition::WiFi);
        exhaustive_optimal(&p, &Tier::ALL, false);
    }
}
