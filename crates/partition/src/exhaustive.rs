//! Exhaustive enumeration oracle.
//!
//! DAG partitioning with multiple vertex and link weights is NP-hard
//! (§III-E cites Garey & Johnson and the acyclic-partitioning literature),
//! which is why HPA is a heuristic. On *small* graphs, however, the
//! optimum is computable by brute force; the test-suite uses it to bound
//! HPA's optimality gap and to verify DADS's min-cut reduction.

use crate::{Assignment, PartitionError, Problem};
use d3_simnet::Tier;

/// Hard cap on enumerable vertices: `3^16 ≈ 43M` assignments is the most
/// the tests should ever chew through.
pub const MAX_EXHAUSTIVE_VERTICES: usize = 16;

/// Oracle implementation behind the
/// [`ExhaustiveOracle`](crate::ExhaustiveOracle) partitioner:
/// enumerates every tier assignment
/// of the real layers over `allowed` tiers. With `monotone_only`, only
/// assignments obeying Proposition 1 (pipeline-forward data flow) are
/// considered — the space HPA searches.
pub(crate) fn solve(
    problem: &Problem,
    allowed: &[Tier],
    monotone_only: bool,
) -> Result<Assignment, PartitionError> {
    let g = problem.graph();
    let n = g.len() - 1; // real layers
    if allowed.is_empty() {
        return Err(PartitionError::EmptyTierSet);
    }
    if n > MAX_EXHAUSTIVE_VERTICES {
        return Err(PartitionError::TooLarge {
            layers: n,
            max: MAX_EXHAUSTIVE_VERTICES,
        });
    }
    let k = allowed.len();
    let combos = (k as u64).pow(n as u32);
    let mut best: Option<(f64, Assignment)> = None;
    let mut tiers = vec![Tier::Device; g.len()];
    for code in 0..combos {
        let mut c = code;
        for i in 0..n {
            tiers[i + 1] = allowed[(c % k as u64) as usize];
            c /= k as u64;
        }
        let asg = Assignment::new(tiers.clone());
        if monotone_only && !asg.is_monotone(problem) {
            continue;
        }
        let theta = asg.total_latency(problem);
        if best.as_ref().is_none_or(|(b, _)| theta < *b) {
            best = Some((theta, asg));
        }
    }
    Ok(best.expect("at least one assignment").1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hpa::{solve as hpa, HpaOptions};
    use d3_model::zoo;
    use d3_simnet::{NetworkCondition, TierProfiles};

    fn problem(g: &d3_model::DnnGraph, net: NetworkCondition) -> Problem {
        Problem::new(g, &TierProfiles::paper_testbed(), net)
    }

    #[test]
    fn finds_obvious_optimum() {
        // All compute free -> optimum avoids all transfers (device-only).
        let g = zoo::chain_cnn(4, 8, 8);
        let zeros = vec![[0.0; 3]; g.len()];
        let p = Problem::from_weights(&g, zeros, NetworkCondition::WiFi);
        let a = solve(&p, &Tier::ALL, false).unwrap();
        for id in g.layer_ids() {
            assert_eq!(a.tier(id), Tier::Device);
        }
    }

    #[test]
    fn monotone_restriction_never_beats_unrestricted() {
        for seed in 0..8 {
            let g = zoo::random_dag(seed, 3, 2, 8);
            if g.len() - 1 > 10 {
                continue;
            }
            let p = problem(&g, NetworkCondition::WiFi);
            let free = solve(&p, &Tier::ALL, false).unwrap().total_latency(&p);
            let mono = solve(&p, &Tier::ALL, true).unwrap().total_latency(&p);
            assert!(mono + 1e-12 >= free);
        }
    }

    #[test]
    fn hpa_is_near_optimal_on_small_graphs() {
        // HPA is a heuristic; quantify its gap against the true monotone
        // optimum on a batch of random DAGs and small chains.
        let mut worst: f64 = 1.0;
        for seed in 0..12 {
            let g = zoo::random_dag(seed, 3, 2, 12);
            if g.len() - 1 > 12 {
                continue;
            }
            for net in [NetworkCondition::WiFi, NetworkCondition::FourG] {
                let p = problem(&g, net);
                let h = hpa(&p, &HpaOptions::paper()).total_latency(&p);
                let opt = solve(&p, &Tier::ALL, true).unwrap().total_latency(&p);
                worst = worst.max(h / opt);
            }
        }
        assert!(worst < 1.6, "HPA worst-case gap {worst:.3}× exceeds bound");
    }

    #[test]
    fn hpa_matches_optimum_on_tiny_chain() {
        let g = zoo::chain_cnn(5, 4, 8);
        let p = problem(&g, NetworkCondition::WiFi);
        let h = hpa(&p, &HpaOptions::paper()).total_latency(&p);
        let opt = solve(&p, &Tier::ALL, true).unwrap().total_latency(&p);
        assert!(h <= opt * 1.25, "HPA {h} vs optimum {opt}");
    }

    #[test]
    fn refuses_big_graphs() {
        let g = zoo::vgg16(224);
        let p = problem(&g, NetworkCondition::WiFi);
        assert!(matches!(
            solve(&p, &Tier::ALL, false),
            Err(PartitionError::TooLarge { .. })
        ));
    }
}
