//! IONN baseline (Jeong et al., SoCC 2018): *Incremental Offloading of
//! Neural Network* computations.
//!
//! IONN targets the cold-start problem the other partitioners ignore: the
//! server does not have the model yet, so every layer placed remotely
//! must first have its **parameters uploaded**. IONN models the chain DNN
//! as an auxiliary DAG and finds the optimal offloading with a
//! shortest-path computation; the split converges to Neurosurgeon's as
//! the number of queries amortizing the upload grows.
//!
//! We implement the steady-state variant over the paper's device/cloud
//! tiers: a dynamic program over (layer, location) states where moving a
//! suffix to the cloud pays its one-time parameter upload divided by the
//! expected query count. (The original's incremental multi-partition
//! upload schedule collapses to this once all partitions are uploaded;
//! reproducing the schedule itself is out of scope for the latency
//! comparison the D3 paper makes.)

use crate::{Assignment, Problem};
use d3_model::NodeId;
use d3_simnet::Tier;

use crate::PartitionError;

/// IONN implementation behind the [`Ionn`](crate::Ionn) partitioner.
///
/// With `expected_queries == u64::MAX` the upload cost vanishes and the
/// result matches Neurosurgeon's split exactly (tested).
pub(crate) fn solve(
    problem: &Problem,
    expected_queries: u64,
) -> Result<Assignment, PartitionError> {
    let g = problem.graph();
    if !g.is_chain() {
        return Err(PartitionError::NotAChain { algorithm: "IONN" });
    }
    let n = g.len();
    let queries = expected_queries.max(1) as f64;
    // Like Neurosurgeon, IONN's steady state on a chain is a single cut
    // (device prefix, cloud suffix) — but the objective adds the suffix's
    // parameter-upload time over the device→cloud link, amortized.
    let mut best: Option<(f64, usize)> = None;
    for k in 0..n {
        let mut total = 0.0;
        let mut upload_bytes = 0u64;
        for i in 0..n {
            let id = NodeId(i);
            if i <= k {
                total += problem.vertex_time(id, Tier::Device);
            } else {
                total += problem.vertex_time(id, Tier::Cloud);
                upload_bytes += 4 * g.node(id).kind.param_count() as u64;
            }
        }
        if k + 1 < n {
            total += problem.link_time(NodeId(k), Tier::Device, Tier::Cloud);
        }
        // Parameter upload: once, over the device→cloud path, amortized.
        let upload_s = problem
            .net()
            .transfer_s(upload_bytes, Tier::Device, Tier::Cloud);
        total += upload_s / queries;
        if best.is_none_or(|(b, _)| total < b) {
            best = Some((total, k));
        }
    }
    let (_, k) = best.expect("non-empty chain");
    let tiers = (0..n)
        .map(|i| if i <= k { Tier::Device } else { Tier::Cloud })
        .collect();
    Ok(Assignment::new(tiers))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::neurosurgeon::solve as neurosurgeon;
    use d3_model::zoo;
    use d3_simnet::{NetworkCondition, TierProfiles};

    fn problem(g: &d3_model::DnnGraph, net: NetworkCondition) -> Problem {
        Problem::new(g, &TierProfiles::paper_testbed(), net)
    }

    #[test]
    fn rejects_dags() {
        let g = zoo::resnet18(224);
        let p = problem(&g, NetworkCondition::WiFi);
        assert_eq!(
            solve(&p, 100),
            Err(PartitionError::NotAChain { algorithm: "IONN" })
        );
    }

    #[test]
    fn converges_to_neurosurgeon_with_many_queries() {
        for g in [zoo::alexnet(224), zoo::vgg16(224)] {
            for net in NetworkCondition::TABLE3 {
                let p = problem(&g, net);
                let a = solve(&p, u64::MAX).unwrap();
                let ns = neurosurgeon(&p).unwrap();
                assert_eq!(
                    a.total_latency(&p),
                    ns.total_latency(&p),
                    "{} {net}",
                    g.name()
                );
            }
        }
    }

    #[test]
    fn few_queries_keep_more_on_the_device() {
        // VGG-16's classifier tail alone is >500 MB of parameters: with
        // one query the upload dominates and IONN offloads less (or
        // nothing); with millions of queries it offloads freely.
        let g = zoo::vgg16(224);
        let p = problem(&g, NetworkCondition::FourG);
        let device_layers = |q: u64| {
            solve(&p, q)
                .unwrap()
                .tiers()
                .iter()
                .filter(|t| **t == Tier::Device)
                .count()
        };
        assert!(device_layers(1) >= device_layers(1_000_000));
    }

    #[test]
    fn single_query_on_slow_uplink_stays_local() {
        let g = zoo::alexnet(224);
        // 61M parameters ≈ 244 MB over a 6.12 Mbps uplink ≈ 5 minutes:
        // no split can amortize that in one query.
        let p = problem(&g, NetworkCondition::FourG);
        let a = solve(&p, 1).unwrap();
        for id in g.layer_ids() {
            assert_eq!(a.tier(id), Tier::Device, "{id} offloaded despite upload");
        }
    }

    #[test]
    fn upload_amortization_is_monotone() {
        // More queries can only move the split cloud-ward.
        let g = zoo::alexnet(224);
        let p = problem(&g, NetworkCondition::WiFi);
        let mut last_cloud = 0;
        for q in [1u64, 10, 100, 10_000, 1_000_000] {
            let cloud = solve(&p, q)
                .unwrap()
                .tiers()
                .iter()
                .filter(|t| **t == Tier::Cloud)
                .count();
            assert!(cloud >= last_cloud, "q={q}: {cloud} < {last_cloud}");
            last_cloud = cloud;
        }
    }
}
