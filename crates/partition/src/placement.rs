//! Table I: total latencies of processing a vertex pair `(vi, vj)` under
//! every tier placement.
//!
//! The table assumes `vi`'s inputs originate at the device tier and `vj`
//! is `vi`'s largest direct successor. These pairwise totals drive HPA's
//! look-ahead heuristic for data-inflating layers (`λin ≤ λout`).

use crate::Problem;
use d3_model::NodeId;
use d3_simnet::Tier;

/// One row of Table I.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacementRow {
    /// Tier of `vi`.
    pub li: Tier,
    /// Tier of `vj`.
    pub lj: Tier,
    /// Total latency `t_i^{li} + t_j^{lj} + transfers`.
    pub total_s: f64,
}

/// The six placements Table I enumerates, in the paper's row order.
pub const TABLE1_PLACEMENTS: [(Tier, Tier); 6] = [
    (Tier::Device, Tier::Device),
    (Tier::Device, Tier::Edge),
    (Tier::Edge, Tier::Edge),
    (Tier::Edge, Tier::Cloud),
    (Tier::Cloud, Tier::Cloud),
    (Tier::Device, Tier::Cloud),
];

/// Total latency of placing `vi` at `li` and `vj` at `lj` when `vi`'s
/// inputs are at `input_tier`:
/// `t_i^{li} + λin_i/σ(input,li) + t_j^{lj} + λout_i/σ(li,lj)`.
///
/// With `input_tier = Device` this reproduces Table I exactly (e.g. row
/// "edge, cloud": `t_e_i + t_c_j + λin_i/σ_de + λout_i/σ_ec`).
pub fn pair_latency(
    problem: &Problem,
    vi: NodeId,
    vj: NodeId,
    li: Tier,
    lj: Tier,
    input_tier: Tier,
) -> f64 {
    let g = problem.graph();
    let mut total = problem.vertex_time(vi, li) + problem.vertex_time(vj, lj);
    // λin_i travelling from the input tier to li: sum of predecessor
    // outputs (for the Table I setting all inputs sit at `input_tier`).
    for &p in &g.node(vi).preds {
        total += problem.link_time(p, input_tier, li);
    }
    // λout_i travelling from li to lj.
    total += problem.link_time(vi, li, lj);
    total
}

/// Computes all six Table I rows for a vertex pair.
pub fn table1(problem: &Problem, vi: NodeId, vj: NodeId) -> Vec<PlacementRow> {
    TABLE1_PLACEMENTS
        .iter()
        .map(|&(li, lj)| PlacementRow {
            li,
            lj,
            total_s: pair_latency(problem, vi, vj, li, lj, Tier::Device),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use d3_model::zoo;
    use d3_simnet::{NetworkCondition, TierProfiles};

    fn fixture() -> (d3_model::DnnGraph, [NodeId; 2]) {
        let g = zoo::alexnet(224);
        // conv1 (v1) and its successor maxpool1 (v2).
        (g, [NodeId(1), NodeId(2)])
    }

    #[test]
    fn six_rows_in_paper_order() {
        let (g, [vi, vj]) = fixture();
        let p = Problem::new(&g, &TierProfiles::paper_testbed(), NetworkCondition::WiFi);
        let rows = table1(&p, vi, vj);
        assert_eq!(rows.len(), 6);
        assert_eq!(rows[0].li, Tier::Device);
        assert_eq!(rows[3].lj, Tier::Cloud);
        assert!(rows
            .iter()
            .all(|r| r.total_s.is_finite() && r.total_s > 0.0));
    }

    #[test]
    fn device_device_row_has_no_transfers() {
        let (g, [vi, vj]) = fixture();
        let p = Problem::new(&g, &TierProfiles::paper_testbed(), NetworkCondition::WiFi);
        let total = pair_latency(&p, vi, vj, Tier::Device, Tier::Device, Tier::Device);
        let expect = p.vertex_time(vi, Tier::Device) + p.vertex_time(vj, Tier::Device);
        assert!((total - expect).abs() < 1e-15);
    }

    #[test]
    fn edge_cloud_row_matches_formula() {
        // Table I: t_e_i + t_c_j + λin_i/σde + λout_i/σec.
        let (g, [vi, vj]) = fixture();
        let p = Problem::new(&g, &TierProfiles::paper_testbed(), NetworkCondition::WiFi);
        let total = pair_latency(&p, vi, vj, Tier::Edge, Tier::Cloud, Tier::Device);
        let expect = p.vertex_time(vi, Tier::Edge)
            + p.vertex_time(vj, Tier::Cloud)
            + p.input_transfer(Tier::Device, Tier::Edge) // pred of conv1 is v0
            + p.link_time(vi, Tier::Edge, Tier::Cloud);
        assert!((total - expect).abs() < 1e-15);
    }

    #[test]
    fn colocated_pair_avoids_intermediate_transfer() {
        let (g, [vi, vj]) = fixture();
        let p = Problem::new(&g, &TierProfiles::paper_testbed(), NetworkCondition::FourG);
        let same = pair_latency(&p, vi, vj, Tier::Edge, Tier::Edge, Tier::Device);
        let split = pair_latency(&p, vi, vj, Tier::Edge, Tier::Cloud, Tier::Device);
        // conv1's output is large; splitting the pair must pay for it.
        assert!(
            split - same > 0.0 || p.vertex_time(vj, Tier::Cloud) < p.vertex_time(vj, Tier::Edge)
        );
    }
}
