//! DADS baseline (Hu et al., INFOCOM 2019): Dynamic Adaptive DNN Surgery.
//!
//! DADS generalizes layer-wise partitioning to DAG-topology DNNs by
//! reducing the 2-way (edge/cloud) split to a minimum s-t cut. The paper
//! under reproduction uses DADS as its strongest baseline and notes that
//! "DADS cannot generalize the min-cut approach to separate a DNN into
//! more than two parts" — which is exactly the limitation HPA's three-way
//! split removes.
//!
//! ## Construction
//!
//! Source `s` stands for the edge tier, sink `t` for the cloud:
//!
//! - arc `v → t` with capacity `t_e(v)`: cut when `v` lands on the edge
//!   side — paying its edge processing time,
//! - arc `s → v` with capacity `t_c(v)`: cut when `v` lands cloud-side,
//! - arcs `u ⇄ v` per DAG link with capacity `λout_u / σ_ec`: cut when the
//!   link crosses tiers (both directions carry the same delay; the paper
//!   assumes symmetric two-way transmission),
//! - the raw input sits on the device: every successor of `v0` pays
//!   `λ0/σ_de` as a constant, plus an extra `λ0/σ_dc − λ0/σ_de ≥ 0` on
//!   `s → w` cut when `w` lands cloud-side (the input then travels the
//!   slower device→cloud path instead).
//!
//! The min cut therefore equals the total latency objective restricted to
//! two tiers, and the residual source side is the edge segment.

use crate::maxflow::FlowNetwork;
use crate::{Assignment, Problem};
use d3_simnet::Tier;

/// DADS implementation behind the [`Dads`](crate::Dads) partitioner.
/// `v0` stays at the device (data source); every real layer is assigned
/// to the edge or the cloud.
pub(crate) fn solve(problem: &Problem) -> Assignment {
    two_tier_mincut(problem, Tier::Edge)
}

/// Optimal 2-way partition between `lan_tier` (device or edge) and the
/// cloud via minimum s-t cut; exact for the total-latency objective
/// restricted to those two tiers. `lan_tier = Edge` is DADS proper;
/// `lan_tier = Device` is the same construction for a device/cloud split
/// (used as a refinement candidate inside HPA).
///
/// # Panics
///
/// Panics when `lan_tier` is the cloud.
pub fn two_tier_mincut(problem: &Problem, lan_tier: Tier) -> Assignment {
    assert_ne!(lan_tier, Tier::Cloud, "LAN side cannot be the cloud");
    let g = problem.graph();
    let n = g.len();
    // Flow vertices: 0..n map to graph vertices (v0 unused), n = s, n+1 = t.
    let (s, t) = (n, n + 1);
    let mut net = FlowNetwork::new(n + 2);
    for id in g.layer_ids() {
        net.add_arc(id.index(), t, problem.vertex_time(id, lan_tier));
        net.add_arc(s, id.index(), problem.vertex_time(id, Tier::Cloud));
    }
    for (u, v) in g.links() {
        if u == g.input() {
            // Raw-input links are charged via the s→w differential below.
            continue;
        }
        let tx = problem.link_time(u, lan_tier, Tier::Cloud);
        net.add_arc(u.index(), v.index(), tx);
        net.add_arc(v.index(), u.index(), tx);
    }
    // Raw input from the device: reaching a LAN-side consumer costs the
    // device→lan transfer (a constant, zero when the LAN side *is* the
    // device); reaching a cloud-side consumer costs device→cloud, charged
    // as the differential on the s→w arc.
    let d_lan = problem.input_transfer(Tier::Device, lan_tier);
    let dc = problem.input_transfer(Tier::Device, Tier::Cloud);
    for &w in &g.node(g.input()).succs {
        net.add_arc(s, w.index(), (dc - d_lan).max(0.0));
    }
    net.max_flow(s, t);
    let side = net.min_cut_source_side(s);
    let tiers = (0..n)
        .map(|i| {
            if i == 0 {
                Tier::Device
            } else if side[i] {
                lan_tier
            } else {
                Tier::Cloud
            }
        })
        .collect();
    Assignment::new(tiers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::solve as exhaustive;
    use d3_model::zoo;
    use d3_simnet::{NetworkCondition, TierProfiles};

    fn problem(g: &d3_model::DnnGraph, net: NetworkCondition) -> Problem {
        Problem::new(g, &TierProfiles::paper_testbed(), net)
    }

    #[test]
    fn uses_only_edge_and_cloud() {
        let g = zoo::resnet18(224);
        let p = problem(&g, NetworkCondition::WiFi);
        let a = solve(&p);
        for id in g.layer_ids() {
            assert_ne!(a.tier(id), Tier::Device);
        }
        assert_eq!(a.tier(g.input()), Tier::Device);
    }

    #[test]
    fn matches_exhaustive_two_tier_optimum_on_small_dags() {
        for seed in 0..10 {
            let g = zoo::random_dag(seed, 3, 2, 8);
            if g.len() > 12 {
                continue;
            }
            let p = problem(&g, NetworkCondition::WiFi);
            let a = solve(&p);
            let best = exhaustive(&p, &[Tier::Edge, Tier::Cloud], false).unwrap();
            let (got, want) = (a.total_latency(&p), best.total_latency(&p));
            assert!(
                (got - want).abs() <= 1e-9 + want * 1e-9,
                "seed {seed}: DADS {got} vs optimum {want}"
            );
        }
    }

    #[test]
    fn matches_exhaustive_on_chain_models() {
        let g = zoo::chain_cnn(6, 8, 16);
        for net in NetworkCondition::TABLE3 {
            let p = problem(&g, net);
            let a = solve(&p);
            let best = exhaustive(&p, &[Tier::Edge, Tier::Cloud], false).unwrap();
            assert!(
                (a.total_latency(&p) - best.total_latency(&p)).abs() < 1e-9,
                "{net}"
            );
        }
    }

    #[test]
    fn handles_all_zoo_models() {
        for g in zoo::all_models(224) {
            let p = problem(&g, NetworkCondition::WiFi);
            let a = solve(&p);
            assert_eq!(a.len(), g.len());
        }
    }

    #[test]
    fn low_backbone_bandwidth_keeps_more_at_the_edge() {
        let g = zoo::vgg16(224);
        let fast = problem(&g, NetworkCondition::custom_backbone(200.0));
        let slow = problem(&g, NetworkCondition::custom_backbone(5.0));
        let edge_count = |p: &Problem| {
            solve(p)
                .tiers()
                .iter()
                .filter(|t| **t == Tier::Edge)
                .count()
        };
        assert!(edge_count(&slow) >= edge_count(&fast));
    }
}
