//! The partition problem instance: a DAG with vertex weights
//! `T_vi = {t_d, t_e, t_c}` and link weights
//! `T_(vi,vj) = {t^[d,e], t^[e,c], t^[d,c], 0}` (§III-C of the paper).

use std::sync::Arc;

use d3_model::{DnnGraph, NodeId};
use d3_profiler::LatencyProvider;
use d3_simnet::{NetworkCondition, Tier};

/// A concrete instance of the DAG-partition problem.
///
/// The instance **owns** its graph through an [`Arc`], so problems (and
/// everything deployed from them) can outlive the stack frame that built
/// the graph and move freely across threads — the posture the
/// multi-model [`D3Runtime`](https://docs.rs/d3-core) serving API needs.
/// Vertex weights are materialized once from a [`LatencyProvider`]
/// (either the ground-truth hardware model or the regression estimator);
/// link weights are derived on demand from output sizes and the network
/// condition, matching the paper's `bytes / bandwidth` link weight.
#[derive(Debug, Clone)]
pub struct Problem {
    graph: Arc<DnnGraph>,
    /// `vertex[id][tier.rank()]` = processing seconds.
    vertex: Vec<[f64; 3]>,
    net: NetworkCondition,
}

impl Problem {
    /// Builds a problem by querying `provider` for every (vertex, tier).
    ///
    /// Accepts an owned [`DnnGraph`], an `Arc<DnnGraph>`, or `&DnnGraph`
    /// (which clones the graph into a fresh `Arc`).
    pub fn new(
        graph: impl Into<Arc<DnnGraph>>,
        provider: &dyn LatencyProvider,
        net: NetworkCondition,
    ) -> Self {
        let graph = graph.into();
        let vertex = graph
            .ids()
            .map(|id| {
                [
                    provider.latency(&graph, id, Tier::Device),
                    provider.latency(&graph, id, Tier::Edge),
                    provider.latency(&graph, id, Tier::Cloud),
                ]
            })
            .collect();
        Self { graph, vertex, net }
    }

    /// Builds a problem from explicit vertex weights (used by tests and
    /// the dynamic-repartition path, where weights drift at run time).
    ///
    /// # Panics
    ///
    /// Panics when `vertex` does not hold one weight triple per vertex.
    pub fn from_weights(
        graph: impl Into<Arc<DnnGraph>>,
        vertex: Vec<[f64; 3]>,
        net: NetworkCondition,
    ) -> Self {
        let graph = graph.into();
        assert_eq!(vertex.len(), graph.len(), "one weight triple per vertex");
        Self { graph, vertex, net }
    }

    /// The underlying DAG.
    pub fn graph(&self) -> &DnnGraph {
        &self.graph
    }

    /// The shared handle to the underlying DAG (cheap to clone).
    pub fn graph_arc(&self) -> &Arc<DnnGraph> {
        &self.graph
    }

    /// The network condition supplying link weights.
    pub fn net(&self) -> NetworkCondition {
        self.net
    }

    /// Replaces the network condition (bandwidth drift at run time).
    pub fn set_net(&mut self, net: NetworkCondition) {
        self.net = net;
    }

    /// Vertex weight `t^tier_i`.
    pub fn vertex_time(&self, id: NodeId, tier: Tier) -> f64 {
        self.vertex[id.index()][tier.rank()]
    }

    /// Overwrites one vertex weight (resource drift at run time).
    pub fn set_vertex_time(&mut self, id: NodeId, tier: Tier, seconds: f64) {
        self.vertex[id.index()][tier.rank()] = seconds;
    }

    /// Scales all weights of a vertex (e.g. "device got 2× slower").
    pub fn scale_vertex(&mut self, id: NodeId, tier: Tier, factor: f64) {
        self.vertex[id.index()][tier.rank()] *= factor;
    }

    /// Link weight `t^[a,b]_ij` for the data flowing out of `from` between
    /// two tiers: output bytes over bandwidth, zero within a tier.
    pub fn link_time(&self, from: NodeId, a: Tier, b: Tier) -> f64 {
        self.net
            .transfer_s(self.graph.node(from).output_bytes(), a, b)
    }

    /// Transfer time of the *raw network input* between two tiers (the
    /// virtual input vertex's output is the input image).
    pub fn input_transfer(&self, a: Tier, b: Tier) -> f64 {
        self.link_time(self.graph.input(), a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use d3_model::zoo;
    use d3_simnet::TierProfiles;

    #[test]
    fn weights_come_from_provider() {
        let g = zoo::alexnet(224);
        let profiles = TierProfiles::paper_testbed();
        let p = Problem::new(&g, &profiles, NetworkCondition::WiFi);
        let id = g.layer_ids().next().unwrap();
        assert_eq!(
            p.vertex_time(id, Tier::Edge),
            profiles.layer_latency(&g, id, Tier::Edge)
        );
        assert_eq!(p.vertex_time(g.input(), Tier::Device), 0.0);
    }

    #[test]
    fn link_weight_is_bytes_over_bandwidth() {
        let g = zoo::alexnet(224);
        let p = Problem::new(&g, &TierProfiles::paper_testbed(), NetworkCondition::WiFi);
        let conv1 = g.layer_ids().next().unwrap();
        let bytes = g.node(conv1).output_bytes();
        let expect = bytes as f64 * 8.0 / (31.53e6);
        assert!((p.link_time(conv1, Tier::Edge, Tier::Cloud) - expect).abs() < 1e-12);
        assert_eq!(p.link_time(conv1, Tier::Edge, Tier::Edge), 0.0);
    }

    #[test]
    fn raw_input_transfer_uses_v0_output() {
        let g = zoo::alexnet(224);
        let p = Problem::new(&g, &TierProfiles::paper_testbed(), NetworkCondition::WiFi);
        let bytes = 3 * 224 * 224 * 4;
        let expect = bytes as f64 * 8.0 / 84.95e6;
        assert!((p.input_transfer(Tier::Device, Tier::Edge) - expect).abs() < 1e-12);
    }

    #[test]
    fn runtime_weight_mutation() {
        let g = zoo::alexnet(224);
        let mut p = Problem::new(&g, &TierProfiles::paper_testbed(), NetworkCondition::WiFi);
        let id = g.layer_ids().next().unwrap();
        let before = p.vertex_time(id, Tier::Device);
        p.scale_vertex(id, Tier::Device, 2.0);
        assert!((p.vertex_time(id, Tier::Device) - 2.0 * before).abs() < 1e-15);
        p.set_vertex_time(id, Tier::Device, 0.5);
        assert_eq!(p.vertex_time(id, Tier::Device), 0.5);
    }

    #[test]
    fn problems_share_one_graph_allocation() {
        let g = Arc::new(zoo::alexnet(224));
        let p = Problem::new(
            g.clone(),
            &TierProfiles::paper_testbed(),
            NetworkCondition::WiFi,
        );
        assert!(Arc::ptr_eq(p.graph_arc(), &g));
        let q = p.clone();
        assert!(Arc::ptr_eq(q.graph_arc(), p.graph_arc()));
    }

    #[test]
    fn problem_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Problem>();
    }
}
