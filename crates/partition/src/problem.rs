//! The partition problem instance: a DAG with vertex weights
//! `T_vi = {t_d, t_e, t_c}` and link weights
//! `T_(vi,vj) = {t^[d,e], t^[e,c], t^[d,c], 0}` (§III-C of the paper).

use std::sync::Arc;

use d3_model::{DnnGraph, NodeId};
use d3_profiler::LatencyProvider;
use d3_simnet::{NetworkCondition, Tier};

/// Cost-model descriptor of a wire codec active on one inter-tier link:
/// the achieved compression ratio plus the per-megabyte encode/decode
/// work the codec adds at the link's endpoints. Folding this into
/// [`Problem::link_time`] is what lets compression *move split points*
/// instead of just shrinking byte counts — transfer cost falls by
/// `ratio` while codec compute cost appears on both sides of the cut.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodecProfile {
    /// On-wire bytes divided by raw bytes (1.0 = no compression).
    pub ratio: f64,
    /// Encode cost in seconds per raw megabyte (paid on the sender).
    pub encode_s_per_mb: f64,
    /// Decode cost in seconds per raw megabyte (paid on the receiver;
    /// asymmetric codecs keep this near zero).
    pub decode_s_per_mb: f64,
}

impl CodecProfile {
    /// The identity profile: raw transfer, no codec cost. Links carrying
    /// this profile use the exact pre-codec cost expression.
    #[must_use]
    pub const fn raw() -> Self {
        Self {
            ratio: 1.0,
            encode_s_per_mb: 0.0,
            decode_s_per_mb: 0.0,
        }
    }

    /// Whether this is the identity (raw) profile.
    #[must_use]
    pub fn is_raw(&self) -> bool {
        *self == Self::raw()
    }
}

impl Default for CodecProfile {
    fn default() -> Self {
        Self::raw()
    }
}

/// A concrete instance of the DAG-partition problem.
///
/// The instance **owns** its graph through an [`Arc`], so problems (and
/// everything deployed from them) can outlive the stack frame that built
/// the graph and move freely across threads — the posture the
/// multi-model [`D3Runtime`](https://docs.rs/d3-core) serving API needs.
/// Vertex weights are materialized once from a [`LatencyProvider`]
/// (either the ground-truth hardware model or the regression estimator);
/// link weights are derived on demand from output sizes and the network
/// condition, matching the paper's `bytes / bandwidth` link weight.
#[derive(Debug, Clone)]
pub struct Problem {
    graph: Arc<DnnGraph>,
    /// `vertex[id][tier.rank()]` = processing seconds.
    vertex: Vec<[f64; 3]>,
    net: NetworkCondition,
    /// Active codec per link, indexed by [`Tier::link_index`]
    /// (`[device↔edge, edge↔cloud, device↔cloud]`). Defaults to raw.
    link_codec: [CodecProfile; 3],
}

impl Problem {
    /// Builds a problem by querying `provider` for every (vertex, tier).
    ///
    /// Accepts an owned [`DnnGraph`], an `Arc<DnnGraph>`, or `&DnnGraph`
    /// (which clones the graph into a fresh `Arc`).
    pub fn new(
        graph: impl Into<Arc<DnnGraph>>,
        provider: &dyn LatencyProvider,
        net: NetworkCondition,
    ) -> Self {
        let graph = graph.into();
        let vertex = graph
            .ids()
            .map(|id| {
                [
                    provider.latency(&graph, id, Tier::Device),
                    provider.latency(&graph, id, Tier::Edge),
                    provider.latency(&graph, id, Tier::Cloud),
                ]
            })
            .collect();
        Self {
            graph,
            vertex,
            net,
            link_codec: [CodecProfile::raw(); 3],
        }
    }

    /// Builds a problem from explicit vertex weights (used by tests and
    /// the dynamic-repartition path, where weights drift at run time).
    ///
    /// # Panics
    ///
    /// Panics when `vertex` does not hold one weight triple per vertex.
    pub fn from_weights(
        graph: impl Into<Arc<DnnGraph>>,
        vertex: Vec<[f64; 3]>,
        net: NetworkCondition,
    ) -> Self {
        let graph = graph.into();
        assert_eq!(vertex.len(), graph.len(), "one weight triple per vertex");
        Self {
            graph,
            vertex,
            net,
            link_codec: [CodecProfile::raw(); 3],
        }
    }

    /// The underlying DAG.
    pub fn graph(&self) -> &DnnGraph {
        &self.graph
    }

    /// The shared handle to the underlying DAG (cheap to clone).
    pub fn graph_arc(&self) -> &Arc<DnnGraph> {
        &self.graph
    }

    /// The network condition supplying link weights.
    pub fn net(&self) -> NetworkCondition {
        self.net
    }

    /// Replaces the network condition (bandwidth drift at run time).
    pub fn set_net(&mut self, net: NetworkCondition) {
        self.net = net;
    }

    /// Vertex weight `t^tier_i`.
    pub fn vertex_time(&self, id: NodeId, tier: Tier) -> f64 {
        self.vertex[id.index()][tier.rank()]
    }

    /// Overwrites one vertex weight (resource drift at run time).
    pub fn set_vertex_time(&mut self, id: NodeId, tier: Tier, seconds: f64) {
        self.vertex[id.index()][tier.rank()] = seconds;
    }

    /// Scales all weights of a vertex (e.g. "device got 2× slower").
    pub fn scale_vertex(&mut self, id: NodeId, tier: Tier, factor: f64) {
        self.vertex[id.index()][tier.rank()] *= factor;
    }

    /// The codec profile active on a link (indexed by
    /// [`Tier::link_index`]); raw when none was installed.
    ///
    /// # Panics
    ///
    /// Panics when `link >= 3`.
    pub fn link_codec(&self, link: usize) -> CodecProfile {
        self.link_codec[link]
    }

    /// Installs a codec profile on one link (indexed by
    /// [`Tier::link_index`]): subsequent [`link_time`](Self::link_time)
    /// queries fold its ratio and encode/decode cost in, so partitioners
    /// see the codec-adjusted optimization problem.
    ///
    /// # Panics
    ///
    /// Panics when `link >= 3`.
    pub fn set_link_codec(&mut self, link: usize, profile: CodecProfile) {
        self.link_codec[link] = profile;
    }

    /// Link weight `t^[a,b]_ij` for the data flowing out of `from` between
    /// two tiers: output bytes over bandwidth, zero within a tier. With a
    /// codec installed on the link, transfer shrinks by the codec's ratio
    /// and its encode/decode seconds-per-megabyte are added — so the
    /// optimal cut moves when compression is switched on.
    pub fn link_time(&self, from: NodeId, a: Tier, b: Tier) -> f64 {
        let bytes = self.graph.node(from).output_bytes();
        match a.link_index(b) {
            Some(link) if !self.link_codec[link].is_raw() => {
                let p = self.link_codec[link];
                let mb = bytes as f64 / 1e6;
                self.net
                    .transfer_s((bytes as f64 * p.ratio).ceil() as u64, a, b)
                    + mb * (p.encode_s_per_mb + p.decode_s_per_mb)
            }
            _ => self.net.transfer_s(bytes, a, b),
        }
    }

    /// Transfer time of the *raw network input* between two tiers (the
    /// virtual input vertex's output is the input image).
    pub fn input_transfer(&self, a: Tier, b: Tier) -> f64 {
        self.link_time(self.graph.input(), a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use d3_model::zoo;
    use d3_simnet::TierProfiles;

    #[test]
    fn weights_come_from_provider() {
        let g = zoo::alexnet(224);
        let profiles = TierProfiles::paper_testbed();
        let p = Problem::new(&g, &profiles, NetworkCondition::WiFi);
        let id = g.layer_ids().next().unwrap();
        assert_eq!(
            p.vertex_time(id, Tier::Edge),
            profiles.layer_latency(&g, id, Tier::Edge)
        );
        assert_eq!(p.vertex_time(g.input(), Tier::Device), 0.0);
    }

    #[test]
    fn link_weight_is_bytes_over_bandwidth() {
        let g = zoo::alexnet(224);
        let p = Problem::new(&g, &TierProfiles::paper_testbed(), NetworkCondition::WiFi);
        let conv1 = g.layer_ids().next().unwrap();
        let bytes = g.node(conv1).output_bytes();
        let expect = bytes as f64 * 8.0 / (31.53e6);
        assert!((p.link_time(conv1, Tier::Edge, Tier::Cloud) - expect).abs() < 1e-12);
        assert_eq!(p.link_time(conv1, Tier::Edge, Tier::Edge), 0.0);
    }

    #[test]
    fn raw_input_transfer_uses_v0_output() {
        let g = zoo::alexnet(224);
        let p = Problem::new(&g, &TierProfiles::paper_testbed(), NetworkCondition::WiFi);
        let bytes = 3 * 224 * 224 * 4;
        let expect = bytes as f64 * 8.0 / 84.95e6;
        assert!((p.input_transfer(Tier::Device, Tier::Edge) - expect).abs() < 1e-12);
    }

    #[test]
    fn runtime_weight_mutation() {
        let g = zoo::alexnet(224);
        let mut p = Problem::new(&g, &TierProfiles::paper_testbed(), NetworkCondition::WiFi);
        let id = g.layer_ids().next().unwrap();
        let before = p.vertex_time(id, Tier::Device);
        p.scale_vertex(id, Tier::Device, 2.0);
        assert!((p.vertex_time(id, Tier::Device) - 2.0 * before).abs() < 1e-15);
        p.set_vertex_time(id, Tier::Device, 0.5);
        assert_eq!(p.vertex_time(id, Tier::Device), 0.5);
    }

    #[test]
    fn problems_share_one_graph_allocation() {
        let g = Arc::new(zoo::alexnet(224));
        let p = Problem::new(
            g.clone(),
            &TierProfiles::paper_testbed(),
            NetworkCondition::WiFi,
        );
        assert!(Arc::ptr_eq(p.graph_arc(), &g));
        let q = p.clone();
        assert!(Arc::ptr_eq(q.graph_arc(), p.graph_arc()));
    }

    #[test]
    fn codec_profile_scales_link_weight_and_adds_codec_cost() {
        let g = zoo::alexnet(224);
        let mut p = Problem::new(&g, &TierProfiles::paper_testbed(), NetworkCondition::WiFi);
        let conv1 = g.layer_ids().next().unwrap();
        let raw = p.link_time(conv1, Tier::Edge, Tier::Cloud);
        let profile = CodecProfile {
            ratio: 0.5,
            encode_s_per_mb: 0.0,
            decode_s_per_mb: 0.0,
        };
        let link = Tier::Edge.link_index(Tier::Cloud).unwrap();
        p.set_link_codec(link, profile);
        assert_eq!(p.link_codec(link), profile);
        // Pure ratio halves the transfer (up to the 1-byte ceil).
        let halved = p.link_time(conv1, Tier::Edge, Tier::Cloud);
        assert!(
            (halved - raw / 2.0).abs() < 1e-6,
            "{halved} vs {}",
            raw / 2.0
        );
        // Codec compute cost lands on top of the scaled transfer.
        let bytes = g.node(conv1).output_bytes();
        p.set_link_codec(
            link,
            CodecProfile {
                ratio: 0.5,
                encode_s_per_mb: 0.010,
                decode_s_per_mb: 0.002,
            },
        );
        let with_cost = p.link_time(conv1, Tier::Edge, Tier::Cloud);
        let expect = halved + bytes as f64 / 1e6 * 0.012;
        assert!((with_cost - expect).abs() < 1e-9);
        // Other links and intra-tier transfers are untouched.
        assert_eq!(p.link_time(conv1, Tier::Edge, Tier::Edge), 0.0);
        assert_eq!(
            p.link_time(conv1, Tier::Device, Tier::Edge),
            Problem::new(&g, &TierProfiles::paper_testbed(), NetworkCondition::WiFi).link_time(
                conv1,
                Tier::Device,
                Tier::Edge
            )
        );
    }

    #[test]
    fn raw_codec_profile_is_bit_identical_to_no_codec() {
        let g = zoo::alexnet(224);
        let mut p = Problem::new(&g, &TierProfiles::paper_testbed(), NetworkCondition::WiFi);
        let baseline = Problem::new(&g, &TierProfiles::paper_testbed(), NetworkCondition::WiFi);
        for link in 0..3 {
            p.set_link_codec(link, CodecProfile::raw());
        }
        for id in g.layer_ids() {
            for a in [Tier::Device, Tier::Edge, Tier::Cloud] {
                for b in [Tier::Device, Tier::Edge, Tier::Cloud] {
                    assert_eq!(p.link_time(id, a, b), baseline.link_time(id, a, b));
                }
            }
        }
    }

    #[test]
    fn problem_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Problem>();
    }
}
