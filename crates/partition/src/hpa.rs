//! The Horizontal Partition Algorithm (Algorithm 1 of the paper).
//!
//! HPA sweeps the DAG layer by layer (`Z0, Z1, …`, ordered by longest
//! distance from `v0`) and assigns each vertex an *optimal tier*:
//!
//! 1. **Potential tiers** (Proposition 1): a vertex can only run at the
//!    latest tier among its direct predecessors, or later — data never
//!    flows backwards through the pipeline.
//! 2. **Optimal-tier selection**: when a vertex shrinks its data
//!    (`λin > λout`), Eq. (2) minimizes its own processing plus incoming
//!    transfer. When it *grows* its data (`λin ≤ λout`), the heuristic
//!    looks one hop ahead at the *largest direct successor* and minimizes
//!    the pairwise total of Table I.
//! 3. **SIS update** (Proposition 2): a subset-input sibling — a vertex of
//!    the same graph layer whose predecessor set is a strict subset of
//!    another's — is pulled to the later tier: its inputs are already
//!    there, so relocation saves processing time at zero transfer cost.
//!
//! [`HpaOptions`] exposes ablation switches (disable SIS, disable the
//! I/O-size look-ahead, restrict the tier set to reproduce 2-tier
//! systems).

use crate::{Assignment, Problem};
use d3_model::NodeId;
use d3_simnet::Tier;

/// Configuration knobs for HPA (defaults reproduce the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct HpaOptions {
    /// Apply the SIS update of Proposition 2 after each graph layer.
    pub use_sis: bool,
    /// Use the λin/λout largest-direct-successor look-ahead; when `false`
    /// every vertex uses plain Eq. (2).
    pub use_io_heuristic: bool,
    /// Combine the per-vertex greedy with a depth-cut search over
    /// contiguous graph-layer segments (the shape shown in the paper's
    /// Fig. 2). The one-hop look-ahead of Algorithm 1 alone can strand a
    /// prefix on a slow device when every *single* layer's crossing cost
    /// exceeds its local gain even though crossing once would pay for the
    /// whole remaining network; the cut search removes exactly that
    /// myopia and guarantees HPA never loses to a single-tier baseline.
    pub use_cut_search: bool,
    /// Tiers real layers may use (always in pipeline order). The paper's
    /// D3 uses all three; `[Device, Cloud]` reproduces a
    /// Neurosurgeon-style 2-tier system, `[Edge, Cloud]` a DADS-style one.
    pub allowed: Vec<Tier>,
}

impl Default for HpaOptions {
    fn default() -> Self {
        Self {
            use_sis: true,
            use_io_heuristic: true,
            use_cut_search: true,
            allowed: Tier::ALL.to_vec(),
        }
    }
}

impl HpaOptions {
    /// Paper-faithful three-tier configuration.
    pub fn paper() -> Self {
        Self::default()
    }

    /// Ablation: disable the SIS update.
    pub fn without_sis(mut self) -> Self {
        self.use_sis = false;
        self
    }

    /// Ablation: disable the I/O look-ahead heuristic.
    pub fn without_io_heuristic(mut self) -> Self {
        self.use_io_heuristic = false;
        self
    }

    /// Ablation: disable the depth-cut search (pure Algorithm 1 greedy).
    pub fn without_cut_search(mut self) -> Self {
        self.use_cut_search = false;
        self
    }

    /// Restrict the allowed tier set.
    pub fn with_tiers(mut self, tiers: &[Tier]) -> Self {
        assert!(!tiers.is_empty(), "need at least one allowed tier");
        self.allowed = tiers.to_vec();
        self
    }
}

/// HPA implementation behind the [`Hpa`](crate::Hpa) partitioner.
///
/// With the (default) cut search enabled, the result is the best of:
/// the Algorithm 1 greedy sweep, every contiguous depth cut (Fig. 2's
/// segment shape), and — when the allowed tier set permits — the exact
/// two-tier min-cut optima (edge/cloud and device/cloud), so HPA never
/// loses to any single-tier plan, Neurosurgeon, or DADS.
pub(crate) fn solve(problem: &Problem, opts: &HpaOptions) -> Assignment {
    let greedy = hpa_greedy(problem, opts);
    if !opts.use_cut_search {
        return greedy;
    }
    let mut best = greedy;
    let mut best_theta = best.total_latency(problem);
    let mut consider = |candidate: Assignment| {
        if !candidate.is_monotone(problem) {
            return; // preserve the Proposition 1 invariant
        }
        let theta = candidate.total_latency(problem);
        if theta < best_theta {
            best_theta = theta;
            best = candidate;
        }
    };
    consider(best_layered_cut(problem, &opts.allowed));
    let has = |t: Tier| opts.allowed.contains(&t);
    if has(Tier::Edge) && has(Tier::Cloud) {
        consider(crate::dads::two_tier_mincut(problem, Tier::Edge));
    }
    if has(Tier::Device) && has(Tier::Cloud) {
        consider(crate::dads::two_tier_mincut(problem, Tier::Device));
    }
    best
}

/// The per-vertex greedy sweep of Algorithm 1 (no cut search).
pub fn hpa_greedy(problem: &Problem, opts: &HpaOptions) -> Assignment {
    let g = problem.graph();
    let layers = g.graph_layers(); // Z_q via longest distances (O(|V|+|L|))
    let mut tiers = vec![Tier::Device; g.len()];
    for zq in &layers {
        for &vi in zq {
            if vi == g.input() {
                continue; // lopt_0 = d
            }
            let candidates = potential_tiers(problem, vi, &tiers, &opts.allowed);
            tiers[vi.index()] = if candidates == [Tier::Cloud] {
                Tier::Cloud // Algorithm 1 line 7–8 fast path
            } else {
                optimal_tier(problem, vi, &candidates, &tiers, opts)
            };
        }
        if opts.use_sis {
            sis_update(problem, zq, &mut tiers);
        }
    }
    Assignment::new(tiers)
}

/// Searches all assignments of the form "graph layers `Z_0..=Z_q1` on the
/// device, `Z_{q1+1}..=Z_q2` on the edge, the rest on the cloud" — the
/// contiguous three-segment shape of the paper's Fig. 2. Depth cuts are
/// monotone by construction (every link goes to a strictly deeper layer).
///
/// Runs in O(D² · (V + L)) for depth `D`; single-tier baselines are the
/// degenerate cuts, so the result never loses to them.
pub fn best_layered_cut(problem: &Problem, allowed: &[Tier]) -> Assignment {
    let g = problem.graph();
    let delta = g.longest_distances();
    let depth = *delta.iter().max().expect("non-empty graph") as isize;
    let has = |t: Tier| allowed.contains(&t);
    let mut best: Option<(f64, Assignment)> = None;
    // q1: last device layer depth (-1 = none); q2: last edge layer depth.
    let q1_range: Vec<isize> = if has(Tier::Device) {
        (-1..=depth).collect()
    } else {
        vec![-1]
    };
    for &q1 in &q1_range {
        let q2_range: Vec<isize> = if has(Tier::Edge) {
            (q1..=depth).collect()
        } else {
            vec![q1]
        };
        for &q2 in &q2_range {
            if !has(Tier::Cloud) && q2 < depth {
                continue; // remainder would need the cloud
            }
            let tiers: Vec<Tier> = delta
                .iter()
                .enumerate()
                .map(|(i, &d)| {
                    if i == 0 || (d as isize) <= q1 {
                        Tier::Device // v0 and the device-depth prefix
                    } else if (d as isize) <= q2 {
                        Tier::Edge
                    } else {
                        Tier::Cloud
                    }
                })
                .collect();
            let asg = Assignment::new(tiers);
            let theta = asg.total_latency(problem);
            if best.as_ref().is_none_or(|(b, _)| theta < *b) {
                best = Some((theta, asg));
            }
        }
    }
    best.expect("at least one cut").1
}

/// Proposition 1: the potential tiers `Γi` of `vi` given the (already
/// fixed) tiers of its direct predecessors, intersected with the allowed
/// tier set.
pub(crate) fn potential_tiers(
    problem: &Problem,
    vi: NodeId,
    tiers: &[Tier],
    allowed: &[Tier],
) -> Vec<Tier> {
    let g = problem.graph();
    let pred_max = g
        .node(vi)
        .preds
        .iter()
        .map(|p| tiers[p.index()])
        .max()
        .expect("non-input vertex has predecessors");
    let cands: Vec<Tier> = pred_max
        .and_later()
        .iter()
        .copied()
        .filter(|t| allowed.contains(t))
        .collect();
    if cands.is_empty() {
        // Allowed set excludes everything at/after pred_max (possible only
        // with exotic ablation configs): fall back to the latest allowed
        // tier, which keeps the pipeline monotone from this vertex on.
        vec![*allowed.last().expect("non-empty allowed set")]
    } else {
        cands
    }
}

/// Eq. (2): processing at `li` plus transfer of every predecessor output.
pub(crate) fn local_cost(problem: &Problem, vi: NodeId, li: Tier, tiers: &[Tier]) -> f64 {
    let g = problem.graph();
    let mut cost = problem.vertex_time(vi, li);
    for &p in &g.node(vi).preds {
        cost += problem.link_time(p, tiers[p.index()], li);
    }
    cost
}

/// The optimal-tier selection strategy of §III-E.
fn optimal_tier(
    problem: &Problem,
    vi: NodeId,
    candidates: &[Tier],
    tiers: &[Tier],
    opts: &HpaOptions,
) -> Tier {
    let g = problem.graph();
    let node = g.node(vi);
    let lambda_in = g.input_bytes(vi);
    let lambda_out = node.output_bytes();

    let eq2 = |cands: &[Tier]| -> Tier {
        cands
            .iter()
            .copied()
            .min_by(|&a, &b| {
                local_cost(problem, vi, a, tiers)
                    .partial_cmp(&local_cost(problem, vi, b, tiers))
                    .expect("finite costs")
            })
            .expect("non-empty candidates")
    };

    if !opts.use_io_heuristic || lambda_in > lambda_out || node.succs.is_empty() {
        return eq2(candidates);
    }

    // λin ≤ λout: the layer inflates its data. Look ahead to the largest
    // direct successor (longest processing time; we rank by device-tier
    // time, which is a tier-independent proxy) and minimize the pairwise
    // total of Table I.
    let vj = *node
        .succs
        .iter()
        .max_by(|&&a, &&b| {
            problem
                .vertex_time(a, Tier::Device)
                .partial_cmp(&problem.vertex_time(b, Tier::Device))
                .expect("finite costs")
        })
        .expect("checked non-empty");

    let mut best = (f64::INFINITY, candidates[0]);
    for &li in candidates {
        for &lj in li.and_later() {
            if !opts.allowed.contains(&lj) {
                continue;
            }
            let total = local_cost(problem, vi, li, tiers)
                + problem.vertex_time(vj, lj)
                + problem.link_time(vi, li, lj);
            if total < best.0 {
                best = (total, li);
            }
        }
    }
    best.1
}

/// Proposition 2: pull subset-input siblings to the later tier.
///
/// For vertices `vi, vj` of the same graph layer with
/// `V^p_j ⊂ V^p_i` (strict subset) and `l_j ≻ l_i` (j sits earlier in the
/// pipeline), set `l_j ← l_i`: all of `vj`'s inputs already reached
/// `l_i`'s node, so the move costs no extra transfer and runs on faster
/// hardware.
pub(crate) fn sis_update(problem: &Problem, zq: &[NodeId], tiers: &mut [Tier]) {
    let g = problem.graph();
    for &vi in zq {
        if vi == g.input() {
            continue;
        }
        let pi = &g.node(vi).preds;
        for &vj in zq {
            if vj == vi || vj == g.input() {
                continue;
            }
            let pj = &g.node(vj).preds;
            let strict_subset = pj.len() < pi.len() && pj.iter().all(|p| pi.contains(p));
            if strict_subset && tiers[vj.index()].precedes(tiers[vi.index()]) {
                tiers[vj.index()] = tiers[vi.index()];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use d3_model::zoo;
    use d3_model::{DnnGraph, LayerKind};
    use d3_simnet::{NetworkCondition, TierProfiles};

    fn problem(g: &DnnGraph, net: NetworkCondition) -> Problem {
        Problem::new(g, &TierProfiles::paper_testbed(), net)
    }

    #[test]
    fn assignment_is_monotone_on_all_models() {
        for g in zoo::all_models(224) {
            let p = problem(&g, NetworkCondition::WiFi);
            let a = solve(&p, &HpaOptions::paper());
            assert!(a.is_monotone(&p), "{} violates Prop 1", g.name());
        }
    }

    #[test]
    fn beats_or_matches_single_tier_baselines() {
        for g in zoo::all_models(224) {
            for net in NetworkCondition::TABLE3 {
                let p = problem(&g, net);
                let a = solve(&p, &HpaOptions::paper());
                let theta = a.total_latency(&p);
                for tier in Tier::ALL {
                    let base = Assignment::uniform(g.len(), tier).total_latency(&p);
                    assert!(
                        theta <= base * 1.0001,
                        "{} on {net}: HPA {theta:.4}s worse than {tier}-only {base:.4}s",
                        g.name()
                    );
                }
            }
        }
    }

    #[test]
    fn potential_tiers_respect_prop1() {
        let g = zoo::alexnet(224);
        let p = problem(&g, NetworkCondition::WiFi);
        let mut tiers = vec![Tier::Device; g.len()];
        tiers[1] = Tier::Edge;
        // Vertex 2's only pred (1) is at the edge: device is not potential.
        let cands = potential_tiers(&p, NodeId(2), &tiers, &Tier::ALL);
        assert_eq!(cands, vec![Tier::Edge, Tier::Cloud]);
        tiers[1] = Tier::Cloud;
        let cands = potential_tiers(&p, NodeId(2), &tiers, &Tier::ALL);
        assert_eq!(cands, vec![Tier::Cloud]);
    }

    #[test]
    fn low_bandwidth_keeps_early_layers_off_the_cloud() {
        // At 4G backbone rates, shipping raw images to the cloud is
        // expensive: the first conv should not be at the cloud.
        let g = zoo::vgg16(224);
        let p = problem(&g, NetworkCondition::FourG);
        let a = solve(&p, &HpaOptions::paper());
        assert_ne!(a.tier(NodeId(1)), Tier::Cloud);
    }

    #[test]
    fn high_bandwidth_pushes_more_layers_to_the_cloud() {
        // Fig. 11's mechanism: more backbone bandwidth → more offloading.
        let g = zoo::inception_v4(224);
        let slow = problem(&g, NetworkCondition::custom_backbone(10.0));
        let fast = problem(&g, NetworkCondition::custom_backbone(100.0));
        let opts = HpaOptions::paper();
        let cloud_count = |p: &Problem| {
            solve(p, &opts)
                .tiers()
                .iter()
                .filter(|t| **t == Tier::Cloud)
                .count()
        };
        assert!(cloud_count(&fast) >= cloud_count(&slow));
    }

    #[test]
    fn two_tier_restriction_is_respected() {
        let g = zoo::resnet18(224);
        let p = problem(&g, NetworkCondition::WiFi);
        let opts = HpaOptions::paper().with_tiers(&[Tier::Edge, Tier::Cloud]);
        let a = solve(&p, &opts);
        for id in g.layer_ids() {
            assert_ne!(a.tier(id), Tier::Device);
        }
        assert!(a.is_monotone(&p));
    }

    #[test]
    fn sis_update_pulls_sibling_later() {
        // Build the Fig. 6 situation: v5 with preds {v1,v2,v3}, v6 with
        // preds {v1,v2} ⊂ preds(v5). Put v6 earlier than v5 and check the
        // update relocates it.
        let g = zoo::diamond_net(16);
        let p = problem(&g, NetworkCondition::WiFi);
        // diamond: stem(1) -> left(2), right(3) -> join(4). left and right
        // have identical singleton pred sets — not strict subsets — so no
        // SIS pair exists; craft tiers manually on join's layer instead.
        // Simpler: verify no spurious move happens.
        let mut tiers = vec![Tier::Device; g.len()];
        tiers[2] = Tier::Edge;
        tiers[3] = Tier::Device;
        let before = tiers.clone();
        sis_update(&p, &[NodeId(2), NodeId(3)], &mut tiers);
        assert_eq!(tiers, before, "equal pred sets are not SIS pairs");
    }

    #[test]
    fn sis_update_on_crafted_graph() {
        // a -> {x, y}; b -> x. So preds(y)={a} ⊂ preds(x)={a,b}: y is a
        // SIS vertex of x (same graph layer).
        use d3_model::Activation;
        use d3_tensor::ops::ConvSpec;
        let conv = |in_c: usize| LayerKind::Conv {
            spec: ConvSpec::new(in_c, 8, 3, 1, 1),
            batch_norm: false,
            activation: Activation::Relu,
        };
        let mut g = DnnGraph::new("sis", d3_tensor::Shape3::new(3, 16, 16));
        let a = g.chain("a", conv(3), g.input());
        let b = g.chain("b", conv(8), a); // depth 2
        let x = g.add_layer("x", LayerKind::Concat, &[a, b]).unwrap(); // depth 3? a=1,b=2 -> x=3
        let y = g.chain("y", conv(8), a); // depth 2 — not same layer as x
                                          // Force same layer by adding another hop for y? Instead directly
                                          // test the primitive with a hand-built layer slice:
        let p = problem(&g, NetworkCondition::WiFi);
        let mut tiers = vec![Tier::Device; g.len()];
        tiers[x.index()] = Tier::Cloud;
        tiers[y.index()] = Tier::Device;
        // preds(y)={a} ⊂ preds(x)={a,b} and y precedes x → y pulled to cloud.
        sis_update(&p, &[x, y], &mut tiers);
        assert_eq!(tiers[y.index()], Tier::Cloud);
    }

    #[test]
    fn hpa_with_uniform_zero_weights_prefers_no_transfer() {
        // With all compute free, the best plan avoids transmission
        // entirely: everything stays on the device.
        let g = zoo::alexnet(224);
        let zeros = vec![[0.0; 3]; g.len()];
        let p = Problem::from_weights(&g, zeros, NetworkCondition::WiFi);
        let a = solve(&p, &HpaOptions::paper());
        for id in g.layer_ids() {
            assert_eq!(a.tier(id), Tier::Device);
        }
    }

    #[test]
    fn deterministic() {
        let g = zoo::darknet53(224);
        let p = problem(&g, NetworkCondition::FiveG);
        let a = solve(&p, &HpaOptions::paper());
        let b = solve(&p, &HpaOptions::paper());
        assert_eq!(a, b);
    }
}
