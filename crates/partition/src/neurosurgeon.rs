//! Neurosurgeon baseline (Kang et al., ASPLOS 2017).
//!
//! Neurosurgeon partitions a *chain-topology* DNN between the mobile
//! device and the cloud at layer granularity: it evaluates every split
//! point and picks the one minimizing device compute + transfer of the
//! split layer's output + cloud compute. It cannot handle DAG topologies
//! (the D3 paper accordingly omits it for ResNet-18, Darknet-53 and
//! Inception-v4) and never uses the edge tier.

use crate::{Assignment, Problem};
use d3_simnet::Tier;

use crate::PartitionError;

/// Neurosurgeon implementation behind the
/// [`Neurosurgeon`](crate::Neurosurgeon) partitioner.
pub(crate) fn solve(problem: &Problem) -> Result<Assignment, PartitionError> {
    let g = problem.graph();
    if !g.is_chain() {
        return Err(PartitionError::NotAChain {
            algorithm: "Neurosurgeon",
        });
    }
    let n = g.len();
    // Prefix sums of device/cloud compute over the chain (ids are
    // topological and the chain is the id order).
    let mut best: Option<(f64, usize)> = None;
    // Split k: vertices 0..=k on the device, k+1.. on the cloud.
    for k in 0..n {
        let mut total = 0.0;
        for i in 0..n {
            let id = d3_model::NodeId(i);
            total += if i <= k {
                problem.vertex_time(id, Tier::Device)
            } else {
                problem.vertex_time(id, Tier::Cloud)
            };
        }
        if k + 1 < n {
            total += problem.link_time(d3_model::NodeId(k), Tier::Device, Tier::Cloud);
        }
        if best.is_none_or(|(b, _)| total < b) {
            best = Some((total, k));
        }
    }
    let (_, k) = best.expect("non-empty graph");
    let tiers = (0..n)
        .map(|i| if i <= k { Tier::Device } else { Tier::Cloud })
        .collect();
    Ok(Assignment::new(tiers))
}

#[cfg(test)]
mod tests {
    use super::*;
    use d3_model::zoo;
    use d3_simnet::{NetworkCondition, TierProfiles};

    fn problem(g: &d3_model::DnnGraph, net: NetworkCondition) -> Problem {
        Problem::new(g, &TierProfiles::paper_testbed(), net)
    }

    #[test]
    fn rejects_dag_topologies() {
        for g in [
            zoo::resnet18(224),
            zoo::darknet53(224),
            zoo::inception_v4(224),
        ] {
            let p = problem(&g, NetworkCondition::WiFi);
            assert_eq!(
                solve(&p),
                Err(PartitionError::NotAChain {
                    algorithm: "Neurosurgeon"
                })
            );
        }
    }

    #[test]
    fn handles_chain_models() {
        for g in [zoo::alexnet(224), zoo::vgg16(224)] {
            let p = problem(&g, NetworkCondition::WiFi);
            let a = solve(&p).unwrap();
            assert!(a.is_monotone(&p));
            // Only device and cloud are ever used.
            for id in g.layer_ids() {
                assert_ne!(a.tier(id), Tier::Edge);
            }
        }
    }

    #[test]
    fn split_is_optimal_among_chain_cuts() {
        let g = zoo::alexnet(224);
        let p = problem(&g, NetworkCondition::FourG);
        let a = solve(&p).unwrap();
        let theta = a.total_latency(&p);
        let n = g.len();
        for k in 0..n {
            let tiers: Vec<Tier> = (0..n)
                .map(|i| if i <= k { Tier::Device } else { Tier::Cloud })
                .collect();
            let alt = Assignment::new(tiers).total_latency(&p);
            assert!(theta <= alt + 1e-12);
        }
    }

    #[test]
    fn low_bandwidth_favors_device_heavy_splits() {
        let g = zoo::alexnet(224);
        let wifi = problem(&g, NetworkCondition::WiFi);
        let fourg = problem(&g, NetworkCondition::FourG);
        let dev_count = |p: &Problem| {
            solve(p)
                .unwrap()
                .tiers()
                .iter()
                .filter(|t| **t == Tier::Device)
                .count()
        };
        assert!(dev_count(&fourg) >= dev_count(&wifi));
    }
}
