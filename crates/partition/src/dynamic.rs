//! Dynamic local re-partitioning (§III-E, last paragraph).
//!
//! Resource and network drift change vertex and link weights at run time.
//! Instead of re-running HPA over the whole DAG, the paper adjusts
//! *locally*: when a vertex's optimal tier changes, HPA recomputes only
//! that vertex, its SIS vertices, its direct successors, and the SIS
//! vertices of those successors. Thresholds (hysteresis) keep jitter from
//! triggering constant re-partitioning.

use crate::hpa::{local_cost, potential_tiers, sis_update, HpaOptions};
use crate::{Assignment, Problem};
use d3_model::NodeId;
use d3_simnet::Tier;
use std::collections::BTreeSet;

/// Hysteresis monitor: re-partition only when a monitored quantity leaves
/// the `[lo, hi]` band around its value at the last partition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftMonitor {
    /// Lower relative threshold (e.g. `0.7`).
    pub lo: f64,
    /// Upper relative threshold (e.g. `1.4`).
    pub hi: f64,
}

impl Default for DriftMonitor {
    fn default() -> Self {
        Self { lo: 0.7, hi: 1.4 }
    }
}

impl DriftMonitor {
    /// Whether the drift from `reference` to `current` escapes the band.
    pub fn should_repartition(&self, reference: f64, current: f64) -> bool {
        if reference <= 0.0 {
            return current > 0.0;
        }
        let ratio = current / reference;
        ratio < self.lo || ratio > self.hi
    }
}

/// Result of a local update.
#[derive(Debug, Clone)]
pub struct LocalUpdate {
    /// The adjusted assignment.
    pub assignment: Assignment,
    /// Vertices whose optimal tier was recomputed.
    pub recomputed: Vec<NodeId>,
    /// Vertices whose tier actually changed.
    pub changed: Vec<NodeId>,
}

/// Locally adjusts `assignment` after the weights of `trigger` changed in
/// `problem` (which already reflects the new weights).
///
/// The affected set follows the paper: the trigger itself, its SIS
/// vertices, its direct successors, and the SIS vertices of the direct
/// successors. Each affected vertex is re-assigned with the same
/// optimal-tier machinery HPA uses, constrained so the overall assignment
/// stays monotone (a vertex may not move past the earliest tier among its
/// *unaffected* successors).
pub fn repartition_local(
    problem: &Problem,
    assignment: &Assignment,
    trigger: NodeId,
    opts: &HpaOptions,
) -> LocalUpdate {
    let g = problem.graph();
    let layers = g.graph_layers();
    let delta = g.longest_distances();
    let layer_of = |v: NodeId| -> &[NodeId] { &layers[delta[v.index()]] };

    // Affected set (paper's enumeration), in topological order.
    let mut affected: BTreeSet<NodeId> = BTreeSet::new();
    affected.insert(trigger);
    for s in sis_of(g, trigger, layer_of(trigger)) {
        affected.insert(s);
    }
    for &succ in &g.node(trigger).succs {
        affected.insert(succ);
        for s in sis_of(g, succ, layer_of(succ)) {
            affected.insert(s);
        }
    }
    affected.remove(&g.input());

    let mut tiers: Vec<Tier> = assignment.tiers().to_vec();
    let mut recomputed = Vec::new();
    let mut changed = Vec::new();
    for &vi in &affected {
        let mut cands = potential_tiers(problem, vi, &tiers, &opts.allowed);
        // Monotonicity fence: a vertex may not move past the earliest tier
        // among its successors' *current* tiers (affected successors are
        // recomputed later, in topological order, under their own fences).
        if let Some(fence) = g.node(vi).succs.iter().map(|s| tiers[s.index()]).min() {
            cands.retain(|t| t.precedes_eq(fence));
            if cands.is_empty() {
                // Base assignment was monotone, so the current tier always
                // satisfies both bounds; keep it.
                cands = vec![tiers[vi.index()]];
            }
        }
        // Coordinate-descent objective: the exact Θ contribution of vi —
        // its processing time plus incoming *and* outgoing transfers with
        // every neighbour at its current tier. Minimizing this per vertex
        // can only decrease Θ, so a local update never regresses.
        let coordinate_cost = |li: Tier, tiers: &[Tier]| -> f64 {
            let mut c = local_cost(problem, vi, li, tiers);
            for &s in &g.node(vi).succs {
                c += problem.link_time(vi, li, tiers[s.index()]);
            }
            c
        };
        let best = cands
            .iter()
            .copied()
            .min_by(|&a, &b| {
                coordinate_cost(a, &tiers)
                    .partial_cmp(&coordinate_cost(b, &tiers))
                    .expect("finite costs")
            })
            .expect("non-empty candidates");
        recomputed.push(vi);
        if tiers[vi.index()] != best {
            changed.push(vi);
            tiers[vi.index()] = best;
        }
    }
    // Re-apply the SIS rule on every touched layer; Proposition 2's
    // premise (successors not yet placed) does not hold during local
    // repair, so keep the SIS result only when it actually helps.
    if opts.use_sis {
        let mut with_sis = tiers.clone();
        let touched: BTreeSet<usize> = affected.iter().map(|v| delta[v.index()]).collect();
        for q in touched {
            sis_update(problem, &layers[q], &mut with_sis);
        }
        let a = Assignment::new(tiers.clone());
        let b = Assignment::new(with_sis.clone());
        if b.total_latency(problem) < a.total_latency(problem) {
            tiers = with_sis;
        }
    }
    LocalUpdate {
        assignment: Assignment::new(tiers),
        recomputed,
        changed,
    }
}

/// SIS vertices of `vi` within its graph layer: vertices whose predecessor
/// set is a strict subset of `vi`'s.
fn sis_of(g: &d3_model::DnnGraph, vi: NodeId, layer: &[NodeId]) -> Vec<NodeId> {
    let pi = &g.node(vi).preds;
    layer
        .iter()
        .copied()
        .filter(|&vj| {
            if vj == vi {
                return false;
            }
            let pj = &g.node(vj).preds;
            pj.len() < pi.len() && pj.iter().all(|p| pi.contains(p))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hpa::solve as hpa;
    use d3_model::zoo;
    use d3_simnet::{NetworkCondition, TierProfiles};

    fn problem(g: &d3_model::DnnGraph) -> Problem {
        Problem::new(g, &TierProfiles::paper_testbed(), NetworkCondition::WiFi)
    }

    #[test]
    fn drift_monitor_band() {
        let m = DriftMonitor::default();
        assert!(!m.should_repartition(1.0, 1.0));
        assert!(!m.should_repartition(1.0, 1.3));
        assert!(m.should_repartition(1.0, 1.5));
        assert!(m.should_repartition(1.0, 0.5));
        assert!(m.should_repartition(0.0, 0.1));
    }

    #[test]
    fn local_update_preserves_monotonicity() {
        let g = zoo::resnet18(224);
        let mut p = problem(&g);
        let opts = HpaOptions::paper();
        let base = hpa(&p, &opts);
        // Make a mid-network vertex 10× slower on its current tier.
        let victim = NodeId(g.len() / 2);
        p.scale_vertex(victim, base.tier(victim), 10.0);
        let upd = repartition_local(&p, &base, victim, &opts);
        assert!(upd.assignment.is_monotone(&p));
        assert!(upd.recomputed.contains(&victim));
    }

    #[test]
    fn local_update_touches_bounded_set() {
        let g = zoo::darknet53(224);
        let p = problem(&g);
        let opts = HpaOptions::paper();
        let base = hpa(&p, &opts);
        let victim = NodeId(20);
        let upd = repartition_local(&p, &base, victim, &opts);
        // Affected set is local: far smaller than the whole graph.
        assert!(
            upd.recomputed.len() < g.len() / 4,
            "recomputed {} of {} vertices",
            upd.recomputed.len(),
            g.len()
        );
    }

    #[test]
    fn local_update_improves_after_drift() {
        let g = zoo::vgg16(224);
        let mut p = problem(&g);
        let opts = HpaOptions::paper();
        let base = hpa(&p, &opts);
        // Make some mid-pipeline vertex catastrophically slow on its
        // current tier; the local update must not regress and should
        // usually improve.
        let victim = g
            .layer_ids()
            .find(|&id| !g.node(id).succs.is_empty() && base.tier(id) != Tier::Cloud)
            .unwrap_or_else(|| g.layer_ids().next().unwrap());
        p.scale_vertex(victim, base.tier(victim), 50.0);
        let stale = base.total_latency(&p);
        let upd = repartition_local(&p, &base, victim, &opts);
        let fresh = upd.assignment.total_latency(&p);
        assert!(fresh <= stale + 1e-12, "fresh {fresh} vs stale {stale}");
        assert!(upd.recomputed.contains(&victim));
    }

    #[test]
    fn noop_when_nothing_changed() {
        let g = zoo::alexnet(224);
        let p = problem(&g);
        let opts = HpaOptions::paper();
        let base = hpa(&p, &opts);
        let upd = repartition_local(&p, &base, NodeId(3), &opts);
        assert_eq!(
            upd.assignment.total_latency(&p),
            base.total_latency(&p),
            "no drift -> no regression"
        );
    }
}
