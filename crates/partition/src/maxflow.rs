//! Dinic's maximum-flow / minimum-cut algorithm on `f64` capacities.
//!
//! This is the algorithmic substrate of the DADS baseline, which reduces
//! optimal 2-way DNN partitioning to a minimum s-t cut. Implemented from
//! scratch: level-graph BFS plus blocking-flow DFS with the current-arc
//! optimization — O(V²E), far more than enough for DNN-sized graphs
//! (hundreds of vertices).

/// A flow network with floating-point capacities.
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    /// Arc target vertex.
    to: Vec<usize>,
    /// Residual capacity per arc (arcs are stored in pairs: `2k` forward,
    /// `2k+1` backward).
    cap: Vec<f64>,
    /// Adjacency: arc indices per vertex.
    adj: Vec<Vec<usize>>,
}

const EPS: f64 = 1e-12;

impl FlowNetwork {
    /// Creates an empty network with `n` vertices.
    pub fn new(n: usize) -> Self {
        Self {
            to: Vec::new(),
            cap: Vec::new(),
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Whether the network has no vertices.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Adds a directed arc `u → v` with capacity `cap` (and its residual
    /// reverse arc). Zero-capacity arcs are accepted and simply inert.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range vertices or negative capacity.
    pub fn add_arc(&mut self, u: usize, v: usize, cap: f64) {
        assert!(
            u < self.len() && v < self.len(),
            "arc endpoint out of range"
        );
        assert!(cap >= 0.0, "negative capacity {cap}");
        let idx = self.to.len();
        self.to.push(v);
        self.cap.push(cap);
        self.adj[u].push(idx);
        self.to.push(u);
        self.cap.push(0.0);
        self.adj[v].push(idx + 1);
    }

    fn bfs_levels(&self, s: usize, t: usize) -> Option<Vec<i32>> {
        let mut level = vec![-1i32; self.len()];
        level[s] = 0;
        let mut queue = std::collections::VecDeque::from([s]);
        while let Some(u) = queue.pop_front() {
            for &a in &self.adj[u] {
                let v = self.to[a];
                if level[v] < 0 && self.cap[a] > EPS {
                    level[v] = level[u] + 1;
                    queue.push_back(v);
                }
            }
        }
        (level[t] >= 0).then_some(level)
    }

    fn dfs_push(
        &mut self,
        u: usize,
        t: usize,
        pushed: f64,
        level: &[i32],
        it: &mut [usize],
    ) -> f64 {
        if u == t {
            return pushed;
        }
        while it[u] < self.adj[u].len() {
            let a = self.adj[u][it[u]];
            let v = self.to[a];
            if level[v] == level[u] + 1 && self.cap[a] > EPS {
                let d = self.dfs_push(v, t, pushed.min(self.cap[a]), level, it);
                if d > EPS {
                    self.cap[a] -= d;
                    self.cap[a ^ 1] += d;
                    return d;
                }
            }
            it[u] += 1;
        }
        0.0
    }

    /// Computes the maximum flow from `s` to `t`, mutating residual
    /// capacities in place.
    pub fn max_flow(&mut self, s: usize, t: usize) -> f64 {
        assert_ne!(s, t, "source equals sink");
        let mut flow = 0.0;
        while let Some(level) = self.bfs_levels(s, t) {
            let mut it = vec![0usize; self.len()];
            loop {
                let pushed = self.dfs_push(s, t, f64::INFINITY, &level, &mut it);
                if pushed <= EPS {
                    break;
                }
                flow += pushed;
            }
        }
        flow
    }

    /// After [`FlowNetwork::max_flow`], returns the source side of the
    /// minimum cut: vertices reachable from `s` in the residual graph.
    pub fn min_cut_source_side(&self, s: usize) -> Vec<bool> {
        let mut seen = vec![false; self.len()];
        seen[s] = true;
        let mut queue = std::collections::VecDeque::from([s]);
        while let Some(u) = queue.pop_front() {
            for &a in &self.adj[u] {
                let v = self.to[a];
                if !seen[v] && self.cap[a] > EPS {
                    seen[v] = true;
                    queue.push_back(v);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_arc() {
        let mut net = FlowNetwork::new(2);
        net.add_arc(0, 1, 3.5);
        assert!((net.max_flow(0, 1) - 3.5).abs() < 1e-9);
    }

    #[test]
    fn series_takes_minimum() {
        let mut net = FlowNetwork::new(3);
        net.add_arc(0, 1, 5.0);
        net.add_arc(1, 2, 2.0);
        assert!((net.max_flow(0, 2) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_paths_sum() {
        let mut net = FlowNetwork::new(4);
        net.add_arc(0, 1, 1.0);
        net.add_arc(1, 3, 1.0);
        net.add_arc(0, 2, 2.0);
        net.add_arc(2, 3, 2.0);
        assert!((net.max_flow(0, 3) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn classic_textbook_instance() {
        // CLRS figure: max flow 23.
        let mut net = FlowNetwork::new(6);
        let arcs = [
            (0, 1, 16.0),
            (0, 2, 13.0),
            (1, 2, 10.0),
            (2, 1, 4.0),
            (1, 3, 12.0),
            (3, 2, 9.0),
            (2, 4, 14.0),
            (4, 3, 7.0),
            (3, 5, 20.0),
            (4, 5, 4.0),
        ];
        for (u, v, c) in arcs {
            net.add_arc(u, v, c);
        }
        assert!((net.max_flow(0, 5) - 23.0).abs() < 1e-9);
    }

    #[test]
    fn min_cut_separates_s_from_t() {
        let mut net = FlowNetwork::new(4);
        net.add_arc(0, 1, 10.0);
        net.add_arc(1, 2, 1.0); // bottleneck
        net.add_arc(2, 3, 10.0);
        net.max_flow(0, 3);
        let side = net.min_cut_source_side(0);
        assert!(side[0] && side[1]);
        assert!(!side[2] && !side[3]);
    }

    #[test]
    fn cut_value_equals_flow() {
        // Randomized-ish small graph; verify max-flow = crossing capacity.
        let mut net = FlowNetwork::new(5);
        let arcs = [
            (0, 1, 3.0),
            (0, 2, 2.5),
            (1, 3, 1.5),
            (2, 3, 2.0),
            (1, 2, 0.7),
            (3, 4, 2.9),
            (2, 4, 0.4),
        ];
        for (u, v, c) in arcs {
            net.add_arc(u, v, c);
        }
        let original = net.clone();
        let flow = net.max_flow(0, 4);
        let side = net.min_cut_source_side(0);
        // Sum original capacities of arcs crossing the cut.
        let mut cut = 0.0;
        for u in 0..original.len() {
            for &a in &original.adj[u] {
                if a % 2 == 0 && side[u] && !side[original.to[a]] {
                    cut += original.cap[a];
                }
            }
        }
        assert!((flow - cut).abs() < 1e-9, "flow {flow} vs cut {cut}");
    }

    #[test]
    fn zero_capacity_is_inert() {
        let mut net = FlowNetwork::new(2);
        net.add_arc(0, 1, 0.0);
        assert_eq!(net.max_flow(0, 1), 0.0);
    }
}
