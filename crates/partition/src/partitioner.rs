//! The [`Partitioner`] trait: one object-safe interface over every
//! partition policy in the crate.
//!
//! The D3 paper's central move is swapping partition algorithms (HPA,
//! Neurosurgeon, DADS, …) over one profiled [`Problem`]. This module
//! makes that swap a first-class operation: each algorithm is a small
//! strategy object implementing [`Partitioner`], all failures share one
//! [`PartitionError`], and registries/benches identify policies through
//! [`Partitioner::name`]. Third-party policies plug in by implementing
//! the trait; everything downstream (`Deployment::plan`, `D3Runtime`)
//! accepts `&dyn Partitioner`.
//!
//! ```
//! use d3_partition::{Hpa, HpaOptions, Partitioner, Problem};
//! use d3_simnet::{NetworkCondition, TierProfiles};
//! use d3_model::zoo;
//!
//! let g = zoo::vgg16(224);
//! let problem = Problem::new(&g, &TierProfiles::paper_testbed(), NetworkCondition::WiFi);
//! let plan = Hpa::paper().partition(&problem).unwrap();
//! assert!(plan.is_monotone(&problem));
//! ```

use crate::hpa::HpaOptions;
use crate::{Assignment, Problem};
use d3_simnet::Tier;

/// Why a partition policy could not produce an assignment.
///
/// One enum for every algorithm (folding the former `NeurosurgeonError`
/// and `IonnError`), so callers holding a `&dyn Partitioner` handle all
/// failures uniformly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// The algorithm only supports chain-topology DNNs and the graph is
    /// a DAG (Neurosurgeon, IONN).
    NotAChain {
        /// The policy that rejected the graph.
        algorithm: &'static str,
    },
    /// The graph exceeds the policy's tractable size (exhaustive oracle).
    TooLarge {
        /// Real-layer count of the offending graph.
        layers: usize,
        /// The policy's maximum.
        max: usize,
    },
    /// The policy was configured with an empty allowed-tier set.
    EmptyTierSet,
}

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionError::NotAChain { algorithm } => {
                write!(f, "{algorithm} only supports chain-topology DNNs")
            }
            PartitionError::TooLarge { layers, max } => {
                write!(
                    f,
                    "graph too large for exhaustive search ({layers} layers, max {max})"
                )
            }
            PartitionError::EmptyTierSet => write!(f, "allowed tier set is empty"),
        }
    }
}

impl std::error::Error for PartitionError {}

/// A partition policy: maps a profiled [`Problem`] to a tier
/// [`Assignment`].
///
/// Implementations must be cheap to construct, deterministic for a given
/// problem, and thread-safe (`Send + Sync`), so one boxed policy can be
/// shared by a multi-model runtime partitioning concurrently.
pub trait Partitioner: Send + Sync {
    /// Stable identifier for registries, benches and logs (e.g. `"hpa"`).
    fn name(&self) -> &str;

    /// Produces a tier assignment for every vertex of `problem`.
    ///
    /// # Errors
    ///
    /// Returns a [`PartitionError`] when the policy does not apply to
    /// the problem's topology or configuration.
    fn partition(&self, problem: &Problem) -> Result<Assignment, PartitionError>;
}

/// The paper's Horizontal Partition Algorithm (Algorithm 1 + cut search).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Hpa(pub HpaOptions);

impl Hpa {
    /// HPA with the paper's configuration.
    #[must_use]
    pub fn paper() -> Self {
        Self(HpaOptions::paper())
    }
}

impl Partitioner for Hpa {
    fn name(&self) -> &str {
        "hpa"
    }

    fn partition(&self, problem: &Problem) -> Result<Assignment, PartitionError> {
        Ok(crate::hpa::solve(problem, &self.0))
    }
}

/// The Neurosurgeon baseline (chain-only device/cloud split).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Neurosurgeon;

impl Partitioner for Neurosurgeon {
    fn name(&self) -> &str {
        "neurosurgeon"
    }

    fn partition(&self, problem: &Problem) -> Result<Assignment, PartitionError> {
        crate::neurosurgeon::solve(problem)
    }
}

/// The DADS baseline (min-cut edge/cloud split).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Dads;

impl Partitioner for Dads {
    fn name(&self) -> &str {
        "dads"
    }

    fn partition(&self, problem: &Problem) -> Result<Assignment, PartitionError> {
        Ok(crate::dads::solve(problem))
    }
}

/// The IONN baseline (chain split amortizing parameter upload over an
/// expected query count).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ionn {
    /// Inferences amortizing the one-time parameter upload; the default
    /// (`u64::MAX`) is the steady state, which matches Neurosurgeon.
    pub expected_queries: u64,
}

impl Ionn {
    /// IONN amortizing over `expected_queries` inferences.
    #[must_use]
    pub fn with_queries(expected_queries: u64) -> Self {
        Self { expected_queries }
    }
}

impl Default for Ionn {
    fn default() -> Self {
        Self {
            expected_queries: u64::MAX,
        }
    }
}

impl Partitioner for Ionn {
    fn name(&self) -> &str {
        "ionn"
    }

    fn partition(&self, problem: &Problem) -> Result<Assignment, PartitionError> {
        crate::ionn::solve(problem, self.expected_queries)
    }
}

/// The brute-force oracle for optimality-gap measurements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExhaustiveOracle {
    /// Tiers the oracle may assign.
    pub allowed: Vec<Tier>,
    /// Restrict the search to monotone (Proposition 1) assignments.
    pub monotone_only: bool,
}

impl Default for ExhaustiveOracle {
    fn default() -> Self {
        Self {
            allowed: Tier::ALL.to_vec(),
            monotone_only: false,
        }
    }
}

impl Partitioner for ExhaustiveOracle {
    fn name(&self) -> &str {
        "exhaustive"
    }

    fn partition(&self, problem: &Problem) -> Result<Assignment, PartitionError> {
        crate::exhaustive::solve(problem, &self.allowed, self.monotone_only)
    }
}

/// Splits the vertices evenly across device/edge/cloud by topological
/// position, ignoring costs entirely.
///
/// Not a paper policy — a diagnostic: it guarantees all three tiers do
/// real work, which pipeline stress tests and streaming benchmarks need
/// regardless of what a cost-aware policy would choose. Always monotone
/// (ids are topological, and each third maps to a later tier).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EvenSplit;

impl Partitioner for EvenSplit {
    fn name(&self) -> &str {
        "even-split"
    }

    fn partition(&self, problem: &Problem) -> Result<Assignment, PartitionError> {
        let n = problem.graph().len();
        let tiers = (0..n)
            .map(|i| match (3 * i) / n {
                0 => Tier::Device,
                1 => Tier::Edge,
                _ => Tier::Cloud,
            })
            .collect();
        Ok(Assignment::new(tiers))
    }
}

/// Places every real layer on one fixed tier (the paper's device-only /
/// edge-only / cloud-only baselines).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedTier(pub Tier);

impl Partitioner for FixedTier {
    fn name(&self) -> &str {
        match self.0 {
            Tier::Device => "device-only",
            Tier::Edge => "edge-only",
            Tier::Cloud => "cloud-only",
        }
    }

    fn partition(&self, problem: &Problem) -> Result<Assignment, PartitionError> {
        Ok(Assignment::uniform(problem.graph().len(), self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use d3_model::zoo;
    use d3_simnet::{NetworkCondition, TierProfiles};

    fn problem(g: &d3_model::DnnGraph) -> Problem {
        Problem::new(g, &TierProfiles::paper_testbed(), NetworkCondition::WiFi)
    }

    #[test]
    fn trait_objects_are_thread_safe() {
        fn assert_send_sync<T: Send + Sync + ?Sized>() {}
        assert_send_sync::<dyn Partitioner>();
        assert_send_sync::<Box<dyn Partitioner>>();
    }

    #[test]
    fn names_are_stable() {
        let all: Vec<Box<dyn Partitioner>> = vec![
            Box::new(Hpa::paper()),
            Box::new(Neurosurgeon),
            Box::new(Dads),
            Box::new(Ionn::default()),
            Box::new(ExhaustiveOracle::default()),
            Box::new(FixedTier(Tier::Edge)),
        ];
        let names: Vec<&str> = all.iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            vec![
                "hpa",
                "neurosurgeon",
                "dads",
                "ionn",
                "exhaustive",
                "edge-only"
            ]
        );
    }

    #[test]
    fn chain_only_policies_reject_dags() {
        let g = zoo::resnet18(224);
        let p = problem(&g);
        assert_eq!(
            Neurosurgeon.partition(&p),
            Err(PartitionError::NotAChain {
                algorithm: "Neurosurgeon"
            })
        );
        assert_eq!(
            Ionn::default().partition(&p),
            Err(PartitionError::NotAChain { algorithm: "IONN" })
        );
    }

    #[test]
    fn even_split_uses_all_tiers_and_stays_monotone() {
        let g = zoo::chain_cnn(6, 8, 16);
        let p = problem(&g);
        let a = EvenSplit.partition(&p).unwrap();
        assert!(a.is_monotone(&p));
        for tier in Tier::ALL {
            assert!(
                a.tiers().contains(&tier),
                "{tier:?} unused by the even split"
            );
        }
    }

    #[test]
    fn fixed_tier_covers_every_vertex() {
        let g = zoo::alexnet(224);
        let p = problem(&g);
        let a = FixedTier(Tier::Cloud).partition(&p).unwrap();
        for id in g.layer_ids() {
            assert_eq!(a.tier(id), Tier::Cloud);
        }
    }

    #[test]
    fn oracle_rejects_big_graphs_instead_of_panicking() {
        let g = zoo::vgg16(224);
        let p = problem(&g);
        let err = ExhaustiveOracle::default().partition(&p).unwrap_err();
        assert!(matches!(err, PartitionError::TooLarge { .. }));
        let empty = ExhaustiveOracle {
            allowed: vec![],
            monotone_only: false,
        };
        assert_eq!(empty.partition(&p), Err(PartitionError::EmptyTierSet));
    }
}
