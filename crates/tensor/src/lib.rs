//! # d3-tensor
//!
//! A from-scratch, dependency-light `f32` tensor and CNN operator library.
//!
//! This crate is the *numerical substrate* of the D3 reproduction
//! (ICDCS 2021, "Dynamic DNN Decomposition for Lossless Synergistic
//! Inference"). The paper's central claim about the vertical separation
//! module (VSM) is that fused-tile parallel execution is **lossless**:
//! the merged tile outputs are identical to whole-tensor inference. That
//! claim can only be verified by actually executing convolutions, so this
//! crate implements real CNN operators rather than a latency model:
//!
//! - [`Tensor`]: a dense CHW `f32` tensor with checked indexing,
//! - [`ops`]: conv2d, max/avg pooling, fully-connected, batch-norm,
//!   activations, softmax, channel concat and residual add,
//! - [`Patch`]: a *tile view* — a crop of a global feature map carrying its
//!   global offset — together with region-execution variants of conv and
//!   pooling that apply zero padding **only at global borders**. These are
//!   exactly the semantics required by the paper's reverse tile
//!   calculation (RTC, Eqs. (4)–(5)).
//!
//! The operators favour clarity and exact reproducibility over raw speed:
//! accumulation order is deterministic, so tiled and whole-tensor
//! execution produce bit-identical results (verified by property tests).
//!
//! ## Example
//!
//! ```
//! use d3_tensor::{Tensor, ops::{Conv2d, ConvSpec}};
//!
//! let input = Tensor::filled(3, 8, 8, 1.0);
//! let conv = Conv2d::with_constant_weights(ConvSpec::new(3, 4, 3, 1, 1), 0.1, 0.0);
//! let out = conv.forward(&input);
//! assert_eq!(out.shape(), (4, 8, 8));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ops;
mod patch;
mod shape;
mod tensor;

pub use patch::{Patch, Region};
pub use shape::{conv_out_dim, pool_out_dim, Shape3};
pub use tensor::Tensor;

/// Maximum absolute elementwise difference between two tensors.
///
/// Returns `None` when the shapes differ. Used throughout the test-suite to
/// assert losslessness (`max_abs_diff == Some(0.0)` for identical
/// accumulation orders).
pub fn max_abs_diff(a: &Tensor, b: &Tensor) -> Option<f32> {
    if a.shape() != b.shape() {
        return None;
    }
    Some(
        a.data()
            .iter()
            .zip(b.data().iter())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f32, f32::max),
    )
}
