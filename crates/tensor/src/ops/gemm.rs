//! im2col + GEMM convolution: the fast whole-tensor path.
//!
//! The direct convolution in [`super::Conv2d::forward`] is the *reference*
//! implementation: deterministic accumulation order shared with the tile
//! path, which is what makes losslessness bit-exact. This module adds the
//! optimization every real inference engine uses — lowering convolution
//! to a matrix multiplication over an im2col buffer — as an explicitly
//! separate entry point:
//!
//! - [`Conv2d::forward_gemm`] is typically several times faster on
//!   non-trivial layers (see the `tiled_conv` criterion bench),
//! - its results agree with the reference to floating-point reassociation
//!   (~1e-5 relative), **not** bit-exactly — so the lossless pipeline and
//!   the test oracles keep using the reference path.

use super::conv::Conv2d;
use crate::Tensor;

impl Conv2d {
    /// Whole-tensor convolution via im2col + GEMM.
    ///
    /// Numerically equivalent to [`Conv2d::forward`] up to floating-point
    /// reassociation; use the reference path when bit-exactness against
    /// tiled execution matters.
    ///
    /// # Panics
    ///
    /// Panics when the input channel count differs from the spec.
    pub fn forward_gemm(&self, input: &Tensor) -> Tensor {
        let s = *self.spec();
        let (c, h, w) = input.shape();
        assert_eq!(c, s.in_c, "input channel mismatch");
        let (oh, ow) = s.out_hw(h, w);
        let k = s.in_c * s.kh * s.kw;
        let n = oh * ow;

        // im2col: column j holds the receptive field of output position j
        // (row-major over output positions), zero-filled where the field
        // leaves the plane. Layout: cols[row * n + j].
        let mut cols = vec![0.0f32; k * n];
        let data = input.data();
        for ic in 0..s.in_c {
            for ky in 0..s.kh {
                for kx in 0..s.kw {
                    let row = (ic * s.kh + ky) * s.kw + kx;
                    let base = row * n;
                    for oy in 0..oh {
                        let iy = (oy * s.sh + ky) as isize - s.ph as isize;
                        if iy < 0 || iy as usize >= h {
                            continue; // padding row: stays zero
                        }
                        let iy = iy as usize;
                        let in_row = (ic * h + iy) * w;
                        let out_row = base + oy * ow;
                        for ox in 0..ow {
                            let ix = (ox * s.sw + kx) as isize - s.pw as isize;
                            if ix < 0 || ix as usize >= w {
                                continue;
                            }
                            cols[out_row + ox] = data[in_row + ix as usize];
                        }
                    }
                }
            }
        }

        // GEMM: out[oc][j] = Σ_r W[oc][r] · cols[r][j] + bias[oc].
        // ikj loop order streams both the weight row and the column rows.
        let weights = self.weights_flat();
        let bias = self.bias_flat();
        let mut out = vec![0.0f32; s.out_c * n];
        for oc in 0..s.out_c {
            let out_row = &mut out[oc * n..(oc + 1) * n];
            out_row.fill(bias[oc]);
            let w_row = &weights[oc * k..(oc + 1) * k];
            for (r, &wv) in w_row.iter().enumerate() {
                if wv == 0.0 {
                    continue;
                }
                let col_row = &cols[r * n..(r + 1) * n];
                for (o, &cv) in out_row.iter_mut().zip(col_row) {
                    *o += wv * cv;
                }
            }
        }
        Tensor::from_vec(s.out_c, oh, ow, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::max_abs_diff;
    use crate::ops::ConvSpec;

    fn agree(spec: ConvSpec, hw: usize, seed: u64) {
        let conv = Conv2d::random(spec, seed);
        let input = Tensor::random(spec.in_c, hw, hw, seed ^ 7);
        let reference = conv.forward(&input);
        let gemm = conv.forward_gemm(&input);
        let diff = max_abs_diff(&reference, &gemm).expect("same shape");
        let scale = reference
            .data()
            .iter()
            .fold(0.0f32, |m, v| m.max(v.abs()))
            .max(1.0);
        assert!(
            diff / scale < 1e-5,
            "gemm diverged: {diff} (scale {scale}) for {spec:?}"
        );
    }

    #[test]
    fn matches_reference_same_conv() {
        agree(ConvSpec::new(3, 8, 3, 1, 1), 16, 1);
    }

    #[test]
    fn matches_reference_strided_valid() {
        agree(ConvSpec::new(4, 6, 3, 2, 0), 17, 2);
        agree(ConvSpec::new(2, 5, 5, 2, 2), 20, 3);
    }

    #[test]
    fn matches_reference_rect_kernels() {
        agree(ConvSpec::rect(4, 4, 1, 7, 1, 1, 0, 3), 12, 4);
        agree(ConvSpec::rect(4, 4, 7, 1, 1, 1, 3, 0), 12, 5);
    }

    #[test]
    fn matches_reference_1x1() {
        agree(ConvSpec::new(8, 16, 1, 1, 0), 10, 6);
    }

    #[test]
    fn exact_on_integer_weights() {
        // With small integer weights and inputs there is no rounding, so
        // even reassociation is exact.
        let spec = ConvSpec::new(1, 1, 3, 1, 1);
        let conv = Conv2d::with_constant_weights(spec, 1.0, 0.5);
        let input = Tensor::filled(1, 9, 9, 2.0);
        assert_eq!(conv.forward_gemm(&input), conv.forward(&input));
    }

    #[test]
    fn big_alexnet_conv1_shape() {
        let spec = ConvSpec::new(3, 96, 11, 4, 2);
        let conv = Conv2d::random(spec, 9);
        let out = conv.forward_gemm(&Tensor::random(3, 224, 224, 10));
        assert_eq!(out.shape(), (96, 55, 55));
    }
}
