//! Elementwise activations and softmax.
//!
//! Activations are volume-preserving, so VSM "neglects" them between
//! convolutional layers (§III-F): they apply identically to tiles and to
//! whole tensors. We expose plain tensor functions; tiled execution simply
//! applies them to each tile's tensor.

use crate::Tensor;

/// Rectified linear unit, elementwise `max(0, x)`.
pub fn relu(input: &Tensor) -> Tensor {
    let (c, h, w) = input.shape();
    Tensor::from_vec(c, h, w, input.data().iter().map(|&v| v.max(0.0)).collect())
}

/// Leaky ReLU with negative slope `alpha` (Darknet-53 uses `alpha = 0.1`).
pub fn leaky_relu(input: &Tensor, alpha: f32) -> Tensor {
    let (c, h, w) = input.shape();
    Tensor::from_vec(
        c,
        h,
        w,
        input
            .data()
            .iter()
            .map(|&v| if v >= 0.0 { v } else { alpha * v })
            .collect(),
    )
}

/// Numerically-stable softmax over the flattened tensor.
pub fn softmax(input: &Tensor) -> Tensor {
    let (c, h, w) = input.shape();
    let max = input
        .data()
        .iter()
        .copied()
        .fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = input.data().iter().map(|&v| (v - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    Tensor::from_vec(c, h, w, exps.iter().map(|&e| e / sum).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let t = Tensor::from_vec(1, 1, 4, vec![-2.0, -0.5, 0.0, 3.0]);
        assert_eq!(relu(&t).data(), &[0.0, 0.0, 0.0, 3.0]);
    }

    #[test]
    fn leaky_relu_scales_negatives() {
        let t = Tensor::from_vec(1, 1, 3, vec![-10.0, 0.0, 5.0]);
        assert_eq!(leaky_relu(&t, 0.1).data(), &[-1.0, 0.0, 5.0]);
    }

    #[test]
    fn softmax_sums_to_one() {
        let t = Tensor::random(10, 1, 1, 4);
        let s = softmax(&t);
        let sum: f32 = s.data().iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert!(s.data().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let a = Tensor::from_vec(3, 1, 1, vec![1.0, 2.0, 3.0]);
        let b = Tensor::from_vec(3, 1, 1, vec![1001.0, 1002.0, 1003.0]);
        let (sa, sb) = (softmax(&a), softmax(&b));
        for (x, y) in sa.data().iter().zip(sb.data()) {
            assert!((x - y).abs() < 1e-6);
        }
        assert!(sb.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn softmax_argmax_preserved() {
        let t = Tensor::from_vec(4, 1, 1, vec![0.1, 5.0, -2.0, 1.0]);
        let s = softmax(&t);
        let arg = s
            .data()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(arg, 1);
    }
}
