//! Fully-connected (dense) layer.

use crate::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A fully-connected layer `y = Wx + b`.
///
/// Inputs are flattened CHW tensors; the output is a `(out, 1, 1)` tensor.
/// Dense layers always run whole (they are never vertically separated —
/// the paper's VSM applies only to convolutional/pooling stacks).
#[derive(Debug, Clone, PartialEq)]
pub struct Dense {
    in_dim: usize,
    out_dim: usize,
    /// Row-major `[out_dim][in_dim]`.
    weights: Vec<f32>,
    bias: Vec<f32>,
}

impl Dense {
    /// Creates a dense layer from explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics when buffer lengths do not match the dimensions.
    pub fn new(in_dim: usize, out_dim: usize, weights: Vec<f32>, bias: Vec<f32>) -> Self {
        assert_eq!(weights.len(), in_dim * out_dim, "weight length mismatch");
        assert_eq!(bias.len(), out_dim, "bias length mismatch");
        Self {
            in_dim,
            out_dim,
            weights,
            bias,
        }
    }

    /// Creates a dense layer with deterministic random parameters.
    pub fn random(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let scale = (2.0 / in_dim as f32).sqrt();
        let weights = (0..in_dim * out_dim)
            .map(|_| (rng.random::<f32>() * 2.0 - 1.0) * scale)
            .collect();
        let bias = (0..out_dim)
            .map(|_| (rng.random::<f32>() * 2.0 - 1.0) * 0.01)
            .collect();
        Self::new(in_dim, out_dim, weights, bias)
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Number of learnable parameters.
    pub fn param_count(&self) -> usize {
        self.in_dim * self.out_dim + self.out_dim
    }

    /// Forward pass; the input is flattened first.
    ///
    /// # Panics
    ///
    /// Panics when the flattened input length differs from `in_dim`.
    pub fn forward(&self, input: &Tensor) -> Tensor {
        let x = input.data();
        assert_eq!(
            x.len(),
            self.in_dim,
            "dense input length {} != {}",
            x.len(),
            self.in_dim
        );
        let mut out = Tensor::zeros(self.out_dim, 1, 1);
        for o in 0..self.out_dim {
            let row = &self.weights[o * self.in_dim..(o + 1) * self.in_dim];
            let mut acc = self.bias[o];
            for (w, v) in row.iter().zip(x.iter()) {
                acc += w * v;
            }
            out.data_mut()[o] = acc;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matrix() {
        let w = vec![1.0, 0.0, 0.0, 1.0];
        let d = Dense::new(2, 2, w, vec![0.0, 0.0]);
        let out = d.forward(&Tensor::from_vec(2, 1, 1, vec![3.0, 4.0]));
        assert_eq!(out.data(), &[3.0, 4.0]);
    }

    #[test]
    fn bias_offsets() {
        let d = Dense::new(2, 1, vec![1.0, 1.0], vec![10.0]);
        let out = d.forward(&Tensor::from_vec(2, 1, 1, vec![1.0, 2.0]));
        assert_eq!(out.data(), &[13.0]);
    }

    #[test]
    fn accepts_chw_input() {
        let d = Dense::random(2 * 3 * 3, 5, 0);
        let out = d.forward(&Tensor::random(2, 3, 3, 1));
        assert_eq!(out.shape(), (5, 1, 1));
    }

    #[test]
    #[should_panic(expected = "dense input length")]
    fn wrong_input_len_panics() {
        Dense::random(4, 2, 0).forward(&Tensor::zeros(5, 1, 1));
    }

    #[test]
    fn param_count() {
        assert_eq!(Dense::random(10, 4, 0).param_count(), 44);
    }
}
