//! Depthwise 2-D convolution: each channel convolved with its own filter.
//!
//! Depthwise-separable convolutions (MobileNet-style) are the standard
//! answer to the paper's premise that mobile devices struggle with dense
//! convolutions. Supporting them end to end — including the tile-region
//! path — lets the reproduction's VSM separate modern mobile backbones
//! losslessly, not just the paper's five classic networks.

use crate::{conv_out_dim, Patch, Region, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Hyper-parameters of a depthwise convolution (channel multiplier 1:
/// `channels` in, `channels` out).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DepthwiseSpec {
    /// Number of channels (input = output).
    pub channels: usize,
    /// Filter height.
    pub kh: usize,
    /// Filter width.
    pub kw: usize,
    /// Vertical stride.
    pub sh: usize,
    /// Horizontal stride.
    pub sw: usize,
    /// Vertical padding.
    pub ph: usize,
    /// Horizontal padding.
    pub pw: usize,
}

impl DepthwiseSpec {
    /// Square-kernel constructor.
    pub const fn new(channels: usize, k: usize, s: usize, p: usize) -> Self {
        Self {
            channels,
            kh: k,
            kw: k,
            sh: s,
            sw: s,
            ph: p,
            pw: p,
        }
    }

    /// Output spatial size for an `h × w` input.
    pub fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (
            conv_out_dim(h, self.kh, self.sh, self.ph),
            conv_out_dim(w, self.kw, self.sw, self.pw),
        )
    }

    /// Learnable parameters (per-channel filters + biases).
    pub fn param_count(&self) -> usize {
        self.channels * self.kh * self.kw + self.channels
    }

    /// Multiply-accumulate count for an `h × w` input.
    pub fn macs(&self, h: usize, w: usize) -> u64 {
        let (oh, ow) = self.out_hw(h, w);
        (self.channels * self.kh * self.kw) as u64 * (oh * ow) as u64
    }
}

/// A depthwise convolution layer with owned weights
/// (`[channels][kh][kw]`) and per-channel bias.
#[derive(Debug, Clone, PartialEq)]
pub struct DepthwiseConv2d {
    spec: DepthwiseSpec,
    weights: Vec<f32>,
    bias: Vec<f32>,
}

impl DepthwiseConv2d {
    /// Creates a layer from explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics when buffer lengths do not match the spec.
    pub fn new(spec: DepthwiseSpec, weights: Vec<f32>, bias: Vec<f32>) -> Self {
        assert_eq!(
            weights.len(),
            spec.channels * spec.kh * spec.kw,
            "weight buffer length mismatch"
        );
        assert_eq!(bias.len(), spec.channels, "bias buffer length mismatch");
        Self {
            spec,
            weights,
            bias,
        }
    }

    /// Deterministic He-style random weights.
    pub fn random(spec: DepthwiseSpec, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let scale = (2.0 / (spec.kh * spec.kw) as f32).sqrt();
        let weights = (0..spec.channels * spec.kh * spec.kw)
            .map(|_| (rng.random::<f32>() * 2.0 - 1.0) * scale)
            .collect();
        let bias = (0..spec.channels)
            .map(|_| (rng.random::<f32>() * 2.0 - 1.0) * 0.01)
            .collect();
        Self::new(spec, weights, bias)
    }

    /// The layer's hyper-parameters.
    pub fn spec(&self) -> &DepthwiseSpec {
        &self.spec
    }

    #[inline]
    fn weight(&self, c: usize, ky: usize, kx: usize) -> f32 {
        self.weights[(c * self.spec.kh + ky) * self.spec.kw + kx]
    }

    /// Whole-tensor forward pass.
    ///
    /// # Panics
    ///
    /// Panics when the channel count differs from the spec.
    pub fn forward(&self, input: &Tensor) -> Tensor {
        let (c, h, w) = input.shape();
        assert_eq!(c, self.spec.channels, "channel mismatch");
        let (oh, ow) = self.spec.out_hw(h, w);
        self.forward_patch(&Patch::whole(input.clone()), Region::full(oh, ow), (h, w))
            .into_tensor()
    }

    /// Tile-region forward pass (same semantics as
    /// [`super::Conv2d::forward_patch`]: padding only at global borders).
    pub fn forward_patch(
        &self,
        input: &Patch,
        out_region: Region,
        global_in: (usize, usize),
    ) -> Patch {
        assert_eq!(input.channels(), self.spec.channels, "channel mismatch");
        assert_eq!(input.global_size(), global_in, "global size mismatch");
        let s = &self.spec;
        let (goh, gow) = s.out_hw(global_in.0, global_in.1);
        assert!(
            out_region.y1 <= goh && out_region.x1 <= gow,
            "output region {out_region:?} exceeds global output {goh}x{gow}"
        );
        let mut out = Tensor::zeros(s.channels, out_region.height(), out_region.width());
        for c in 0..s.channels {
            for oy in out_region.y0..out_region.y1 {
                let iy0 = oy as isize * s.sh as isize - s.ph as isize;
                for ox in out_region.x0..out_region.x1 {
                    let ix0 = ox as isize * s.sw as isize - s.pw as isize;
                    let mut acc = self.bias[c];
                    for ky in 0..s.kh {
                        let gy = iy0 + ky as isize;
                        for kx in 0..s.kw {
                            let gx = ix0 + kx as isize;
                            acc += input.get_global(c, gy, gx) * self.weight(c, ky, kx);
                        }
                    }
                    out.set(c, oy - out_region.y0, ox - out_region.x0, acc);
                }
            }
        }
        Patch::from_parts(out, out_region.y0, out_region.x0, (goh, gow))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::max_abs_diff;

    #[test]
    fn identity_1x1() {
        let dw = DepthwiseConv2d::new(
            DepthwiseSpec::new(2, 1, 1, 0),
            vec![1.0, 1.0],
            vec![0.0, 0.0],
        );
        let input = Tensor::random(2, 5, 5, 1);
        assert_eq!(dw.forward(&input), input);
    }

    #[test]
    fn channels_do_not_mix() {
        // Zero the second channel's filter: its output is pure bias while
        // the first channel is untouched.
        let spec = DepthwiseSpec::new(2, 1, 1, 0);
        let dw = DepthwiseConv2d::new(spec, vec![2.0, 0.0], vec![0.0, 7.0]);
        let input = Tensor::filled(2, 3, 3, 1.0);
        let out = dw.forward(&input);
        assert!(out.crop(0, 3, 0, 3).data()[..9].iter().all(|&v| v == 2.0));
        for y in 0..3 {
            for x in 0..3 {
                assert_eq!(out.get(1, y, x), 7.0);
            }
        }
    }

    #[test]
    fn interior_sum_3x3() {
        let dw = DepthwiseConv2d::new(DepthwiseSpec::new(1, 3, 1, 1), vec![1.0; 9], vec![0.0]);
        let out = dw.forward(&Tensor::filled(1, 5, 5, 1.0));
        assert_eq!(out.get(0, 2, 2), 9.0);
        assert_eq!(out.get(0, 0, 0), 4.0);
    }

    #[test]
    fn strided_shapes() {
        let dw = DepthwiseConv2d::random(DepthwiseSpec::new(8, 3, 2, 1), 1);
        let out = dw.forward(&Tensor::random(8, 16, 16, 2));
        assert_eq!(out.shape(), (8, 8, 8));
    }

    #[test]
    fn patch_region_matches_whole() {
        let dw = DepthwiseConv2d::random(DepthwiseSpec::new(4, 3, 1, 1), 5);
        let input = Tensor::random(4, 12, 12, 6);
        let whole = dw.forward(&input);
        let out_region = Region::new(3, 9, 2, 8);
        let patch = Patch::from_global(&input, Region::new(2, 10, 1, 9));
        let tile = dw.forward_patch(&patch, out_region, (12, 12));
        assert_eq!(
            max_abs_diff(tile.tensor(), &whole.crop(3, 9, 2, 8)),
            Some(0.0)
        );
    }

    #[test]
    fn macs_and_params() {
        let spec = DepthwiseSpec::new(32, 3, 1, 1);
        assert_eq!(spec.param_count(), 32 * 9 + 32);
        assert_eq!(spec.macs(112, 112), 32 * 9 * 112 * 112);
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn wrong_channels_panics() {
        DepthwiseConv2d::random(DepthwiseSpec::new(3, 3, 1, 1), 0).forward(&Tensor::zeros(4, 8, 8));
    }
}
