//! Spatial pooling with whole-tensor and tile-region execution paths.
//!
//! The paper's VSM fuses pooling layers into tile stacks "in the same way
//! as the convolutional layers" (§III-F), so pooling supports the same
//! region execution as [`super::Conv2d`].
//!
//! Padding semantics: padded positions contribute the value `0.0` to both
//! max and average pooling, and average pooling divides by the full kernel
//! area. These semantics are *identical* in the whole-tensor and tiled
//! paths, which is what losslessness requires; they intentionally favour
//! internal consistency over matching any one framework's defaults.

use crate::{pool_out_dim, Patch, Region, Tensor};

/// The pooling reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PoolKind {
    /// Maximum over the window (zero-padded).
    Max,
    /// Mean over the window (zero-padded, divided by full kernel area).
    Avg,
}

/// Hyper-parameters of a pooling layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PoolSpec {
    /// Reduction kind.
    pub kind: PoolKind,
    /// Window height.
    pub kh: usize,
    /// Window width.
    pub kw: usize,
    /// Vertical stride.
    pub sh: usize,
    /// Horizontal stride.
    pub sw: usize,
    /// Vertical padding.
    pub ph: usize,
    /// Horizontal padding.
    pub pw: usize,
}

impl PoolSpec {
    /// Square window, equal strides/paddings.
    pub const fn new(kind: PoolKind, k: usize, s: usize, p: usize) -> Self {
        Self {
            kind,
            kh: k,
            kw: k,
            sh: s,
            sw: s,
            ph: p,
            pw: p,
        }
    }

    /// Output spatial size for an `h × w` input.
    pub fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (
            pool_out_dim(h, self.kh, self.sh, self.ph),
            pool_out_dim(w, self.kw, self.sw, self.pw),
        )
    }
}

/// A pooling layer (stateless; holds only its spec).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Pool2d {
    spec: PoolSpec,
}

impl Pool2d {
    /// Creates a pooling layer.
    pub const fn new(spec: PoolSpec) -> Self {
        Self { spec }
    }

    /// The layer's hyper-parameters.
    pub fn spec(&self) -> &PoolSpec {
        &self.spec
    }

    /// Whole-tensor forward pass.
    pub fn forward(&self, input: &Tensor) -> Tensor {
        let (_, h, w) = input.shape();
        let (oh, ow) = self.spec.out_hw(h, w);
        let patch = Patch::whole(input.clone());
        self.forward_patch(&patch, Region::full(oh, ow), (h, w))
            .into_tensor()
    }

    /// Computes the output entries in `out_region` from an input patch of a
    /// `global_in` feature map (see [`super::Conv2d::forward_patch`]).
    pub fn forward_patch(
        &self,
        input: &Patch,
        out_region: Region,
        global_in: (usize, usize),
    ) -> Patch {
        assert_eq!(input.global_size(), global_in, "global size mismatch");
        let s = &self.spec;
        let (goh, gow) = s.out_hw(global_in.0, global_in.1);
        assert!(
            out_region.y1 <= goh && out_region.x1 <= gow,
            "output region {out_region:?} exceeds global output {goh}x{gow}"
        );
        let c = input.channels();
        let mut out = Tensor::zeros(c, out_region.height(), out_region.width());
        let area = (s.kh * s.kw) as f32;
        for ch in 0..c {
            for oy in out_region.y0..out_region.y1 {
                let iy0 = oy as isize * s.sh as isize - s.ph as isize;
                for ox in out_region.x0..out_region.x1 {
                    let ix0 = ox as isize * s.sw as isize - s.pw as isize;
                    let v = match s.kind {
                        PoolKind::Max => {
                            let mut m = f32::NEG_INFINITY;
                            for ky in 0..s.kh {
                                for kx in 0..s.kw {
                                    m = m.max(input.get_global(
                                        ch,
                                        iy0 + ky as isize,
                                        ix0 + kx as isize,
                                    ));
                                }
                            }
                            m
                        }
                        PoolKind::Avg => {
                            let mut acc = 0.0;
                            for ky in 0..s.kh {
                                for kx in 0..s.kw {
                                    acc +=
                                        input.get_global(ch, iy0 + ky as isize, ix0 + kx as isize);
                                }
                            }
                            acc / area
                        }
                    };
                    out.set(ch, oy - out_region.y0, ox - out_region.x0, v);
                }
            }
        }
        Patch::from_parts(out, out_region.y0, out_region.x0, (goh, gow))
    }
}

/// Global average pooling: collapses each channel to a single value.
/// Used by ResNet-18, Darknet-53 and Inception-v4 ahead of their
/// classifiers.
pub fn global_avg_pool(input: &Tensor) -> Tensor {
    let (c, h, w) = input.shape();
    let area = (h * w) as f32;
    let mut out = Tensor::zeros(c, 1, 1);
    for ch in 0..c {
        let mut acc = 0.0;
        for y in 0..h {
            for x in 0..w {
                acc += input.get(ch, y, x);
            }
        }
        out.set(ch, 0, 0, acc / area);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::max_abs_diff;

    #[test]
    fn max_pool_2x2() {
        let input = Tensor::from_vec(1, 2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let pool = Pool2d::new(PoolSpec::new(PoolKind::Max, 2, 2, 0));
        let out = pool.forward(&input);
        assert_eq!(out.shape(), (1, 1, 1));
        assert_eq!(out.get(0, 0, 0), 4.0);
    }

    #[test]
    fn avg_pool_2x2() {
        let input = Tensor::from_vec(1, 2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let pool = Pool2d::new(PoolSpec::new(PoolKind::Avg, 2, 2, 0));
        assert_eq!(pool.forward(&input).get(0, 0, 0), 2.5);
    }

    #[test]
    fn vgg_maxpool_halves() {
        let pool = Pool2d::new(PoolSpec::new(PoolKind::Max, 2, 2, 0));
        let out = pool.forward(&Tensor::random(4, 8, 8, 1));
        assert_eq!(out.shape(), (4, 4, 4));
    }

    #[test]
    fn resnet_maxpool_3_2_1() {
        let pool = Pool2d::new(PoolSpec::new(PoolKind::Max, 3, 2, 1));
        let out = pool.forward(&Tensor::random(2, 112, 112, 1));
        assert_eq!(out.shape(), (2, 56, 56));
    }

    #[test]
    fn padded_avg_divides_by_full_area() {
        // 3x3 avg with pad 1 on a 1x1 input of 9.0: only centre is valid.
        let input = Tensor::filled(1, 1, 1, 9.0);
        let pool = Pool2d::new(PoolSpec::new(PoolKind::Avg, 3, 1, 1));
        assert_eq!(pool.forward(&input).get(0, 0, 0), 1.0);
    }

    #[test]
    fn patch_region_matches_whole() {
        let input = Tensor::random(3, 12, 12, 9);
        let pool = Pool2d::new(PoolSpec::new(PoolKind::Max, 3, 2, 1));
        let whole = pool.forward(&input);
        let out_region = Region::new(2, 6, 1, 5);
        // Receptive field rows: [2*2-1, 5*2-1+3) = [3,12); cols [1,12).
        let patch = Patch::from_global(&input, Region::new(3, 12, 1, 12));
        let tile = pool.forward_patch(&patch, out_region, (12, 12));
        assert_eq!(
            max_abs_diff(tile.tensor(), &whole.crop(2, 6, 1, 5)),
            Some(0.0)
        );
    }

    #[test]
    fn global_avg_pool_collapses() {
        let mut t = Tensor::zeros(2, 2, 2);
        for (i, v) in [1.0, 2.0, 3.0, 4.0, 10.0, 10.0, 10.0, 10.0]
            .iter()
            .enumerate()
        {
            t.data_mut()[i] = *v;
        }
        let out = global_avg_pool(&t);
        assert_eq!(out.shape(), (2, 1, 1));
        assert_eq!(out.get(0, 0, 0), 2.5);
        assert_eq!(out.get(1, 0, 0), 10.0);
    }
}
