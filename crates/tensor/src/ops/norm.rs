//! Inference-time batch normalization.

use crate::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Batch normalization folded into inference form: per-channel affine
/// `y = scale[c] * x + shift[c]`, where `scale = gamma / sqrt(var + eps)`
/// and `shift = beta - mean * scale` are precomputed from trained
/// statistics.
///
/// Batch-norm is volume-preserving and channelwise, so it commutes with
/// spatial tiling (the paper "neglects" it in VSM's coordinate math while
/// still executing it inside each fused tile).
#[derive(Debug, Clone, PartialEq)]
pub struct BatchNorm {
    scale: Vec<f32>,
    shift: Vec<f32>,
}

impl BatchNorm {
    /// Creates a batch-norm layer from folded per-channel parameters.
    ///
    /// # Panics
    ///
    /// Panics when `scale` and `shift` lengths differ.
    pub fn new(scale: Vec<f32>, shift: Vec<f32>) -> Self {
        assert_eq!(scale.len(), shift.len(), "scale/shift length mismatch");
        Self { scale, shift }
    }

    /// Deterministic random parameters near identity (scale ≈ 1, shift ≈ 0),
    /// mimicking a trained network's folded statistics.
    pub fn random(channels: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let scale = (0..channels)
            .map(|_| 0.8 + 0.4 * rng.random::<f32>())
            .collect();
        let shift = (0..channels)
            .map(|_| (rng.random::<f32>() - 0.5) * 0.2)
            .collect();
        Self::new(scale, shift)
    }

    /// Number of channels this layer normalizes.
    pub fn channels(&self) -> usize {
        self.scale.len()
    }

    /// Forward pass.
    ///
    /// # Panics
    ///
    /// Panics when the input channel count differs.
    pub fn forward(&self, input: &Tensor) -> Tensor {
        let (c, h, w) = input.shape();
        assert_eq!(c, self.scale.len(), "batch-norm channel mismatch");
        let mut out = input.clone();
        for ch in 0..c {
            let (s, b) = (self.scale[ch], self.shift[ch]);
            let base = ch * h * w;
            for v in &mut out.data_mut()[base..base + h * w] {
                *v = s * *v + b;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_norm() {
        let bn = BatchNorm::new(vec![1.0, 1.0], vec![0.0, 0.0]);
        let t = Tensor::random(2, 3, 3, 1);
        assert_eq!(bn.forward(&t), t);
    }

    #[test]
    fn per_channel_affine() {
        let bn = BatchNorm::new(vec![2.0, 0.5], vec![1.0, -1.0]);
        let t = Tensor::filled(2, 1, 1, 4.0);
        let out = bn.forward(&t);
        assert_eq!(out.get(0, 0, 0), 9.0);
        assert_eq!(out.get(1, 0, 0), 1.0);
    }

    #[test]
    fn commutes_with_crop() {
        // Channelwise affine commutes with spatial tiling — the property
        // VSM relies on to skip batch-norm in its coordinate math.
        let bn = BatchNorm::random(3, 9);
        let t = Tensor::random(3, 6, 6, 2);
        let a = bn.forward(&t).crop(1, 4, 2, 5);
        let b = bn.forward(&t.crop(1, 4, 2, 5));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn wrong_channels_panics() {
        BatchNorm::random(2, 0).forward(&Tensor::zeros(3, 2, 2));
    }
}
