//! 2-D convolution with whole-tensor and tile-region execution paths.

use crate::{conv_out_dim, Patch, Region, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Hyper-parameters of a 2-D convolution, matching the paper's notation:
/// filter `Fw × Fh × D`, strides `Sw/Sh`, paddings `Pw/Ph`.
///
/// Non-square kernels are supported (Inception-v4 uses 1×3, 3×1, 1×7, 7×1
/// filters in its grid and inception modules).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvSpec {
    /// Input channels (`D`, the filter depth).
    pub in_c: usize,
    /// Output channels (number of filters `K`).
    pub out_c: usize,
    /// Filter height `Fh`.
    pub kh: usize,
    /// Filter width `Fw`.
    pub kw: usize,
    /// Vertical stride `Sh`.
    pub sh: usize,
    /// Horizontal stride `Sw`.
    pub sw: usize,
    /// Vertical padding `Ph`.
    pub ph: usize,
    /// Horizontal padding `Pw`.
    pub pw: usize,
}

impl ConvSpec {
    /// Square-kernel constructor: `k × k` filter, stride `s`, padding `p`.
    pub const fn new(in_c: usize, out_c: usize, k: usize, s: usize, p: usize) -> Self {
        Self {
            in_c,
            out_c,
            kh: k,
            kw: k,
            sh: s,
            sw: s,
            ph: p,
            pw: p,
        }
    }

    /// Fully general constructor for rectangular kernels.
    #[allow(clippy::too_many_arguments)]
    pub const fn rect(
        in_c: usize,
        out_c: usize,
        kh: usize,
        kw: usize,
        sh: usize,
        sw: usize,
        ph: usize,
        pw: usize,
    ) -> Self {
        Self {
            in_c,
            out_c,
            kh,
            kw,
            sh,
            sw,
            ph,
            pw,
        }
    }

    /// Output spatial size for an `h × w` input (Eq. (3)).
    pub fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (
            conv_out_dim(h, self.kh, self.sh, self.ph),
            conv_out_dim(w, self.kw, self.sw, self.pw),
        )
    }

    /// Number of learnable parameters (weights + biases).
    pub fn param_count(&self) -> usize {
        self.out_c * self.in_c * self.kh * self.kw + self.out_c
    }

    /// Multiply-accumulate count for an `h × w` input.
    pub fn macs(&self, h: usize, w: usize) -> u64 {
        let (oh, ow) = self.out_hw(h, w);
        (self.out_c * self.in_c * self.kh * self.kw) as u64 * (oh * ow) as u64
    }
}

/// A 2-D convolution layer with owned weights.
///
/// Weight layout is `[out_c][in_c][kh][kw]`; bias is `[out_c]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Conv2d {
    spec: ConvSpec,
    weights: Vec<f32>,
    bias: Vec<f32>,
}

impl Conv2d {
    /// Creates a convolution from explicit weights and biases.
    ///
    /// # Panics
    ///
    /// Panics when the buffer lengths do not match the spec.
    pub fn new(spec: ConvSpec, weights: Vec<f32>, bias: Vec<f32>) -> Self {
        assert_eq!(
            weights.len(),
            spec.out_c * spec.in_c * spec.kh * spec.kw,
            "weight buffer length mismatch"
        );
        assert_eq!(bias.len(), spec.out_c, "bias buffer length mismatch");
        Self {
            spec,
            weights,
            bias,
        }
    }

    /// Creates a convolution whose weights all equal `weight` and biases all
    /// equal `bias`. Handy for analytical tests.
    pub fn with_constant_weights(spec: ConvSpec, weight: f32, bias: f32) -> Self {
        let n = spec.out_c * spec.in_c * spec.kh * spec.kw;
        Self::new(spec, vec![weight; n], vec![bias; spec.out_c])
    }

    /// Creates a convolution with deterministic He-style random weights.
    /// Models in the zoo use this so that "trained" weights are
    /// reproducible across processes (losslessness is weight-independent).
    pub fn random(spec: ConvSpec, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let fan_in = (spec.in_c * spec.kh * spec.kw) as f32;
        let scale = (2.0 / fan_in).sqrt();
        let n = spec.out_c * spec.in_c * spec.kh * spec.kw;
        let weights = (0..n)
            .map(|_| (rng.random::<f32>() * 2.0 - 1.0) * scale)
            .collect();
        let bias = (0..spec.out_c)
            .map(|_| (rng.random::<f32>() * 2.0 - 1.0) * 0.01)
            .collect();
        Self::new(spec, weights, bias)
    }

    /// The layer's hyper-parameters.
    pub fn spec(&self) -> &ConvSpec {
        &self.spec
    }

    /// The raw weight buffer, `[out_c][in_c][kh][kw]` row-major.
    pub fn weights_flat(&self) -> &[f32] {
        &self.weights
    }

    /// The raw bias buffer, one entry per output channel.
    pub fn bias_flat(&self) -> &[f32] {
        &self.bias
    }

    #[inline]
    fn weight(&self, oc: usize, ic: usize, ky: usize, kx: usize) -> f32 {
        self.weights[((oc * self.spec.in_c + ic) * self.spec.kh + ky) * self.spec.kw + kx]
    }

    /// Whole-tensor forward pass.
    ///
    /// # Panics
    ///
    /// Panics when the input channel count differs from the spec.
    pub fn forward(&self, input: &Tensor) -> Tensor {
        let (c, h, w) = input.shape();
        assert_eq!(c, self.spec.in_c, "input channel mismatch");
        let (oh, ow) = self.spec.out_hw(h, w);
        let patch = Patch::whole(input.clone());
        let out = self.forward_patch(&patch, Region::full(oh, ow), (h, w));
        out.into_tensor()
    }

    /// Computes the output entries in `out_region` (global output
    /// coordinates) from an input patch cut from a `global_in` = `(h, w)`
    /// feature map. Padding is applied only where the receptive field
    /// leaves the **global** input plane.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) when the patch does not cover the receptive
    /// field of `out_region`, i.e. when the reverse tile calculation that
    /// produced the patch was wrong.
    pub fn forward_patch(
        &self,
        input: &Patch,
        out_region: Region,
        global_in: (usize, usize),
    ) -> Patch {
        assert_eq!(input.channels(), self.spec.in_c, "input channel mismatch");
        assert_eq!(input.global_size(), global_in, "global size mismatch");
        let s = &self.spec;
        let (goh, gow) = s.out_hw(global_in.0, global_in.1);
        assert!(
            out_region.y1 <= goh && out_region.x1 <= gow,
            "output region {out_region:?} exceeds global output {goh}x{gow}"
        );
        let mut out = Tensor::zeros(s.out_c, out_region.height(), out_region.width());
        for oc in 0..s.out_c {
            for oy in out_region.y0..out_region.y1 {
                let iy0 = oy as isize * s.sh as isize - s.ph as isize;
                for ox in out_region.x0..out_region.x1 {
                    let ix0 = ox as isize * s.sw as isize - s.pw as isize;
                    let mut acc = self.bias[oc];
                    for ic in 0..s.in_c {
                        for ky in 0..s.kh {
                            let gy = iy0 + ky as isize;
                            for kx in 0..s.kw {
                                let gx = ix0 + kx as isize;
                                let v = input.get_global(ic, gy, gx);
                                acc += v * self.weight(oc, ic, ky, kx);
                            }
                        }
                    }
                    out.set(oc, oy - out_region.y0, ox - out_region.x0, acc);
                }
            }
        }
        Patch::from_parts(out, out_region.y0, out_region.x0, (goh, gow))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::max_abs_diff;

    #[test]
    fn identity_kernel_passes_through() {
        // 1x1 conv, single channel, weight 1, bias 0 is the identity.
        let conv = Conv2d::with_constant_weights(ConvSpec::new(1, 1, 1, 1, 0), 1.0, 0.0);
        let input = Tensor::random(1, 6, 6, 1);
        assert_eq!(conv.forward(&input), input);
    }

    #[test]
    fn constant_kernel_interior_sum() {
        // 3x3 all-ones kernel over an all-ones input: interior outputs are 9.
        let conv = Conv2d::with_constant_weights(ConvSpec::new(1, 1, 3, 1, 1), 1.0, 0.0);
        let out = conv.forward(&Tensor::filled(1, 5, 5, 1.0));
        assert_eq!(out.shape(), (1, 5, 5));
        assert_eq!(out.get(0, 2, 2), 9.0);
        // Corners see 4 valid entries (rest is zero padding).
        assert_eq!(out.get(0, 0, 0), 4.0);
        // Edges see 6.
        assert_eq!(out.get(0, 0, 2), 6.0);
    }

    #[test]
    fn bias_is_added() {
        let conv = Conv2d::with_constant_weights(ConvSpec::new(1, 2, 1, 1, 0), 0.0, 3.5);
        let out = conv.forward(&Tensor::random(1, 4, 4, 2));
        assert!(out.data().iter().all(|&v| v == 3.5));
    }

    #[test]
    fn stride_halves_output() {
        let conv = Conv2d::random(ConvSpec::new(3, 8, 3, 2, 1), 0);
        let out = conv.forward(&Tensor::random(3, 8, 8, 3));
        assert_eq!(out.shape(), (8, 4, 4));
    }

    #[test]
    fn rect_kernel_shapes() {
        // 1x7 conv with pad (0,3) preserves spatial dims.
        let spec = ConvSpec::rect(4, 4, 1, 7, 1, 1, 0, 3);
        let conv = Conv2d::random(spec, 1);
        let out = conv.forward(&Tensor::random(4, 9, 9, 4));
        assert_eq!(out.shape(), (4, 9, 9));
    }

    #[test]
    fn multi_channel_accumulates() {
        // Two input channels of 1s, 1x1 kernel of 1s: output = 2 everywhere.
        let conv = Conv2d::with_constant_weights(ConvSpec::new(2, 1, 1, 1, 0), 1.0, 0.0);
        let out = conv.forward(&Tensor::filled(2, 3, 3, 1.0));
        assert!(out.data().iter().all(|&v| v == 2.0));
    }

    #[test]
    fn patch_region_matches_whole() {
        let conv = Conv2d::random(ConvSpec::new(3, 5, 3, 1, 1), 7);
        let input = Tensor::random(3, 10, 10, 11);
        let whole = conv.forward(&input);
        // Compute output rows [4,9) x cols [2,7) from a sufficient patch.
        let out_region = Region::new(4, 9, 2, 7);
        // Receptive field: rows [3,10), cols [1,8) — take a superset crop.
        let in_region = Region::new(3, 10, 1, 8);
        let patch = Patch::from_global(&input, in_region);
        let tile = conv.forward_patch(&patch, out_region, (10, 10));
        let expect = whole.crop(4, 9, 2, 7);
        assert_eq!(max_abs_diff(tile.tensor(), &expect), Some(0.0));
    }

    #[test]
    fn patch_border_uses_global_padding() {
        let conv = Conv2d::with_constant_weights(ConvSpec::new(1, 1, 3, 1, 1), 1.0, 0.0);
        let input = Tensor::filled(1, 6, 6, 1.0);
        let whole = conv.forward(&input);
        // Tile containing the global top-left corner.
        let patch = Patch::from_global(&input, Region::new(0, 4, 0, 4));
        let tile = conv.forward_patch(&patch, Region::new(0, 3, 0, 3), (6, 6));
        assert_eq!(
            max_abs_diff(tile.tensor(), &whole.crop(0, 3, 0, 3)),
            Some(0.0)
        );
        assert_eq!(tile.tensor().get(0, 0, 0), 4.0); // corner: global padding applied
    }

    #[test]
    fn macs_and_params() {
        // VGG conv3-64 on 224x224: 64*3*3*3 * 224*224 MACs.
        let spec = ConvSpec::new(3, 64, 3, 1, 1);
        assert_eq!(spec.macs(224, 224), 64 * 3 * 9 * 224 * 224);
        assert_eq!(spec.param_count(), 64 * 3 * 9 + 64);
    }

    #[test]
    fn random_is_deterministic() {
        let a = Conv2d::random(ConvSpec::new(3, 4, 3, 1, 1), 5);
        let b = Conv2d::random(ConvSpec::new(3, 4, 3, 1, 1), 5);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn wrong_channels_panics() {
        let conv = Conv2d::random(ConvSpec::new(3, 4, 3, 1, 1), 5);
        conv.forward(&Tensor::zeros(4, 8, 8));
    }
}
