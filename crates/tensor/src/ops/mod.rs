//! CNN operators.
//!
//! Every spatial operator comes in two flavours:
//!
//! - a **whole-tensor** `forward` used by single-node inference, and
//! - a **region** `forward_patch` used by tiled (VSM) inference, which
//!   computes only a requested output [`crate::Region`] from an input
//!   [`crate::Patch`], applying zero padding exclusively at global borders.
//!
//! Both flavours use identical, deterministic accumulation order, so the
//! losslessness of tiled execution is exact (bit-identical), not merely
//! approximate.

mod activation;
mod conv;
mod dense;
mod depthwise;
mod gemm;
mod merge;
mod norm;
mod pool;

pub use activation::{leaky_relu, relu, softmax};
pub use conv::{Conv2d, ConvSpec};
pub use dense::Dense;
pub use depthwise::{DepthwiseConv2d, DepthwiseSpec};
pub use merge::{add, concat_channels};
pub use norm::BatchNorm;
pub use pool::{global_avg_pool, Pool2d, PoolKind, PoolSpec};
