//! Multi-input merge operators: channel concatenation and residual add.
//!
//! These realize the DAG joins of multi-branch networks — ResNet-18's
//! shortcut additions, Darknet-53's residuals and Inception-v4's filter
//! concatenations (the `Filter Concat` vertices of Fig. 3a).

use crate::Tensor;

/// Concatenates tensors along the channel axis. All inputs must share
/// spatial dimensions.
///
/// # Panics
///
/// Panics when `inputs` is empty or spatial dimensions differ.
pub fn concat_channels(inputs: &[&Tensor]) -> Tensor {
    assert!(!inputs.is_empty(), "concat of zero tensors");
    let (_, h, w) = inputs[0].shape();
    let mut total_c = 0;
    for t in inputs {
        let (c, th, tw) = t.shape();
        assert_eq!(
            (th, tw),
            (h, w),
            "concat spatial mismatch: {}x{} vs {}x{}",
            th,
            tw,
            h,
            w
        );
        total_c += c;
    }
    let mut data = Vec::with_capacity(total_c * h * w);
    for t in inputs {
        data.extend_from_slice(t.data());
    }
    Tensor::from_vec(total_c, h, w, data)
}

/// Elementwise addition of tensors with identical shapes (residual join).
///
/// # Panics
///
/// Panics when `inputs` is empty or shapes differ.
pub fn add(inputs: &[&Tensor]) -> Tensor {
    assert!(!inputs.is_empty(), "add of zero tensors");
    let shape = inputs[0].shape();
    let mut out = inputs[0].clone();
    for t in &inputs[1..] {
        assert_eq!(t.shape(), shape, "add shape mismatch");
        for (o, v) in out.data_mut().iter_mut().zip(t.data()) {
            *o += v;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concat_stacks_channels() {
        let a = Tensor::filled(2, 2, 2, 1.0);
        let b = Tensor::filled(3, 2, 2, 2.0);
        let c = concat_channels(&[&a, &b]);
        assert_eq!(c.shape(), (5, 2, 2));
        assert_eq!(c.get(0, 0, 0), 1.0);
        assert_eq!(c.get(2, 0, 0), 2.0);
        assert_eq!(c.get(4, 1, 1), 2.0);
    }

    #[test]
    fn concat_preserves_order() {
        let a = Tensor::random(1, 3, 3, 1);
        let b = Tensor::random(2, 3, 3, 2);
        let c = concat_channels(&[&a, &b]);
        assert_eq!(c.crop(0, 3, 0, 3).data()[..9], a.data()[..]);
    }

    #[test]
    #[should_panic(expected = "spatial mismatch")]
    fn concat_spatial_mismatch_panics() {
        concat_channels(&[&Tensor::zeros(1, 2, 2), &Tensor::zeros(1, 3, 3)]);
    }

    #[test]
    fn add_sums_elementwise() {
        let a = Tensor::filled(1, 2, 2, 1.5);
        let b = Tensor::filled(1, 2, 2, 2.5);
        let s = add(&[&a, &b]);
        assert!(s.data().iter().all(|&v| v == 4.0));
    }

    #[test]
    fn add_three_way() {
        let t = Tensor::filled(1, 1, 1, 1.0);
        let s = add(&[&t, &t, &t]);
        assert_eq!(s.get(0, 0, 0), 3.0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_shape_mismatch_panics() {
        add(&[&Tensor::zeros(1, 2, 2), &Tensor::zeros(2, 2, 2)]);
    }

    #[test]
    #[should_panic(expected = "zero tensors")]
    fn empty_concat_panics() {
        concat_channels(&[]);
    }
}
