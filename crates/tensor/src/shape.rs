//! Shape arithmetic shared by the operator implementations and by the
//! graph-level shape inference in `d3-model`.

use std::fmt;

/// The shape of a 3-D feature-map tensor in CHW order
/// (channels × height × width).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape3 {
    /// Number of channels (depth `D` in the paper's notation).
    pub c: usize,
    /// Spatial height `H`.
    pub h: usize,
    /// Spatial width `W`.
    pub w: usize,
}

impl Shape3 {
    /// Creates a new shape.
    pub const fn new(c: usize, h: usize, w: usize) -> Self {
        Self { c, h, w }
    }

    /// Total number of elements.
    pub const fn len(&self) -> usize {
        self.c * self.h * self.w
    }

    /// Returns `true` when the shape contains no elements.
    pub const fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size in bytes of an `f32` tensor of this shape.
    pub const fn byte_size(&self) -> usize {
        self.len() * 4
    }
}

impl fmt::Display for Shape3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.c, self.h, self.w)
    }
}

impl From<(usize, usize, usize)> for Shape3 {
    fn from((c, h, w): (usize, usize, usize)) -> Self {
        Self::new(c, h, w)
    }
}

/// Output spatial dimension of a convolution:
/// `(in - kernel + 2*pad) / stride + 1` (Eq. (3) of the paper).
///
/// # Panics
///
/// Panics if the configuration produces no output (kernel larger than the
/// padded input) or if `stride == 0`.
pub fn conv_out_dim(input: usize, kernel: usize, stride: usize, pad: usize) -> usize {
    assert!(stride > 0, "stride must be positive");
    let padded = input + 2 * pad;
    assert!(
        padded >= kernel,
        "kernel {kernel} larger than padded input {padded}"
    );
    (padded - kernel) / stride + 1
}

/// Output spatial dimension of a pooling window. Pooling uses the same
/// arithmetic as convolution; kept separate for call-site clarity.
pub fn pool_out_dim(input: usize, kernel: usize, stride: usize, pad: usize) -> usize {
    conv_out_dim(input, kernel, stride, pad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_len_and_bytes() {
        let s = Shape3::new(3, 224, 224);
        assert_eq!(s.len(), 3 * 224 * 224);
        assert_eq!(s.byte_size(), 3 * 224 * 224 * 4);
        assert!(!s.is_empty());
        assert!(Shape3::new(0, 5, 5).is_empty());
    }

    #[test]
    fn display_roundtrip() {
        assert_eq!(Shape3::new(64, 112, 112).to_string(), "64x112x112");
    }

    #[test]
    fn conv_dim_same_padding() {
        // 3x3 kernel, stride 1, pad 1 keeps the dimension.
        assert_eq!(conv_out_dim(224, 3, 1, 1), 224);
    }

    #[test]
    fn conv_dim_stride_two() {
        assert_eq!(conv_out_dim(224, 3, 2, 1), 112);
        // AlexNet conv1: 11x11 stride 4 pad 2 on 224 -> 55.
        assert_eq!(conv_out_dim(224, 11, 4, 2), 55);
    }

    #[test]
    fn conv_dim_no_padding() {
        assert_eq!(conv_out_dim(8, 3, 1, 0), 6);
        assert_eq!(conv_out_dim(8, 8, 1, 0), 1);
    }

    #[test]
    #[should_panic(expected = "kernel")]
    fn conv_dim_kernel_too_large_panics() {
        conv_out_dim(2, 5, 1, 0);
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn conv_dim_zero_stride_panics() {
        conv_out_dim(8, 3, 0, 1);
    }

    #[test]
    fn from_tuple() {
        let s: Shape3 = (1, 2, 3).into();
        assert_eq!(s, Shape3::new(1, 2, 3));
    }
}
