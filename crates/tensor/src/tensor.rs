//! Dense CHW `f32` tensor.

use crate::Shape3;
use rand::distr::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// A dense 3-D `f32` tensor in CHW (channel-major) layout.
///
/// `Tensor` is the unit of data flowing through the reproduction's inference
/// engine: layer inputs, feature maps, and tile crops are all `Tensor`s.
/// Indexing is `(c, y, x)` with row-major spatial layout inside each channel.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Shape3,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a zero-filled tensor.
    pub fn zeros(c: usize, h: usize, w: usize) -> Self {
        Self::filled(c, h, w, 0.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn filled(c: usize, h: usize, w: usize, value: f32) -> Self {
        let shape = Shape3::new(c, h, w);
        Self {
            data: vec![value; shape.len()],
            shape,
        }
    }

    /// Creates a tensor from raw data in CHW order.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != c * h * w`.
    pub fn from_vec(c: usize, h: usize, w: usize, data: Vec<f32>) -> Self {
        let shape = Shape3::new(c, h, w);
        assert_eq!(
            data.len(),
            shape.len(),
            "data length {} does not match shape {}",
            data.len(),
            shape
        );
        Self { shape, data }
    }

    /// Creates a tensor with uniform random entries in `[-1, 1)`, seeded
    /// deterministically. Used to generate reproducible synthetic inputs
    /// (the paper's ImageNet images are substituted with synthetic tensors;
    /// losslessness is content-independent).
    pub fn random(c: usize, h: usize, w: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let dist = Uniform::new(-1.0f32, 1.0).expect("valid range");
        let shape = Shape3::new(c, h, w);
        let data = (0..shape.len()).map(|_| dist.sample(&mut rng)).collect();
        Self { shape, data }
    }

    /// The tensor's shape as `(c, h, w)`.
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.shape.c, self.shape.h, self.shape.w)
    }

    /// The tensor's shape as a [`Shape3`].
    pub fn shape3(&self) -> Shape3 {
        self.shape
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.shape.c
    }

    /// Spatial height.
    pub fn height(&self) -> usize {
        self.shape.h
    }

    /// Spatial width.
    pub fn width(&self) -> usize {
        self.shape.w
    }

    /// Borrow the underlying data in CHW order.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the underlying data in CHW order.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    #[inline]
    fn index(&self, c: usize, y: usize, x: usize) -> usize {
        debug_assert!(c < self.shape.c && y < self.shape.h && x < self.shape.w);
        (c * self.shape.h + y) * self.shape.w + x
    }

    /// Reads the entry at `(c, y, x)`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) when the coordinates are out of bounds.
    #[inline]
    pub fn get(&self, c: usize, y: usize, x: usize) -> f32 {
        self.data[self.index(c, y, x)]
    }

    /// Writes the entry at `(c, y, x)`.
    #[inline]
    pub fn set(&mut self, c: usize, y: usize, x: usize, value: f32) {
        let i = self.index(c, y, x);
        self.data[i] = value;
    }

    /// Extracts the spatial crop `[y0, y1) × [x0, x1)` across all channels.
    ///
    /// # Panics
    ///
    /// Panics when the crop is empty or exceeds the tensor bounds.
    pub fn crop(&self, y0: usize, y1: usize, x0: usize, x1: usize) -> Tensor {
        assert!(y0 < y1 && x0 < x1, "empty crop [{y0},{y1})x[{x0},{x1})");
        assert!(
            y1 <= self.shape.h && x1 <= self.shape.w,
            "crop [{y0},{y1})x[{x0},{x1}) exceeds tensor {}",
            self.shape
        );
        let (ch, cw) = (y1 - y0, x1 - x0);
        let mut out = Tensor::zeros(self.shape.c, ch, cw);
        for c in 0..self.shape.c {
            for y in 0..ch {
                let src = self.index(c, y0 + y, x0);
                let dst = (c * ch + y) * cw;
                out.data[dst..dst + cw].copy_from_slice(&self.data[src..src + cw]);
            }
        }
        out
    }

    /// Copies `src` into this tensor so that `src`'s `(0, 0)` lands at
    /// `(y0, x0)`. Channel counts must match. Used to merge tile outputs.
    ///
    /// # Panics
    ///
    /// Panics when shapes are incompatible.
    pub fn paste(&mut self, src: &Tensor, y0: usize, x0: usize) {
        assert_eq!(src.shape.c, self.shape.c, "channel mismatch in paste");
        assert!(
            y0 + src.shape.h <= self.shape.h && x0 + src.shape.w <= self.shape.w,
            "paste of {} at ({y0},{x0}) exceeds target {}",
            src.shape,
            self.shape
        );
        for c in 0..self.shape.c {
            for y in 0..src.shape.h {
                let dst = self.index(c, y0 + y, x0);
                let s = (c * src.shape.h + y) * src.shape.w;
                self.data[dst..dst + src.shape.w].copy_from_slice(&src.data[s..s + src.shape.w]);
            }
        }
    }

    /// Flattens the tensor to a `(len, 1, 1)` vector tensor, the layout
    /// expected by fully-connected layers.
    pub fn flatten(&self) -> Tensor {
        Tensor::from_vec(self.shape.len(), 1, 1, self.data.clone())
    }

    /// Sum of all entries (deterministic left-to-right accumulation).
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({})", self.shape)?;
        if self.shape.len() <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_filled() {
        let t = Tensor::zeros(2, 3, 4);
        assert_eq!(t.shape(), (2, 3, 4));
        assert!(t.data().iter().all(|&v| v == 0.0));
        let f = Tensor::filled(1, 1, 1, 2.5);
        assert_eq!(f.get(0, 0, 0), 2.5);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut t = Tensor::zeros(2, 3, 4);
        t.set(1, 2, 3, 7.0);
        assert_eq!(t.get(1, 2, 3), 7.0);
        assert_eq!(t.get(0, 0, 0), 0.0);
    }

    #[test]
    fn chw_layout() {
        // data index = (c*h + y)*w + x
        let t = Tensor::from_vec(2, 2, 2, (0..8).map(|i| i as f32).collect());
        assert_eq!(t.get(0, 0, 0), 0.0);
        assert_eq!(t.get(0, 0, 1), 1.0);
        assert_eq!(t.get(0, 1, 0), 2.0);
        assert_eq!(t.get(1, 0, 0), 4.0);
        assert_eq!(t.get(1, 1, 1), 7.0);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_wrong_len_panics() {
        Tensor::from_vec(1, 2, 2, vec![0.0; 5]);
    }

    #[test]
    fn random_is_deterministic() {
        let a = Tensor::random(3, 8, 8, 42);
        let b = Tensor::random(3, 8, 8, 42);
        assert_eq!(a, b);
        let c = Tensor::random(3, 8, 8, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn crop_extracts_expected_region() {
        let t = Tensor::from_vec(1, 4, 4, (0..16).map(|i| i as f32).collect());
        let c = t.crop(1, 3, 2, 4);
        assert_eq!(c.shape(), (1, 2, 2));
        assert_eq!(c.get(0, 0, 0), 6.0);
        assert_eq!(c.get(0, 0, 1), 7.0);
        assert_eq!(c.get(0, 1, 0), 10.0);
        assert_eq!(c.get(0, 1, 1), 11.0);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn crop_out_of_bounds_panics() {
        Tensor::zeros(1, 4, 4).crop(0, 5, 0, 2);
    }

    #[test]
    fn paste_then_crop_roundtrip() {
        let src = Tensor::random(2, 3, 3, 7);
        let mut dst = Tensor::zeros(2, 8, 8);
        dst.paste(&src, 2, 4);
        assert_eq!(dst.crop(2, 5, 4, 7), src);
    }

    #[test]
    fn flatten_preserves_data() {
        let t = Tensor::random(2, 3, 4, 1);
        let f = t.flatten();
        assert_eq!(f.shape(), (24, 1, 1));
        assert_eq!(f.data(), t.data());
    }

    #[test]
    fn sum_is_total() {
        let t = Tensor::filled(2, 2, 2, 0.5);
        assert!((t.sum() - 4.0).abs() < 1e-6);
    }
}
