//! Tile views of a global feature map.
//!
//! The vertical separation module assigns each edge node a *crop* of the
//! layer-`c1` input feature maps (a "fused tile", paper §III-F). During
//! tile execution a convolution at a global border must still see the
//! layer's zero padding, while interior tile borders must **not** be
//! padded — otherwise results diverge from whole-tensor inference (this is
//! precisely the DeepThings precision-loss issue the paper fixes).
//!
//! [`Patch`] encodes these semantics: it is a tensor plus the global
//! coordinate of its top-left corner and the global feature-map size.
//! Reads outside the *global* extent return the padding value `0.0`; reads
//! inside the global extent but outside the patch indicate an RTC bug and
//! panic in debug builds.

use crate::Tensor;

/// A half-open spatial rectangle `[y0, y1) × [x0, x1)` in global feature-map
/// coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Region {
    /// Inclusive top row.
    pub y0: usize,
    /// Exclusive bottom row.
    pub y1: usize,
    /// Inclusive left column.
    pub x0: usize,
    /// Exclusive right column.
    pub x1: usize,
}

impl Region {
    /// Creates a region; panics if empty or inverted.
    pub fn new(y0: usize, y1: usize, x0: usize, x1: usize) -> Self {
        assert!(y0 < y1 && x0 < x1, "empty region [{y0},{y1})x[{x0},{x1})");
        Self { y0, y1, x0, x1 }
    }

    /// Region covering an entire `h × w` plane.
    pub fn full(h: usize, w: usize) -> Self {
        Self::new(0, h, 0, w)
    }

    /// Height of the region.
    pub fn height(&self) -> usize {
        self.y1 - self.y0
    }

    /// Width of the region.
    pub fn width(&self) -> usize {
        self.x1 - self.x0
    }

    /// Number of spatial positions covered.
    pub fn area(&self) -> usize {
        self.height() * self.width()
    }

    /// Whether `other` is fully contained in `self`.
    pub fn contains(&self, other: &Region) -> bool {
        self.y0 <= other.y0 && other.y1 <= self.y1 && self.x0 <= other.x0 && other.x1 <= self.x1
    }

    /// Whether the two regions share any position.
    pub fn intersects(&self, other: &Region) -> bool {
        self.y0 < other.y1 && other.y0 < self.y1 && self.x0 < other.x1 && other.x0 < self.x1
    }
}

/// A crop of a global `C × gh × gw` feature map, carrying enough metadata to
/// execute border-correct tiled convolutions.
#[derive(Debug, Clone, PartialEq)]
pub struct Patch {
    data: Tensor,
    /// Global row of `data`'s first row.
    y0: usize,
    /// Global column of `data`'s first column.
    x0: usize,
    /// Height of the global feature map this patch was cut from.
    global_h: usize,
    /// Width of the global feature map this patch was cut from.
    global_w: usize,
}

impl Patch {
    /// Wraps a whole feature map as a patch at offset `(0, 0)`.
    pub fn whole(data: Tensor) -> Self {
        let (_, h, w) = data.shape();
        Self {
            data,
            y0: 0,
            x0: 0,
            global_h: h,
            global_w: w,
        }
    }

    /// Cuts the patch covering `region` out of the global feature map
    /// `full`.
    ///
    /// # Panics
    ///
    /// Panics when `region` exceeds the bounds of `full`.
    pub fn from_global(full: &Tensor, region: Region) -> Self {
        let (_, h, w) = full.shape();
        assert!(
            region.y1 <= h && region.x1 <= w,
            "region {region:?} exceeds global {h}x{w}"
        );
        Self {
            data: full.crop(region.y0, region.y1, region.x0, region.x1),
            y0: region.y0,
            x0: region.x0,
            global_h: h,
            global_w: w,
        }
    }

    /// Builds a patch from an already-cropped tensor plus placement
    /// metadata. `global` is the `(h, w)` of the full feature map.
    pub fn from_parts(data: Tensor, y0: usize, x0: usize, global: (usize, usize)) -> Self {
        let (_, h, w) = data.shape();
        assert!(
            y0 + h <= global.0 && x0 + w <= global.1,
            "patch {h}x{w} at ({y0},{x0}) exceeds global {}x{}",
            global.0,
            global.1
        );
        Self {
            data,
            y0,
            x0,
            global_h: global.0,
            global_w: global.1,
        }
    }

    /// The tensor holding the patch's values.
    pub fn tensor(&self) -> &Tensor {
        &self.data
    }

    /// Consumes the patch, returning its tensor.
    pub fn into_tensor(self) -> Tensor {
        self.data
    }

    /// The region of the global plane this patch covers.
    pub fn region(&self) -> Region {
        Region::new(
            self.y0,
            self.y0 + self.data.height(),
            self.x0,
            self.x0 + self.data.width(),
        )
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.data.channels()
    }

    /// Global `(h, w)` of the feature map this patch belongs to.
    pub fn global_size(&self) -> (usize, usize) {
        (self.global_h, self.global_w)
    }

    /// Reads the value at *global* coordinate `(c, gy, gx)` where the
    /// coordinates may range over the padded plane
    /// `[-pad, global + pad)`. Out-of-global positions read as `0.0`
    /// (zero padding); positions inside the global plane must be covered
    /// by the patch.
    ///
    /// `gy`/`gx` are signed to allow padding positions.
    #[inline]
    pub fn get_global(&self, c: usize, gy: isize, gx: isize) -> f32 {
        if gy < 0 || gx < 0 || gy as usize >= self.global_h || gx as usize >= self.global_w {
            return 0.0; // zero padding outside the global plane
        }
        let (gy, gx) = (gy as usize, gx as usize);
        debug_assert!(
            gy >= self.y0
                && gy < self.y0 + self.data.height()
                && gx >= self.x0
                && gx < self.x0 + self.data.width(),
            "global read ({gy},{gx}) outside patch region {:?} — RTC under-provisioned",
            self.region()
        );
        self.data.get(c, gy - self.y0, gx - self.x0)
    }

    /// Whether the patch covers all input positions inside the global plane
    /// that intersect `needed` (positions of `needed` outside the plane are
    /// padding and need no coverage).
    pub fn covers_clamped(&self, needed: &Region) -> bool {
        let clamped = Region {
            y0: needed.y0,
            y1: needed.y1.min(self.global_h),
            x0: needed.x0,
            x1: needed.x1.min(self.global_w),
        };
        self.region().contains(&clamped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_accessors() {
        let r = Region::new(1, 4, 2, 8);
        assert_eq!(r.height(), 3);
        assert_eq!(r.width(), 6);
        assert_eq!(r.area(), 18);
    }

    #[test]
    #[should_panic(expected = "empty region")]
    fn empty_region_panics() {
        Region::new(3, 3, 0, 1);
    }

    #[test]
    fn region_contains_and_intersects() {
        let outer = Region::new(0, 10, 0, 10);
        let inner = Region::new(2, 5, 3, 7);
        assert!(outer.contains(&inner));
        assert!(!inner.contains(&outer));
        assert!(outer.intersects(&inner));
        let disjoint = Region::new(0, 2, 0, 2);
        assert!(!disjoint.intersects(&Region::new(2, 4, 2, 4)));
        assert!(disjoint.intersects(&Region::new(1, 4, 1, 4)));
    }

    #[test]
    fn whole_patch_reads_like_tensor() {
        let t = Tensor::random(2, 5, 5, 3);
        let p = Patch::whole(t.clone());
        assert_eq!(p.get_global(1, 2, 3), t.get(1, 2, 3));
        assert_eq!(p.region(), Region::full(5, 5));
    }

    #[test]
    fn padding_reads_zero() {
        let p = Patch::whole(Tensor::filled(1, 3, 3, 9.0));
        assert_eq!(p.get_global(0, -1, 0), 0.0);
        assert_eq!(p.get_global(0, 0, -1), 0.0);
        assert_eq!(p.get_global(0, 3, 0), 0.0);
        assert_eq!(p.get_global(0, 0, 3), 0.0);
        assert_eq!(p.get_global(0, 1, 1), 9.0);
    }

    #[test]
    fn from_global_reads_global_coords() {
        let t = Tensor::from_vec(1, 4, 4, (0..16).map(|i| i as f32).collect());
        let p = Patch::from_global(&t, Region::new(1, 3, 1, 4));
        assert_eq!(p.get_global(0, 1, 1), 5.0);
        assert_eq!(p.get_global(0, 2, 3), 11.0);
        // Global padding is still visible from a patch touching the border.
        assert_eq!(p.get_global(0, 1, 4), 0.0);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn uncovered_interior_read_panics() {
        let t = Tensor::zeros(1, 4, 4);
        let p = Patch::from_global(&t, Region::new(0, 2, 0, 2));
        // (3,3) is inside the global plane but not in the patch.
        p.get_global(0, 3, 3);
    }

    #[test]
    fn covers_clamped_handles_padding_overhang() {
        let t = Tensor::zeros(1, 4, 4);
        let p = Patch::from_global(&t, Region::new(1, 4, 0, 3));
        // Receptive field of a border tile can extend past the plane; the
        // overhang is padding and does not need patch coverage.
        assert!(p.covers_clamped(&Region::new(1, 5, 0, 3)));
        assert!(!p.covers_clamped(&Region::new(0, 4, 0, 3)));
    }
}
