//! Synchronisation primitives behind the `model` feature seam.
//!
//! Interleaving-critical state in this crate takes its `Mutex` and
//! atomics from here instead of `std::sync`. Without the `model` feature
//! these re-exports *are* the std types, so the seam costs nothing in
//! release builds. With `model` they are the [`loomlite`] shims: outside
//! a model execution they pass through to std (regular tests behave
//! identically), inside one every operation yields to the model
//! scheduler, letting `cargo test --features model` exhaustively explore
//! thread interleavings over the same code the release path runs.

#[cfg(feature = "model")]
pub(crate) use loomlite::sync::{Mutex, MutexGuard};
#[cfg(not(feature = "model"))]
pub(crate) use std::sync::{Mutex, MutexGuard};

pub(crate) mod atomic {
    //! Atomic shims: std's, or loomlite's under the `model` feature.
    #[cfg(feature = "model")]
    pub(crate) use loomlite::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
    #[cfg(not(feature = "model"))]
    pub(crate) use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
}

/// Locks `mutex`, recovering the data from a poisoned lock.
///
/// Every lock in this crate guards plain state (counters, buffers,
/// sample windows) whose invariants hold between any two operations, so
/// a panic on another thread never leaves the data half-updated in a way
/// later readers could misread — propagating the poison would only turn
/// one failure into a cascade across unrelated threads.
pub(crate) fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}
