//! The unified observation surface of the adaptation loop.
//!
//! The paper's profiler "collects the operating conditions of computation
//! nodes … as well as the network status" while the system runs (§III-B),
//! and the decomposer re-partitions when those observations drift
//! (§III-E). This module defines the **one** currency every observation
//! source speaks — [`Observation`] — so the adaptive controller
//! ([`crate::adapt::AdaptiveEngine`]) does not care whether a measurement
//! came from:
//!
//! - **a live stream** — every stage worker of a
//!   [`StreamPipeline`](crate::stream::StreamPipeline) periodically
//!   publishes a [`TelemetrySnapshot`] (measured stage compute time and
//!   ingress queue depth) over a bounded channel, consumable mid-stream
//!   through a [`TelemetryTap`]. Telemetry is a property of the
//!   *pipeline*, not of any one session: with multiplexed sessions
//!   ([`crate::stream`]) the stage workers see the merged frame flow,
//!   so snapshots — and the adaptation decisions they drive — reflect
//!   aggregate traffic, while per-session accounting lives in
//!   [`SessionStats`](crate::stream::SessionStats);
//! - **the pipeline simulator** — [`predicted_observations`] renders a
//!   deployment's predicted [`StageSpec`]s in the same shape, so a
//!   controller can be driven by simulation and by measurement
//!   interchangeably (and tests can assert both paths agree);
//! - **the profiler** — [`profile_observations`] runs the measurement
//!   campaign of [`d3_profiler::Profiler`] over every tier and emits
//!   per-vertex timings;
//! - **out-of-band probes** — bandwidth estimates or injected drift enter
//!   as [`Observation::Network`] (the simulated observations the old
//!   `observe_vertex`/`observe_network` methods took are now just
//!   [`Observation::VertexTime`]/[`Observation::Network`] values).
//!
//! Shared sim/real observation model: simulated sources report *model*
//! seconds (the cost model's units) and live stages report *wall-clock*
//! seconds. The controller therefore treats stage timings as a
//! **relative** signal — it calibrates an anchor from the first snapshot
//! and reacts to drift ratios — so the two unit systems never need to be
//! reconciled; per-vertex and network observations carry their own
//! absolute semantics.

use crate::pipeline::StageSpec;
use crossbeam::channel::Receiver;
use d3_model::{DnnGraph, NodeId};
use d3_profiler::Profiler;
use d3_simnet::{NetworkCondition, Tier, TierProfiles};

/// One observed fact about the running system — the single unit of
/// telemetry every source emits and the adaptive controller ingests.
#[derive(Debug, Clone, PartialEq)]
pub enum Observation {
    /// Measured processing time of one vertex on one tier (the profiler's
    /// native output, and the paper's per-layer drift trigger).
    VertexTime {
        /// The vertex measured.
        vertex: NodeId,
        /// The tier it ran on.
        tier: Tier,
        /// Measured seconds.
        seconds: f64,
    },
    /// Measured compute seconds per frame of a whole tier segment — what
    /// a resident stream stage can observe without instrumenting each
    /// member (interpreted *relatively*, see the module docs).
    StageTime {
        /// The stage's tier.
        tier: Tier,
        /// Mean compute seconds per frame over the window.
        seconds_per_frame: f64,
        /// Frames in the averaging window.
        frames: u64,
    },
    /// Observed (or injected) network condition — per-link bandwidth.
    Network {
        /// The new condition.
        net: NetworkCondition,
    },
    /// Ingress queue depth of a pipeline stage at snapshot time: the
    /// congestion signal queue-aware policies (e.g. the pool autoscaler
    /// `AutoscalePolicy`) act on.
    QueueDepth {
        /// The stage's tier.
        tier: Tier,
        /// Messages waiting in the stage's ingress queue (individual
        /// frames, or whole batches when the batching front-end is on).
        depth: usize,
    },
}

/// A batch of observations published together (one emission window of a
/// telemetry source).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TelemetrySnapshot {
    /// The window's observations.
    pub observations: Vec<Observation>,
}

/// The consumer end of a live telemetry stream: periodic
/// [`TelemetrySnapshot`]s over a bounded channel. When no one drains the
/// tap, producers drop snapshots instead of blocking or buffering
/// unboundedly — telemetry never backpressures the data path.
///
/// Obtained from `StreamSession::telemetry` (or
/// `StreamPipeline::telemetry`). Intended for a single consumer: clones
/// share one queue, so two taps *steal* from each other rather than each
/// seeing every snapshot.
pub struct TelemetryTap {
    pub(crate) rx: Receiver<TelemetrySnapshot>,
}

impl std::fmt::Debug for TelemetryTap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryTap")
            .field("queued", &self.rx.len())
            .finish()
    }
}

impl TelemetryTap {
    /// Returns the next pending snapshot, if any (never blocks).
    #[must_use]
    pub fn try_recv(&self) -> Option<TelemetrySnapshot> {
        self.rx.try_recv().ok()
    }

    /// Drains every pending snapshot.
    #[must_use]
    pub fn drain(&self) -> Vec<TelemetrySnapshot> {
        let mut out = Vec::new();
        while let Ok(snap) = self.rx.try_recv() {
            out.push(snap);
        }
        out
    }

    /// Snapshots currently queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rx.len()
    }

    /// Whether no snapshot is queued right now.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rx.is_empty()
    }
}

/// Runs the profiler's measurement campaign (noisy per-layer latency on
/// every tier, seeded and deterministic) and emits the result as
/// [`Observation::VertexTime`]s — the same currency a live stream or a
/// bandwidth probe feeds the controller.
#[must_use]
pub fn profile_observations(
    graph: &DnnGraph,
    profiles: &TierProfiles,
    noise_sigma: f64,
    seed: u64,
) -> Vec<Observation> {
    let nodes = [
        (Tier::Device, &profiles.device),
        (Tier::Edge, &profiles.edge),
        (Tier::Cloud, &profiles.cloud),
    ];
    let mut out = Vec::new();
    for (tier, node) in nodes {
        let mut profiler = Profiler::new(node.clone(), noise_sigma, seed ^ tier.rank() as u64);
        for id in graph.layer_ids() {
            let sample = profiler.measure(graph, id);
            out.push(Observation::VertexTime {
                vertex: sample.vertex,
                tier,
                seconds: sample.latency_s,
            });
        }
    }
    out
}

/// Renders a deployment's predicted stage specs as the same
/// [`TelemetrySnapshot`] a live pipeline emits: one
/// [`Observation::StageTime`] per tier, carrying the *model's* per-frame
/// service time. Driving a controller with these snapshots simulates the
/// measured feedback loop ahead of deployment.
#[must_use]
pub fn predicted_observations(stages: &[StageSpec], frames: u64) -> TelemetrySnapshot {
    TelemetrySnapshot {
        observations: Tier::ALL
            .iter()
            .zip(stages)
            .map(|(tier, spec)| Observation::StageTime {
                tier: *tier,
                seconds_per_frame: spec.service_s,
                frames,
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use d3_model::zoo;

    #[test]
    fn profile_observations_cover_every_layer_and_tier() {
        let g = zoo::alexnet(224);
        let obs = profile_observations(&g, &TierProfiles::paper_testbed(), 0.0, 7);
        assert_eq!(obs.len(), 3 * (g.len() - 1));
        // Noiseless profiling equals the cost model exactly.
        let profiles = TierProfiles::paper_testbed();
        for o in &obs {
            let Observation::VertexTime {
                vertex,
                tier,
                seconds,
            } = o
            else {
                panic!("profiler emits vertex timings");
            };
            let node = match tier {
                Tier::Device => &profiles.device,
                Tier::Edge => &profiles.edge,
                Tier::Cloud => &profiles.cloud,
            };
            assert!((seconds - node.layer_latency(&g, *vertex)).abs() < 1e-15);
        }
    }

    #[test]
    fn predicted_observations_mirror_stage_specs() {
        let stages = vec![
            StageSpec {
                name: "device".into(),
                service_s: 0.010,
                transfer_out_s: 0.001,
            },
            StageSpec {
                name: "edge".into(),
                service_s: 0.020,
                transfer_out_s: 0.002,
            },
            StageSpec {
                name: "cloud".into(),
                service_s: 0.005,
                transfer_out_s: 0.0,
            },
        ];
        let snap = predicted_observations(&stages, 30);
        assert_eq!(snap.observations.len(), 3);
        assert_eq!(
            snap.observations[1],
            Observation::StageTime {
                tier: Tier::Edge,
                seconds_per_frame: 0.020,
                frames: 30
            }
        );
    }
}
