//! Functional distributed execution: threads + channels + wire codec.
//!
//! This is the *functional* half of the online execution engine (the
//! latency half is the discrete-event pipeline). One thread per computing
//! tier executes its HPA segment on real tensors with real weights;
//! inter-tier tensors travel through channels in the wire format —
//! mirroring the paper's gRPC deployment (§IV). The edge thread can run
//! its tileable layer runs through VSM's parallel tile executor.
//!
//! Its purpose is to prove, end to end, the paper's *lossless* claim:
//! partitioned (and tiled) distributed inference produces bit-identical
//! outputs to single-node inference.

use crate::deploy::VsmConfig;
use crate::wire;
use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, Sender};
use d3_model::{crossing_tensors, walk_segment, DnnGraph, Executor, NodeId};
use d3_partition::Assignment;
use d3_simnet::Tier;
use d3_tensor::Tensor;
use d3_vsm::TiledRuns;
use std::collections::HashMap;

/// A tensor crossing tiers: producer vertex plus encoded payload.
type WireMsg = (NodeId, Bytes);

/// Why a distributed run failed to produce the output tensor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DistributedError {
    /// A tier worker thread panicked mid-run.
    WorkerPanicked,
    /// An inter-tier channel closed before the run finished — a peer
    /// exited early, so the tensors this tier waits for never arrive.
    Disconnected,
    /// An inter-tier frame failed to decode.
    Frame(wire::WireError),
    /// All workers exited cleanly yet nobody produced the output.
    NoOutput,
}

impl std::fmt::Display for DistributedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistributedError::WorkerPanicked => write!(f, "tier worker panicked"),
            DistributedError::Disconnected => write!(f, "inter-tier channel closed early"),
            DistributedError::Frame(e) => write!(f, "corrupt inter-tier frame: {e}"),
            DistributedError::NoOutput => write!(f, "no tier produced the output tensor"),
        }
    }
}

impl std::error::Error for DistributedError {}

/// Executes `graph` distributed across device/edge/cloud threads
/// according to `assignment`, returning the network output. With `vsm`,
/// the edge thread runs its tileable layer runs tile-parallel.
///
/// # Errors
///
/// Fails when a worker panics, an inter-tier frame is corrupt, or the
/// tier topology never routes the output tensor anywhere — each of
/// which indicates a partitioning bug rather than a transient fault.
///
/// # Panics
///
/// Panics when the input shape mismatches the graph or the graph has
/// more than one output.
pub fn run_distributed(
    graph: &DnnGraph,
    seed: u64,
    assignment: &Assignment,
    vsm: Option<VsmConfig>,
    input: &Tensor,
) -> Result<Tensor, DistributedError> {
    assert_eq!(input.shape3(), graph.input_shape(), "input shape mismatch");
    let output_node = {
        let outs = graph.outputs();
        assert_eq!(outs.len(), 1, "single-output graphs only");
        outs[0]
    };

    // One inbound channel per tier; upstream tiers clone the senders.
    // Bounded at one slot per graph vertex: a tier never sends more than
    // one message per crossing tensor (≤ one per vertex), so the bound
    // can never be hit — it exists to keep the engine's "bounded
    // channels only" invariant checkable rather than to apply
    // backpressure.
    let slots = graph.nodes().len().max(1);
    let (tx_edge, rx_edge) = bounded::<WireMsg>(slots);
    let (tx_cloud, rx_cloud) = bounded::<WireMsg>(slots);
    let (tx_result, rx_result) = bounded::<Bytes>(1);
    // First worker error wins; one slot per tier can never block.
    let (tx_err, rx_err) = bounded::<DistributedError>(Tier::ALL.len());

    // How many crossing tensors each tier must wait for.
    let mut expected = [0usize; 3];
    for node in graph.nodes() {
        let from = assignment.tier(node.id);
        let mut dests: Vec<Tier> = node
            .succs
            .iter()
            .map(|s| assignment.tier(*s))
            .filter(|t| *t != from)
            .collect();
        dests.sort();
        dests.dedup();
        for d in dests {
            expected[d.rank()] += 1;
        }
    }

    crossbeam::thread::scope(|scope| {
        for tier in Tier::ALL {
            let rx: Option<Receiver<WireMsg>> = match tier {
                Tier::Device => None,
                Tier::Edge => Some(rx_edge.clone()),
                Tier::Cloud => Some(rx_cloud.clone()),
            };
            let senders: Vec<(Tier, Sender<WireMsg>)> = match tier {
                Tier::Device => vec![
                    (Tier::Edge, tx_edge.clone()),
                    (Tier::Cloud, tx_cloud.clone()),
                ],
                Tier::Edge => vec![(Tier::Cloud, tx_cloud.clone())],
                Tier::Cloud => vec![],
            };
            let tx_result = tx_result.clone();
            let tx_err = tx_err.clone();
            let expect = expected[tier.rank()];
            scope.spawn(move |_| {
                if let Err(e) = tier_worker(
                    graph,
                    seed,
                    assignment,
                    tier,
                    vsm,
                    input,
                    rx,
                    expect,
                    senders,
                    output_node,
                    tx_result,
                ) {
                    let _ = tx_err.try_send(e);
                }
            });
        }
        drop((tx_edge, tx_cloud, tx_result, tx_err));
    })
    .map_err(|_| DistributedError::WorkerPanicked)?;

    // The scope joined every worker, so whatever was produced is
    // already buffered in the (bounded, never-full) channels.
    match rx_result.try_recv() {
        Ok(bytes) => wire::decode(bytes).map_err(DistributedError::Frame),
        Err(_) => Err(rx_err.try_recv().unwrap_or(DistributedError::NoOutput)),
    }
}

#[allow(clippy::too_many_arguments)]
fn tier_worker(
    graph: &DnnGraph,
    seed: u64,
    assignment: &Assignment,
    tier: Tier,
    vsm: Option<VsmConfig>,
    input: &Tensor,
    rx: Option<Receiver<WireMsg>>,
    expect: usize,
    senders: Vec<(Tier, Sender<WireMsg>)>,
    output_node: NodeId,
    tx_result: Sender<Bytes>,
) -> Result<(), DistributedError> {
    let exec = Executor::new(graph, seed);
    let members = assignment.segment(tier);
    // Collect boundary tensors.
    let mut boundary: HashMap<NodeId, Tensor> = HashMap::new();
    if tier == Tier::Device {
        boundary.insert(graph.input(), input.clone());
    }
    if let Some(rx) = rx {
        for _ in 0..expect {
            let (id, bytes) = rx.recv().map_err(|_| DistributedError::Disconnected)?;
            let tensor = wire::decode(bytes).map_err(DistributedError::Frame)?;
            boundary.insert(id, tensor);
        }
    }
    if members.is_empty() || (tier == Tier::Device && members.len() == 1 && expect == 0) {
        // Tier runs nothing but may still need to forward the raw input.
    }
    let outputs = execute_segment(&exec, graph, &members, &boundary, tier, vsm);
    // Route crossing tensors (once per destination tier).
    for (id, tensor) in &outputs {
        let node = graph.node(*id);
        let mut dests: Vec<Tier> = node
            .succs
            .iter()
            .map(|s| assignment.tier(*s))
            .filter(|t| t != &tier)
            .collect();
        dests.sort();
        dests.dedup();
        for d in dests {
            if let Some((_, tx)) = senders.iter().find(|(t, _)| *t == d) {
                tx.send((*id, wire::encode(tensor)))
                    .map_err(|_| DistributedError::Disconnected)?;
            }
        }
        if *id == output_node {
            tx_result
                .send(wire::encode(tensor))
                .map_err(|_| DistributedError::Disconnected)?;
        }
    }
    Ok(())
}

/// Executes a tier's members, optionally accelerating tileable runs with
/// the VSM tile executor (edge tier only). Returns the same
/// crossing-tensor map as [`Executor::run_segment`]. The tile-run rules
/// (grid clamp, plan-rejection serial fallback, interior skipping) are
/// the shared [`TiledRuns`]; the streaming edge stage (`VsmStage` in
/// [`crate::stream`]) uses the identical helper with prebuilt operators.
fn execute_segment(
    exec: &Executor<'_>,
    graph: &DnnGraph,
    members: &[NodeId],
    boundary: &HashMap<NodeId, Tensor>,
    tier: Tier,
    vsm: Option<VsmConfig>,
) -> HashMap<NodeId, Tensor> {
    let cfg = match (tier, vsm) {
        (Tier::Edge, Some(cfg)) => cfg,
        _ => return exec.run_segment(members, boundary),
    };
    let runs = TiledRuns::prepare(exec, members, cfg.grid, cfg.min_run_len);
    if runs.is_empty() {
        return exec.run_segment(members, boundary);
    }
    let mut values: HashMap<NodeId, Tensor> = boundary.clone();
    let mut sorted: Vec<NodeId> = members.to_vec();
    sorted.sort_unstable();
    walk_segment(
        graph,
        &sorted,
        &mut values,
        |id, values| runs.execute(id, values, |rid, inputs| exec.build_op(rid).apply(inputs)),
        |id, inputs| exec.build_op(id).apply(inputs),
    );
    crossing_tensors(graph, &sorted, &values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use d3_partition::{Hpa, Partitioner, Problem};
    use d3_simnet::{NetworkCondition, TierProfiles};
    use d3_tensor::max_abs_diff;

    fn check_model(g: &DnnGraph, seed: u64, vsm: Option<VsmConfig>) {
        let profiles = TierProfiles::paper_testbed();
        let problem = Problem::new(g, &profiles, NetworkCondition::WiFi);
        let assignment = Hpa::paper().partition(&problem).unwrap();
        let shape = g.input_shape();
        let input = Tensor::random(shape.c, shape.h, shape.w, seed);
        let expect = Executor::new(g, seed).run(&input);
        let got = run_distributed(g, seed, &assignment, vsm, &input).unwrap();
        assert_eq!(
            max_abs_diff(&got, &expect),
            Some(0.0),
            "{}: distributed output diverged",
            g.name()
        );
    }

    #[test]
    fn lossless_on_tiny_cnn() {
        let g = d3_model::zoo::tiny_cnn(16);
        check_model(&g, 3, None);
        check_model(&g, 3, Some(VsmConfig::default()));
    }

    #[test]
    fn lossless_on_diamond() {
        let g = d3_model::zoo::diamond_net(16);
        check_model(&g, 5, None);
    }

    #[test]
    fn lossless_with_forced_three_way_split() {
        // Force a specific 3-tier split regardless of what HPA would pick.
        let g = d3_model::zoo::chain_cnn(6, 8, 16);
        let n = g.len();
        let mut tiers = vec![Tier::Device; n];
        for t in tiers.iter_mut().take(5).skip(3) {
            *t = Tier::Edge;
        }
        for t in tiers.iter_mut().take(n).skip(5) {
            *t = Tier::Cloud;
        }
        let a = Assignment::new(tiers);
        let input = Tensor::random(3, 16, 16, 9);
        let expect = Executor::new(&g, 1).run(&input);
        let got = run_distributed(&g, 1, &a, Some(VsmConfig::default()), &input).unwrap();
        assert_eq!(max_abs_diff(&got, &expect), Some(0.0));
    }

    #[test]
    fn lossless_on_random_dags() {
        for seed in 0..4 {
            let g = d3_model::zoo::random_dag(seed, 3, 2, 8);
            check_model(&g, seed, None);
        }
    }
}
