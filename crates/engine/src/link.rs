//! The stage link: real multi-process transport for pipeline stages.
//!
//! The streaming pipeline ([`crate::stream`]) joins its device/edge/
//! cloud stages with in-process bounded channels. This module makes the
//! boundary between two stages an explicit [`Link`] — send/recv of
//! length-prefixed [`LinkMsg`] frames whose tensor payloads are the
//! existing self-describing [`wire`](crate::wire)/[`codec`](crate::codec)
//! encodings — with two implementations:
//!
//! - [`ChannelLink`]: the deterministic in-process path, a pair of
//!   bounded crossbeam channels moving the **same encoded bytes** a
//!   socket would carry (bit-identical framing, pinned by unit tests);
//! - [`SocketLink`]: a real TCP or Unix-domain stream with connect /
//!   accept ([`LinkAddr`], [`LinkListener`]), incremental read pumps
//!   with poll timeouts, and typed [`LinkError`]s instead of panics on
//!   truncated or corrupt input.
//!
//! On top of the link sits the **stage server** ([`StageHost`],
//! [`serve`]): a process hosting one segment of a deployed plan. The
//! client side — the proxy a [`StreamPipeline`](crate::stream::
//! StreamPipeline) spawns in place of a local worker pool when
//! [`RemoteOptions`] selects a remote transport for a tier — sends
//! [`LinkMsg::Batch`] requests and receives [`LinkMsg::Result`] acks,
//! replaying un-acked batches from a [`Retransmit`](crate::flow::
//! Retransmit) window across reconnects so a stage-server crash loses
//! no frames. The retransmit/ack and peer-health state machines
//! themselves live in [`crate::flow`], where the loomlite model checker
//! can exhaust their schedules.
//!
//! Ownership: each link endpoint is owned by exactly one thread — a
//! stage proxy inside the pipeline, or a stage server's accept loop —
//! and [`Link`] is `Send` but deliberately not `Sync`. Multiplexed
//! sessions ([`crate::stream`]) therefore share links *through* the
//! shared pipeline's stage proxies, never directly; frames on the wire
//! carry the pipeline's global dense ids, so the remote side needs no
//! notion of sessions at all.
//!
//! ```
//! use d3_engine::link::{channel_pair, Hello, Link, LinkMsg};
//! use std::time::Duration;
//!
//! let (mut client, mut server) = channel_pair(4);
//! client.send(&LinkMsg::Hello(Hello {
//!     model: "tiny_cnn:16".into(),
//!     seed: 7,
//!     members: vec![0, 1],
//!     needed: vec![0],
//!     forward: vec![1],
//!     output_node: 1,
//!     is_last: true,
//! })).unwrap();
//! let msg = server.recv_timeout(Duration::from_millis(10)).unwrap();
//! assert!(matches!(msg, Some(LinkMsg::Hello(h)) if h.seed == 7));
//! ```

use crate::codec::{self, WireCodec};
use crate::wire::{self, WireError};
use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use d3_model::{DnnGraph, NodeId, SegmentExecutor};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Magic prefix of every link frame (`D3` + "LI NK").
pub const LINK_MAGIC: u32 = 0xD31A_4B01;

/// Upper bound on one frame's body — a corrupt length prefix must not
/// drive a giant allocation.
pub const MAX_FRAME: usize = 64 << 20;

const TAG_HELLO: u8 = 1;
const TAG_BATCH: u8 = 2;
const TAG_RESULT: u8 = 3;

/// How a link operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkError {
    /// The underlying socket or channel reported an I/O error.
    Io(String),
    /// The peer closed or lost the connection.
    Disconnected,
    /// The byte stream held a truncated or corrupt frame.
    Frame(WireError),
    /// The peer spoke a well-formed frame the protocol forbids here
    /// (wrong model, batch before hello, missing output…).
    Protocol(String),
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::Io(e) => write!(f, "link i/o error: {e}"),
            LinkError::Disconnected => write!(f, "link disconnected"),
            LinkError::Frame(e) => write!(f, "bad link frame: {e}"),
            LinkError::Protocol(e) => write!(f, "link protocol error: {e}"),
        }
    }
}

impl std::error::Error for LinkError {}

/// Transport selection for one remote stage: where its stage server
/// listens plus the reconnect/failover knobs of the proxy that talks
/// to it.
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteOptions {
    /// Where the stage server listens.
    pub addr: LinkAddr,
    /// Un-acked batches the proxy keeps in its retransmit window before
    /// backpressuring the upstream stage.
    pub window: usize,
    /// Spacing between reconnect attempts while the peer is down.
    pub retry: Duration,
    /// How long the peer may stay down before the proxy declares it
    /// [`Failed`](crate::flow::PeerStatus::Failed) and the pipeline
    /// surfaces a failover.
    pub deadline: Duration,
}

impl RemoteOptions {
    /// Remote transport over `addr` with an 8-batch window, 20 ms
    /// reconnect spacing and a 2 s failover deadline.
    #[must_use]
    pub fn new(addr: LinkAddr) -> Self {
        Self {
            addr,
            window: 8,
            retry: Duration::from_millis(20),
            deadline: Duration::from_secs(2),
        }
    }

    /// Sets the retransmit window (un-acked batches; min 1).
    #[must_use]
    pub fn window(mut self, window: usize) -> Self {
        self.window = window.max(1);
        self
    }

    /// Sets the reconnect attempt spacing.
    #[must_use]
    pub fn retry(mut self, retry: Duration) -> Self {
        self.retry = retry;
        self
    }

    /// Sets the failover deadline.
    #[must_use]
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = deadline;
        self
    }
}

/// A stage server's address: a Unix-domain socket path or a TCP
/// host:port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkAddr {
    /// Unix-domain socket at this path.
    Uds(PathBuf),
    /// TCP endpoint, `host:port`.
    Tcp(String),
}

impl LinkAddr {
    /// Parses `uds:<path>` or `tcp:<host:port>`.
    #[must_use]
    pub fn parse(s: &str) -> Option<LinkAddr> {
        if let Some(path) = s.strip_prefix("uds:") {
            (!path.is_empty()).then(|| LinkAddr::Uds(PathBuf::from(path)))
        } else if let Some(addr) = s.strip_prefix("tcp:") {
            (!addr.is_empty()).then(|| LinkAddr::Tcp(addr.to_string()))
        } else {
            None
        }
    }

    /// Connects to the stage server at this address.
    ///
    /// # Errors
    ///
    /// [`LinkError::Io`] when the endpoint refuses or is absent.
    pub fn connect(&self) -> Result<SocketLink, LinkError> {
        let stream = match self {
            LinkAddr::Uds(path) => UnixStream::connect(path).map(SocketStream::Uds),
            LinkAddr::Tcp(addr) => TcpStream::connect(addr.as_str()).map(SocketStream::Tcp),
        }
        .map_err(|e| LinkError::Io(e.to_string()))?;
        SocketLink::new(stream)
    }

    /// Binds a listener at this address. A stale Unix socket file from
    /// a previous (crashed) server is removed first.
    ///
    /// # Errors
    ///
    /// [`LinkError::Io`] when the bind fails.
    pub fn listen(&self) -> Result<LinkListener, LinkError> {
        let listener = match self {
            LinkAddr::Uds(path) => {
                let _ = std::fs::remove_file(path);
                UnixListener::bind(path).map(Listener::Uds)
            }
            LinkAddr::Tcp(addr) => TcpListener::bind(addr.as_str()).map(Listener::Tcp),
        }
        .map_err(|e| LinkError::Io(e.to_string()))?;
        match &listener {
            Listener::Uds(l) => l.set_nonblocking(true),
            Listener::Tcp(l) => l.set_nonblocking(true),
        }
        .map_err(|e| LinkError::Io(e.to_string()))?;
        Ok(LinkListener { listener })
    }
}

impl fmt::Display for LinkAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkAddr::Uds(path) => write!(f, "uds:{}", path.display()),
            LinkAddr::Tcp(addr) => write!(f, "tcp:{addr}"),
        }
    }
}

/// One message on a stage link.
#[derive(Debug, Clone, PartialEq)]
pub enum LinkMsg {
    /// Session setup, (re)sent on every connect: which segment of which
    /// model this link drives.
    Hello(Hello),
    /// A batch of frames for the remote stage to execute.
    Batch(WireBatch),
    /// The remote stage's outputs for one batch — and its ack.
    Result(WireBatch),
}

/// Session parameters the client declares on every (re)connect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hello {
    /// The model spec the server must be hosting (see
    /// `d3_model::zoo::by_spec`).
    pub model: String,
    /// Weight seed — identical seeds make recompute-on-replay
    /// bit-identical.
    pub seed: u64,
    /// The segment's member vertices.
    pub members: Vec<u32>,
    /// Boundary vertices the stage decodes from incoming payloads.
    pub needed: Vec<u32>,
    /// Vertices later stages need: forwarded in wire form.
    pub forward: Vec<u32>,
    /// The plan's output vertex.
    pub output_node: u32,
    /// Whether this stage produces final results rather than forwards.
    pub is_last: bool,
}

/// A batch of frames in transport form. Requests carry encoded boundary
/// payloads; results carry either forward payloads (`raw_bytes` /
/// `accuracy_delta` report the server's codec ledger for them) or, for
/// a last stage, the output tensor in raw wire form.
#[derive(Debug, Clone, PartialEq)]
pub struct WireBatch {
    /// Dense id of the first frame — the retransmit/ack key.
    pub first_id: u64,
    /// [`WireCodec`] tag the server must encode forwards with.
    pub codec: u8,
    /// Pre-encoding bytes of the result payloads (codec ledger).
    pub raw_bytes: u64,
    /// Max quantization error the server's encodes introduced.
    pub accuracy_delta: f64,
    /// The frames, ids ascending and dense.
    pub frames: Vec<WireFrame>,
}

/// One frame in transport form: its dense id plus `(vertex, encoded
/// tensor)` payload entries.
#[derive(Debug, Clone, PartialEq)]
pub struct WireFrame {
    /// The frame's dense id.
    pub id: u64,
    /// Encoded tensors by vertex.
    pub payload: Vec<(u32, Bytes)>,
}

// ---------------------------------------------------------------------
// Typed node-id ↔ wire-id conversion
// ---------------------------------------------------------------------

/// Why a vertex id cannot cross the wire boundary in either direction.
///
/// Wire messages carry vertex ids as `u32`; the running pipeline uses
/// typed [`NodeId`]s indexing its session graph. Both directions of the
/// mapping are partial — an oversized local index does not fit the wire
/// form, and a wire id from a corrupt or misbehaving peer may name no
/// vertex at all — so every crossing goes through [`node_to_wire`] /
/// [`node_from_wire`] and surfaces this error instead of truncating or
/// fabricating ids with `as` casts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireNodeError {
    /// A local [`NodeId`] index exceeds the wire representation.
    TooLarge {
        /// The unencodable vertex index.
        index: usize,
    },
    /// A wire id names a vertex outside the session graph.
    OutOfRange {
        /// The offending wire id.
        id: u32,
        /// Vertex count of the graph it was validated against.
        nodes: usize,
    },
}

impl fmt::Display for WireNodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireNodeError::TooLarge { index } => {
                write!(f, "vertex index {index} does not fit the u32 wire form")
            }
            WireNodeError::OutOfRange { id, nodes } => {
                write!(
                    f,
                    "wire vertex id {id} out of range for a {nodes}-vertex graph"
                )
            }
        }
    }
}

impl std::error::Error for WireNodeError {}

/// Encodes a typed [`NodeId`] in wire form.
///
/// # Errors
///
/// [`WireNodeError::TooLarge`] when the index exceeds `u32::MAX`.
pub fn node_to_wire(node: NodeId) -> Result<u32, WireNodeError> {
    u32::try_from(node.index()).map_err(|_| WireNodeError::TooLarge {
        index: node.index(),
    })
}

/// Decodes a wire vertex id back into a typed [`NodeId`], validated
/// against a session graph of `nodes` vertices. The inverse of
/// [`node_to_wire`]: for every id accepted here,
/// `node_to_wire(node_from_wire(id, n)?) == Ok(id)`.
///
/// # Errors
///
/// [`WireNodeError::OutOfRange`] when `id` names no vertex of the
/// graph.
pub fn node_from_wire(id: u32, nodes: usize) -> Result<NodeId, WireNodeError> {
    if (id as usize) < nodes {
        Ok(NodeId(id as usize))
    } else {
        Err(WireNodeError::OutOfRange { id, nodes })
    }
}

/// Remaps one wire frame's `(vertex, payload)` entries into typed node
/// ids, validated against a graph of `nodes` vertices — the failover
/// remap the stream proxy applies to every non-final remote result
/// (and the fuzz surface for it).
///
/// # Errors
///
/// The first [`WireNodeError::OutOfRange`] encountered; no partial
/// remap escapes.
pub fn remap_frame_payload(
    wf: &WireFrame,
    nodes: usize,
) -> Result<Vec<(NodeId, Bytes)>, WireNodeError> {
    wf.payload
        .iter()
        .map(|(id, b)| Ok((node_from_wire(*id, nodes)?, b.clone())))
        .collect()
}

/// A bidirectional, message-framed transport between two stages.
pub trait Link: Send {
    /// Sends one message.
    ///
    /// # Errors
    ///
    /// [`LinkError::Disconnected`] when the peer is gone, [`LinkError::
    /// Io`] for other transport failures.
    fn send(&mut self, msg: &LinkMsg) -> Result<(), LinkError>;

    /// Receives the next message, waiting at most `timeout`; `Ok(None)`
    /// on timeout (any partial frame is retained for the next call).
    ///
    /// # Errors
    ///
    /// [`LinkError::Disconnected`] when the peer is gone, [`LinkError::
    /// Frame`] on a corrupt byte stream.
    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<LinkMsg>, LinkError>;
}

// ---------------------------------------------------------------------
// Frame encoding
// ---------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_ids(out: &mut Vec<u8>, ids: &[u32]) {
    put_u32(out, ids.len() as u32);
    for &id in ids {
        put_u32(out, id);
    }
}

fn put_batch(out: &mut Vec<u8>, b: &WireBatch) {
    put_u64(out, b.first_id);
    out.push(b.codec);
    put_u64(out, b.raw_bytes);
    put_u64(out, b.accuracy_delta.to_bits());
    put_u32(out, b.frames.len() as u32);
    for frame in &b.frames {
        put_u64(out, frame.id);
        put_u32(out, frame.payload.len() as u32);
        for (node, bytes) in &frame.payload {
            put_u32(out, *node);
            put_u32(out, bytes.len() as u32);
            out.extend_from_slice(bytes.as_slice());
        }
    }
}

/// Encodes one message as a complete link frame:
/// `[magic u32][body_len u32][tag u8][fields…]`, all little-endian.
/// Both link implementations move exactly these bytes.
#[must_use]
pub fn encode_msg(msg: &LinkMsg) -> Bytes {
    let mut body = Vec::with_capacity(64);
    match msg {
        LinkMsg::Hello(h) => {
            body.push(TAG_HELLO);
            put_str(&mut body, &h.model);
            put_u64(&mut body, h.seed);
            put_ids(&mut body, &h.members);
            put_ids(&mut body, &h.needed);
            put_ids(&mut body, &h.forward);
            put_u32(&mut body, h.output_node);
            body.push(u8::from(h.is_last));
        }
        LinkMsg::Batch(b) => {
            body.push(TAG_BATCH);
            put_batch(&mut body, b);
        }
        LinkMsg::Result(b) => {
            body.push(TAG_RESULT);
            put_batch(&mut body, b);
        }
    }
    let mut out = Vec::with_capacity(8 + body.len());
    put_u32(&mut out, LINK_MAGIC);
    put_u32(&mut out, body.len() as u32);
    out.extend_from_slice(&body);
    Bytes::from(out)
}

/// Checked read cursor: every accessor reports truncation as a typed
/// error instead of panicking, which is what makes a corrupt peer
/// survivable.
struct Cur<'a>(&'a [u8]);

impl<'a> Cur<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], LinkError> {
        if self.0.len() < n {
            return Err(LinkError::Frame(WireError::Truncated));
        }
        let (head, tail) = self.0.split_at(n);
        self.0 = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, LinkError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, LinkError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, LinkError> {
        let b = self.take(8)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(b);
        Ok(u64::from_le_bytes(arr))
    }

    fn str(&mut self) -> Result<String, LinkError> {
        let n = self.u32()? as usize;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec())
            .map_err(|_| LinkError::Protocol("non-utf8 string".to_string()))
    }

    fn ids(&mut self) -> Result<Vec<u32>, LinkError> {
        let n = self.u32()? as usize;
        // Each id is 4 bytes: a count the remaining body cannot hold is
        // corruption, caught before the allocation.
        if n > self.0.len() / 4 {
            return Err(LinkError::Frame(WireError::Truncated));
        }
        (0..n).map(|_| self.u32()).collect()
    }

    fn batch(&mut self) -> Result<WireBatch, LinkError> {
        let first_id = self.u64()?;
        let codec = self.u8()?;
        let raw_bytes = self.u64()?;
        let accuracy_delta = f64::from_bits(self.u64()?);
        let n_frames = self.u32()? as usize;
        // A frame is at least 12 bytes (id + entry count).
        if n_frames > self.0.len() / 12 {
            return Err(LinkError::Frame(WireError::Truncated));
        }
        let mut frames = Vec::with_capacity(n_frames);
        for _ in 0..n_frames {
            let id = self.u64()?;
            let n_entries = self.u32()? as usize;
            // An entry is at least 8 bytes (vertex + length).
            if n_entries > self.0.len() / 8 {
                return Err(LinkError::Frame(WireError::Truncated));
            }
            let mut payload = Vec::with_capacity(n_entries);
            for _ in 0..n_entries {
                let node = self.u32()?;
                let len = self.u32()? as usize;
                let bytes = self.take(len)?;
                payload.push((node, Bytes::from(bytes.to_vec())));
            }
            frames.push(WireFrame { id, payload });
        }
        Ok(WireBatch {
            first_id,
            codec,
            raw_bytes,
            accuracy_delta,
            frames,
        })
    }
}

/// Decodes one complete link frame (as produced by [`encode_msg`]).
///
/// # Errors
///
/// [`LinkError::Frame`] on a bad magic, a length prefix that disagrees
/// with the buffer, or truncated fields; [`LinkError::Protocol`] on an
/// unknown message tag.
pub fn decode_msg(frame: &[u8]) -> Result<LinkMsg, LinkError> {
    let mut cur = Cur(frame);
    if cur.u32()? != LINK_MAGIC {
        return Err(LinkError::Frame(WireError::BadMagic));
    }
    let len = cur.u32()? as usize;
    if len > MAX_FRAME || len != cur.0.len() {
        return Err(LinkError::Frame(WireError::BadHeader));
    }
    match cur.u8()? {
        TAG_HELLO => {
            let model = cur.str()?;
            let seed = cur.u64()?;
            let members = cur.ids()?;
            let needed = cur.ids()?;
            let forward = cur.ids()?;
            let output_node = cur.u32()?;
            let is_last = cur.u8()? != 0;
            Ok(LinkMsg::Hello(Hello {
                model,
                seed,
                members,
                needed,
                forward,
                output_node,
                is_last,
            }))
        }
        TAG_BATCH => Ok(LinkMsg::Batch(cur.batch()?)),
        TAG_RESULT => Ok(LinkMsg::Result(cur.batch()?)),
        tag => Err(LinkError::Protocol(format!("unknown message tag {tag}"))),
    }
}

// ---------------------------------------------------------------------
// Socket transport
// ---------------------------------------------------------------------

#[derive(Debug)]
enum SocketStream {
    Uds(UnixStream),
    Tcp(TcpStream),
}

impl SocketStream {
    fn read_some(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            SocketStream::Uds(s) => s.read(buf),
            SocketStream::Tcp(s) => s.read(buf),
        }
    }

    fn write_all(&mut self, buf: &[u8]) -> std::io::Result<()> {
        match self {
            SocketStream::Uds(s) => s.write_all(buf),
            SocketStream::Tcp(s) => s.write_all(buf),
        }
    }

    fn set_read_timeout(&self, t: Option<Duration>) -> std::io::Result<()> {
        match self {
            SocketStream::Uds(s) => s.set_read_timeout(t),
            SocketStream::Tcp(s) => s.set_read_timeout(t),
        }
    }

    fn set_write_timeout(&self, t: Option<Duration>) -> std::io::Result<()> {
        match self {
            SocketStream::Uds(s) => s.set_write_timeout(t),
            SocketStream::Tcp(s) => s.set_write_timeout(t),
        }
    }

    fn try_clone(&self) -> std::io::Result<SocketStream> {
        match self {
            SocketStream::Uds(s) => s.try_clone().map(SocketStream::Uds),
            SocketStream::Tcp(s) => s.try_clone().map(SocketStream::Tcp),
        }
    }
}

/// A [`Link`] over a connected TCP or Unix-domain stream: length-
/// prefixed frames, incremental reads (a partial frame survives a recv
/// timeout), and typed errors on disconnect or corruption.
#[derive(Debug)]
pub struct SocketLink {
    stream: SocketStream,
    rbuf: Vec<u8>,
}

fn is_gone(kind: ErrorKind) -> bool {
    matches!(
        kind,
        ErrorKind::BrokenPipe
            | ErrorKind::ConnectionReset
            | ErrorKind::ConnectionAborted
            | ErrorKind::UnexpectedEof
            | ErrorKind::NotConnected
    )
}

impl SocketLink {
    fn new(stream: SocketStream) -> Result<SocketLink, LinkError> {
        // A peer that stops draining must not wedge the sender forever:
        // a timed-out write counts as a disconnect and the retransmit
        // window replays the batch on the next connection.
        stream
            .set_write_timeout(Some(Duration::from_secs(5)))
            .map_err(|e| LinkError::Io(e.to_string()))?;
        Ok(SocketLink {
            stream,
            rbuf: Vec::new(),
        })
    }

    /// A second handle on the same connection (shared socket,
    /// independent read buffer) — the write half of a split pump. Only
    /// one handle may ever `recv`.
    ///
    /// # Errors
    ///
    /// [`LinkError::Io`] when the OS refuses to duplicate the socket.
    pub fn try_clone(&self) -> Result<SocketLink, LinkError> {
        let stream = self
            .stream
            .try_clone()
            .map_err(|e| LinkError::Io(e.to_string()))?;
        SocketLink::new(stream)
    }

    /// Pops one complete frame from the read buffer, if present.
    fn buffered_frame(&mut self) -> Result<Option<LinkMsg>, LinkError> {
        if self.rbuf.len() < 8 {
            return Ok(None);
        }
        let magic = u32::from_le_bytes([self.rbuf[0], self.rbuf[1], self.rbuf[2], self.rbuf[3]]);
        if magic != LINK_MAGIC {
            return Err(LinkError::Frame(WireError::BadMagic));
        }
        let len =
            u32::from_le_bytes([self.rbuf[4], self.rbuf[5], self.rbuf[6], self.rbuf[7]]) as usize;
        if len > MAX_FRAME {
            return Err(LinkError::Frame(WireError::BadHeader));
        }
        if self.rbuf.len() < 8 + len {
            return Ok(None);
        }
        let frame: Vec<u8> = self.rbuf.drain(..8 + len).collect();
        decode_msg(&frame).map(Some)
    }
}

impl Link for SocketLink {
    fn send(&mut self, msg: &LinkMsg) -> Result<(), LinkError> {
        let frame = encode_msg(msg);
        self.stream.write_all(frame.as_slice()).map_err(|e| {
            if is_gone(e.kind()) || matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
            {
                LinkError::Disconnected
            } else {
                LinkError::Io(e.to_string())
            }
        })
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<LinkMsg>, LinkError> {
        self.stream
            .set_read_timeout(Some(timeout.max(Duration::from_millis(1))))
            .map_err(|e| LinkError::Io(e.to_string()))?;
        let mut chunk = [0u8; 16 * 1024];
        loop {
            if let Some(msg) = self.buffered_frame()? {
                return Ok(Some(msg));
            }
            match self.stream.read_some(&mut chunk) {
                Ok(0) => return Err(LinkError::Disconnected),
                Ok(n) => self.rbuf.extend_from_slice(&chunk[..n]),
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    return Ok(None)
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) if is_gone(e.kind()) => return Err(LinkError::Disconnected),
                Err(e) => return Err(LinkError::Io(e.to_string())),
            }
        }
    }
}

#[derive(Debug)]
enum Listener {
    Uds(UnixListener),
    Tcp(TcpListener),
}

/// An accepting endpoint for [`SocketLink`] connections (non-blocking
/// under the hood so servers can poll a stop flag).
#[derive(Debug)]
pub struct LinkListener {
    listener: Listener,
}

impl LinkListener {
    /// Accepts one connection, waiting at most `timeout`; `Ok(None)`
    /// when nothing arrived.
    ///
    /// # Errors
    ///
    /// [`LinkError::Io`] when the listener itself fails.
    pub fn accept_timeout(&self, timeout: Duration) -> Result<Option<SocketLink>, LinkError> {
        let clock = crate::clock::Clock::real();
        let give_up = clock.now() + timeout;
        loop {
            let accepted = match &self.listener {
                Listener::Uds(l) => l.accept().map(|(s, _)| SocketStream::Uds(s)),
                Listener::Tcp(l) => l.accept().map(|(s, _)| SocketStream::Tcp(s)),
            };
            match accepted {
                Ok(stream) => {
                    match &stream {
                        SocketStream::Uds(s) => s.set_nonblocking(false),
                        SocketStream::Tcp(s) => s.set_nonblocking(false),
                    }
                    .map_err(|e| LinkError::Io(e.to_string()))?;
                    return SocketLink::new(stream).map(Some);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    if clock.now() >= give_up {
                        return Ok(None);
                    }
                    // xtask:allow(thread-sleep): accept poll slice — the
                    // listener is non-blocking so servers can observe a
                    // stop flag between slices.
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(LinkError::Io(e.to_string())),
            }
        }
    }
}

// ---------------------------------------------------------------------
// In-process channel transport
// ---------------------------------------------------------------------

/// The deterministic in-process [`Link`]: a pair of bounded crossbeam
/// channels carrying **exactly** the frames [`encode_msg`] produces for
/// the socket path — same bytes, no socket. The unit tests pin this
/// bit-identity, which is what keeps the channel path an honest stand-in
/// for the wire in deterministic tests.
pub struct ChannelLink {
    tx: Sender<Bytes>,
    rx: Receiver<Bytes>,
}

impl std::fmt::Debug for ChannelLink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChannelLink").finish_non_exhaustive()
    }
}

/// A connected pair of [`ChannelLink`]s (client end, server end), each
/// direction a bounded channel of `capacity` frames.
#[must_use]
pub fn channel_pair(capacity: usize) -> (ChannelLink, ChannelLink) {
    let (tx_a, rx_a) = bounded(capacity.max(1));
    let (tx_b, rx_b) = bounded(capacity.max(1));
    (
        ChannelLink { tx: tx_a, rx: rx_b },
        ChannelLink { tx: tx_b, rx: rx_a },
    )
}

impl Link for ChannelLink {
    fn send(&mut self, msg: &LinkMsg) -> Result<(), LinkError> {
        self.tx
            .send(encode_msg(msg))
            .map_err(|_| LinkError::Disconnected)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<LinkMsg>, LinkError> {
        match self.rx.recv_timeout(timeout) {
            Ok(frame) => decode_msg(frame.as_slice()).map(Some),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(LinkError::Disconnected),
        }
    }
}

// ---------------------------------------------------------------------
// Stage server
// ---------------------------------------------------------------------

/// One hosted segment: the server side of a stage link. Holds the full
/// graph (weights derive from the hello's seed) and rebuilds its
/// [`SegmentExecutor`] only when a hello changes the membership — a
/// reconnect after a crash replays batches against identical weights,
/// so recomputed results are bit-identical.
pub struct StageHost {
    spec: String,
    graph: Arc<DnnGraph>,
    session: Option<HostSession>,
}

struct HostSession {
    seed: u64,
    members: Vec<NodeId>,
    exec: SegmentExecutor,
    needed: HashSet<NodeId>,
    forward: HashSet<NodeId>,
    output_node: NodeId,
    is_last: bool,
}

impl fmt::Debug for StageHost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StageHost")
            .field("spec", &self.spec)
            .field("session", &self.session.is_some())
            .finish()
    }
}

impl StageHost {
    /// A host for `graph`, registered under `spec` (the string clients
    /// must present in their hello).
    #[must_use]
    pub fn new(spec: impl Into<String>, graph: Arc<DnnGraph>) -> Self {
        Self {
            spec: spec.into(),
            graph,
            session: None,
        }
    }

    /// Applies a session hello: validates the model spec and vertex
    /// ids, then (re)builds the segment executor if the membership or
    /// seed changed.
    ///
    /// # Errors
    ///
    /// [`LinkError::Protocol`] on a spec mismatch or out-of-range
    /// vertex ids.
    pub fn apply_hello(&mut self, h: &Hello) -> Result<(), LinkError> {
        if h.model != self.spec {
            return Err(LinkError::Protocol(format!(
                "model mismatch: serving {:?}, client wants {:?}",
                self.spec, h.model
            )));
        }
        let n = self.graph.len();
        let remap = |ids: &[u32]| -> Result<Vec<NodeId>, LinkError> {
            ids.iter()
                .map(|&id| node_from_wire(id, n).map_err(|e| LinkError::Protocol(e.to_string())))
                .collect()
        };
        let members = remap(&h.members)?;
        let needed: HashSet<NodeId> = remap(&h.needed)?.into_iter().collect();
        let forward: HashSet<NodeId> = remap(&h.forward)?.into_iter().collect();
        let output_node =
            node_from_wire(h.output_node, n).map_err(|e| LinkError::Protocol(e.to_string()))?;
        let rebuild = !matches!(
            &self.session,
            Some(s) if s.seed == h.seed && s.members == members
        );
        let exec = if rebuild {
            SegmentExecutor::new(self.graph.clone(), h.seed, &members)
        } else {
            // Membership and seed unchanged: keep the prebuilt weights.
            match self.session.take() {
                Some(s) => s.exec,
                None => SegmentExecutor::new(self.graph.clone(), h.seed, &members),
            }
        };
        self.session = Some(HostSession {
            seed: h.seed,
            members,
            exec,
            needed,
            forward,
            output_node,
            is_last: h.is_last,
        });
        Ok(())
    }

    /// Executes one batch and builds its result, mirroring the local
    /// stage worker's decode → compute → encode semantics exactly (same
    /// codec dispatch, same forward-set algebra, same ledger), so a
    /// pipeline spanning processes stays bit-identical to the
    /// in-process one.
    ///
    /// # Errors
    ///
    /// [`LinkError::Protocol`] for a batch before any hello or a plan
    /// that never produces the output vertex; [`LinkError::Frame`] for
    /// undecodable payloads.
    pub fn process(&mut self, batch: &WireBatch) -> Result<WireBatch, LinkError> {
        let sess = self
            .session
            .as_mut()
            .ok_or_else(|| LinkError::Protocol("batch before hello".to_string()))?;
        let link_codec = WireCodec::from_tag(batch.codec).unwrap_or(WireCodec::Raw);
        let n_frames = batch.frames.len();
        let mut boundaries = Vec::with_capacity(n_frames);
        let mut forwards: Vec<Vec<(NodeId, Bytes)>> = Vec::with_capacity(n_frames);
        let mut payload_outputs = Vec::with_capacity(n_frames);
        for frame in &batch.frames {
            let mut boundary = HashMap::new();
            let mut forward = Vec::new();
            for (node, bytes) in &frame.payload {
                let nid = NodeId(*node as usize);
                if sess.needed.contains(&nid) {
                    boundary.insert(nid, codec::decode(bytes.clone()).map_err(LinkError::Frame)?);
                }
                if sess.forward.contains(&nid) {
                    forward.push((nid, bytes.clone()));
                }
            }
            payload_outputs.push(if sess.is_last {
                boundary.remove(&sess.output_node)
            } else {
                None
            });
            boundaries.push(boundary);
            forwards.push(forward);
        }
        let mut outputs = sess.exec.run_batch(boundaries);
        if sess.is_last {
            let mut frames = Vec::with_capacity(n_frames);
            for (k, outputs) in outputs.iter_mut().enumerate() {
                let out = outputs
                    .remove(&sess.output_node)
                    .or_else(|| payload_outputs[k].take())
                    .ok_or_else(|| {
                        LinkError::Protocol("plan never produced the output vertex".to_string())
                    })?;
                frames.push(WireFrame {
                    id: batch.frames[k].id,
                    payload: vec![(sess.output_node.index() as u32, wire::encode(&out))],
                });
            }
            return Ok(WireBatch {
                first_id: batch.first_id,
                codec: batch.codec,
                raw_bytes: 0,
                accuracy_delta: 0.0,
                frames,
            });
        }
        let mut raw_bytes: u64 = 0;
        let mut accuracy_delta: f64 = 0.0;
        let mut frames = Vec::with_capacity(n_frames);
        for (k, outputs) in outputs.iter().enumerate() {
            let forward = &mut forwards[k];
            raw_bytes += forward.iter().map(|(_, b)| b.len() as u64).sum::<u64>();
            for (nid, tensor) in outputs {
                if sess.forward.contains(nid) && forward.iter().all(|(f, _)| f != nid) {
                    let enc = codec::encode(tensor, link_codec);
                    raw_bytes += enc.raw_len;
                    accuracy_delta = accuracy_delta.max(enc.accuracy_delta);
                    forward.push((*nid, enc.bytes));
                }
            }
            frames.push(WireFrame {
                id: batch.frames[k].id,
                payload: std::mem::take(forward)
                    .into_iter()
                    .map(|(nid, bytes)| (nid.index() as u32, bytes))
                    .collect(),
            });
        }
        Ok(WireBatch {
            first_id: batch.first_id,
            codec: batch.codec,
            raw_bytes,
            accuracy_delta,
            frames,
        })
    }
}

/// Serves one established connection until the peer disconnects, the
/// byte stream corrupts, or `stop` is raised. A clean stop returns
/// `Ok(())`.
///
/// # Errors
///
/// The [`LinkError`] that ended the connection.
pub fn serve_connection<L: Link>(
    link: &mut L,
    host: &mut StageHost,
    stop: &AtomicBool,
) -> Result<(), LinkError> {
    loop {
        if stop.load(Ordering::Relaxed) {
            return Ok(());
        }
        match link.recv_timeout(Duration::from_millis(50))? {
            None => {}
            Some(LinkMsg::Hello(h)) => host.apply_hello(&h)?,
            Some(LinkMsg::Batch(b)) => {
                let result = host.process(&b)?;
                link.send(&LinkMsg::Result(result))?;
            }
            Some(LinkMsg::Result(_)) => {
                return Err(LinkError::Protocol(
                    "client sent a result message".to_string(),
                ));
            }
        }
    }
}

/// The stage-server accept loop: serves connections one at a time (a
/// stage has exactly one upstream proxy) until `stop` is raised. A
/// connection that errors is dropped — the client's retransmit window
/// replays its un-acked batches on the next connection.
pub fn serve(listener: &LinkListener, host: &mut StageHost, stop: &AtomicBool) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept_timeout(Duration::from_millis(50)) {
            Ok(Some(mut link)) => {
                let _ = serve_connection(&mut link, host, stop);
            }
            Ok(None) => {}
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use d3_model::zoo;
    use d3_tensor::Tensor;

    fn sample_batch() -> WireBatch {
        let t = Tensor::random(3, 4, 4, 7);
        WireBatch {
            first_id: 42,
            codec: WireCodec::Lossless.to_tag(),
            raw_bytes: 99,
            accuracy_delta: 0.25,
            frames: vec![
                WireFrame {
                    id: 42,
                    payload: vec![(0, wire::encode(&t))],
                },
                WireFrame {
                    id: 43,
                    payload: vec![(1, codec::encode(&t, WireCodec::Lossless).bytes)],
                },
            ],
        }
    }

    #[test]
    fn messages_roundtrip_through_the_frame_codec() {
        let msgs = [
            LinkMsg::Hello(Hello {
                model: "tiny_cnn:16".into(),
                seed: 7,
                members: vec![1, 2, 3],
                needed: vec![0],
                forward: vec![3],
                output_node: 5,
                is_last: false,
            }),
            LinkMsg::Batch(sample_batch()),
            LinkMsg::Result(sample_batch()),
        ];
        for msg in &msgs {
            let frame = encode_msg(msg);
            assert_eq!(&decode_msg(frame.as_slice()).unwrap(), msg);
        }
    }

    #[test]
    fn truncated_and_corrupt_frames_error_not_panic() {
        let frame = encode_msg(&LinkMsg::Batch(sample_batch()));
        let bytes = frame.as_slice();
        for cut in 0..bytes.len() {
            assert!(decode_msg(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        let mut bad_magic = bytes.to_vec();
        bad_magic[0] ^= 0xFF;
        assert_eq!(
            decode_msg(&bad_magic),
            Err(LinkError::Frame(WireError::BadMagic))
        );
        let mut bad_len = bytes.to_vec();
        bad_len[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_msg(&bad_len).is_err());
    }

    #[test]
    fn channel_link_moves_the_exact_socket_bytes() {
        // The pinned contract: the in-process link transports the same
        // encoded frames the socket path writes — bit-identical.
        let msg = LinkMsg::Batch(sample_batch());
        let socket_bytes = encode_msg(&msg);
        let (mut client, mut server) = channel_pair(4);
        client.send(&msg).unwrap();
        let received = server.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(received, Some(msg.clone()));
        // And what travelled was exactly the socket framing.
        client.send(&msg).unwrap();
        let on_wire = server.rx.recv().unwrap();
        assert_eq!(on_wire.as_slice(), socket_bytes.as_slice());
    }

    #[test]
    fn channel_link_times_out_and_reports_disconnect() {
        let (mut client, server) = channel_pair(1);
        assert_eq!(client.recv_timeout(Duration::from_millis(5)), Ok(None));
        drop(server);
        assert_eq!(
            client.recv_timeout(Duration::from_millis(5)),
            Err(LinkError::Disconnected)
        );
    }

    #[test]
    fn link_addr_parses_and_displays() {
        let uds = LinkAddr::parse("uds:/tmp/d3.sock").unwrap();
        assert_eq!(uds, LinkAddr::Uds(PathBuf::from("/tmp/d3.sock")));
        assert_eq!(uds.to_string(), "uds:/tmp/d3.sock");
        let tcp = LinkAddr::parse("tcp:127.0.0.1:9000").unwrap();
        assert_eq!(tcp.to_string(), "tcp:127.0.0.1:9000");
        assert_eq!(LinkAddr::parse("smoke:signals"), None);
        assert_eq!(LinkAddr::parse("uds:"), None);
    }

    #[test]
    fn stage_host_rejects_bad_hellos_and_early_batches() {
        let graph = Arc::new(zoo::tiny_cnn(8));
        let mut host = StageHost::new("tiny_cnn:8", graph.clone());
        assert!(matches!(
            host.process(&sample_batch()),
            Err(LinkError::Protocol(_))
        ));
        let mut hello = Hello {
            model: "other:1".into(),
            seed: 1,
            members: vec![0],
            needed: vec![0],
            forward: vec![],
            output_node: 0,
            is_last: true,
        };
        assert!(matches!(
            host.apply_hello(&hello),
            Err(LinkError::Protocol(_))
        ));
        hello.model = "tiny_cnn:8".into();
        hello.members = vec![10_000];
        assert!(matches!(
            host.apply_hello(&hello),
            Err(LinkError::Protocol(_))
        ));
    }

    #[test]
    fn socket_link_roundtrips_over_uds_with_partial_reads() {
        let path = std::env::temp_dir().join(format!("d3-link-test-{}.sock", std::process::id()));
        let addr = LinkAddr::Uds(path.clone());
        let listener = addr.listen().unwrap();
        let mut client = addr.connect().unwrap();
        let mut server = listener
            .accept_timeout(Duration::from_secs(2))
            .unwrap()
            .expect("client connected");
        let msg = LinkMsg::Batch(sample_batch());
        client.send(&msg).unwrap();
        client
            .send(&LinkMsg::Hello(Hello {
                model: "m".into(),
                seed: 0,
                members: vec![],
                needed: vec![],
                forward: vec![],
                output_node: 0,
                is_last: false,
            })) // two frames in one stream: framing must split them
            .unwrap();
        assert_eq!(
            server.recv_timeout(Duration::from_secs(2)).unwrap(),
            Some(msg)
        );
        assert!(matches!(
            server.recv_timeout(Duration::from_secs(2)).unwrap(),
            Some(LinkMsg::Hello(_))
        ));
        // Nothing more queued: a timeout, not an error.
        assert_eq!(server.recv_timeout(Duration::from_millis(10)), Ok(None));
        drop(client);
        assert_eq!(
            server.recv_timeout(Duration::from_millis(100)),
            Err(LinkError::Disconnected)
        );
        let _ = std::fs::remove_file(&path);
    }
}
