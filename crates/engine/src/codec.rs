//! Compressed + quantized wire codecs for inter-tier tensor transport.
//!
//! The paper's premise is that the device↔edge↔cloud link is the
//! bottleneck — yet the raw [`wire`](crate::wire) format ships every
//! activation tensor as plain f32. This module adds the codec layer at
//! the stage boundary, with two families behind one [`Codec`] trait:
//!
//! - **Lossless** ([`WireCodec::Lossless`]): bit-exact byte-plane
//!   compression. The f32 payload is split into its four little-endian
//!   byte planes (activation tensors have highly coherent sign/exponent
//!   bytes and, after ReLU, long all-zero spans), each plane is
//!   delta-filtered and run-length coded, and any plane the filter does
//!   not shrink is stored raw. The design is deliberately *asymmetric*
//!   in the ZXC/ZX02 style: the encoder does the scanning work, while
//!   decoding is a near-memcpy pass (RLE expand + prefix sum) — which
//!   matches the traffic shape, where a weak device encodes once and a
//!   fast tier decodes.
//! - **Quantized** ([`WireCodec::F16`], [`WireCodec::I8`]): opt-in lossy
//!   paths. f16 keeps a per-value relative error ≤ 2⁻¹¹; i8 stores a
//!   per-tensor affine `min + q·scale` with error ≤ `scale/2`. Both
//!   bound their worst case via [`error_bound`], measure the *achieved*
//!   max dequantization error at encode time ([`Encoded::accuracy_delta`],
//!   aggregated into the stream report), and fall back to a bit-exact
//!   raw payload per frame when the tensor contains non-finite values
//!   (so NaN/Inf probes survive even the lossy paths).
//!
//! Frames are **self-describing**: raw [`wire`](crate::wire) frames keep
//! their magic, codec frames carry their own magic + codec tag, and
//! [`decode`] dispatches on content. A receiving stage therefore handles
//! any mix of encodings, which is what lets the adaptation loop switch a
//! link's codec mid-stream without quiescing the pipeline.
//!
//! Codecs also *drive decisions*: [`profile`]/[`measured_profile`]
//! express a codec as a [`d3_partition::CodecProfile`] (achieved ratio,
//! encode/decode s/MB) that [`d3_partition::Problem::set_link_codec`]
//! folds into the link weights, so the optimal split point moves when
//! compression is on.
//!
//! Because every frame names its own encoding, a decoder needs no
//! out-of-band state — which is exactly why
//! [`StreamPipeline::set_link_codec`](crate::stream::StreamPipeline::set_link_codec)
//! takes `&self` and switches codecs without quiescing the shared
//! pipeline, even with many sessions in flight:
//!
//! ```
//! use d3_engine::codec::{decode, encode, WireCodec};
//! use d3_tensor::Tensor;
//!
//! let t = Tensor::random(2, 4, 4, 7);
//!
//! // Lossless is bit-exact and shrinks coherent activation payloads.
//! let lossless = encode(&t, WireCodec::Lossless);
//! assert_eq!(lossless.accuracy_delta, 0.0);
//! let back = decode(lossless.bytes.clone()).expect("self-describing frame");
//! assert_eq!(back.data(), t.data());
//!
//! // A lossy frame from the *same* stream decodes through the same
//! // entry point: dispatch is on frame content, not connection state.
//! let lossy = encode(&t, WireCodec::F16);
//! let approx = decode(lossy.bytes.clone()).expect("tagged with its codec");
//! assert_eq!(approx.shape(), t.shape());
//! assert!(lossy.accuracy_delta <= d3_engine::codec::error_bound(WireCodec::F16, &t));
//! ```

use crate::clock::Clock;
use crate::wire::{self, WireError};
use bytes::Bytes;
use d3_partition::CodecProfile;
use d3_tensor::Tensor;

/// Magic tag of a codec-encoded frame (raw frames keep the
/// [`wire`](crate::wire) magic, so the two formats are distinguishable
/// on content alone).
const CODEC_MAGIC: u32 = 0xD3C0_0002;

/// Header bytes of a codec frame: magic, tag, flags, reserved, shape.
const HEADER: usize = 4 + 1 + 1 + 2 + 12;

/// Frame flag: a quantized frame whose payload is raw f32 little-endian
/// (the encoder hit non-finite or out-of-range values and fell back to
/// the bit-exact representation).
const FLAG_RAW_FALLBACK: u8 = 0x01;

/// Frame flag: a lossless frame whose payload is stored uncompressed
/// (the filters did not shrink this tensor, so the encoder shipped the
/// f32 payload as-is — decode is a pure memcpy).
const FLAG_STORED: u8 = 0x02;

/// The wire codec active on a link — the unit the stream options,
/// adaptation decisions and partition cost model all speak.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WireCodec {
    /// Plain [`wire`](crate::wire) frames (the pre-codec format).
    #[default]
    Raw,
    /// Bit-exact byte-plane + delta/RLE compression (asymmetric:
    /// decode is near-memcpy).
    Lossless,
    /// f32 → f16 quantization, relative error ≤ 2⁻¹¹ per value.
    F16,
    /// f32 → i8 affine quantization with per-tensor scale/zero-point,
    /// error ≤ scale/2.
    I8,
}

impl WireCodec {
    /// Every codec, in tag order.
    pub const ALL: [WireCodec; 4] = [
        WireCodec::Raw,
        WireCodec::Lossless,
        WireCodec::F16,
        WireCodec::I8,
    ];

    /// Whether this codec may change values (quantized paths).
    #[must_use]
    pub fn is_lossy(self) -> bool {
        matches!(self, WireCodec::F16 | WireCodec::I8)
    }

    /// Stable display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            WireCodec::Raw => "raw",
            WireCodec::Lossless => "lossless",
            WireCodec::F16 => "f16",
            WireCodec::I8 => "i8",
        }
    }

    /// The frame tag byte of this codec (raw frames carry no tag).
    fn tag(self) -> u8 {
        match self {
            WireCodec::Raw => 0,
            WireCodec::Lossless => 1,
            WireCodec::F16 => 2,
            WireCodec::I8 => 3,
        }
    }

    /// Codec for a stored frame tag, used by the live codec switch
    /// (codec state travels between threads as its tag byte).
    #[must_use]
    pub fn from_tag(tag: u8) -> Option<WireCodec> {
        WireCodec::ALL.into_iter().find(|c| c.tag() == tag)
    }

    /// The tag byte, public counterpart of [`from_tag`](Self::from_tag).
    #[must_use]
    pub fn to_tag(self) -> u8 {
        self.tag()
    }
}

impl std::fmt::Display for WireCodec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One encoded frame plus its accounting: the on-wire bytes, what the
/// raw wire format would have used, and the achieved quantization error.
#[derive(Debug, Clone)]
pub struct Encoded {
    /// The self-describing frame.
    pub bytes: Bytes,
    /// Bytes the raw [`wire`](crate::wire) format would have used
    /// (header + f32 payload) — the "before" of the compression ratio
    /// and the number the prober reports as raw bytes.
    pub raw_len: u64,
    /// Measured max |original − dequantized| over the tensor (0 for
    /// bit-exact paths and raw-fallback frames).
    pub accuracy_delta: f64,
}

impl Encoded {
    /// Bytes actually on the wire.
    #[must_use]
    pub fn wire_len(&self) -> u64 {
        self.bytes.len() as u64
    }

    /// Achieved compression ratio (on-wire / raw; 1.0 for empty frames).
    #[must_use]
    pub fn ratio(&self) -> f64 {
        if self.raw_len == 0 {
            1.0
        } else {
            self.wire_len() as f64 / self.raw_len as f64
        }
    }
}

/// One wire codec: encodes tensors into self-describing frames that the
/// universal [`decode`] reverses. Implementations must be stateless per
/// frame (frames from different codecs interleave freely on a link).
pub trait Codec: Send + Sync {
    /// Which codec this is.
    fn id(&self) -> WireCodec;
    /// Encodes one tensor into a self-describing frame.
    fn encode(&self, t: &Tensor) -> Encoded;
}

/// The raw pass-through codec ([`wire`](crate::wire) frames).
#[derive(Debug, Clone, Copy, Default)]
pub struct RawCodec;

/// The bit-exact byte-plane + delta/RLE codec.
#[derive(Debug, Clone, Copy, Default)]
pub struct LosslessCodec;

/// The f32→f16 quantizing codec.
#[derive(Debug, Clone, Copy, Default)]
pub struct F16Codec;

/// The f32→i8 affine quantizing codec.
#[derive(Debug, Clone, Copy, Default)]
pub struct I8Codec;

impl Codec for RawCodec {
    fn id(&self) -> WireCodec {
        WireCodec::Raw
    }

    fn encode(&self, t: &Tensor) -> Encoded {
        let bytes = wire::encode(t);
        Encoded {
            raw_len: bytes.len() as u64,
            bytes,
            accuracy_delta: 0.0,
        }
    }
}

impl Codec for LosslessCodec {
    fn id(&self) -> WireCodec {
        WireCodec::Lossless
    }

    fn encode(&self, t: &Tensor) -> Encoded {
        let data = t.data();
        let n = data.len();
        // Zero bitmap (bit i set ⇔ element i has nonzero *bits* — `-0.0`
        // counts as nonzero so the round trip stays bit-exact). ReLU
        // activations are half zeros, and each zero costs one bit here
        // instead of four bytes on the wire.
        let mut bitmap = vec![0u8; n.div_ceil(8)];
        let mut nonzero: Vec<f32> = Vec::with_capacity(n);
        for (i, &v) in data.iter().enumerate() {
            if v.to_bits() != 0 {
                bitmap[i / 8] |= 1 << (i % 8);
                nonzero.push(v);
            }
        }
        // Split the nonzero residue into its four little-endian byte
        // planes; sign/exponent bytes of same-magnitude activations are
        // coherent, so the delta filter turns them into RLE runs.
        let mut planes: [Vec<u8>; 4] = std::array::from_fn(|_| Vec::with_capacity(nonzero.len()));
        for &v in &nonzero {
            let b = v.to_le_bytes();
            for (plane, byte) in planes.iter_mut().zip(b) {
                plane.push(byte);
            }
        }
        let mut out = Vec::with_capacity(HEADER + n * 2 + 32);
        put_header(&mut out, WireCodec::Lossless, 0, t);
        put_section(&mut out, &bitmap);
        for plane in &planes {
            put_section(&mut out, plane);
        }
        if out.len() > HEADER + n * 4 {
            // Incompressible frame: store the raw payload under the
            // codec magic instead (decode is a pure memcpy).
            out.truncate(0);
            put_header(&mut out, WireCodec::Lossless, FLAG_STORED, t);
            for &v in data {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        Encoded {
            bytes: Bytes::from(out),
            raw_len: wire::wire_size(t),
            accuracy_delta: 0.0,
        }
    }
}

/// Appends one filtered section: `method (0 = stored, 1 = delta+RLE)`,
/// `u32` stored length, payload. The encoder picks whichever is smaller,
/// so a section never costs more than its raw bytes plus framing.
fn put_section(out: &mut Vec<u8>, raw: &[u8]) {
    let filtered = rle_compress(&delta_filter(raw));
    if filtered.len() < raw.len() {
        out.push(1);
        out.extend_from_slice(&(filtered.len() as u32).to_le_bytes());
        out.extend_from_slice(&filtered);
    } else {
        out.push(0);
        out.extend_from_slice(&(raw.len() as u32).to_le_bytes());
        out.extend_from_slice(raw);
    }
}

/// Reads one [`put_section`] frame back, returning the raw bytes (which
/// must measure `expect`) and the cursor advance.
fn get_section(body: &[u8], at: usize, expect: usize) -> Result<(Vec<u8>, usize), WireError> {
    let method = *body.get(at).ok_or(WireError::Truncated)?;
    let len_bytes = body.get(at + 1..at + 5).ok_or(WireError::Truncated)?;
    let len = u32::from_le_bytes([len_bytes[0], len_bytes[1], len_bytes[2], len_bytes[3]]) as usize;
    let stored = body.get(at + 5..at + 5 + len).ok_or(WireError::Truncated)?;
    let raw = match method {
        0 => {
            if stored.len() != expect {
                return Err(WireError::BadHeader);
            }
            stored.to_vec()
        }
        1 => {
            let mut p = rle_decompress(stored, expect)?;
            delta_unfilter(&mut p);
            p
        }
        _ => return Err(WireError::BadHeader),
    };
    Ok((raw, 5 + len))
}

impl Codec for F16Codec {
    fn id(&self) -> WireCodec {
        WireCodec::F16
    }

    fn encode(&self, t: &Tensor) -> Encoded {
        let data = t.data();
        if !f16_representable(data) {
            return quantized_fallback(WireCodec::F16, t);
        }
        let mut out = Vec::with_capacity(HEADER + data.len() * 2);
        put_header(&mut out, WireCodec::F16, 0, t);
        let mut delta = 0.0f64;
        for &v in data {
            let h = f32_to_f16_bits(v);
            out.extend_from_slice(&h.to_le_bytes());
            delta = delta.max((f64::from(v) - f64::from(f16_bits_to_f32(h))).abs());
        }
        Encoded {
            bytes: Bytes::from(out),
            raw_len: wire::wire_size(t),
            accuracy_delta: delta,
        }
    }
}

impl Codec for I8Codec {
    fn id(&self) -> WireCodec {
        WireCodec::I8
    }

    fn encode(&self, t: &Tensor) -> Encoded {
        let data = t.data();
        if data.iter().any(|v| !v.is_finite()) {
            return quantized_fallback(WireCodec::I8, t);
        }
        let (min, max) = data
            .iter()
            .fold((f32::MAX, f32::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
        let (min, scale) = if data.is_empty() || min > max {
            (0.0f32, 0.0f32)
        } else {
            (min, (max - min) / 255.0)
        };
        let mut out = Vec::with_capacity(HEADER + 8 + data.len());
        put_header(&mut out, WireCodec::I8, 0, t);
        out.extend_from_slice(&min.to_le_bytes());
        out.extend_from_slice(&scale.to_le_bytes());
        let mut delta = 0.0f64;
        for &v in data {
            let q = if scale == 0.0 {
                0.0
            } else {
                ((v - min) / scale).round().clamp(0.0, 255.0)
            };
            out.push(q as u8);
            let dq = i8_dequant(min, scale, q as u8);
            delta = delta.max((f64::from(v) - f64::from(dq)).abs());
        }
        Encoded {
            bytes: Bytes::from(out),
            raw_len: wire::wire_size(t),
            accuracy_delta: delta,
        }
    }
}

/// The codec implementation behind an id.
#[must_use]
pub fn codec_for(codec: WireCodec) -> &'static dyn Codec {
    match codec {
        WireCodec::Raw => &RawCodec,
        WireCodec::Lossless => &LosslessCodec,
        WireCodec::F16 => &F16Codec,
        WireCodec::I8 => &I8Codec,
    }
}

/// Encodes one tensor with `codec` (convenience over [`codec_for`]).
#[must_use]
pub fn encode(t: &Tensor, codec: WireCodec) -> Encoded {
    codec_for(codec).encode(t)
}

/// Decodes any self-describing frame — raw [`wire`](crate::wire) frames
/// and every codec frame — dispatching on the frame's own magic/tag.
/// This is what lets a link switch codecs mid-stream: the receiver never
/// needs to know what the sender chose.
///
/// # Errors
///
/// See [`WireError`].
pub fn decode(buf: Bytes) -> Result<Tensor, WireError> {
    let s = buf.as_slice();
    if s.len() < 4 {
        return Err(WireError::Truncated);
    }
    let magic = u32::from_le_bytes([s[0], s[1], s[2], s[3]]);
    if magic != CODEC_MAGIC {
        // Raw frames (or garbage — wire::decode rejects bad magics).
        return wire::decode(buf);
    }
    if s.len() < HEADER {
        return Err(WireError::Truncated);
    }
    let tag = s[4];
    let flags = s[5];
    let c = u32::from_le_bytes([s[8], s[9], s[10], s[11]]) as usize;
    let h = u32::from_le_bytes([s[12], s[13], s[14], s[15]]) as usize;
    let w = u32::from_le_bytes([s[16], s[17], s[18], s[19]]) as usize;
    let n = c
        .checked_mul(h)
        .and_then(|x| x.checked_mul(w))
        .ok_or(WireError::BadHeader)?;
    let body = &s[HEADER..];
    let codec = WireCodec::from_tag(tag).ok_or(WireError::BadHeader)?;
    let data = match codec {
        WireCodec::Raw => return Err(WireError::BadHeader),
        WireCodec::Lossless if flags & FLAG_STORED != 0 => decode_f32_payload(body, n)?,
        WireCodec::Lossless => decode_lossless(body, n)?,
        WireCodec::F16 | WireCodec::I8 if flags & FLAG_RAW_FALLBACK != 0 => {
            decode_f32_payload(body, n)?
        }
        WireCodec::F16 => decode_f16(body, n)?,
        WireCodec::I8 => decode_i8(body, n)?,
    };
    Ok(Tensor::from_vec(c, h, w, data))
}

/// Worst-case dequantization error `codec` can introduce on `t` — the
/// *declared* bound the achieved [`Encoded::accuracy_delta`] must stay
/// within. Bit-exact paths (and quantized frames that would fall back to
/// raw) bound at zero.
#[must_use]
pub fn error_bound(codec: WireCodec, t: &Tensor) -> f64 {
    let data = t.data();
    match codec {
        WireCodec::Raw | WireCodec::Lossless => 0.0,
        WireCodec::F16 => {
            if !f16_representable(data) {
                return 0.0; // raw fallback: bit-exact
            }
            data.iter()
                .map(|&v| (f64::from(v).abs() * 2f64.powi(-11)).max(2f64.powi(-25)))
                .fold(0.0, f64::max)
        }
        WireCodec::I8 => {
            if data.iter().any(|v| !v.is_finite()) {
                return 0.0; // raw fallback: bit-exact
            }
            let (min, max) = data
                .iter()
                .fold((f32::MAX, f32::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
            if data.is_empty() || min >= max {
                return 0.0;
            }
            let scale = f64::from((max - min) / 255.0);
            // Half a quantization step, plus slack for the f32 rounding
            // of the quant/dequant arithmetic itself.
            scale / 2.0 + (f64::from(min.abs().max(max.abs()))) * 1e-5 + 1e-30
        }
    }
}

/// Nominal cost-model descriptor of a codec: the default
/// [`CodecProfile`] installed on a link when no measurement is
/// available. Ratios are conservative for post-ReLU activation traffic;
/// the encode/decode costs encode the deliberate asymmetry (decode is
/// near-memcpy). Use [`measured_profile`] to replace these with numbers
/// measured on real traffic.
#[must_use]
pub fn profile(codec: WireCodec) -> CodecProfile {
    match codec {
        WireCodec::Raw => CodecProfile::raw(),
        WireCodec::Lossless => CodecProfile {
            ratio: 0.60,
            encode_s_per_mb: 0.012,
            decode_s_per_mb: 0.003,
        },
        WireCodec::F16 => CodecProfile {
            ratio: 0.50,
            encode_s_per_mb: 0.005,
            decode_s_per_mb: 0.002,
        },
        WireCodec::I8 => CodecProfile {
            ratio: 0.26,
            encode_s_per_mb: 0.006,
            decode_s_per_mb: 0.002,
        },
    }
}

/// Measures a codec against a sample tensor: achieved ratio plus
/// encode/decode seconds per raw megabyte, timed through the engine's
/// [`Clock`] seam. The result plugs straight into
/// [`d3_partition::Problem::set_link_codec`], so a partitioner can run
/// against the codec's behavior *on this traffic* instead of the
/// nominal constants.
#[must_use]
pub fn measured_profile(codec: WireCodec, sample: &Tensor, clock: &Clock) -> CodecProfile {
    if codec == WireCodec::Raw {
        return CodecProfile::raw();
    }
    const REPS: u32 = 3;
    let start = clock.now();
    let mut encoded = encode(sample, codec);
    for _ in 1..REPS {
        encoded = encode(sample, codec);
    }
    let encode_elapsed = clock.now().saturating_sub(start);
    let start = clock.now();
    for _ in 0..REPS {
        let _ = decode(encoded.bytes.clone());
    }
    let decode_elapsed = clock.now().saturating_sub(start);
    let mb = (encoded.raw_len as f64 / 1e6).max(1e-12);
    CodecProfile {
        ratio: encoded.ratio(),
        encode_s_per_mb: encode_elapsed.as_secs_f64() / (f64::from(REPS) * mb),
        decode_s_per_mb: decode_elapsed.as_secs_f64() / (f64::from(REPS) * mb),
    }
}

// ---------------------------------------------------------------------
// Frame plumbing
// ---------------------------------------------------------------------

fn put_header(out: &mut Vec<u8>, codec: WireCodec, flags: u8, t: &Tensor) {
    let (c, h, w) = t.shape();
    out.extend_from_slice(&CODEC_MAGIC.to_le_bytes());
    out.push(codec.tag());
    out.push(flags);
    out.extend_from_slice(&[0, 0]); // reserved
    out.extend_from_slice(&(c as u32).to_le_bytes());
    out.extend_from_slice(&(h as u32).to_le_bytes());
    out.extend_from_slice(&(w as u32).to_le_bytes());
}

/// A quantized frame whose content cannot be represented (non-finite or
/// out-of-range values): ship the bit-exact f32 payload under the
/// codec's tag with the fallback flag set.
fn quantized_fallback(codec: WireCodec, t: &Tensor) -> Encoded {
    let data = t.data();
    let mut out = Vec::with_capacity(HEADER + data.len() * 4);
    put_header(&mut out, codec, FLAG_RAW_FALLBACK, t);
    for &v in data {
        out.extend_from_slice(&v.to_le_bytes());
    }
    Encoded {
        bytes: Bytes::from(out),
        raw_len: wire::wire_size(t),
        accuracy_delta: 0.0,
    }
}

fn decode_f32_payload(body: &[u8], n: usize) -> Result<Vec<f32>, WireError> {
    // Checked: a hostile header's `n * 4` could overflow (debug panic).
    if n.checked_mul(4) != Some(body.len()) {
        return Err(WireError::Truncated);
    }
    Ok(body
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

// ---------------------------------------------------------------------
// Lossless path: byte planes + delta filter + RLE
// ---------------------------------------------------------------------

/// Delta filter: each byte becomes its wrapping difference from the
/// previous one, turning slowly-varying planes (exponents of
/// similar-magnitude activations) into long zero runs for the RLE.
fn delta_filter(plane: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(plane.len());
    let mut prev = 0u8;
    for &b in plane {
        out.push(b.wrapping_sub(prev));
        prev = b;
    }
    out
}

/// Inverse of [`delta_filter`]: a single prefix-sum pass (the decode
/// side of the asymmetry — no scanning, no branching on content).
fn delta_unfilter(deltas: &mut [u8]) {
    let mut prev = 0u8;
    for b in deltas {
        *b = b.wrapping_add(prev);
        prev = *b;
    }
}

/// Run-length coding. Control byte: high bit set → a run of
/// `(ctrl & 0x7F) + 2` copies of the following byte (runs 2–129); high
/// bit clear → a literal block of `ctrl + 1` bytes (1–128). Runs shorter
/// than 3 join the surrounding literal (a 2-run token saves nothing).
fn rle_compress(src: &[u8]) -> Vec<u8> {
    fn run_at(src: &[u8], i: usize, cap: usize) -> usize {
        let b = src[i];
        let mut len = 1;
        while i + len < src.len() && src[i + len] == b && len < cap {
            len += 1;
        }
        len
    }
    let mut out = Vec::with_capacity(src.len() / 4 + 8);
    let mut i = 0;
    while i < src.len() {
        let run = run_at(src, i, 129);
        if run >= 3 {
            out.push(0x80 | (run - 2) as u8);
            out.push(src[i]);
            i += run;
            continue;
        }
        // Literal: extend until a worthwhile run starts, chunk at 128.
        let start = i;
        i += run;
        while i < src.len() && i - start < 128 {
            let next = run_at(src, i, 3);
            if next >= 3 {
                break;
            }
            i += next;
        }
        let mut chunk = &src[start..i];
        while !chunk.is_empty() {
            let take = chunk.len().min(128);
            out.push((take - 1) as u8);
            out.extend_from_slice(&chunk[..take]);
            chunk = &chunk[take..];
        }
    }
    out
}

fn rle_decompress(src: &[u8], expect: usize) -> Result<Vec<u8>, WireError> {
    // An RLE token expands to at most 129 bytes per 2 input bytes
    // (< 65×), so an `expect` beyond that is a corrupt header — reject
    // it *before* reserving, or a hostile length drives a huge
    // allocation off a tiny frame.
    if expect > src.len().saturating_mul(65) {
        return Err(WireError::Truncated);
    }
    let mut out = Vec::with_capacity(expect);
    let mut i = 0;
    while i < src.len() {
        let ctrl = src[i];
        i += 1;
        if ctrl & 0x80 != 0 {
            let run = (ctrl & 0x7F) as usize + 2;
            let b = *src.get(i).ok_or(WireError::Truncated)?;
            i += 1;
            out.resize(out.len() + run, b);
        } else {
            let len = ctrl as usize + 1;
            let chunk = src.get(i..i + len).ok_or(WireError::Truncated)?;
            out.extend_from_slice(chunk);
            i += len;
        }
        if out.len() > expect {
            return Err(WireError::BadHeader);
        }
    }
    if out.len() != expect {
        return Err(WireError::Truncated);
    }
    Ok(out)
}

fn decode_lossless(body: &[u8], n: usize) -> Result<Vec<f32>, WireError> {
    let (bitmap, advance) = get_section(body, 0, n.div_ceil(8))?;
    let mut at = advance;
    let nnz: usize = (0..n)
        .filter(|&i| bitmap[i / 8] & (1 << (i % 8)) != 0)
        .count();
    let mut planes: [Vec<u8>; 4] = std::array::from_fn(|_| Vec::new());
    for plane in &mut planes {
        let (raw, advance) = get_section(body, at, nnz)?;
        *plane = raw;
        at += advance;
    }
    if at != body.len() {
        return Err(WireError::Truncated);
    }
    let mut out = Vec::with_capacity(n);
    let mut k = 0usize;
    for i in 0..n {
        if bitmap[i / 8] & (1 << (i % 8)) != 0 {
            out.push(f32::from_le_bytes([
                planes[0][k],
                planes[1][k],
                planes[2][k],
                planes[3][k],
            ]));
            k += 1;
        } else {
            out.push(0.0);
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Quantized paths
// ---------------------------------------------------------------------

/// Whether every value survives the f16 round trip within the declared
/// bound: finite and safely inside the f16 normal/subnormal range.
fn f16_representable(data: &[f32]) -> bool {
    data.iter().all(|v| v.is_finite() && v.abs() <= 65504.0)
}

/// f32 → f16 bit conversion, round-to-nearest-even. Callers guarantee
/// the input is finite with |x| ≤ 65504 (see [`f16_representable`]).
fn f32_to_f16_bits(x: f32) -> u16 {
    let b = x.to_bits();
    let sign = ((b >> 16) & 0x8000) as u16;
    let e = ((b >> 23) & 0xFF) as i32 - 127;
    let m = b & 0x007F_FFFF;
    if e >= -14 {
        // Normal half-precision range.
        let mut half = (((e + 15) as u32) << 10) | (m >> 13);
        let rest = m & 0x1FFF;
        if rest > 0x1000 || (rest == 0x1000 && half & 1 == 1) {
            half += 1; // may carry into the exponent, which is correct
        }
        sign | half as u16
    } else if e >= -25 {
        // Subnormal half: shift the full significand into place.
        let full = m | 0x0080_0000;
        let shift = (13 + (-14 - e)) as u32;
        let mut half = (full >> shift) as u16;
        let rest = full & ((1u32 << shift) - 1);
        let halfway = 1u32 << (shift - 1);
        if rest > halfway || (rest == halfway && half & 1 == 1) {
            half += 1;
        }
        sign | half
    } else {
        sign // underflows to signed zero
    }
}

/// f16 bits → f32 (exact: every f16 value is representable in f32).
fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = if h & 0x8000 != 0 { -1.0f32 } else { 1.0f32 };
    let e = (h >> 10) & 0x1F;
    let m = u32::from(h & 0x03FF);
    match e {
        0 => sign * m as f32 * 2f32.powi(-24), // zero / subnormal
        0x1F => {
            if m == 0 {
                sign * f32::INFINITY
            } else {
                f32::NAN
            }
        }
        _ => {
            let bits = (u32::from(h & 0x8000) << 16) | ((u32::from(e) + 112) << 23) | (m << 13);
            f32::from_bits(bits)
        }
    }
}

fn decode_f16(body: &[u8], n: usize) -> Result<Vec<f32>, WireError> {
    // Checked: a hostile header's `n * 2` could overflow (debug panic).
    if n.checked_mul(2) != Some(body.len()) {
        return Err(WireError::Truncated);
    }
    Ok(body
        .chunks_exact(2)
        .map(|c| f16_bits_to_f32(u16::from_le_bytes([c[0], c[1]])))
        .collect())
}

fn i8_dequant(min: f32, scale: f32, q: u8) -> f32 {
    min + f32::from(q) * scale
}

fn decode_i8(body: &[u8], n: usize) -> Result<Vec<f32>, WireError> {
    // Checked: a hostile header's `8 + n` could overflow (debug panic).
    if n.checked_add(8) != Some(body.len()) {
        return Err(WireError::Truncated);
    }
    let min = f32::from_le_bytes([body[0], body[1], body[2], body[3]]);
    let scale = f32::from_le_bytes([body[4], body[5], body[6], body[7]]);
    Ok(body[8..]
        .iter()
        .map(|&q| i8_dequant(min, scale, q))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn activationish(seed: u64) -> Tensor {
        // Post-ReLU-like data: spatially clumped zeros + positive values.
        let mut t = Tensor::random(4, 8, 8, seed);
        for (i, v) in t.data_mut().iter_mut().enumerate() {
            if (i / 7) % 2 == 0 {
                *v = 0.0;
            }
        }
        t
    }

    #[test]
    fn lossless_roundtrip_is_bit_exact() {
        for seed in 0..4 {
            let t = activationish(seed);
            let enc = encode(&t, WireCodec::Lossless);
            assert_eq!(enc.accuracy_delta, 0.0);
            let back = decode(enc.bytes).unwrap();
            assert_eq!(back.data(), t.data());
        }
    }

    #[test]
    fn lossless_compresses_sparse_activations() {
        let t = activationish(1);
        let enc = encode(&t, WireCodec::Lossless);
        assert!(
            enc.ratio() < 0.8,
            "sparse activations should compress (ratio {})",
            enc.ratio()
        );
    }

    #[test]
    fn lossless_never_exceeds_raw_by_more_than_header_delta() {
        // Incompressible frames fall back to FLAG_STORED, so the worst
        // case is the codec header's 4 extra bytes over the raw wire
        // header — never the per-section framing.
        let t = Tensor::random(2, 5, 5, 9);
        let enc = encode(&t, WireCodec::Lossless);
        assert!(enc.wire_len() <= enc.raw_len + (HEADER as u64 - 16));
        assert_eq!(decode(enc.bytes).unwrap().data(), t.data());
    }

    #[test]
    fn raw_codec_frames_are_plain_wire_frames() {
        let t = Tensor::random(1, 4, 4, 3);
        let enc = encode(&t, WireCodec::Raw);
        assert_eq!(enc.bytes, wire::encode(&t));
        assert_eq!(decode(enc.bytes).unwrap().data(), t.data());
    }

    #[test]
    fn special_values_survive_every_codec() {
        let t = Tensor::from_vec(
            1,
            1,
            6,
            vec![
                0.0,
                -0.0,
                f32::NAN,
                f32::INFINITY,
                f32::MIN_POSITIVE,
                -1.5e30,
            ],
        );
        for codec in WireCodec::ALL {
            let enc = encode(&t, codec);
            // NaN/Inf force the quantized paths onto the raw fallback,
            // so every codec is bit-exact here.
            assert_eq!(enc.accuracy_delta, 0.0, "{codec}");
            let back = decode(enc.bytes).unwrap();
            assert_eq!(
                back.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                t.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{codec}"
            );
        }
    }

    #[test]
    fn empty_tensor_roundtrips_every_codec() {
        let t = Tensor::from_vec(0, 3, 3, vec![]);
        for codec in WireCodec::ALL {
            let back = decode(encode(&t, codec).bytes).unwrap();
            assert_eq!(back.shape(), (0, 3, 3), "{codec}");
        }
    }

    #[test]
    fn f16_error_within_declared_bound() {
        let t = Tensor::random(3, 9, 9, 17);
        let enc = encode(&t, WireCodec::F16);
        let bound = error_bound(WireCodec::F16, &t);
        assert!(
            enc.accuracy_delta <= bound,
            "{} > {bound}",
            enc.accuracy_delta
        );
        assert!(
            enc.accuracy_delta > 0.0,
            "random data must quantize lossily"
        );
        // And the wire shrinks to ~half.
        assert!(enc.ratio() < 0.55);
    }

    #[test]
    fn i8_error_within_declared_bound() {
        let t = Tensor::random(3, 9, 9, 23);
        let enc = encode(&t, WireCodec::I8);
        let bound = error_bound(WireCodec::I8, &t);
        assert!(
            enc.accuracy_delta <= bound,
            "{} > {bound}",
            enc.accuracy_delta
        );
        assert!(enc.ratio() < 0.3);
    }

    #[test]
    fn i8_constant_tensor_is_exact() {
        let t = Tensor::filled(2, 3, 3, 1.25);
        let enc = encode(&t, WireCodec::I8);
        assert_eq!(enc.accuracy_delta, 0.0);
        assert_eq!(decode(enc.bytes).unwrap().data(), t.data());
    }

    #[test]
    fn f16_conversion_matches_known_values() {
        for (x, bits) in [
            (0.0f32, 0x0000u16),
            (1.0, 0x3C00),
            (-2.0, 0xC000),
            (65504.0, 0x7BFF),
            (6.1035156e-5, 0x0400), // smallest normal
            (5.9604645e-8, 0x0001), // smallest subnormal
            (0.333_251_95, 0x3555),
        ] {
            assert_eq!(f32_to_f16_bits(x), bits, "{x}");
            assert_eq!(f16_bits_to_f32(bits), x, "{bits:#x}");
        }
    }

    #[test]
    fn corrupt_codec_frames_are_typed_errors() {
        let t = Tensor::random(2, 4, 4, 5);
        let enc = encode(&t, WireCodec::Lossless);
        let cut = enc.bytes.slice(0..enc.bytes.len() - 1);
        assert!(decode(cut).is_err());
        let mut bad_tag = enc.bytes.to_vec();
        bad_tag[4] = 99;
        assert_eq!(decode(Bytes::from(bad_tag)), Err(WireError::BadHeader));
        assert_eq!(
            decode(Bytes::from_static(&[1, 2, 3])),
            Err(WireError::Truncated)
        );
    }

    #[test]
    fn rle_roundtrips_edge_shapes() {
        for src in [
            vec![],
            vec![7u8],
            vec![0u8; 1000],
            (0..=255u8).collect::<Vec<_>>(),
            vec![1, 1, 2, 2, 3, 3, 3, 0, 0, 0, 0, 9],
        ] {
            let packed = rle_compress(&src);
            assert_eq!(rle_decompress(&packed, src.len()).unwrap(), src);
        }
    }

    #[test]
    fn nominal_profiles_are_sane() {
        assert!(profile(WireCodec::Raw).is_raw());
        for codec in [WireCodec::Lossless, WireCodec::F16, WireCodec::I8] {
            let p = profile(codec);
            assert!(p.ratio < 1.0 && p.ratio > 0.0);
            assert!(
                p.encode_s_per_mb > p.decode_s_per_mb,
                "{codec}: codecs are asymmetric by design"
            );
        }
    }

    #[test]
    fn measured_profile_reflects_achieved_ratio() {
        let t = activationish(2);
        let p = measured_profile(WireCodec::Lossless, &t, &Clock::real());
        let enc = encode(&t, WireCodec::Lossless);
        assert!((p.ratio - enc.ratio()).abs() < 1e-12);
        assert!(p.encode_s_per_mb >= 0.0 && p.decode_s_per_mb >= 0.0);
        assert!(measured_profile(WireCodec::Raw, &t, &Clock::real()).is_raw());
    }
}
