//! Real pipelined stream execution over a deployed plan.
//!
//! The discrete-event simulator ([`crate::pipeline`]) *predicts* how a
//! deployment behaves under a frame stream; this module *measures* it.
//! [`StreamPipeline`] turns the plan's tier segments (device → edge →
//! cloud) into long-lived worker **pools** connected by **bounded**
//! channels: frame `N+1` starts on the device stage while frame `N` is
//! still on the edge stage, so sustained throughput is governed by the
//! slowest stage rather than the end-to-end sum — exactly the
//! bottleneck phenomenon the paper's VSM attacks ("the node with the
//! most processing time becomes the bottleneck", §I). A stage may run
//! several workers ([`PoolOptions`]) so a slow tier holds multiple
//! frames in flight, and an optional batching front-end
//! ([`BatchOptions`]) coalesces admitted frames into one executor call;
//! per-stage resequencers keep results in submission order and outputs
//! bit-identical to the single-worker, unbatched pipeline. Pools resize
//! **live** ([`StreamPipeline::resize_pool`]) at the same lossless frame
//! boundary plan swaps use — the apply end of queue-depth-driven
//! autoscaling (`AutoscalePolicy` in [`crate::adapt`]).
//!
//! Design notes:
//!
//! - **Admission control.** Every inter-stage queue is a bounded channel
//!   ([`crossbeam::channel::bounded`]); [`StreamPipeline::submit`] is
//!   non-blocking and reports [`SubmitError::Backpressure`] once the
//!   ingress queue fills, so an overloaded pipeline sheds frames at the
//!   door instead of hoarding unbounded memory.
//! - **Prebuilt weights.** Each stage owns a
//!   [`d3_model::SegmentExecutor`] whose operators (and weights) were
//!   materialized once at session open; the per-frame cost is pure
//!   tensor arithmetic. When the plan tiled the edge segment's conv
//!   runs, the edge stage instead holds prebuilt VSM tile executors
//!   (plus prebuilt operators for its untiled members) — still zero
//!   per-frame weight construction.
//! - **Live telemetry.** Each stage worker periodically publishes a
//!   [`TelemetrySnapshot`] (measured compute per frame, ingress queue
//!   depth) over a bounded channel; tap it mid-stream with
//!   [`StreamPipeline::telemetry`]. Producers drop snapshots when no one
//!   drains — telemetry never backpressures the data path.
//! - **Live reconfiguration.** [`StreamPipeline::apply_plan`] swaps the
//!   running pipeline onto a controller-emitted [`PlanUpdate`] *without
//!   dropping a frame*: admissions pause, in-flight frames drain to a
//!   reorder buffer at a frame boundary, stages whose segment did not
//!   change keep their prebuilt executors (weights and all), changed
//!   stages are rebuilt, and the stream resumes. Frame ids keep
//!   increasing across the swap and results stay in submission order.
//! - **Shared metrics shape.** Closing the pipeline yields a
//!   [`StreamReport`] whose [`StreamStats`] has the *same shape* the
//!   simulator emits (p50/p95/max latency, throughput, interleaved
//!   stage/link utilization), so predicted and measured pipelines are
//!   directly comparable.
//! - **Losslessness.** Tensors cross stages through the [`crate::wire`]
//!   codec, and stage executors reuse the deployment's weight seed:
//!   streamed outputs are bit-identical to one-shot
//!   [`crate::run_distributed`] / single-node inference — before,
//!   during and after a plan swap.
//! - **Wire codecs.** Each inter-tier link can carry a [`WireCodec`]
//!   ([`StreamOptions::codec`], switchable live through
//!   [`StreamPipeline::set_link_codec`]): crossing tensors are encoded
//!   through [`crate::codec`] instead of the raw wire format, frames
//!   stay self-describing (decode dispatches on the frame header, so a
//!   mid-stream switch needs no quiesce), the prober and link shaping
//!   account **on-wire** (post-codec) bytes, and the closing
//!   [`StreamReport`] carries the raw/wire byte ledger plus the worst
//!   lossy-codec accuracy delta.
//!
//! ## Session multiplexing
//!
//! One pipeline serves **many sessions at once** — the resident
//! stage-pool set is shared, so thread count stays O(pool workers), not
//! O(sessions). Construction creates a *root* session
//! ([`StreamPipeline::root_session`], fair-share weight from
//! [`StreamOptions::weight`]); [`StreamPipeline::attach_session`] adds
//! more without spawning anything. All plain frame methods
//! ([`submit`](StreamPipeline::submit), [`recv`](StreamPipeline::recv),
//! …) are the root session's view; the `*_as` variants
//! ([`submit_as`](StreamPipeline::submit_as),
//! [`recv_as`](StreamPipeline::recv_as), …) take an explicit
//! [`SessionId`]. The multiplexing contract, enforced by the
//! model-checked [`flow::SessionMux`]:
//!
//! - **Per-session order, bit-identical.** Each session receives
//!   exactly its own frames, in its own submission order (its
//!   [`FrameId`]s are a dense `0, 1, 2, …`), each bit-identical to solo
//!   inference — regardless of how the shared stages interleave
//!   sessions, and across plan swaps, pool resizes and codec switches.
//!   A reconfiguration quiesces the shared pipeline **exactly once**
//!   while every attached session stays lossless.
//! - **Weighted-fair admission.** The shared gate grants session *i* an
//!   in-flight quota `max(1, floor(capacity · wᵢ / Σw))`; saturating
//!   your own share throttles only you
//!   ([`SubmitError::Backpressure`]), and the floor of one keeps every
//!   session admissible — starvation-free by construction.
//! - **Cross-session batching.** The size-or-deadline batcher
//!   ([`BatchOptions`]) coalesces over the shared ingress stream, so
//!   co-resident trickles fill batches together.
//! - **Per-session accounting.** [`StreamPipeline::session_stats`]
//!   reports a live [`SessionStats`] (frames, delivery-latency
//!   p50/p99, throughput, `drops` — always 0); the closing
//!   [`StreamReport::sessions`] carries one per still-attached session
//!   next to the aggregate.
//!
//! ```
//! use d3_engine::stream::{StreamOptions, StreamPipeline};
//! use d3_engine::Deployment;
//! use d3_partition::{EvenSplit, Partitioner, Problem};
//! use d3_simnet::{NetworkCondition, TierProfiles};
//! use d3_tensor::Tensor;
//! use std::sync::Arc;
//!
//! let g = Arc::new(d3_model::zoo::tiny_cnn(16));
//! let problem = Problem::new(g.clone(), &TierProfiles::paper_testbed(),
//!     NetworkCondition::WiFi);
//! let plan = EvenSplit.partition(&problem).unwrap();
//! let deployment = Deployment::new(&problem, plan, None);
//! let pipeline = StreamPipeline::new(
//!     g, 7, &deployment, None, StreamOptions::new().weight(3.0)).unwrap();
//!
//! // A second session shares the same worker threads, at 1/4 of the
//! // admission capacity (weights 3:1).
//! let light = pipeline.attach_session(1.0);
//! pipeline.submit_blocking_as(light, &Tensor::random(3, 16, 16, 1)).unwrap();
//! pipeline.submit_blocking(&Tensor::random(3, 16, 16, 2)).unwrap(); // root
//! let (id, _out) = pipeline.recv_as(light).unwrap();
//! assert_eq!(id.0, 0); // the light session's own dense sequence
//! let report = pipeline.close();
//! assert_eq!(report.sessions.len(), 2);
//! ```

use crate::adapt::PlanUpdate;
use crate::clock::{Clock, Stamp};
use crate::codec::{self, WireCodec};
use crate::deploy::{Deployment, VsmConfig};
use crate::flow::{self, Coalesce, MuxAdmitError, SessionId};
use crate::link::{self, Link, LinkMsg, RemoteOptions, SocketLink};
use crate::pipeline::{percentile, simulate_stream, StageSpec, StreamStats};
use crate::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use crate::sync::{self, Mutex};
use crate::telemetry::{Observation, TelemetrySnapshot, TelemetryTap};
use crate::wire::{self, measured_mbps, shaped_delay};
use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use d3_model::{
    crossing_tensors, walk_segment, DnnGraph, Executor, LayerOp, NodeId, SegmentExecutor,
};
use d3_partition::Assignment;
use d3_simnet::{LinkRates, NetworkCondition, Tier};
use d3_tensor::Tensor;
use d3_vsm::TiledRuns;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Bound of the telemetry snapshot queue; producers drop (never block)
/// once it fills.
const TELEMETRY_DEPTH: usize = 64;

/// How long one blocking-recv step waits on the shared result queue
/// before re-checking the session's outbox. Receivers park on the
/// channel, so a completion wakes them immediately; the slice only
/// bounds how long a receiver can miss a frame that a *concurrent*
/// receiver routed into its outbox while it was parked.
const RECV_SLICE: Duration = Duration::from_millis(1);

/// Identifier of one admitted frame, as its submitting session sees it:
/// dense and increasing per session (0, 1, 2, …; rejected submissions
/// do **not** consume ids). Inside the pipeline frames travel under a
/// pipeline-wide dense global id minted at the shared admission gate
/// ([`flow::SessionMux`]) — the per-stage resequencers rely on that
/// global contiguity to restore submission order under pooled workers,
/// and the mux maps completions back to `(session, seq)` on delivery.
/// With a single (root) session the two id spaces coincide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FrameId(pub u64);

impl std::fmt::Display for FrameId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "frame#{}", self.0)
    }
}

/// How many resident workers one pipeline stage runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolSize {
    /// Derive the worker count from the host's available parallelism
    /// (one third of the cores, clamped to `1..=4` — three stages share
    /// the machine).
    Auto,
    /// Exactly this many workers (must be positive).
    Fixed(usize),
}

impl PoolSize {
    /// Resolves to a concrete worker count.
    ///
    /// # Errors
    ///
    /// [`StreamBuildError::ZeroPool`] for `Fixed(0)`.
    fn resolve(self) -> Result<usize, StreamBuildError> {
        match self {
            PoolSize::Auto => {
                let cores = std::thread::available_parallelism().map_or(1, usize::from);
                Ok((cores / 3).clamp(1, 4))
            }
            PoolSize::Fixed(0) => Err(StreamBuildError::ZeroPool),
            PoolSize::Fixed(n) => Ok(n),
        }
    }
}

/// Per-stage worker-pool sizing: each tier's stage runs this many
/// cloned-executor workers pulling frames from its inbound queue. More
/// workers let one stage hold several frames in flight — the knob that
/// un-bottlenecks a slow tier — while a per-stage resequencer keeps
/// results in submission order, bit-identical to `pool = 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolOptions {
    /// Device-stage workers.
    pub device: PoolSize,
    /// Edge-stage workers.
    pub edge: PoolSize,
    /// Cloud-stage workers.
    pub cloud: PoolSize,
}

impl Default for PoolOptions {
    fn default() -> Self {
        Self::uniform(1)
    }
}

impl PoolOptions {
    /// The same fixed worker count on every stage.
    #[must_use]
    pub fn uniform(workers: usize) -> Self {
        Self {
            device: PoolSize::Fixed(workers),
            edge: PoolSize::Fixed(workers),
            cloud: PoolSize::Fixed(workers),
        }
    }

    /// [`PoolSize::Auto`] on every stage.
    #[must_use]
    pub fn auto() -> Self {
        Self {
            device: PoolSize::Auto,
            edge: PoolSize::Auto,
            cloud: PoolSize::Auto,
        }
    }

    /// Sets one tier's pool size.
    #[must_use]
    pub fn with(mut self, tier: Tier, size: PoolSize) -> Self {
        match tier {
            Tier::Device => self.device = size,
            Tier::Edge => self.edge = size,
            Tier::Cloud => self.cloud = size,
        }
        self
    }

    /// Resolves every tier to a concrete worker count.
    fn resolve(self) -> Result<[usize; 3], StreamBuildError> {
        Ok([
            self.device.resolve()?,
            self.edge.resolve()?,
            self.cloud.resolve()?,
        ])
    }
}

/// Batching front-end configuration: coalesce admitted frames into one
/// multi-frame executor call per stage. A batch closes when it reaches
/// [`max_frames`](Self::max_frames) or when
/// [`deadline`](Self::deadline) elapses after its first frame — the
/// classic size-or-timeout rule, so a trickle of traffic never stalls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchOptions {
    /// Largest number of frames coalesced into one batch. `1` disables
    /// batching (the default); `0` is rejected at build time.
    pub max_frames: usize,
    /// How long the batcher waits after a batch's first frame for more
    /// frames to arrive. Zero coalesces only frames already queued.
    pub deadline: Duration,
}

impl Default for BatchOptions {
    fn default() -> Self {
        Self {
            max_frames: 1,
            deadline: Duration::ZERO,
        }
    }
}

impl BatchOptions {
    /// Batching disabled (every frame travels alone).
    #[must_use]
    pub fn off() -> Self {
        Self::default()
    }

    /// Batches of up to `max_frames`.
    ///
    /// # Panics
    ///
    /// Panics when `max_frames` is zero.
    #[must_use]
    pub fn frames(max_frames: usize) -> Self {
        assert!(max_frames > 0, "batch size must be positive");
        Self {
            max_frames,
            deadline: Duration::ZERO,
        }
    }

    /// Sets the batch-forming deadline.
    #[must_use]
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = deadline;
        self
    }
}

/// Fault-injection knob: stall one tier's stage before computing every
/// `every`-th frame. This models a latency-bound stage — a saturated
/// accelerator, an RPC hop, a co-tenant stealing cycles — without
/// touching the arithmetic, so outputs stay bit-identical. It is how
/// the test suite builds a *deliberately slow worker* (order-preservation
/// under pooling) and a device-bottlenecked pipeline whose pool speedup
/// does not depend on host core count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedDelay {
    /// The stage to slow down.
    pub tier: Tier,
    /// Apply the delay to frames whose id is a multiple of this
    /// (`1` = every frame). Must be positive.
    pub every: u64,
    /// How long to stall per affected frame.
    pub delay: Duration,
}

/// Simulated per-link bandwidth: the sending stage sleeps the
/// serialization delay ([`crate::wire::shaped_delay`]) of every transfer
/// before handing it downstream, so the in-process channels behave like
/// bandwidth-limited wires. `f64::INFINITY` leaves a link unshaped.
/// This is what gives the [`BandwidthProber`](ProbeOptions) something
/// real to measure in tests and latency-bound benchmarks — and it is
/// host-independent, like the stage-delay fault injection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkShaping {
    /// Device→edge link rate in Mbit/s (`INFINITY` = unshaped).
    pub device_edge_mbps: f64,
    /// Edge→cloud (backbone) link rate in Mbit/s (`INFINITY` = unshaped).
    pub edge_cloud_mbps: f64,
}

impl LinkShaping {
    /// No shaping on either link.
    #[must_use]
    pub fn unshaped() -> Self {
        Self {
            device_edge_mbps: f64::INFINITY,
            edge_cloud_mbps: f64::INFINITY,
        }
    }

    /// Shapes only the edge→cloud backbone.
    #[must_use]
    pub fn backbone(mbps: f64) -> Self {
        Self {
            device_edge_mbps: f64::INFINITY,
            edge_cloud_mbps: mbps,
        }
    }

    /// Shapes both links.
    #[must_use]
    pub fn links(device_edge_mbps: f64, edge_cloud_mbps: f64) -> Self {
        Self {
            device_edge_mbps,
            edge_cloud_mbps,
        }
    }

    /// The serialization delay of `bytes` leaving stage `rank`
    /// (0: device→edge, 1: edge→cloud; the cloud has no out-link).
    fn delay(&self, out_link: usize, bytes: u64) -> Duration {
        match out_link {
            0 => shaped_delay(bytes, self.device_edge_mbps),
            1 => shaped_delay(bytes, self.edge_cloud_mbps),
            _ => Duration::ZERO,
        }
    }
}

/// Bandwidth-prober configuration: measure real inter-stage transfer
/// times and publish the resulting [`Observation::Network`] estimates
/// through the pipeline's telemetry channel — the measured replacement
/// for injected network observations.
///
/// Transfers are timestamped **piggyback** on frame sends (every
/// [`every`](Self::every)-th frame's batch carries a stamp; the
/// receiving stage turns it into a rate sample), so a busy stream is
/// probed for free. An optional **idle fallback** thread probes a link
/// with a synthetic payload whenever no stamped transfer crossed it for
/// [`idle`](Self::idle), so estimates stay fresh through traffic gaps.
/// Samples are averaged over [`window`](Self::window)-sized windows and
/// folded into a belief seeded from [`initial`](Self::initial); each
/// published observation carries the full belief, so a controller
/// ingests it exactly like an injected condition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeOptions {
    /// Stamp every Nth frame's transfer (by frame id; `1` = every
    /// frame, `0` disables piggyback probing).
    pub every: u64,
    /// Samples averaged per published estimate (per link).
    pub window: usize,
    /// Idle-probe fallback period: when a link saw no sample for this
    /// long, probe it with a synthetic payload. `None` disables the
    /// fallback thread.
    pub idle: Option<Duration>,
    /// Synthetic payload size of an idle probe, in bytes.
    pub idle_bytes: u64,
    /// Belief seed. `None` lets the runtime fill in the model's
    /// configured network condition (falling back to Wi-Fi).
    pub initial: Option<NetworkCondition>,
}

impl Default for ProbeOptions {
    fn default() -> Self {
        Self {
            every: 4,
            window: 4,
            idle: None,
            idle_bytes: 64 * 1024,
            initial: None,
        }
    }
}

impl ProbeOptions {
    /// Default probing: piggyback every 4th frame, 4-sample windows, no
    /// idle fallback.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the piggyback period (frames between stamped transfers).
    #[must_use]
    pub fn every(mut self, frames: u64) -> Self {
        self.every = frames;
        self
    }

    /// Sets the per-link averaging window.
    ///
    /// # Panics
    ///
    /// Panics when `samples` is zero.
    #[must_use]
    pub fn window(mut self, samples: usize) -> Self {
        assert!(samples > 0, "probe window must be positive");
        self.window = samples;
        self
    }

    /// Enables the idle-probe fallback with the given period.
    #[must_use]
    pub fn idle_fallback(mut self, period: Duration) -> Self {
        self.idle = Some(period);
        self
    }

    /// Sets the belief seed (the condition estimates start from).
    #[must_use]
    pub fn initial(mut self, net: NetworkCondition) -> Self {
        self.initial = Some(net);
        self
    }
}

/// Configuration of a streaming session.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamOptions {
    /// Bound of every inter-stage queue (and of the result queue). Depth
    /// trades latency under overload for tolerance to jitter; once the
    /// ingress queue holds this many frames, [`StreamPipeline::submit`]
    /// reports backpressure. Later queues are bounded in *messages*
    /// (single frames, or batches when batching is on).
    pub capacity: usize,
    /// Frames per telemetry window: every stage worker publishes a
    /// [`TelemetrySnapshot`] after this many processed frames. `0`
    /// disables telemetry emission.
    pub telemetry_every: u64,
    /// Per-stage worker pools (default: one worker per stage).
    pub pool: PoolOptions,
    /// Batching front-end (default: off).
    pub batching: BatchOptions,
    /// Optional injected per-frame stage delay (fault injection for
    /// tests and latency-bound benchmarks; default: none).
    pub chaos: Option<InjectedDelay>,
    /// Optional simulated per-link bandwidth (default: unshaped).
    pub shaping: Option<LinkShaping>,
    /// Optional bandwidth prober publishing measured
    /// [`Observation::Network`] estimates (default: off).
    pub probe: Option<ProbeOptions>,
    /// Wire codec per inter-tier link (`[device→edge, edge→cloud]`,
    /// default: [`WireCodec::Raw`] on both). Crossing tensors leaving a
    /// stage are encoded with the link's codec; frames are
    /// self-describing, so links may differ and switch live
    /// ([`StreamPipeline::set_link_codec`]).
    pub codec: [WireCodec; 2],
    /// Per-tier remote transport (`[edge, cloud]`; default: both
    /// in-process). A remote tier's stage runs in a separate
    /// stage-server process reached over the configured
    /// [`LinkAddr`](crate::link::LinkAddr); the pipeline spawns a proxy
    /// in its place that forwards batches, replays un-acked ones across
    /// reconnects, and reports the peer failed once it stays down past
    /// the deadline (see [`StreamPipeline::failed_remote`]). The device
    /// tier owns the input and always runs locally.
    pub remote: [Option<crate::link::RemoteOptions>; 2],
    /// Fair-share weight of the pipeline's **root session** (default
    /// 1.0). Every pipeline is born with one attached session; more
    /// attach via [`StreamPipeline::attach_session`], and each session
    /// may hold at most `max(1, floor(capacity · w / Σw))` frames in
    /// flight — weighted-fair admission with a starvation-free floor.
    pub weight: f64,
}

impl Default for StreamOptions {
    fn default() -> Self {
        Self {
            capacity: 8,
            telemetry_every: 32,
            pool: PoolOptions::default(),
            batching: BatchOptions::default(),
            chaos: None,
            shaping: None,
            probe: None,
            codec: [WireCodec::Raw; 2],
            remote: [None, None],
            weight: 1.0,
        }
    }
}

impl StreamOptions {
    /// Default options (queue capacity 8, telemetry every 32 frames,
    /// one worker per stage, batching off).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the per-stage queue bound.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    #[must_use]
    pub fn capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        self.capacity = capacity;
        self
    }

    /// Sets the telemetry window (frames per snapshot; 0 disables).
    #[must_use]
    pub fn telemetry_every(mut self, frames: u64) -> Self {
        self.telemetry_every = frames;
        self
    }

    /// Sets the per-stage worker pools.
    #[must_use]
    pub fn pool(mut self, pool: PoolOptions) -> Self {
        self.pool = pool;
        self
    }

    /// Sets one tier's worker count (shorthand for [`pool`](Self::pool)).
    ///
    /// # Panics
    ///
    /// Panics when `workers` is zero.
    #[must_use]
    pub fn workers(mut self, tier: Tier, workers: usize) -> Self {
        assert!(workers > 0, "worker pool must be positive");
        self.pool = self.pool.with(tier, PoolSize::Fixed(workers));
        self
    }

    /// Enables the batching front-end.
    #[must_use]
    pub fn batching(mut self, batching: BatchOptions) -> Self {
        self.batching = batching;
        self
    }

    /// Injects a per-frame stage delay (see [`InjectedDelay`]).
    ///
    /// # Panics
    ///
    /// Panics when `every` is zero.
    #[must_use]
    pub fn inject_delay(mut self, tier: Tier, every: u64, delay: Duration) -> Self {
        assert!(every > 0, "delay period must be positive");
        self.chaos = Some(InjectedDelay { tier, every, delay });
        self
    }

    /// Simulates bandwidth-limited inter-stage links (see
    /// [`LinkShaping`]).
    #[must_use]
    pub fn shape_links(mut self, shaping: LinkShaping) -> Self {
        self.shaping = Some(shaping);
        self
    }

    /// Enables the bandwidth prober (see [`ProbeOptions`]).
    #[must_use]
    pub fn probe(mut self, probe: ProbeOptions) -> Self {
        self.probe = Some(probe);
        self
    }

    /// Uses `codec` on both inter-tier links.
    #[must_use]
    pub fn codec(mut self, codec: WireCodec) -> Self {
        self.codec = [codec; 2];
        self
    }

    /// Uses `codec` on one link (0: device→edge, 1: edge→cloud).
    ///
    /// # Panics
    ///
    /// Panics when `link` is not 0 or 1.
    #[must_use]
    pub fn link_codec(mut self, link: usize, codec: WireCodec) -> Self {
        assert!(link < 2, "link must be 0 (device→edge) or 1 (edge→cloud)");
        self.codec[link] = codec;
        self
    }

    /// Runs one tier's stage in a remote stage-server process (see
    /// [`RemoteOptions`](crate::link::RemoteOptions)). The device tier
    /// owns the raw input and cannot be remote.
    ///
    /// # Panics
    ///
    /// Panics for [`Tier::Device`].
    #[must_use]
    pub fn remote(mut self, tier: Tier, options: crate::link::RemoteOptions) -> Self {
        assert!(
            tier != Tier::Device,
            "the device tier owns the input and must run locally"
        );
        self.remote[tier.rank() - 1] = Some(options);
        self
    }

    /// Sets the root session's fair-share weight (see
    /// [`StreamOptions::weight`]).
    ///
    /// # Panics
    ///
    /// Panics when `weight` is not a positive finite number.
    #[must_use]
    pub fn weight(mut self, weight: f64) -> Self {
        assert!(
            weight.is_finite() && weight > 0.0,
            "session weight must be positive and finite"
        );
        self.weight = weight;
        self
    }
}

/// Why a deployment cannot run as a streaming pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamBuildError {
    /// A DAG link flows backwards against the device→edge→cloud pipeline
    /// (the plan violates the paper's Proposition 1 monotonicity).
    NonMonotone {
        /// Producer vertex.
        producer: NodeId,
        /// Consumer vertex placed on an earlier tier.
        consumer: NodeId,
    },
    /// The graph has several output vertices.
    MultiOutput {
        /// Output count.
        outputs: usize,
    },
    /// The plan covers a different vertex count than the streaming
    /// graph (e.g. a [`PlanUpdate`] built for another model).
    PlanMismatch {
        /// Vertices in the streaming graph.
        expected: usize,
        /// Vertices the plan covers.
        got: usize,
    },
    /// [`StreamOptions::capacity`] was set to zero (the field is public;
    /// the [`capacity`](StreamOptions::capacity) builder rejects this
    /// earlier).
    ZeroCapacity,
    /// A worker pool was sized [`PoolSize::Fixed(0)`](PoolSize::Fixed)
    /// (the [`workers`](StreamOptions::workers) builder rejects this
    /// earlier).
    ZeroPool,
    /// [`BatchOptions::max_frames`] was set to zero (the
    /// [`frames`](BatchOptions::frames) builder rejects this earlier).
    ZeroBatch,
    /// [`StreamOptions::weight`] was not a positive finite number (the
    /// [`weight`](StreamOptions::weight) builder rejects this earlier).
    ZeroWeight,
}

impl std::fmt::Display for StreamBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamBuildError::NonMonotone { producer, consumer } => write!(
                f,
                "link {producer} -> {consumer} flows backwards against the pipeline"
            ),
            StreamBuildError::MultiOutput { outputs } => {
                write!(
                    f,
                    "streaming requires a single-output graph (has {outputs})"
                )
            }
            StreamBuildError::PlanMismatch { expected, got } => write!(
                f,
                "plan covers {got} vertices but the streaming graph has {expected}"
            ),
            StreamBuildError::ZeroCapacity => write!(f, "queue capacity must be positive"),
            StreamBuildError::ZeroPool => write!(f, "worker pool must be positive"),
            StreamBuildError::ZeroBatch => write!(f, "batch size must be positive"),
            StreamBuildError::ZeroWeight => {
                write!(f, "session weight must be positive and finite")
            }
        }
    }
}

impl std::error::Error for StreamBuildError {}

/// Why a frame was not admitted.
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitError {
    /// The ingress queue is full; retry after draining results.
    Backpressure,
    /// The input tensor does not match the model's input shape.
    ShapeMismatch {
        /// Expected `(c, h, w)`.
        expected: (usize, usize, usize),
        /// Received `(c, h, w)`.
        got: (usize, usize, usize),
    },
    /// The stage workers are gone — a worker died mid-stream (e.g. on a
    /// corrupt frame), so the session can no longer admit frames.
    Closed,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Backpressure => write!(f, "stream ingress queue is full"),
            SubmitError::ShapeMismatch { expected, got } => {
                write!(
                    f,
                    "input shape {got:?} does not match model (expects {expected:?})"
                )
            }
            SubmitError::Closed => write!(f, "stream pipeline is closed (a stage worker died)"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Internal admission verdict: on a full queue the payload comes back so
/// the caller can retry without re-encoding.
enum AdmitError {
    Full(Vec<(NodeId, Bytes)>),
    Closed,
}

/// Why [`StreamPipeline::recv`] returned no frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamRecvError {
    /// Every admitted frame has already been received.
    NoFramesInFlight,
    /// A stage worker died with frames still in flight (the channel
    /// chain collapsed), so the awaited frame can never arrive.
    WorkerDied,
}

impl std::fmt::Display for StreamRecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamRecvError::NoFramesInFlight => write!(f, "no frames in flight"),
            StreamRecvError::WorkerDied => {
                write!(f, "a stage worker died with frames in flight")
            }
        }
    }
}

impl std::error::Error for StreamRecvError {}

/// One frame travelling between stages: crossing tensors in wire format.
struct Frame {
    id: u64,
    submitted_at: Stamp,
    payload: Vec<(NodeId, Bytes)>,
}

/// A probe timestamp piggybacked on one inter-stage transfer: when the
/// producing stage handed the batch to the wire, and how many payload
/// bytes it carried — both raw (pre-codec) and on-wire (post-codec).
/// The consuming stage turns it into a bandwidth sample; the *wire*
/// bytes are what crossed the link, so they are what the rate estimate
/// divides by.
#[derive(Clone, Copy)]
struct LinkStamp {
    sent_at: Stamp,
    /// Pre-codec payload bytes (raw tensor wire size).
    raw_bytes: u64,
    /// Post-codec payload bytes (what actually crossed the link).
    wire_bytes: u64,
}

/// Live per-link codec selection, shared between the pipeline handle and
/// every stage worker: one atomic tag per inter-tier link, read once per
/// outgoing batch. Frames are self-describing ([`codec::decode`]
/// dispatches on the frame header), so a switch needs no quiesce — the
/// next batch simply leaves in the new format.
struct LinkCodecs([AtomicU8; 2]);

impl LinkCodecs {
    fn new(initial: [WireCodec; 2]) -> Self {
        Self([
            AtomicU8::new(initial[0].to_tag()),
            AtomicU8::new(initial[1].to_tag()),
        ])
    }

    /// The codec currently selected for `link` (out-of-range links read
    /// as raw — the cloud stage has no out-link).
    fn get(&self, link: usize) -> WireCodec {
        self.0
            .get(link)
            .and_then(|tag| WireCodec::from_tag(tag.load(Ordering::Relaxed)))
            .unwrap_or(WireCodec::Raw)
    }

    fn set(&self, link: usize, codec: WireCodec) {
        if let Some(tag) = self.0.get(link) {
            tag.store(codec.to_tag(), Ordering::Relaxed);
        }
    }

    fn snapshot(&self) -> [WireCodec; 2] {
        [self.get(0), self.get(1)]
    }
}

/// Live per-link shaping selection (the [`LinkCodecs`] pattern applied
/// to bandwidth): the current [`LinkShaping`] stored as two atomically
/// updatable `f64` bit patterns, shared by the pipeline handle, every
/// stage-worker generation, and the idle prober. This is what lets
/// [`StreamPipeline::set_link_shaping`] replay a recorded bandwidth
/// trace against a running stream — no quiesce, the next transfer
/// simply serializes at the new rate. A pipeline built without
/// [`StreamOptions::shape_links`] holds the unshaped (infinite-rate)
/// value, whose serialization delay is zero by construction.
struct LiveShaping([AtomicU64; 2]);

impl LiveShaping {
    fn new(initial: Option<LinkShaping>) -> Self {
        let s = initial.unwrap_or_else(LinkShaping::unshaped);
        Self([
            AtomicU64::new(s.device_edge_mbps.to_bits()),
            AtomicU64::new(s.edge_cloud_mbps.to_bits()),
        ])
    }

    /// The shaping currently in force. Each link rate is individually
    /// atomic; a trace step rewriting both links may be observed
    /// half-applied by one in-flight transfer, which the
    /// serialization-delay model tolerates (each transfer reads one
    /// link's rate exactly once).
    fn get(&self) -> LinkShaping {
        LinkShaping {
            device_edge_mbps: f64::from_bits(self.0[0].load(Ordering::Relaxed)),
            edge_cloud_mbps: f64::from_bits(self.0[1].load(Ordering::Relaxed)),
        }
    }

    fn set(&self, shaping: LinkShaping) {
        self.0[0].store(shaping.device_edge_mbps.to_bits(), Ordering::Relaxed);
        self.0[1].store(shaping.edge_cloud_mbps.to_bits(), Ordering::Relaxed);
    }
}

/// Cumulative byte ledger of one probed link: raw (pre-codec) bytes
/// alongside on-wire (post-codec) bytes, so bandwidth beliefs and
/// compression accounting stay separable. With no codec active the two
/// sides are equal.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkTraffic {
    /// Pre-codec payload bytes carried over stamped transfers.
    pub raw_bytes: u64,
    /// Post-codec payload bytes carried over stamped transfers.
    pub wire_bytes: u64,
}

/// The unit travelling the inter-stage queues: one or more frames with
/// contiguous ascending ids (singletons unless batching is on).
struct BatchMsg {
    frames: Vec<Frame>,
    /// Present on (a sampled subset of) inter-stage transfers when the
    /// bandwidth prober is on; always `None` at ingress.
    stamp: Option<LinkStamp>,
}

impl BatchMsg {
    /// Id of the first frame — the resequencing key.
    fn first_id(&self) -> u64 {
        self.frames[0].id
    }
}

impl Coalesce for BatchMsg {
    fn units(&self) -> usize {
        self.frames.len()
    }

    /// Ingress messages are stampless, so coalescing drops nothing.
    fn absorb(&mut self, other: Self) {
        self.frames.extend(other.frames);
    }
}

/// Shared bandwidth-prober state: the per-link sample windows and the
/// current belief (the last published [`LinkRates`], seeded from the
/// configured condition). One instance per pipeline, shared by every
/// stage worker and the idle-fallback thread.
struct ProbeShared {
    rates: LinkRates,
    /// Pending rate samples per link (0: device→edge, 1: edge→cloud).
    samples: [Vec<f64>; 2],
    /// When each link last produced a sample (drives the idle fallback).
    last_sample: [Option<Stamp>; 2],
    /// Cumulative raw/on-wire byte ledger per link.
    traffic: [LinkTraffic; 2],
}

/// The measured-bandwidth prober: accumulates per-link transfer samples
/// and publishes windowed [`Observation::Network`] estimates over the
/// telemetry channel (best-effort, like every telemetry producer).
struct Prober {
    shared: Mutex<ProbeShared>,
    window: usize,
    clock: Clock,
    telemetry: Sender<TelemetrySnapshot>,
}

impl Prober {
    fn new(
        initial: NetworkCondition,
        window: usize,
        clock: Clock,
        telemetry: Sender<TelemetrySnapshot>,
    ) -> Self {
        Self {
            shared: Mutex::new(ProbeShared {
                rates: initial.rates(),
                samples: [Vec::new(), Vec::new()],
                last_sample: [None; 2],
                traffic: [LinkTraffic::default(); 2],
            }),
            window: window.max(1),
            clock,
            telemetry,
        }
    }

    /// Folds one timestamped transfer into the link's sample window;
    /// when the window fills, updates the belief and publishes it. The
    /// rate divides by the **on-wire** bytes (what actually crossed the
    /// link); the raw side only feeds the [`LinkTraffic`] ledger, so a
    /// codec compressing the payload never inflates the bandwidth
    /// belief.
    fn record(&self, link: usize, raw_bytes: u64, wire_bytes: u64, elapsed: Duration) {
        if wire_bytes == 0 {
            return; // nothing crossed; no information about the link
        }
        let mbps = measured_mbps(wire_bytes, elapsed);
        let mut shared = sync::lock(&self.shared);
        shared.last_sample[link] = Some(self.clock.now());
        shared.traffic[link].raw_bytes += raw_bytes;
        shared.traffic[link].wire_bytes += wire_bytes;
        shared.samples[link].push(mbps);
        if shared.samples[link].len() < self.window {
            return;
        }
        let mean = shared.samples[link].iter().sum::<f64>() / shared.samples[link].len() as f64;
        shared.samples[link].clear();
        match link {
            0 => shared.rates.device_edge_mbps = mean,
            _ => shared.rates.edge_cloud_mbps = mean,
        }
        let net = NetworkCondition::Custom(shared.rates);
        drop(shared);
        let _ = self.telemetry.try_send(TelemetrySnapshot {
            observations: vec![Observation::Network { net }],
        });
    }

    /// Whether `link` produced no sample within `horizon`.
    fn stale(&self, link: usize, horizon: Duration) -> bool {
        let shared = sync::lock(&self.shared);
        shared.last_sample[link].is_none_or(|at| self.clock.now().saturating_sub(at) >= horizon)
    }

    /// The current belief.
    fn rates(&self) -> LinkRates {
        sync::lock(&self.shared).rates
    }

    /// The cumulative raw/on-wire byte ledger per link.
    fn traffic(&self) -> [LinkTraffic; 2] {
        sync::lock(&self.shared).traffic
    }
}

/// The idle-fallback loop: wakes every `period`, and for each link that
/// produced no sample in the last period performs a synthetic shaped
/// transfer of `bytes` and records it — so bandwidth estimates stay
/// fresh while no frames flow. Sleeps in short slices so a dropping
/// pipeline joins it promptly.
fn idle_probe_loop(
    probe: Arc<Prober>,
    stop: Arc<AtomicBool>,
    shaping: Arc<LiveShaping>,
    period: Duration,
    bytes: u64,
    clock: Clock,
) {
    while !stop.load(Ordering::Relaxed) {
        let mut slept = Duration::ZERO;
        while slept < period && !stop.load(Ordering::Relaxed) {
            let slice = (period - slept).min(Duration::from_millis(10));
            // xtask:allow(thread-sleep): the idle-fallback prober's pacing.
            std::thread::sleep(slice);
            slept += slice;
        }
        if stop.load(Ordering::Relaxed) {
            return;
        }
        for link in 0..2usize {
            if !probe.stale(link, period) {
                continue;
            }
            let t0 = clock.now();
            let delay = shaping.get().delay(link, bytes);
            if !delay.is_zero() {
                // xtask:allow(thread-sleep): synthetic shaped transfer.
                std::thread::sleep(delay);
            }
            let elapsed = clock.now().saturating_sub(t0);
            // Synthetic probe payloads never pass a codec: raw == wire.
            probe.record(link, bytes, bytes, elapsed.max(Duration::from_nanos(100)));
        }
    }
}

/// What one worker hands downstream after processing a batch.
enum StageOut {
    /// Crossing tensors for the next stage (non-final stages).
    Forward(BatchMsg),
    /// Finished output tensors (final stage).
    Results(Vec<(FrameId, Tensor)>),
}

/// How a stage executes its segment.
enum StageExec {
    /// Prebuilt-weights executor (device, cloud, and untiled edge).
    Prebuilt(SegmentExecutor),
    /// Edge segment with VSM tile-parallel conv runs, tile executors and
    /// remaining operators prebuilt once per session.
    Vsm(VsmStage),
}

impl StageExec {
    /// The segment members served (ascending) — the reuse key for live
    /// reconfiguration: an executor survives a plan swap iff its member
    /// set is unchanged.
    fn members(&self) -> &[NodeId] {
        match self {
            StageExec::Prebuilt(seg) => seg.members(),
            StageExec::Vsm(stage) => &stage.members,
        }
    }

    /// Executes a whole batch in one call: operator-major through the
    /// prebuilt segment executor (weights loaded once per batch), or
    /// frame-by-frame through the VSM tile executors (tile runs are
    /// already their own parallel unit).
    fn run_batch(&self, boundaries: Vec<HashMap<NodeId, Tensor>>) -> Vec<HashMap<NodeId, Tensor>> {
        match self {
            StageExec::Prebuilt(seg) => seg.run_batch(boundaries),
            StageExec::Vsm(stage) => boundaries.into_iter().map(|b| stage.run(b)).collect(),
        }
    }
}

/// An edge stage with VSM tile parallelism: the streaming counterpart of
/// [`execute_segment`](crate::distributed) with every weight — tiled and
/// untiled alike — materialized once at construction instead of per
/// frame. The tile-run rules themselves (grid clamp, plan-rejection
/// serial fallback, interior skipping) are the shared
/// [`d3_vsm::TiledRuns`].
struct VsmStage {
    graph: Arc<DnnGraph>,
    /// Segment members, ascending (ids are topological).
    members: Vec<NodeId>,
    /// Prepared tileable runs (prebuilt tile executors).
    runs: TiledRuns,
    /// Prebuilt operators for every member outside a tiled run.
    ops: HashMap<NodeId, LayerOp>,
}

impl VsmStage {
    /// Prepares the stage; `None` when the segment has no tileable run
    /// (callers then use a plain prebuilt executor).
    fn new(graph: Arc<DnnGraph>, seed: u64, members: &[NodeId], cfg: VsmConfig) -> Option<Self> {
        let mut sorted = members.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let exec = Executor::new(&graph, seed);
        let runs = TiledRuns::prepare(&exec, &sorted, cfg.grid, cfg.min_run_len);
        if runs.is_empty() {
            return None;
        }
        let ops = sorted
            .iter()
            .filter(|&&id| !runs.is_tiled(id))
            .map(|&id| (id, exec.build_op(id)))
            .collect();
        Some(Self {
            graph,
            members: sorted,
            runs,
            ops,
        })
    }

    /// Executes the segment for one frame; same boundary/crossing
    /// contract as [`SegmentExecutor::run`] (boundary by value — this is
    /// the per-frame hot path), with tileable runs going through their
    /// prebuilt tile executors tile-parallel.
    fn run(&self, boundary: HashMap<NodeId, Tensor>) -> HashMap<NodeId, Tensor> {
        let mut values = boundary;
        walk_segment(
            &self.graph,
            &self.members,
            &mut values,
            |id, values| {
                self.runs
                    .execute(id, values, |rid, inputs| self.ops[&rid].apply(inputs))
            },
            |id, inputs| self.ops[&id].apply(inputs),
        );
        crossing_tensors(&self.graph, &self.members, &values)
    }
}

/// Static per-stage routing plan, shared by every worker of the stage's
/// pool (the executor — weights included — is behind an [`Arc`], so N
/// workers cost one weight materialization).
struct StageCtx {
    /// The stage's tier (telemetry labels).
    tier: Tier,
    exec: Arc<StageExec>,
    /// Payload ids this stage must decode (external inputs of its
    /// segment; for the last stage, also the graph output).
    needed: HashSet<NodeId>,
    /// Payload/output ids a later stage needs: forwarded in wire format.
    forward_ids: HashSet<NodeId>,
    output_node: NodeId,
    is_last: bool,
    /// Simulated out-link bandwidth (the stage sleeps the serialization
    /// delay before forwarding), live-updatable through the pipeline.
    shaping: Arc<LiveShaping>,
    /// Shared bandwidth-prober state, when probing is on.
    probe: Option<Arc<Prober>>,
    /// Stamp every Nth frame's transfer (0 disables piggyback stamps).
    probe_every: u64,
    /// Live per-link codec selection (shared with the pipeline handle).
    codecs: Arc<LinkCodecs>,
    /// The pipeline's clock (busy-time accounting, probe stamps).
    clock: Clock,
}

/// What a stage worker accumulated over its lifetime.
#[derive(Default)]
struct StageMetrics {
    decode_s: f64,
    compute_s: f64,
    encode_s: f64,
    /// Executor calls made (each serves a whole batch).
    batches: u64,
    /// Pre-codec payload bytes this stage forwarded (non-final stages).
    raw_bytes: u64,
    /// Post-codec payload bytes this stage forwarded (non-final stages).
    wire_bytes: u64,
    /// Worst per-tensor accuracy delta a lossy codec introduced on this
    /// stage's out-link (0 while only raw/lossless codecs ran).
    accuracy_delta: f64,
    /// Submit→completion latency per frame (final stage only).
    latencies_s: Vec<f64>,
    /// Completion instant of the last frame (final stage only).
    last_done: Option<Stamp>,
}

impl StageMetrics {
    /// Merges a retiring worker (pool sibling or a generation replaced
    /// by live reconfiguration) into the accumulated totals.
    fn absorb(&mut self, other: StageMetrics) {
        self.decode_s += other.decode_s;
        self.compute_s += other.compute_s;
        self.encode_s += other.encode_s;
        self.batches += other.batches;
        self.raw_bytes += other.raw_bytes;
        self.wire_bytes += other.wire_bytes;
        self.accuracy_delta = self.accuracy_delta.max(other.accuracy_delta);
        self.latencies_s.extend(other.latencies_s);
        self.last_done = match (self.last_done, other.last_done) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }
}

/// Per-stage routing derived from an assignment: segment members plus
/// which payload ids each stage decodes and forwards.
struct Routing {
    /// Segment members per rank, ascending.
    members: Vec<Vec<NodeId>>,
    needed: Vec<HashSet<NodeId>>,
    forward_ids: Vec<HashSet<NodeId>>,
}

/// Validates `assignment` as a forward pipeline over `graph` and derives
/// the stage routing — shared by pipeline construction and live
/// reconfiguration (a bad [`PlanUpdate`] is rejected here *before* the
/// running stream is touched).
fn plan_routing(
    graph: &DnnGraph,
    assignment: &Assignment,
    output_node: NodeId,
) -> Result<Routing, StreamBuildError> {
    if assignment.len() != graph.len() {
        return Err(StreamBuildError::PlanMismatch {
            expected: graph.len(),
            got: assignment.len(),
        });
    }
    for node in graph.nodes() {
        let from = assignment.tier(node.id);
        for &succ in &node.succs {
            if !from.precedes_eq(assignment.tier(succ)) {
                return Err(StreamBuildError::NonMonotone {
                    producer: node.id,
                    consumer: succ,
                });
            }
        }
    }
    // Per-stage routing: which payload ids each stage decodes, and
    // which it forwards for later stages.
    let members: Vec<Vec<NodeId>> = Tier::ALL.iter().map(|t| assignment.segment(*t)).collect();
    let mut needed: Vec<HashSet<NodeId>> = vec![HashSet::new(); 3];
    for (rank, stage_members) in members.iter().enumerate() {
        for &m in stage_members {
            for &p in &graph.node(m).preds {
                if assignment.tier(p).rank() != rank {
                    needed[rank].insert(p);
                }
            }
        }
    }
    // The graph input's tensor is always provided externally (it is
    // the submitted frame), and the final stage must hold the output
    // tensor even when an earlier tier produced it.
    needed[assignment.tier(graph.input()).rank()].insert(graph.input());
    if !members[2].contains(&output_node) {
        needed[2].insert(output_node);
    }
    let forward_ids: Vec<HashSet<NodeId>> = (0..3)
        .map(|s| needed[s + 1..].iter().flatten().copied().collect())
        .collect();
    Ok(Routing {
        members,
        needed,
        forward_ids,
    })
}

/// Builds the executor for one stage (VSM-tiled edge when the segment
/// has tileable runs, plain prebuilt weights otherwise).
fn build_stage_exec(
    graph: &Arc<DnnGraph>,
    seed: u64,
    members: &[NodeId],
    tier: Tier,
    vsm: Option<VsmConfig>,
) -> StageExec {
    if let (Tier::Edge, Some(cfg)) = (tier, vsm) {
        if let Some(stage) = VsmStage::new(graph.clone(), seed, members, cfg) {
            return StageExec::Vsm(stage);
        }
    }
    StageExec::Prebuilt(SegmentExecutor::new(graph.clone(), seed, members))
}

/// Where a stage's processed units leave it: the kind of channel is
/// fixed by the stage's position (non-final stages forward, the final
/// stage emits results), so a worker can never hold the wrong sender.
#[derive(Clone)]
enum Route {
    /// Crossing tensors for the next stage.
    Forward(Sender<BatchMsg>),
    /// Finished output tensors (final stage).
    Results(Sender<(FrameId, Tensor)>),
}

/// Where a worker delivers processed batches.
#[derive(Clone)]
enum StageSink {
    /// Single-worker stage: forward directly (FIFO order is inherent).
    Direct(Route),
    /// Pooled stage: hand `(first_id, frame_count, out)` to the stage's
    /// resequencer, which restores submission order.
    Reseq(Sender<(u64, usize, StageOut)>),
}

/// Forwards one processed unit downstream; `false` when the downstream
/// end is gone (session dropped) and the caller should stop. A
/// kind-mismatched unit (a wiring bug) also stops the stage — cleanly,
/// so the collapse surfaces as [`StreamRecvError::WorkerDied`] instead
/// of a misdelivery.
fn deliver(out: StageOut, route: &Route) -> bool {
    match (out, route) {
        (StageOut::Forward(batch), Route::Forward(next)) => next.send(batch).is_ok(),
        (StageOut::Results(frames), Route::Results(tx)) => {
            frames.into_iter().all(|frame| tx.send(frame).is_ok())
        }
        _ => false,
    }
}

/// A pooled stage's reorder point: workers complete batches out of
/// order; this thread buffers them through a [`flow::Resequencer`] and
/// releases strictly by frame id (ids are dense, so the expected id
/// advances by each unit's frame count).
fn resequencer(rx: Receiver<(u64, usize, StageOut)>, start: u64, route: Route) {
    flow::run_resequencer(&rx, start, |out| deliver(out, &route));
}

/// The size-or-deadline batch former between the ingress queue and the
/// device stage: admitted frames arrive as singletons; a batch closes at
/// `max_frames` or when `deadline` elapses after its first frame (the
/// shared [`flow::run_batcher`] loop).
fn batcher(
    rx: Receiver<BatchMsg>,
    tx: Sender<BatchMsg>,
    max_frames: usize,
    deadline: Duration,
    clock: &Clock,
) {
    flow::run_batcher(&rx, &tx, max_frames, deadline, clock);
}

/// One stage's worker thread: an in-process worker over the stage's
/// executor, or the proxy feeder fronting a remote stage server over a
/// [`Link`].
enum StageHandle {
    /// In-process worker (returns its context so the executor can be
    /// reused across plan swaps).
    Local(JoinHandle<(StageCtx, StageMetrics)>),
    /// Remote-stage proxy feeder (returns its metrics plus any frames
    /// left undelivered when the peer failed — rescued by re-injection
    /// on the next respawn).
    Remote(JoinHandle<(StageMetrics, Vec<BatchMsg>)>),
}

/// State shared between a remote stage's proxy feeder, its reader (the
/// thread owning reconnects), and the pipeline handle (the failover
/// surface).
struct RemoteShared {
    /// The retransmit window and the connection's write half, guarded
    /// *together*: replay-on-reconnect and fresh sends serialize on this
    /// one lock, so a batch is never written concurrently with a replay.
    conn: Mutex<ProxyConn>,
    /// Peer liveness state machine (drives deadline-based failover).
    health: Mutex<flow::PeerHealth>,
    /// The peer stayed down past its deadline. Frames stop flowing to
    /// the link (they strand into the respawn rescue path instead) and
    /// [`StreamPipeline::failed_remote`] reports the tier.
    failed: AtomicBool,
    /// Feeder → reader: admissions ended, wind down once the window
    /// drains.
    stop: AtomicBool,
    /// The downstream channel is gone (session dropped mid-stream).
    delivery_closed: AtomicBool,
}

/// A remote proxy's connection state (see [`RemoteShared::conn`]).
struct ProxyConn {
    /// Un-acked batches, keyed by first frame id; replayed in id order
    /// on every reconnect.
    retx: flow::Retransmit<SentBatch>,
    /// Write half of the live connection (`None` while disconnected).
    writer: Option<SocketLink>,
}

/// One batch held in the retransmit window: the original message —
/// stamps and submit times never cross the wire, so results reattach
/// them from here — plus the codec tag it was sent under (replays
/// resend the exact original request).
struct SentBatch {
    codec: u8,
    batch: BatchMsg,
}

/// The request form of `batch`: ids and payloads verbatim, local-only
/// metadata (submit stamps, probe stamps) stripped. Vertex ids cross
/// through [`link::node_to_wire`]; an index the wire form cannot carry
/// (impossible for any graph the pipeline accepted, since every payload
/// id indexes the session graph) encodes as `u32::MAX`, which the
/// server rejects as out of range — fail-closed, never aliased onto a
/// different valid vertex.
fn to_wire_request(batch: &BatchMsg, codec: u8) -> link::WireBatch {
    link::WireBatch {
        first_id: batch.first_id(),
        codec,
        raw_bytes: 0,
        accuracy_delta: 0.0,
        frames: batch
            .frames
            .iter()
            .map(|f| link::WireFrame {
                id: f.id,
                payload: f
                    .payload
                    .iter()
                    .map(|(nid, b)| (link::node_to_wire(*nid).unwrap_or(u32::MAX), b.clone()))
                    .collect(),
            })
            .collect(),
    }
}

/// Rebuilds the forwardable [`BatchMsg`] from a non-final remote
/// result, reattaching each frame's submit stamp from the retransmit
/// copy. `None` when the result's shape does not match what was sent,
/// or when any payload vertex id fails the typed
/// [`link::node_from_wire`] round-trip against the session graph's
/// `nodes` vertices (a corrupt or misbehaving server must not smuggle
/// fabricated node ids downstream).
fn from_wire_result(wb: &link::WireBatch, sent: &BatchMsg, nodes: usize) -> Option<BatchMsg> {
    if wb.frames.len() != sent.frames.len() {
        return None;
    }
    let mut frames = Vec::with_capacity(wb.frames.len());
    for (wf, sf) in wb.frames.iter().zip(&sent.frames) {
        if wf.id != sf.id {
            return None;
        }
        frames.push(Frame {
            id: wf.id,
            submitted_at: sf.submitted_at,
            payload: link::remap_frame_payload(wf, nodes).ok()?,
        });
    }
    Some(BatchMsg {
        frames,
        stamp: None,
    })
}

/// The proxy feeder: consumes the stage's inbound queue, holds each
/// batch in the bounded retransmit window and writes it to the link.
/// Spawns (and finally joins) the [`remote_reader`] that owns results
/// and reconnects. Returns the stage's metrics plus every frame the
/// link never delivered (peer failed) for rescue by re-injection.
#[allow(clippy::too_many_arguments)]
fn remote_feeder(
    rx: Receiver<BatchMsg>,
    route: Route,
    shared: Arc<RemoteShared>,
    opts: RemoteOptions,
    hello: link::Hello,
    codecs: Arc<LinkCodecs>,
    rank: usize,
    clock: Clock,
    output_node: NodeId,
    n_nodes: usize,
) -> (StageMetrics, Vec<BatchMsg>) {
    let reader = {
        let shared = shared.clone();
        let opts = opts.clone();
        let clock = clock.clone();
        std::thread::spawn(move || {
            remote_reader(&shared, &opts, &hello, &route, &clock, output_node, n_nodes)
        })
    };
    let mut stranded: Vec<BatchMsg> = Vec::new();
    while let Ok(batch) = rx.recv() {
        if shared.failed.load(Ordering::Relaxed) {
            stranded.push(batch);
            continue;
        }
        let codec = codecs.get(rank).to_tag();
        let msg = LinkMsg::Batch(to_wire_request(&batch, codec));
        let mut sent = SentBatch { codec, batch };
        loop {
            if shared.failed.load(Ordering::Relaxed)
                || shared.delivery_closed.load(Ordering::Relaxed)
            {
                stranded.push(sent.batch);
                break;
            }
            let mut conn = sync::lock(&shared.conn);
            match conn
                .retx
                .offer(sent.batch.first_id(), sent.batch.frames.len(), sent)
            {
                Ok(()) => {
                    // Write through the live connection if there is one;
                    // while disconnected the batch just waits in the
                    // window for the reader's replay-on-reconnect.
                    if let Some(writer) = conn.writer.as_mut() {
                        if writer.send(&msg).is_err() {
                            conn.writer = None;
                            drop(conn);
                            sync::lock(&shared.health).on_disconnect(clock.now());
                        }
                    }
                    break;
                }
                Err(back) => {
                    sent = back;
                    drop(conn);
                    // xtask:allow(thread-sleep): bounded retransmit window
                    // backpressure — wait for the peer to ack.
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        }
    }
    // Admissions ended (quiesce/close): hold until every in-flight batch
    // is acked, the peer fails, or the session is gone.
    while !shared.failed.load(Ordering::Relaxed)
        && !shared.delivery_closed.load(Ordering::Relaxed)
        && !sync::lock(&shared.conn).retx.is_empty()
    {
        // xtask:allow(thread-sleep): quiesce drain — acks are in flight.
        std::thread::sleep(Duration::from_millis(1));
    }
    shared.stop.store(true, Ordering::Relaxed);
    let metrics = reader.join().unwrap_or_default();
    let leftover = sync::lock(&shared.conn).retx.drain();
    let mut rescued: Vec<BatchMsg> = leftover.into_iter().map(|(_, _, s)| s.batch).collect();
    rescued.extend(stranded);
    rescued.sort_by_key(BatchMsg::first_id);
    (metrics, rescued)
}

/// The proxy reader: owns the connection lifecycle — dial, hello,
/// replay-unacked-in-id-order, then pump results until disconnect —
/// and the deadline clock that declares the peer failed.
#[allow(clippy::too_many_arguments)]
fn remote_reader(
    shared: &RemoteShared,
    opts: &RemoteOptions,
    hello: &link::Hello,
    route: &Route,
    clock: &Clock,
    output_node: NodeId,
    n_nodes: usize,
) -> StageMetrics {
    let mut m = StageMetrics::default();
    let mut reading: Option<SocketLink> = None;
    loop {
        if shared.failed.load(Ordering::Relaxed)
            || shared.delivery_closed.load(Ordering::Relaxed)
            || (shared.stop.load(Ordering::Relaxed) && sync::lock(&shared.conn).retx.is_empty())
        {
            break;
        }
        // The feeder tears the writer down on a send error; mirror it on
        // the read half so the next iteration reconnects.
        if reading.is_some() && sync::lock(&shared.conn).writer.is_none() {
            reading = None;
        }
        let Some(sock) = reading.as_mut() else {
            match connect_and_replay(shared, opts, hello) {
                Ok(sock) => {
                    sync::lock(&shared.health).on_connected();
                    reading = Some(sock);
                }
                Err(()) => {
                    if sync::lock(&shared.health).check(clock.now()) == flow::PeerStatus::Failed {
                        shared.failed.store(true, Ordering::Relaxed);
                        continue;
                    }
                    // xtask:allow(thread-sleep): reconnect pacing while
                    // the peer is down.
                    std::thread::sleep(opts.retry.max(Duration::from_millis(1)));
                }
            }
            continue;
        };
        match sock.recv_timeout(Duration::from_millis(20)) {
            Ok(Some(LinkMsg::Result(wb))) => {
                handle_remote_result(
                    shared,
                    &wb,
                    route,
                    clock,
                    output_node,
                    n_nodes,
                    hello.is_last,
                    &mut m,
                );
            }
            Ok(None) => {}
            Ok(Some(_)) | Err(_) => {
                // Disconnected, corrupt frame, or a protocol violation
                // (a server must only speak results): drop the
                // connection; un-acked batches replay on reconnect.
                reading = None;
                sync::lock(&shared.conn).writer = None;
                sync::lock(&shared.health).on_disconnect(clock.now());
            }
        }
    }
    m
}

/// One (re)connect: dial, send the hello, replay every un-acked batch
/// in id order (exactly once per reconnect), and only then install the
/// write half so fresh sends resume *after* the replays.
fn connect_and_replay(
    shared: &RemoteShared,
    opts: &RemoteOptions,
    hello: &link::Hello,
) -> Result<SocketLink, ()> {
    let sock = opts.addr.connect().map_err(|_| ())?;
    let mut writer = sock.try_clone().map_err(|_| ())?;
    writer
        .send(&LinkMsg::Hello(hello.clone()))
        .map_err(|_| ())?;
    let mut conn = sync::lock(&shared.conn);
    for (_, _, sent) in conn.retx.replay() {
        writer
            .send(&LinkMsg::Batch(to_wire_request(&sent.batch, sent.codec)))
            .map_err(|_| ())?;
    }
    conn.writer = Some(writer);
    Ok(sock)
}

/// Acks one result against the retransmit window and delivers it
/// downstream. Duplicates (a replay the server answered twice) ack as
/// `None` and are dropped — exactly-once delivery. A malformed result
/// re-offers the batch and declares the peer failed, so the frames are
/// rescued by re-injection instead of lost.
#[allow(clippy::too_many_arguments)]
fn handle_remote_result(
    shared: &RemoteShared,
    wb: &link::WireBatch,
    route: &Route,
    clock: &Clock,
    output_node: NodeId,
    n_nodes: usize,
    is_last: bool,
    m: &mut StageMetrics,
) {
    let Some(sent) = sync::lock(&shared.conn).retx.ack(wb.first_id) else {
        return;
    };
    let out = if is_last {
        let done = clock.now();
        // Validate and decode the whole batch before touching any
        // metrics, so a half-good result refuses cleanly (the batch is
        // rescued whole; nothing was counted).
        let decoded = (wb.frames.len() == sent.batch.frames.len())
            .then(|| {
                wb.frames
                    .iter()
                    .zip(&sent.batch.frames)
                    .map(|(wf, sf)| {
                        let (nid, bytes) = wf.payload.first()?;
                        let expected = link::node_to_wire(output_node).ok()?;
                        (wf.id == sf.id && *nid == expected)
                            .then(|| codec::decode(bytes.clone()).ok())
                            .flatten()
                            .map(|tensor| (wf.id, sf.submitted_at, tensor))
                    })
                    .collect::<Option<Vec<_>>>()
            })
            .flatten();
        let Some(decoded) = decoded else {
            return refuse_result(shared, sent);
        };
        let mut results = Vec::with_capacity(decoded.len());
        for (id, submitted_at, tensor) in decoded {
            m.latencies_s
                .push(done.saturating_sub(submitted_at).as_secs_f64());
            results.push((FrameId(id), tensor));
        }
        m.last_done = Some(done);
        StageOut::Results(results)
    } else {
        let Some(batch) = from_wire_result(wb, &sent.batch, n_nodes) else {
            return refuse_result(shared, sent);
        };
        m.raw_bytes += wb.raw_bytes;
        m.wire_bytes += batch
            .frames
            .iter()
            .flat_map(|f| &f.payload)
            .map(|(_, b)| b.len() as u64)
            .sum::<u64>();
        m.accuracy_delta = m.accuracy_delta.max(wb.accuracy_delta);
        StageOut::Forward(batch)
    };
    m.batches += 1;
    if !deliver(out, route) {
        shared.delivery_closed.store(true, Ordering::Relaxed);
    }
}

/// A result that does not match what was sent: put the batch back in
/// the window (the rescue path will re-inject it) and stop trusting the
/// peer.
fn refuse_result(shared: &RemoteShared, sent: SentBatch) {
    let (first, count) = (sent.batch.first_id(), sent.batch.frames.len());
    let _ = sync::lock(&shared.conn).retx.offer(first, count, sent);
    shared.failed.store(true, Ordering::Relaxed);
}

/// Everything one worker generation is spawned from.
struct SpawnSpec<'a> {
    graph: &'a Arc<DnnGraph>,
    seed: u64,
    vsm: Option<VsmConfig>,
    capacity: usize,
    output_node: NodeId,
    routing: &'a Routing,
    telemetry_every: u64,
    telemetry_tx: &'a Sender<TelemetrySnapshot>,
    /// Concrete workers per stage rank.
    pool: [usize; 3],
    batch: BatchOptions,
    chaos: Option<InjectedDelay>,
    /// Live per-link shaping, shared across generations.
    shaping: &'a Arc<LiveShaping>,
    probe: Option<Arc<Prober>>,
    probe_every: u64,
    /// Live per-link codec selection, shared across generations.
    codecs: &'a Arc<LinkCodecs>,
    /// Per-link remote transports (index 0 = edge, 1 = cloud); `None`
    /// runs the stage in-process.
    remote: &'a [Option<RemoteOptions>; 2],
    /// First frame id each rank will see (the resequencers' starting
    /// points). Normally every rank starts at the next admission id;
    /// after a remote failure the deeper ranks start at the smallest
    /// re-injected stranded id.
    start_seq: [u64; 3],
    /// The pipeline's clock, cloned into every worker and helper.
    clock: &'a Clock,
}

/// One spawned worker generation.
struct Spawned {
    tx_in: Sender<BatchMsg>,
    rx_out: Receiver<(FrameId, Tensor)>,
    /// Stage workers, grouped by rank.
    workers: [Vec<StageHandle>; 3],
    /// Order-keeping helpers: the batcher and the resequencers.
    aux: Vec<JoinHandle<()>>,
    reused: [bool; 3],
    /// Live remote-proxy state per rank (the failover surface).
    remote_shared: [Option<Arc<RemoteShared>>; 3],
    /// Direct senders into the edge/cloud inbound queues, for stranded
    /// re-injection. **Must be dropped as soon as injection is done** —
    /// a held clone would keep the channel connected through the next
    /// quiesce and deadlock it.
    inject: [Option<Sender<BatchMsg>>; 3],
}

/// Spawns the stage worker pools for `routing`, reusing the executors in
/// `reuse` whose member sets are unchanged (prebuilt weights survive the
/// swap). Stages with one worker forward directly; pooled stages fan
/// batches out over cloned receivers and restore submission order
/// through a per-stage [`resequencer`].
fn spawn_stages(spec: &SpawnSpec<'_>, mut reuse: Vec<Option<Arc<StageExec>>>) -> Spawned {
    // Channels: submit → [batcher →] device → edge → cloud → results.
    let (tx_in, rx_ingress) = bounded::<BatchMsg>(spec.capacity);
    let (tx_edge, rx_edge) = bounded::<BatchMsg>(spec.capacity);
    let (tx_cloud, rx_cloud) = bounded::<BatchMsg>(spec.capacity);
    let (tx_out, rx_out) = bounded::<(FrameId, Tensor)>(spec.capacity);

    let mut aux = Vec::new();
    let rx_dev = if spec.batch.max_frames > 1 {
        let (tx_dev, rx_dev) = bounded::<BatchMsg>(spec.capacity);
        let (max_frames, deadline) = (spec.batch.max_frames, spec.batch.deadline);
        let clock = spec.clock.clone();
        aux.push(std::thread::spawn(move || {
            batcher(rx_ingress, tx_dev, max_frames, deadline, &clock);
        }));
        rx_dev
    } else {
        rx_ingress
    };

    let mut workers: [Vec<StageHandle>; 3] = Default::default();
    let mut remote_shared: [Option<Arc<RemoteShared>>; 3] = Default::default();
    let inject = [None, Some(tx_edge.clone()), Some(tx_cloud.clone())];
    let receivers = [rx_dev, rx_edge, rx_cloud];
    // Only the final stage's route holds tx_out: that way rx_out
    // disconnects — and recv() reports the death instead of hanging — as
    // soon as the chain collapses (a death cascades downstream through
    // dropped channel ends).
    let routes = [
        Route::Forward(tx_edge),
        Route::Forward(tx_cloud),
        Route::Results(tx_out),
    ];
    let mut reused = [false; 3];
    for (rank, (rx, route)) in receivers.into_iter().zip(routes).enumerate() {
        let tier = Tier::ALL[rank];
        let members = &spec.routing.members[rank];
        // A remoted stage spawns a proxy feeder instead of local
        // workers: the segment executes in the stage server behind the
        // link, and the proxy owns retransmit/ack and reconnect.
        if let Some(ropts) = (rank >= 1).then(|| spec.remote[rank - 1].clone()).flatten() {
            // All ids index the session graph, which `node_to_wire`
            // always accepts for any graph small enough to build; the
            // u32::MAX fallback fails closed at the server like
            // `to_wire_request`'s.
            let wire_id = |n: NodeId| link::node_to_wire(n).unwrap_or(u32::MAX);
            let as_u32 = |ids: &HashSet<NodeId>| {
                let mut v: Vec<u32> = ids.iter().copied().map(wire_id).collect();
                v.sort_unstable();
                v
            };
            let hello = link::Hello {
                model: spec.graph.name().to_string(),
                seed: spec.seed,
                members: members.iter().copied().map(wire_id).collect(),
                needed: as_u32(&spec.routing.needed[rank]),
                forward: as_u32(&spec.routing.forward_ids[rank]),
                output_node: wire_id(spec.output_node),
                is_last: rank == 2,
            };
            let shared = Arc::new(RemoteShared {
                conn: Mutex::new(ProxyConn {
                    retx: flow::Retransmit::new(ropts.window),
                    writer: None,
                }),
                health: Mutex::new(flow::PeerHealth::new(ropts.deadline, spec.clock.now())),
                failed: AtomicBool::new(false),
                stop: AtomicBool::new(false),
                delivery_closed: AtomicBool::new(false),
            });
            let (feeder_shared, codecs) = (shared.clone(), spec.codecs.clone());
            let (clock, output_node) = (spec.clock.clone(), spec.output_node);
            let n_nodes = spec.graph.len();
            workers[rank].push(StageHandle::Remote(std::thread::spawn(move || {
                remote_feeder(
                    rx,
                    route,
                    feeder_shared,
                    ropts,
                    hello,
                    codecs,
                    rank,
                    clock,
                    output_node,
                    n_nodes,
                )
            })));
            remote_shared[rank] = Some(shared);
            continue;
        }
        let exec = match reuse.get_mut(rank).and_then(Option::take) {
            Some(old) if old.members() == members.as_slice() => {
                reused[rank] = true;
                old
            }
            _ => Arc::new(build_stage_exec(
                spec.graph, spec.seed, members, tier, spec.vsm,
            )),
        };
        let n_workers = spec.pool[rank];
        // Pooled stages reorder through a resequencer; single-worker
        // stages keep the zero-overhead direct path.
        let sink_proto = if n_workers > 1 {
            let (tx_seq, rx_seq) = bounded::<(u64, usize, StageOut)>(spec.capacity + n_workers);
            let start = spec.start_seq[rank];
            aux.push(std::thread::spawn(move || {
                resequencer(rx_seq, start, route);
            }));
            StageSink::Reseq(tx_seq)
        } else {
            StageSink::Direct(route)
        };
        for _ in 0..n_workers {
            let ctx = StageCtx {
                tier,
                exec: exec.clone(),
                needed: spec.routing.needed[rank].clone(),
                forward_ids: spec.routing.forward_ids[rank].clone(),
                output_node: spec.output_node,
                is_last: rank == 2,
                shaping: spec.shaping.clone(),
                probe: spec.probe.clone(),
                probe_every: spec.probe_every,
                codecs: spec.codecs.clone(),
                clock: spec.clock.clone(),
            };
            let sink = sink_proto.clone();
            let rx = rx.clone();
            let ttx = spec.telemetry_tx.clone();
            let (telemetry_every, chaos) = (spec.telemetry_every, spec.chaos);
            workers[rank].push(StageHandle::Local(std::thread::spawn(move || {
                stage_worker(ctx, rx, sink, telemetry_every, ttx, chaos)
            })));
        }
    }
    Spawned {
        tx_in,
        rx_out,
        workers,
        aux,
        reused,
        remote_shared,
        inject,
    }
}

/// What a live plan swap did to the running pipeline.
#[derive(Debug, Clone)]
pub struct PlanSwap {
    /// Vertices whose tier changed (from the applied [`PlanUpdate`]).
    pub changed: Vec<NodeId>,
    /// Stages whose prebuilt executor (weights included) survived the
    /// swap because their segment was unchanged.
    pub reused: Vec<Tier>,
    /// Stages rebuilt for the new plan.
    pub rebuilt: Vec<Tier>,
    /// In-flight frames drained to the reorder buffer at the swap's
    /// frame boundary (none dropped; they surface through `recv` in
    /// submission order).
    pub drained_frames: u64,
}

/// What a live pool resize ([`StreamPipeline::resize_pool`]) did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolResize {
    /// The resized stage's tier.
    pub tier: Tier,
    /// Workers before the resize.
    pub from: usize,
    /// Workers after the resize.
    pub to: usize,
    /// In-flight frames drained to the reorder buffer at the resize's
    /// frame boundary (0 when `from == to`: a no-op resize does not
    /// quiesce the stream).
    pub drained_frames: u64,
}

/// One stage's pool accounting in the final [`StreamReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StagePoolStats {
    /// The stage's tier.
    pub tier: Tier,
    /// Worker count at close (after any live resizes).
    pub workers: usize,
    /// Executor calls made over the session (each serves one batch; with
    /// batching off this equals the frames the stage processed).
    pub batches: u64,
    /// Live pool resizes applied to this stage.
    pub resize_events: u64,
}

/// One session's view of a shared pipeline: its own frame counts and
/// latency percentiles, computed from the delivery-latency samples the
/// [`flow::SessionMux`] records when each frame is routed back.
///
/// Latency here is *delivery* latency — admission to arrival at the
/// session's reorder outbox — so it includes time spent queued behind
/// other sessions' frames on the shared stages; that is the number a
/// per-session SLO cares about.
#[derive(Debug, Clone)]
pub struct SessionStats {
    /// Which session.
    pub session: SessionId,
    /// The session's fair-share weight.
    pub weight: f64,
    /// Frames the session received (in submission order).
    pub frames: u64,
    /// Frames the session admitted.
    pub submitted: u64,
    /// Rejected admission *attempts* (weighted-quota throttling or a
    /// full ingress queue). Blocking submits retry, so under saturation
    /// this exceeds the caller-visible rejection count; none of these
    /// lost a frame.
    pub rejected: u64,
    /// Frames lost. Always 0: the shared pipeline is lossless per
    /// session — every admitted frame is delivered, bit-identical and
    /// in submission order, across plan swaps and pool resizes.
    pub drops: u64,
    /// Median delivery latency, seconds.
    pub p50_latency_s: f64,
    /// 95th-percentile delivery latency, seconds.
    pub p95_latency_s: f64,
    /// 99th-percentile delivery latency, seconds.
    pub p99_latency_s: f64,
    /// Worst delivery latency, seconds.
    pub max_latency_s: f64,
    /// Mean delivery latency, seconds.
    pub mean_latency_s: f64,
    /// Delivered frames per second over the session's active window
    /// (first admission to last delivery).
    pub throughput_fps: f64,
}

impl SessionStats {
    pub(crate) fn from_tally(tally: flow::SessionTally) -> Self {
        let mut latencies = tally.latency_s;
        latencies.sort_by(|a, b| a.total_cmp(b));
        let wall = match (tally.first_submit, tally.last_delivery) {
            (Some(first), Some(last)) => last.saturating_sub(first).as_secs_f64(),
            _ => 0.0,
        }
        .max(f64::MIN_POSITIVE);
        let routed = latencies.len();
        Self {
            session: tally.session,
            weight: tally.weight,
            frames: tally.delivered,
            submitted: tally.submitted,
            rejected: tally.rejected,
            drops: 0,
            p50_latency_s: percentile(&latencies, 0.50),
            p95_latency_s: percentile(&latencies, 0.95),
            p99_latency_s: percentile(&latencies, 0.99),
            max_latency_s: latencies.last().copied().unwrap_or(0.0),
            mean_latency_s: if routed == 0 {
                0.0
            } else {
                latencies.iter().sum::<f64>() / routed as f64
            },
            throughput_fps: routed as f64 / wall,
        }
    }
}

/// Final report of a closed streaming session.
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// Measured statistics, in the exact shape the simulator's
    /// [`simulate_stream`] emits — compare them field by field.
    pub measured: StreamStats,
    /// The deployment's predicted stage specs (feed them to
    /// [`simulate_stream`] via [`StreamReport::predicted_stats`]). After
    /// live reconfigurations these are the *latest* plan's specs.
    pub predicted: Vec<StageSpec>,
    /// Server labels matching `measured.utilization` order:
    /// `[device, device→, edge, edge→, cloud]`.
    pub server_names: Vec<String>,
    /// Busy seconds per server, same order as `server_names`. A stage's
    /// busy time is its worker's compute (plus ingress decode on the
    /// device stage); a link's is the slower of its producer-encode and
    /// consumer-decode halves, which bounds its sustainable rate (the
    /// halves run on different threads, so their sum is not wall time).
    pub busy_s: Vec<f64>,
    /// Wall-clock seconds from session open to the last completion.
    pub wall_s: f64,
    /// Frames admitted by `submit`/`submit_blocking`.
    pub submitted: u64,
    /// Frames rejected by backpressure.
    pub rejected: u64,
    /// Live plan swaps applied over the session's lifetime.
    pub reconfigurations: u64,
    /// Per-stage pool accounting: `{workers, batches, resize_events}`
    /// for device, edge and cloud, in tier order.
    pub stage_pools: Vec<StagePoolStats>,
    /// Pre-codec payload bytes forwarded over the inter-tier links
    /// (crossing tensors at raw wire size), summed over the session.
    pub link_raw_bytes: u64,
    /// Post-codec payload bytes actually forwarded — equals
    /// [`link_raw_bytes`](Self::link_raw_bytes) when every link ran the
    /// raw codec.
    pub link_wire_bytes: u64,
    /// Worst per-tensor accuracy delta a lossy codec introduced over the
    /// session (max-abs dequantization error; 0.0 while only raw or
    /// lossless codecs ran).
    pub max_accuracy_delta: f64,
    /// Per-session views of the shared pipeline, in attach order: every
    /// session still attached at close. `measured` is the aggregate
    /// across all of them.
    pub sessions: Vec<SessionStats>,
}

impl StreamReport {
    /// Simulates the *predicted* pipeline under the given workload, for
    /// side-by-side comparison with [`StreamReport::measured`].
    #[must_use]
    pub fn predicted_stats(&self, fps: f64, n_frames: usize) -> StreamStats {
        simulate_stream(&self.predicted, fps, n_frames)
    }

    /// On-wire bytes per raw byte over the inter-tier links (1.0 when no
    /// payload crossed a link, so a linkless run reads as "no
    /// compression" rather than dividing by zero).
    #[must_use]
    pub fn compression_ratio(&self) -> f64 {
        if self.link_raw_bytes == 0 {
            return 1.0;
        }
        self.link_wire_bytes as f64 / self.link_raw_bytes as f64
    }

    /// The busiest server — the pipeline's measured bottleneck — as
    /// `(label, utilization)`.
    #[must_use]
    pub fn bottleneck(&self) -> Option<(&str, f64)> {
        self.server_names
            .iter()
            .zip(&self.measured.utilization)
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(name, u)| (name.as_str(), *u))
    }

    /// Utilization of the named server (e.g. `"edge"`), when present.
    #[must_use]
    pub fn utilization_of(&self, server: &str) -> Option<f64> {
        self.server_names
            .iter()
            .position(|n| n == server)
            .map(|i| self.measured.utilization[i])
    }

    /// One human-readable line per server plus the headline numbers.
    #[must_use]
    pub fn summary(&self) -> String {
        let mut out = format!(
            "frames: {} ({} rejected) | throughput: {:.1} fps | latency p50/p95/max: \
             {:.1}/{:.1}/{:.1} ms | plan swaps: {}\n",
            self.measured.frames,
            self.rejected,
            self.measured.throughput_fps,
            self.measured.p50_latency_s * 1e3,
            self.measured.p95_latency_s * 1e3,
            self.measured.max_latency_s * 1e3,
            self.reconfigurations,
        );
        for (name, u) in self.server_names.iter().zip(&self.measured.utilization) {
            out.push_str(&format!("  {name:>8}: {:5.1}% busy\n", u * 100.0));
        }
        out
    }
}

/// A live pipelined executor: a worker pool per tier, bounded queues
/// between them, real tensors end to end.
///
/// Obtain one through `D3Runtime::open_stream` (or directly via
/// [`StreamPipeline::new`]), push frames with
/// [`submit`](StreamPipeline::submit), pull results with
/// [`recv`](StreamPipeline::recv), and [`close`](StreamPipeline::close)
/// to collect the [`StreamReport`]. Results arrive in submission order —
/// single-worker stages are FIFO by construction, pooled stages restore
/// order through a per-stage resequencer — including across
/// [`apply_plan`](StreamPipeline::apply_plan) swaps and
/// [`resize_pool`](StreamPipeline::resize_pool) events. Dropping an
/// un-closed pipeline signals and joins its workers (no thread leaks);
/// only the report is lost.
pub struct StreamPipeline {
    graph: Arc<DnnGraph>,
    seed: u64,
    vsm: Option<VsmConfig>,
    capacity: usize,
    telemetry_every: u64,
    batch: BatchOptions,
    chaos: Option<InjectedDelay>,
    /// Live per-link shaping, shared with every stage worker and the
    /// idle prober ([`Self::set_link_shaping`]).
    shaping: Arc<LiveShaping>,
    /// Shared bandwidth-prober state (piggyback stamps + idle fallback).
    probe: Option<Arc<Prober>>,
    probe_every: u64,
    /// Live per-link codec selection, shared with every stage worker.
    codecs: Arc<LinkCodecs>,
    /// Per-link remote transports (index 0 = edge, 1 = cloud); `None`
    /// runs the stage in-process. Applied on every (re)spawn.
    remote: [Option<RemoteOptions>; 2],
    /// Live remote-proxy state per rank (the failover surface).
    remote_shared: [Option<Arc<RemoteShared>>; 3],
    /// Idle-fallback prober thread and its stop flag (joined on drop).
    prober_stop: Option<Arc<AtomicBool>>,
    prober_thread: Option<JoinHandle<()>>,
    /// Live worker count per stage rank.
    pool: [usize; 3],
    input_node: NodeId,
    input_shape: (usize, usize, usize),
    output_node: NodeId,
    assignment: Assignment,
    tx_in: Option<Sender<BatchMsg>>,
    rx_out: Receiver<(FrameId, Tensor)>,
    /// Stage workers by rank (the live generation).
    workers: [Vec<StageHandle>; 3],
    /// The generation's batcher and resequencer threads.
    aux: Vec<JoinHandle<()>>,
    /// Metrics absorbed from workers retired by plan swaps or resizes.
    retired: Vec<StageMetrics>,
    /// Frames drained at a swap's frame boundary, served before new
    /// results to preserve submission order.
    drained: Mutex<VecDeque<(FrameId, Tensor)>>,
    telemetry_tx: Sender<TelemetrySnapshot>,
    telemetry_rx: Receiver<TelemetrySnapshot>,
    predicted: Vec<StageSpec>,
    /// The session's time source: every stamp the pipeline takes reads
    /// this clock (wall time normally; a manual clock under test).
    clock: Clock,
    started: Stamp,
    /// Pool sizes over time: one entry per (re)configuration, valid from
    /// its instant until the next entry — the integral of this step
    /// function is each stage's available worker-seconds, the
    /// denominator that keeps pooled utilization ≤ 1.
    pool_history: Vec<(Stamp, [usize; 3])>,
    /// Live pool resizes per stage rank.
    resize_events: [u64; 3],
    /// Admission instant of the first frame — the wall-clock anchor for
    /// throughput/utilization, so pre-stream idle time is not billed.
    first_submit: Mutex<Option<Stamp>>,
    /// The session multiplexer: the shared admission gate (dense global
    /// ids, minted only when a frame actually enters — see
    /// [`flow::SessionMux`]) plus the per-session route map and reorder
    /// outboxes that fan completed frames back out to their sessions.
    mux: flow::SessionMux<Tensor>,
    /// The pipeline's built-in session (attached at construction with
    /// [`StreamOptions::weight`]); the non-`_as` submit/recv methods
    /// act on it.
    root: SessionId,
    submitted: AtomicU64,
    rejected: AtomicU64,
    delivered: AtomicU64,
    reconfigs: u64,
}

impl std::fmt::Debug for StreamPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamPipeline")
            .field("submitted", &self.submitted.load(Ordering::Relaxed))
            .field("delivered", &self.delivered.load(Ordering::Relaxed))
            .field("rejected", &self.rejected.load(Ordering::Relaxed))
            .field("reconfigurations", &self.reconfigs)
            .finish()
    }
}

/// What [`StreamPipeline::quiesce`] hands to `respawn`: the number of
/// frames drained to the reorder buffer, each stage's reusable
/// executor, and per-rank frames a failed remote peer left undelivered.
type QuiesceOutcome = (u64, Vec<Option<Arc<StageExec>>>, [Vec<BatchMsg>; 3]);

impl StreamPipeline {
    /// Spins up the three stage workers for `deployment`'s plan over
    /// `graph` (weights derived from `seed`, edge tiling from `vsm`).
    ///
    /// # Errors
    ///
    /// Returns [`StreamBuildError`] when the plan cannot run as a
    /// forward pipeline (backwards link, or several graph outputs).
    pub fn new(
        graph: Arc<DnnGraph>,
        seed: u64,
        deployment: &Deployment,
        vsm: Option<VsmConfig>,
        options: StreamOptions,
    ) -> Result<Self, StreamBuildError> {
        Self::with_clock(graph, seed, deployment, vsm, options, Clock::real())
    }

    /// Like [`new`](Self::new), but reading time from `clock` — inject a
    /// [`Clock::manual`] clock (e.g. `d3-test-support`'s `FakeClock`) to
    /// make every timestamp the session takes deterministic.
    ///
    /// # Errors
    ///
    /// Returns [`StreamBuildError`] when the plan cannot run as a
    /// forward pipeline (backwards link, or several graph outputs).
    pub fn with_clock(
        graph: Arc<DnnGraph>,
        seed: u64,
        deployment: &Deployment,
        vsm: Option<VsmConfig>,
        options: StreamOptions,
        clock: Clock,
    ) -> Result<Self, StreamBuildError> {
        if options.capacity == 0 {
            return Err(StreamBuildError::ZeroCapacity);
        }
        if options.batching.max_frames == 0 {
            return Err(StreamBuildError::ZeroBatch);
        }
        if !(options.weight.is_finite() && options.weight > 0.0) {
            return Err(StreamBuildError::ZeroWeight);
        }
        let pool = options.pool.resolve()?;
        let outputs = graph.outputs();
        if outputs.len() != 1 {
            return Err(StreamBuildError::MultiOutput {
                outputs: outputs.len(),
            });
        }
        let output_node = outputs[0];
        let routing = plan_routing(&graph, &deployment.assignment, output_node)?;
        let (telemetry_tx, telemetry_rx) = bounded::<TelemetrySnapshot>(TELEMETRY_DEPTH);
        let probe = options.probe.map(|popts| {
            Arc::new(Prober::new(
                popts.initial.unwrap_or(NetworkCondition::WiFi),
                popts.window,
                clock.clone(),
                telemetry_tx.clone(),
            ))
        });
        let probe_every = options.probe.map_or(0, |p| p.every);
        let shaping = Arc::new(LiveShaping::new(options.shaping));
        let (prober_thread, prober_stop) = match (&probe, options.probe.and_then(|p| p.idle)) {
            (Some(prober), Some(period)) if period > Duration::ZERO => {
                let stop = Arc::new(AtomicBool::new(false));
                let (prober, stop_flag) = (prober.clone(), stop.clone());
                let shaping = shaping.clone();
                let bytes = options.probe.map_or(0, |p| p.idle_bytes).max(1);
                let idle_clock = clock.clone();
                let handle = std::thread::spawn(move || {
                    idle_probe_loop(prober, stop_flag, shaping, period, bytes, idle_clock);
                });
                (Some(handle), Some(stop))
            }
            _ => (None, None),
        };
        let codecs = Arc::new(LinkCodecs::new(options.codec));
        let remote = options.remote.clone();
        let spawned = spawn_stages(
            &SpawnSpec {
                graph: &graph,
                seed,
                vsm,
                capacity: options.capacity,
                output_node,
                routing: &routing,
                telemetry_every: options.telemetry_every,
                telemetry_tx: &telemetry_tx,
                pool,
                batch: options.batching,
                chaos: options.chaos,
                shaping: &shaping,
                probe: probe.clone(),
                probe_every,
                codecs: &codecs,
                remote: &remote,
                start_seq: [0; 3],
                clock: &clock,
            },
            vec![None, None, None],
        );
        let shape = graph.input_shape();
        let started = clock.now();
        let mux = flow::SessionMux::new(options.capacity, 0);
        let root = mux.attach(options.weight);
        Ok(Self {
            input_node: graph.input(),
            input_shape: (shape.c, shape.h, shape.w),
            output_node,
            assignment: deployment.assignment.clone(),
            graph,
            seed,
            vsm,
            capacity: options.capacity,
            telemetry_every: options.telemetry_every,
            batch: options.batching,
            chaos: options.chaos,
            shaping,
            probe,
            probe_every,
            codecs,
            remote,
            remote_shared: spawned.remote_shared,
            prober_stop,
            prober_thread,
            pool,
            tx_in: Some(spawned.tx_in),
            rx_out: spawned.rx_out,
            workers: spawned.workers,
            aux: spawned.aux,
            retired: std::iter::repeat_with(StageMetrics::default)
                .take(3)
                .collect(),
            drained: Mutex::new(VecDeque::new()),
            telemetry_tx,
            telemetry_rx,
            predicted: deployment.stages.clone(),
            clock,
            started,
            pool_history: vec![(started, pool)],
            resize_events: [0; 3],
            first_submit: Mutex::new(None),
            mux,
            root,
            submitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            delivered: AtomicU64::new(0),
            reconfigs: 0,
        })
    }

    fn encode_payload(&self, input: &Tensor) -> Result<Vec<(NodeId, Bytes)>, SubmitError> {
        let got = input.shape3();
        let got = (got.c, got.h, got.w);
        if got != self.input_shape {
            return Err(SubmitError::ShapeMismatch {
                expected: self.input_shape,
                got,
            });
        }
        Ok(vec![(self.input_node, wire::encode(input))])
    }

    /// One admission attempt for `sid`: the mux enforces the session's
    /// weighted quota, then mints the next dense global id with the
    /// `try_send` inside the critical section — the lock is held only
    /// across this non-blocking step, never across a blocking wait, so
    /// `submit` stays non-blocking no matter what concurrent submitters
    /// do. Ids (global and per-session) are consumed only on success;
    /// on a full queue or a quota throttle the payload is handed back
    /// for a retry.
    fn try_admit_as(
        &self,
        sid: SessionId,
        payload: Vec<(NodeId, Bytes)>,
    ) -> Result<FrameId, AdmitError> {
        let Some(tx) = self.tx_in.as_ref() else {
            return Err(AdmitError::Closed);
        };
        let admitted_at = self.clock.now();
        let minted = self.mux.admit(sid, admitted_at, payload, |id, payload| {
            tx.try_send(BatchMsg {
                frames: vec![Frame {
                    id,
                    submitted_at: admitted_at,
                    payload,
                }],
                stamp: None,
            })
        });
        match minted {
            Ok(minted) => {
                // The id increment inside `admit` is submit's
                // linearization point (see pending()); it deliberately
                // happens only for frames that actually entered the
                // pipeline, so the in-flight accounting can never
                // over-claim and strand a recv().
                self.submitted.fetch_add(1, Ordering::Relaxed);
                self.record_first_submit(admitted_at);
                Ok(FrameId(minted.seq))
            }
            Err(MuxAdmitError::Throttled(payload)) => Err(AdmitError::Full(payload)),
            Err(MuxAdmitError::UnknownSession(_)) => Err(AdmitError::Closed),
            Err(MuxAdmitError::Send(TrySendError::Full(mut msg))) => {
                Err(AdmitError::Full(match msg.frames.pop() {
                    Some(frame) => frame.payload,
                    None => Vec::new(),
                }))
            }
            Err(MuxAdmitError::Send(TrySendError::Disconnected(_))) => Err(AdmitError::Closed),
        }
    }

    /// Routes every frame that has already completed — swap leftovers in
    /// the reorder buffer first, then the live result queue — into its
    /// session's outbox *without* delivering anything. Any thread may
    /// pump: it frees quota for throttled submitters and keeps the
    /// bounded result queue draining even when the completing frames
    /// belong to other sessions.
    fn pump_routes(&self) {
        loop {
            let frame = sync::lock(&self.drained)
                .pop_front()
                .or_else(|| self.rx_out.try_recv().ok());
            let Some((id, tensor)) = frame else {
                return;
            };
            self.mux.route(id.0, tensor, self.clock.now());
        }
    }

    /// Admits one frame on the root session without blocking.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Backpressure`] when the ingress queue is full or
    /// the session is at its weighted quota,
    /// [`SubmitError::ShapeMismatch`] for a wrongly-shaped tensor, or
    /// [`SubmitError::Closed`] when the ingress stage is gone.
    pub fn submit(&self, input: &Tensor) -> Result<FrameId, SubmitError> {
        self.submit_as(self.root, input)
    }

    /// Admits one frame on session `sid` without blocking (see
    /// [`submit`](Self::submit)).
    ///
    /// # Errors
    ///
    /// As [`submit`](Self::submit); additionally
    /// [`SubmitError::Closed`] for a detached session.
    pub fn submit_as(&self, sid: SessionId, input: &Tensor) -> Result<FrameId, SubmitError> {
        let payload = self.encode_payload(input)?;
        match self.try_admit_as(sid, payload) {
            Ok(id) => Ok(id),
            Err(AdmitError::Full(_)) => {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                Err(SubmitError::Backpressure)
            }
            Err(AdmitError::Closed) => Err(SubmitError::Closed),
        }
    }

    /// Admits one frame on the root session, waiting (polling with
    /// capped backoff) while the ingress queue is full or the session is
    /// at quota. The wait never holds the admission lock, so concurrent
    /// [`submit`](Self::submit) callers keep getting immediate
    /// backpressure verdicts instead of queueing behind this call.
    ///
    /// # Errors
    ///
    /// [`SubmitError::ShapeMismatch`] for a wrongly-shaped tensor, or
    /// [`SubmitError::Closed`] when the ingress stage is gone.
    pub fn submit_blocking(&self, input: &Tensor) -> Result<FrameId, SubmitError> {
        self.submit_blocking_as(self.root, input)
    }

    /// Admits one frame on session `sid`, waiting while the ingress
    /// queue is full or the session is at quota. While waiting it routes
    /// already-completed frames into their sessions' outboxes
    /// ([`pump_routes`](Self::pump_routes)), so a session that submits
    /// more than its quota before draining cannot deadlock against
    /// itself.
    ///
    /// # Errors
    ///
    /// As [`submit_blocking`](Self::submit_blocking); additionally
    /// [`SubmitError::Closed`] for a detached session.
    pub fn submit_blocking_as(
        &self,
        sid: SessionId,
        input: &Tensor,
    ) -> Result<FrameId, SubmitError> {
        let mut payload = self.encode_payload(input)?;
        let mut wait = Duration::from_micros(50);
        loop {
            match self.try_admit_as(sid, payload) {
                Ok(id) => return Ok(id),
                Err(AdmitError::Full(returned)) => {
                    payload = returned;
                    self.pump_routes();
                    // xtask:allow(thread-sleep): admission backoff — a
                    // deliberate bounded wall-clock wait for queue space,
                    // not a synchronization hack.
                    std::thread::sleep(wait);
                    wait = (wait * 2).min(Duration::from_millis(2));
                }
                Err(AdmitError::Closed) => return Err(SubmitError::Closed),
            }
        }
    }

    fn record_first_submit(&self, at: Stamp) {
        let mut first = sync::lock(&self.first_submit);
        if first.is_none() {
            *first = Some(at);
        }
    }

    /// Waits for the root session's next completed frame, in submission
    /// order (frames drained at a plan swap's boundary come first).
    ///
    /// # Errors
    ///
    /// [`StreamRecvError::NoFramesInFlight`] when every admitted frame
    /// was already received (a blocking wait would never return), or
    /// [`StreamRecvError::WorkerDied`] when a stage worker stopped with
    /// frames still in flight.
    pub fn recv(&self) -> Result<(FrameId, Tensor), StreamRecvError> {
        self.recv_as(self.root)
    }

    /// Waits for session `sid`'s next completed frame, in the session's
    /// own submission order (the returned [`FrameId`] is the session's
    /// dense sequence number). Any receiver routes whatever completions
    /// it pulls off the shared result queue — including other sessions'
    /// — into the owning outboxes, so concurrent receivers make
    /// progress for each other.
    ///
    /// # Errors
    ///
    /// As [`recv`](Self::recv), scoped to this session's frames.
    pub fn recv_as(&self, sid: SessionId) -> Result<(FrameId, Tensor), StreamRecvError> {
        loop {
            if let Some(frame) = self.recv_step_as(sid, RECV_SLICE)? {
                return Ok(frame);
            }
        }
    }

    /// One bounded step of [`recv_as`](Self::recv_as): pops the
    /// session's next in-order frame if already routed, otherwise pulls
    /// at most one completion (waiting up to `wait`) and routes it.
    /// `Ok(None)` means "nothing yet — call again"; the session layer
    /// uses this to wait in short slices without pinning the shared
    /// pipeline lock across a blocking call.
    ///
    /// # Errors
    ///
    /// As [`recv_as`](Self::recv_as).
    pub fn recv_step_as(
        &self,
        sid: SessionId,
        wait: Duration,
    ) -> Result<Option<(FrameId, Tensor)>, StreamRecvError> {
        if let Some((seq, tensor)) = self.mux.pop(sid) {
            self.delivered.fetch_add(1, Ordering::Relaxed);
            return Ok(Some((FrameId(seq), tensor)));
        }
        if self.mux.pending(sid) == 0 {
            return Err(StreamRecvError::NoFramesInFlight);
        }
        // Pull one completion: swap leftovers in the reorder buffer
        // first (they are older than anything still in the queue), then
        // the live result queue.
        let pulled = sync::lock(&self.drained).pop_front();
        if let Some((id, tensor)) = pulled {
            self.mux.route(id.0, tensor, self.clock.now());
        } else {
            match self.rx_out.recv_timeout(wait) {
                Ok((id, tensor)) => {
                    self.mux.route(id.0, tensor, self.clock.now());
                }
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => return Ok(None),
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                    // A concurrent receiver may have routed our frame
                    // while we raced the dying channel; only a genuinely
                    // empty outbox means the frame can never arrive.
                    if let Some((seq, tensor)) = self.mux.pop(sid) {
                        self.delivered.fetch_add(1, Ordering::Relaxed);
                        return Ok(Some((FrameId(seq), tensor)));
                    }
                    if sync::lock(&self.drained).is_empty() {
                        return Err(StreamRecvError::WorkerDied);
                    }
                    return Ok(None);
                }
            }
        }
        if let Some((seq, tensor)) = self.mux.pop(sid) {
            self.delivered.fetch_add(1, Ordering::Relaxed);
            return Ok(Some((FrameId(seq), tensor)));
        }
        Ok(None)
    }

    /// Returns the root session's next completed frame if one is ready.
    #[must_use]
    pub fn try_recv(&self) -> Option<(FrameId, Tensor)> {
        self.try_recv_as(self.root)
    }

    /// Returns session `sid`'s next completed frame if one is ready,
    /// routing any other completions encountered along the way.
    #[must_use]
    pub fn try_recv_as(&self, sid: SessionId) -> Option<(FrameId, Tensor)> {
        loop {
            if let Some((seq, tensor)) = self.mux.pop(sid) {
                self.delivered.fetch_add(1, Ordering::Relaxed);
                return Some((FrameId(seq), tensor));
            }
            let (id, tensor) = sync::lock(&self.drained)
                .pop_front()
                .or_else(|| self.rx_out.try_recv().ok())?;
            self.mux.route(id.0, tensor, self.clock.now());
        }
    }

    /// Frames admitted but not yet received, across every session.
    ///
    /// Saturating: a very fast pipeline can deliver a frame to a
    /// concurrently draining thread before the submitting thread's
    /// counter increment lands, making `delivered` transiently exceed
    /// `submitted`. Reporting 0 in that window is sound — the submit has
    /// not linearized yet — and it can only make [`recv`](Self::recv)
    /// conservatively return [`StreamRecvError::NoFramesInFlight`],
    /// never block on a frame that is not coming.
    #[must_use]
    pub fn pending(&self) -> u64 {
        self.submitted
            .load(Ordering::Relaxed)
            .saturating_sub(self.delivered.load(Ordering::Relaxed))
    }

    /// Frames session `sid` has admitted but not yet received.
    #[must_use]
    pub fn pending_as(&self, sid: SessionId) -> u64 {
        self.mux.pending(sid)
    }

    /// The pipeline's built-in session (the one the non-`_as` methods
    /// act on).
    #[must_use]
    pub fn root_session(&self) -> SessionId {
        self.root
    }

    /// Attaches another session with fair-share `weight`, sharing this
    /// pipeline's resident stage pools: no new worker threads, and every
    /// session's quota is recomputed so the shared ingress splits
    /// `weight`-proportionally (each keeps an in-flight floor of one
    /// frame, so none can be starved).
    ///
    /// # Panics
    ///
    /// Panics when `weight` is not a positive finite number.
    pub fn attach_session(&self, weight: f64) -> SessionId {
        self.mux.attach(weight)
    }

    /// Detaches `sid`, returning its final per-session statistics.
    /// Frames the session left in flight are discarded on arrival;
    /// detach after draining ([`pending_as`](Self::pending_as) == 0) to
    /// stay lossless. Detaching the root session is allowed — the
    /// non-`_as` methods then report `Closed`/`NoFramesInFlight`.
    pub fn detach_session(&self, sid: SessionId) -> Option<SessionStats> {
        self.mux.detach(sid).map(SessionStats::from_tally)
    }

    /// Live per-session statistics for `sid`, when attached.
    #[must_use]
    pub fn session_stats(&self, sid: SessionId) -> Option<SessionStats> {
        self.mux.tally(sid).map(SessionStats::from_tally)
    }

    /// The attached sessions, in attach order.
    #[must_use]
    pub fn sessions(&self) -> Vec<SessionId> {
        self.mux.sessions()
    }

    /// Resident threads this pipeline owns: stage workers plus batcher,
    /// resequencer and prober helpers. Sessions do not appear here —
    /// attaching more of them never spawns a thread, which is the
    /// O(pool)-not-O(sessions) property the multiplexer exists for.
    #[must_use]
    pub fn resident_threads(&self) -> usize {
        self.workers.iter().map(Vec::len).sum::<usize>()
            + self.aux.len()
            + usize::from(self.prober_thread.is_some())
    }

    /// Frames admitted so far.
    #[must_use]
    pub fn submitted(&self) -> u64 {
        self.submitted.load(Ordering::Relaxed)
    }

    /// Frames rejected by backpressure so far.
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// The plan the pipeline is currently executing.
    #[must_use]
    pub fn assignment(&self) -> &Assignment {
        &self.assignment
    }

    /// Live plan swaps applied so far.
    #[must_use]
    pub fn reconfigurations(&self) -> u64 {
        self.reconfigs
    }

    /// Current workers per stage, in tier order (device, edge, cloud).
    #[must_use]
    pub fn pool(&self) -> [usize; 3] {
        self.pool
    }

    /// Live pool resizes applied per stage, in tier order.
    #[must_use]
    pub fn pool_resizes(&self) -> [u64; 3] {
        self.resize_events
    }

    /// Opens a live telemetry tap: periodic per-stage snapshots
    /// (measured compute per frame, ingress queue depth) over a bounded
    /// channel. See [`TelemetryTap`] for consumer semantics.
    #[must_use]
    pub fn telemetry(&self) -> TelemetryTap {
        TelemetryTap {
            rx: self.telemetry_rx.clone(),
        }
    }

    /// The bandwidth prober's current belief (the last published
    /// per-link rates), when probing is enabled.
    #[must_use]
    pub fn probed_rates(&self) -> Option<LinkRates> {
        self.probe.as_ref().map(|p| p.rates())
    }

    /// The prober's cumulative raw vs on-wire byte ledger per link
    /// (`[device→edge, edge→cloud]`), when probing is enabled. With no
    /// codec active each link's two sides are equal.
    #[must_use]
    pub fn probed_traffic(&self) -> Option<[LinkTraffic; 2]> {
        self.probe.as_ref().map(|p| p.traffic())
    }

    /// The codec currently selected per inter-tier link.
    #[must_use]
    pub fn link_codecs(&self) -> [WireCodec; 2] {
        self.codecs.snapshot()
    }

    /// Switches one link's wire codec **live** (0: device→edge, 1:
    /// edge→cloud). No quiesce: frames are self-describing, so in-flight
    /// frames decode under their original codec while the next outgoing
    /// batch leaves in the new format. Out-of-range links are ignored
    /// (the cloud stage has no out-link).
    pub fn set_link_codec(&self, link: usize, codec: WireCodec) {
        self.codecs.set(link, codec);
    }

    /// The simulated link bandwidths currently in force (unshaped links
    /// read as `INFINITY`).
    #[must_use]
    pub fn link_shaping(&self) -> LinkShaping {
        self.shaping.get()
    }

    /// Rewrites the simulated link bandwidths **live** — the seam a
    /// recorded bandwidth trace replays through: each trace step calls
    /// this and the next transfer on each link serializes at the new
    /// rate. No quiesce, mirroring [`set_link_codec`](Self::
    /// set_link_codec); in-flight transfers finish at the rate they
    /// started under. Also applies when the pipeline was built without
    /// [`StreamOptions::shape_links`] (links start unshaped).
    pub fn set_link_shaping(&self, shaping: LinkShaping) {
        self.shaping.set(shaping);
    }

    /// Swaps the running pipeline onto `update`'s plan **without
    /// dropping a frame**: admissions pause, every in-flight frame
    /// completes under the old plan and lands in a reorder buffer
    /// (served by [`recv`](Self::recv) ahead of new results, preserving
    /// submission order), then the stage workers are rebuilt for the new
    /// plan — stages whose segment is unchanged keep their prebuilt
    /// executor, weights and all — and the stream resumes. Frame ids
    /// keep increasing across the swap.
    ///
    /// Outputs stay bit-identical to single-node inference on both sides
    /// of the boundary: the swap changes *where* layers run, never what
    /// they compute.
    ///
    /// # Errors
    ///
    /// Returns [`StreamBuildError`] when the update's plan cannot run as
    /// a forward pipeline; the running stream is left untouched (the
    /// plan is validated before any teardown).
    pub fn apply_plan(&mut self, update: &PlanUpdate) -> Result<PlanSwap, StreamBuildError> {
        let deployment = &update.deployment;
        let routing = plan_routing(&self.graph, &deployment.assignment, self.output_node)?;
        let (drained_frames, reuse, stranded) = self.quiesce();
        let reused = self.respawn(&routing, reuse, stranded);
        self.assignment = deployment.assignment.clone();
        self.predicted = deployment.stages.clone();
        self.reconfigs += 1;
        let (mut kept, mut rebuilt) = (Vec::new(), Vec::new());
        for (rank, was_reused) in reused.into_iter().enumerate() {
            if was_reused {
                kept.push(Tier::ALL[rank]);
            } else {
                rebuilt.push(Tier::ALL[rank]);
            }
        }
        Ok(PlanSwap {
            changed: update.changed.clone(),
            reused: kept,
            rebuilt,
            drained_frames,
        })
    }

    /// Resizes one stage's worker pool **live**, with the same
    /// frame-boundary discipline as [`apply_plan`](Self::apply_plan):
    /// admissions pause, in-flight frames drain losslessly to the
    /// reorder buffer, and the stage respawns with `workers` workers —
    /// every stage keeps its prebuilt executor (the segments did not
    /// change; only thread counts do). Resizing to the current size is
    /// a no-op.
    ///
    /// # Errors
    ///
    /// [`StreamBuildError::ZeroPool`] when `workers` is zero; the
    /// running stream is untouched.
    pub fn resize_pool(
        &mut self,
        tier: Tier,
        workers: usize,
    ) -> Result<PoolResize, StreamBuildError> {
        if workers == 0 {
            return Err(StreamBuildError::ZeroPool);
        }
        let rank = tier.rank();
        let from = self.pool[rank];
        if from == workers {
            return Ok(PoolResize {
                tier,
                from,
                to: workers,
                drained_frames: 0,
            });
        }
        // The running plan validated when it was applied, so this
        // re-derivation cannot fail; routed through `?` anyway — a
        // resize should report, not crash, if that invariant ever breaks.
        let routing = plan_routing(&self.graph, &self.assignment, self.output_node)?;
        let (drained_frames, reuse, stranded) = self.quiesce();
        self.pool[rank] = workers;
        self.resize_events[rank] += 1;
        self.pool_history.push((self.clock.now(), self.pool));
        self.respawn(&routing, reuse, stranded);
        Ok(PoolResize {
            tier,
            from,
            to: workers,
            drained_frames,
        })
    }

    /// Quiesces the live generation at a frame boundary: stops
    /// admissions, drains every in-flight frame into the reorder buffer
    /// (so the bounded result queue can never stall the drain), joins
    /// all workers and helpers, absorbs their metrics, flushes stale
    /// telemetry, and hands back each stage's executor for reuse —
    /// plus, per rank, any frames a failed remote peer left undelivered
    /// (re-injected by [`respawn`](Self::respawn) so they are never
    /// lost).
    fn quiesce(&mut self) -> QuiesceOutcome {
        drop(self.tx_in.take());
        let drained_frames;
        {
            let mut drained = sync::lock(&self.drained);
            let before = drained.len();
            while let Ok(frame) = self.rx_out.recv() {
                drained.push_back(frame);
            }
            drained_frames = (drained.len() - before) as u64;
        }
        let mut reuse: Vec<Option<Arc<StageExec>>> = Vec::with_capacity(3);
        let mut stranded: [Vec<BatchMsg>; 3] = Default::default();
        for (rank, stranded_rank) in stranded.iter_mut().enumerate() {
            let mut kept = None;
            for handle in self.workers[rank].drain(..) {
                // A worker that panicked takes its metrics (and its
                // executor) with it; the stage rebuilds on respawn. Like
                // Drop, don't turn one thread's failure into a cascade.
                match handle {
                    StageHandle::Local(h) => {
                        if let Ok((ctx, metrics)) = h.join() {
                            self.retired[rank].absorb(metrics);
                            kept.get_or_insert(ctx.exec);
                        }
                    }
                    StageHandle::Remote(h) => {
                        if let Ok((metrics, frames)) = h.join() {
                            self.retired[rank].absorb(metrics);
                            stranded_rank.extend(frames);
                        }
                    }
                }
            }
            reuse.push(kept);
        }
        for helper in self.aux.drain(..) {
            let _ = helper.join();
        }
        // Every old-generation worker has exited: anything still queued
        // on the telemetry channel was measured under the *old*
        // configuration. Flush it so a controller never calibrates the
        // new segments (or judges the new pool) from stale snapshots.
        while self.telemetry_rx.try_recv().is_ok() {}
        (drained_frames, reuse, stranded)
    }

    /// Spawns a fresh worker generation for `routing` (executors whose
    /// member set is unchanged are reused from `reuse`), re-injects any
    /// frames a failed remote peer stranded — deepest rank first, so
    /// their recomputed results keep submission order even without a
    /// resequencer — and rewires the pipeline onto it. Returns the
    /// per-rank reuse flags.
    fn respawn(
        &mut self,
        routing: &Routing,
        reuse: Vec<Option<Arc<StageExec>>>,
        mut stranded: [Vec<BatchMsg>; 3],
    ) -> [bool; 3] {
        // Resequencer starting points: acks arrive in id order, so each
        // rank's stranded ids are a contiguous run ending exactly where
        // fresh admissions resume — deeper ranks hold the older frames.
        let base = self.mux.next_id();
        let min_id = |v: &[BatchMsg]| v.iter().map(BatchMsg::first_id).min();
        let start_edge = min_id(&stranded[1]).unwrap_or(base).min(base);
        let start_cloud = min_id(&stranded[2]).unwrap_or(start_edge).min(start_edge);
        let spawned = spawn_stages(
            &SpawnSpec {
                graph: &self.graph,
                seed: self.seed,
                vsm: self.vsm,
                capacity: self.capacity,
                output_node: self.output_node,
                routing,
                telemetry_every: self.telemetry_every,
                telemetry_tx: &self.telemetry_tx,
                pool: self.pool,
                batch: self.batch,
                chaos: self.chaos,
                shaping: &self.shaping,
                probe: self.probe.clone(),
                probe_every: self.probe_every,
                codecs: &self.codecs,
                remote: &self.remote,
                start_seq: [base, start_edge, start_cloud],
                clock: &self.clock,
            },
            reuse,
        );
        self.tx_in = Some(spawned.tx_in);
        self.rx_out = spawned.rx_out;
        self.workers = spawned.workers;
        self.aux = spawned.aux;
        self.remote_shared = spawned.remote_shared;
        // Stranded re-injection, cloud before edge: the cloud queue must
        // hold the oldest frames before the edge stage can recompute and
        // forward the younger ones behind them. Injected ids precede
        // every fresh admission, and the injection senders are dropped
        // right here — a surviving clone would deadlock the next
        // quiesce.
        let inject = spawned.inject;
        for rank in [2usize, 1] {
            let mut frames = std::mem::take(&mut stranded[rank]);
            frames.sort_by_key(BatchMsg::first_id);
            let Some(tx) = inject[rank].as_ref() else {
                continue;
            };
            for mut batch in frames {
                // A stale probe stamp would feed the prober a bogus
                // sample spanning the outage; strip it.
                batch.stamp = None;
                let mut item = batch;
                loop {
                    match tx.try_send(item) {
                        Ok(()) => break,
                        Err(TrySendError::Full(back)) => {
                            item = back;
                            // Make room: siphon finished frames into the
                            // reorder buffer instead of blocking against
                            // a full result queue.
                            if let Ok(frame) = self.rx_out.recv_timeout(Duration::from_millis(5)) {
                                sync::lock(&self.drained).push_back(frame);
                            }
                        }
                        Err(TrySendError::Disconnected(_)) => break,
                    }
                }
            }
        }
        drop(inject);
        spawned.reused
    }

    /// The tier whose remote stage server has stayed down past its
    /// failover deadline, if any. A failed peer stops receiving frames
    /// (they are held for re-injection); the session layer reacts by
    /// dropping the remote ([`drop_remote`](Self::drop_remote)) and
    /// applying a reroute plan — no frame is lost across the failover.
    #[must_use]
    pub fn failed_remote(&self) -> Option<Tier> {
        (1..3)
            .find(|&rank| {
                self.remote_shared[rank]
                    .as_ref()
                    .is_some_and(|s| s.failed.load(Ordering::Relaxed))
            })
            .map(|rank| Tier::ALL[rank])
    }

    /// Stops proxying `tier`'s stage to its remote server: from the
    /// next plan swap on, the stage runs in-process. No-op for the
    /// device tier (which always runs locally) and for tiers that were
    /// never remote.
    pub fn drop_remote(&mut self, tier: Tier) {
        if tier != Tier::Device {
            self.remote[tier.rank() - 1] = None;
        }
    }

    /// Stops admissions, drains every in-flight frame, joins the stage
    /// workers and reports the measured stream statistics (spanning
    /// every plan the session executed).
    #[must_use]
    pub fn close(mut self) -> StreamReport {
        // Quiesce exactly like a plan swap (unread frames land in the
        // reorder buffer, which dies with `self`), then report.
        let _ = self.quiesce();
        let metrics: Vec<StageMetrics> = std::mem::take(&mut self.retired);

        // Anchor the wall clock at the first admission (like the
        // per-frame latencies), so idle time between session open and
        // the stream's start does not dilute throughput/utilization.
        let anchor = sync::lock(&self.first_submit).unwrap_or(self.started);
        let last_done = metrics[2].last_done.unwrap_or(anchor);
        let wall = last_done
            .saturating_sub(anchor)
            .as_secs_f64()
            .max(f64::MIN_POSITIVE);
        let mut latencies = metrics[2].latencies_s.clone();
        latencies.sort_by(|a, b| a.total_cmp(b));
        let frames = latencies.len();
        // Interleaved servers, matching the simulator: stage, link, ….
        // Ingress decode counts toward the device stage (same threads as
        // its compute). A link's two halves — producer encode, consumer
        // decode — run on *different* threads and can overlap across
        // frames, so summing them could exceed the wall clock; the
        // slower half bounds the link's sustainable rate and is reported
        // as its busy time.
        let link = |enc: f64, dec: f64| enc.max(dec);
        let busy_s = vec![
            metrics[0].compute_s + metrics[0].decode_s,
            link(metrics[0].encode_s, metrics[1].decode_s),
            metrics[1].compute_s,
            link(metrics[1].encode_s, metrics[2].decode_s),
            metrics[2].compute_s,
        ];
        // Pool-aware utilization: a stage with N workers has N
        // worker-seconds of capacity per wall second, and resizes change
        // N mid-stream — so each stage's busy time is divided by the
        // integral of its pool size over the measured window, never by
        // the bare wall clock. That keeps utilization ≤ 1 with any pool
        // shape. Links are served by the adjacent stages' workers, so
        // each half normalizes by its own stage's capacity.
        let ws: Vec<f64> = (0..3)
            .map(|rank| worker_seconds(&self.pool_history, rank, anchor, last_done))
            .collect();
        let ws = |rank: usize| ws[rank].max(f64::MIN_POSITIVE);
        let utilization = vec![
            busy_s[0] / ws(0),
            (metrics[0].encode_s / ws(0)).max(metrics[1].decode_s / ws(1)),
            busy_s[2] / ws(1),
            (metrics[1].encode_s / ws(1)).max(metrics[2].decode_s / ws(2)),
            busy_s[4] / ws(2),
        ];
        let measured = StreamStats {
            frames,
            mean_latency_s: if frames == 0 {
                0.0
            } else {
                latencies.iter().sum::<f64>() / frames as f64
            },
            max_latency_s: latencies.last().copied().unwrap_or(0.0),
            p50_latency_s: percentile(&latencies, 0.50),
            p95_latency_s: percentile(&latencies, 0.95),
            p99_latency_s: percentile(&latencies, 0.99),
            throughput_fps: frames as f64 / wall,
            utilization,
        };
        let server_names = vec![
            "device".into(),
            "device→".into(),
            "edge".into(),
            "edge→".into(),
            "cloud".into(),
        ];
        let stage_pools = (0..3)
            .map(|rank| StagePoolStats {
                tier: Tier::ALL[rank],
                workers: self.pool[rank],
                batches: metrics[rank].batches,
                resize_events: self.resize_events[rank],
            })
            .collect();
        StreamReport {
            measured,
            predicted: self.predicted.clone(),
            server_names,
            busy_s,
            wall_s: wall,
            submitted: self.submitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            reconfigurations: self.reconfigs,
            stage_pools,
            // Only non-final stages forward payload, so the link ledger
            // is the device and edge stages' totals.
            link_raw_bytes: metrics[0].raw_bytes + metrics[1].raw_bytes,
            link_wire_bytes: metrics[0].wire_bytes + metrics[1].wire_bytes,
            max_accuracy_delta: metrics[0].accuracy_delta.max(metrics[1].accuracy_delta),
            sessions: self
                .mux
                .tallies()
                .into_iter()
                .map(SessionStats::from_tally)
                .collect(),
        }
    }
}

/// Integral of one stage's pool-size step function over `[from, to]` —
/// the stage's available worker-seconds in the measured window.
fn worker_seconds(history: &[(Stamp, [usize; 3])], rank: usize, from: Stamp, to: Stamp) -> f64 {
    let mut total = 0.0;
    for (i, (start, pool)) in history.iter().enumerate() {
        let seg_start = (*start).max(from);
        let seg_end = history.get(i + 1).map_or(to, |(t, _)| *t).min(to);
        if seg_end > seg_start {
            total += seg_end.saturating_sub(seg_start).as_secs_f64() * pool[rank] as f64;
        }
    }
    total
}

impl Drop for StreamPipeline {
    /// An abandoned (un-[`close`](StreamPipeline::close)d) pipeline
    /// still signals its workers and joins them: admissions stop, the
    /// result queue is drained so no worker blocks on a full channel,
    /// and every thread exits before the pipeline's memory is released.
    fn drop(&mut self) {
        drop(self.tx_in.take());
        while self.rx_out.recv().is_ok() {}
        for rank in 0..3 {
            for handle in self.workers[rank].drain(..) {
                // A worker that panicked already tore the session down;
                // don't double-panic inside drop.
                match handle {
                    StageHandle::Local(h) => {
                        let _ = h.join();
                    }
                    StageHandle::Remote(h) => {
                        let _ = h.join();
                    }
                }
            }
        }
        for helper in self.aux.drain(..) {
            let _ = helper.join();
        }
        // Stop and join the idle-fallback prober (it sleeps in short
        // slices, so this returns promptly).
        if let Some(stop) = self.prober_stop.take() {
            stop.store(true, Ordering::Relaxed);
        }
        if let Some(handle) = self.prober_thread.take() {
            let _ = handle.join();
        }
    }
}

/// One stage worker's event loop: decode needed inputs, run the segment
/// (one executor call per batch), forward crossing tensors (or deliver
/// outputs), account busy time, periodically publish telemetry. Pool
/// siblings run this same loop over a shared inbound queue.
fn stage_worker(
    ctx: StageCtx,
    rx: Receiver<BatchMsg>,
    sink: StageSink,
    telemetry_every: u64,
    telemetry: Sender<TelemetrySnapshot>,
    chaos: Option<InjectedDelay>,
) -> (StageCtx, StageMetrics) {
    let metrics = pump(&ctx, rx, sink, telemetry_every, &telemetry, chaos);
    (ctx, metrics)
}

fn pump(
    ctx: &StageCtx,
    rx: Receiver<BatchMsg>,
    sink: StageSink,
    telemetry_every: u64,
    telemetry: &Sender<TelemetrySnapshot>,
    chaos: Option<InjectedDelay>,
) -> StageMetrics {
    let mut m = StageMetrics::default();
    let mut win_frames: u64 = 0;
    let mut win_compute = 0.0f64;
    'session: while let Ok(batch) = rx.recv() {
        let first_id = batch.first_id();
        let n_frames = batch.frames.len();

        // A stamped transfer landed: close the bandwidth measurement for
        // the link feeding this stage (rank 1 ← device→edge, rank 2 ←
        // edge→cloud).
        if let (Some(probe), Some(stamp)) = (&ctx.probe, batch.stamp) {
            if ctx.tier.rank() >= 1 {
                probe.record(
                    ctx.tier.rank() - 1,
                    stamp.raw_bytes,
                    stamp.wire_bytes,
                    ctx.clock
                        .now()
                        .saturating_sub(stamp.sent_at)
                        .max(Duration::from_nanos(100)),
                );
            }
        }

        // Decode every frame's needed tensors (and set aside what must
        // be forwarded in wire form).
        let t0 = ctx.clock.now();
        let mut boundaries: Vec<HashMap<NodeId, Tensor>> = Vec::with_capacity(n_frames);
        let mut forwards: Vec<Vec<(NodeId, Bytes)>> = Vec::with_capacity(n_frames);
        let mut meta: Vec<(u64, Stamp)> = Vec::with_capacity(n_frames);
        let mut payload_outputs: Vec<Option<Tensor>> = Vec::with_capacity(n_frames);
        for frame in batch.frames {
            let mut boundary: HashMap<NodeId, Tensor> = HashMap::new();
            let mut forward: Vec<(NodeId, Bytes)> = Vec::new();
            for (nid, bytes) in frame.payload {
                if ctx.needed.contains(&nid) {
                    // A frame that does not decode cannot be computed;
                    // stop this worker cleanly — the session surfaces it
                    // as `StreamRecvError::WorkerDied` instead of a
                    // cross-thread panic. `codec::decode` dispatches on
                    // the frame header, so raw and codec-encoded frames
                    // interleave freely (e.g. across a live switch).
                    let Ok(tensor) = codec::decode(bytes.clone()) else {
                        break 'session;
                    };
                    boundary.insert(nid, tensor);
                }
                if ctx.forward_ids.contains(&nid) {
                    forward.push((nid, bytes));
                }
            }
            // An output produced upstream arrives via payload; pull it
            // out before the segment consumes the boundary (the output
            // vertex has no successors, so no member needs it as input).
            payload_outputs.push(if ctx.is_last {
                boundary.remove(&ctx.output_node)
            } else {
                None
            });
            boundaries.push(boundary);
            forwards.push(forward);
            meta.push((frame.id, frame.submitted_at));
        }
        m.decode_s += ctx.clock.now().saturating_sub(t0).as_secs_f64();

        // Compute: injected stalls (fault injection) count as service
        // time — they model a slow stage, not a slow queue.
        let t1 = ctx.clock.now();
        if let Some(InjectedDelay { tier, every, delay }) = chaos {
            if tier == ctx.tier {
                let stalls = meta.iter().filter(|(id, _)| id % every == 0).count() as u32;
                if stalls > 0 {
                    // xtask:allow(thread-sleep): fault injection — the
                    // stall *is* the simulated slow stage.
                    std::thread::sleep(delay * stalls);
                }
            }
        }
        let mut outputs = ctx.exec.run_batch(boundaries);
        let compute = ctx.clock.now().saturating_sub(t1).as_secs_f64();
        m.compute_s += compute;
        m.batches += 1;
        win_compute += compute;
        win_frames += n_frames as u64;

        let out = if ctx.is_last {
            let mut results = Vec::with_capacity(n_frames);
            let done = ctx.clock.now();
            for (k, outputs) in outputs.iter_mut().enumerate() {
                // A plan that never computes the output vertex is a
                // partitioning bug; stop cleanly rather than panicking
                // across the pool.
                let Some(out_tensor) = outputs
                    .remove(&ctx.output_node)
                    .or_else(|| payload_outputs[k].take())
                else {
                    break 'session;
                };
                let (id, submitted_at) = meta[k];
                m.latencies_s
                    .push(done.saturating_sub(submitted_at).as_secs_f64());
                results.push((FrameId(id), out_tensor));
            }
            m.last_done = Some(done);
            StageOut::Results(results)
        } else {
            let t2 = ctx.clock.now();
            // One codec read per batch: the link's selection at this
            // instant encodes the whole batch (a live switch lands on a
            // batch boundary).
            let link_codec = ctx.codecs.get(ctx.tier.rank());
            let mut raw_bytes: u64 = 0;
            let mut frames = Vec::with_capacity(n_frames);
            for (k, outputs) in outputs.iter().enumerate() {
                let forward = &mut forwards[k];
                // Payloads passed through in their original wire form
                // (e.g. a raw input this stage merely re-exposes) count
                // the same on both sides of the codec ledger.
                raw_bytes += forward.iter().map(|(_, b)| b.len() as u64).sum::<u64>();
                for (nid, tensor) in outputs {
                    // Skip ids already travelling in wire form.
                    if ctx.forward_ids.contains(nid) && forward.iter().all(|(f, _)| f != nid) {
                        let enc = codec::encode(tensor, link_codec);
                        raw_bytes += enc.raw_len;
                        m.accuracy_delta = m.accuracy_delta.max(enc.accuracy_delta);
                        forward.push((*nid, enc.bytes));
                    }
                }
                let (id, submitted_at) = meta[k];
                frames.push(Frame {
                    id,
                    submitted_at,
                    payload: std::mem::take(forward),
                });
            }
            // On-wire bytes: what actually crosses the (shaped) link.
            let bytes: u64 = frames
                .iter()
                .flat_map(|f| &f.payload)
                .map(|(_, b)| b.len() as u64)
                .sum();
            m.raw_bytes += raw_bytes;
            m.wire_bytes += bytes;
            // Piggyback probe stamp: taken as the transfer *enters* the
            // wire — before the shaped serialization delay — so the
            // receiving stage's measurement spans the whole wire time.
            let stamp = (ctx.probe.is_some()
                && ctx.probe_every > 0
                && first_id % ctx.probe_every == 0
                && bytes > 0)
                .then(|| LinkStamp {
                    sent_at: ctx.clock.now(),
                    raw_bytes,
                    wire_bytes: bytes,
                });
            // Link shaping: sleep the serialization delay of this
            // transfer. It accrues to encode time, so the report's link
            // accounting reflects the simulated wire.
            let delay = ctx.shaping.get().delay(ctx.tier.rank(), bytes);
            if !delay.is_zero() {
                // xtask:allow(thread-sleep): link shaping — the sleep
                // *is* the simulated serialization delay.
                std::thread::sleep(delay);
            }
            m.encode_s += ctx.clock.now().saturating_sub(t2).as_secs_f64();
            StageOut::Forward(BatchMsg { frames, stamp })
        };

        let delivered = match &sink {
            StageSink::Direct(route) => deliver(out, route),
            StageSink::Reseq(tx_seq) => tx_seq.send((first_id, n_frames, out)).is_ok(),
        };
        if !delivered {
            break; // downstream gone with the session
        }

        if telemetry_every > 0 && win_frames >= telemetry_every {
            // Best-effort publish: a full queue (no consumer) drops the
            // snapshot rather than slowing the frame path.
            let _ = telemetry.try_send(TelemetrySnapshot {
                observations: vec![
                    Observation::StageTime {
                        tier: ctx.tier,
                        seconds_per_frame: win_compute / win_frames as f64,
                        frames: win_frames,
                    },
                    Observation::QueueDepth {
                        tier: ctx.tier,
                        depth: rx.len(),
                    },
                ],
            });
            win_frames = 0;
            win_compute = 0.0;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapt::UpdateScope;
    use d3_partition::{Assignment, Partitioner, Problem};
    use d3_simnet::{NetworkCondition, TierProfiles};
    use d3_tensor::max_abs_diff;
    use std::time::Instant;

    fn test_problem(g: &Arc<DnnGraph>) -> Problem {
        Problem::new(
            g.clone(),
            &TierProfiles::paper_testbed(),
            NetworkCondition::WiFi,
        )
    }

    fn pipeline_for(
        g: &Arc<DnnGraph>,
        seed: u64,
        vsm: Option<VsmConfig>,
        options: StreamOptions,
    ) -> StreamPipeline {
        let problem = test_problem(g);
        let forced = d3_partition::EvenSplit.partition(&problem).unwrap();
        let deployment = Deployment::new(&problem, forced, vsm);
        StreamPipeline::new(g.clone(), seed, &deployment, vsm, options).unwrap()
    }

    fn update_to(
        g: &Arc<DnnGraph>,
        from: &Assignment,
        to: Assignment,
        vsm: Option<VsmConfig>,
    ) -> PlanUpdate {
        let problem = test_problem(g);
        PlanUpdate {
            changed: from.diff(&to),
            deployment: Deployment::new(&problem, to, vsm),
            scope: UpdateScope::Full,
        }
    }

    #[test]
    fn streamed_frames_match_one_shot_inference() {
        let g = Arc::new(d3_model::zoo::chain_cnn(6, 8, 16));
        let pipeline = pipeline_for(&g, 3, None, StreamOptions::new());
        let exec = Executor::new(&g, 3);
        for k in 0..5u64 {
            let input = Tensor::random(3, 16, 16, 100 + k);
            let id = pipeline.submit_blocking(&input).unwrap();
            let (got_id, got) = pipeline.recv().unwrap();
            assert_eq!(got_id, id);
            assert_eq!(max_abs_diff(&got, &exec.run(&input)), Some(0.0));
        }
        let report = pipeline.close();
        assert_eq!(report.measured.frames, 5);
        assert_eq!(report.submitted, 5);
        assert_eq!(report.rejected, 0);
        assert_eq!(report.reconfigurations, 0);
        assert_eq!(report.measured.utilization.len(), 5);
    }

    #[test]
    fn vsm_edge_stage_stays_lossless() {
        let g = Arc::new(d3_model::zoo::chain_cnn(6, 8, 16));
        let vsm = Some(VsmConfig::default());
        let pipeline = pipeline_for(&g, 1, vsm, StreamOptions::new());
        let exec = Executor::new(&g, 1);
        let input = Tensor::random(3, 16, 16, 9);
        pipeline.submit_blocking(&input).unwrap();
        let (_, got) = pipeline.recv().unwrap();
        assert_eq!(max_abs_diff(&got, &exec.run(&input)), Some(0.0));
        let _ = pipeline.close();
    }

    #[test]
    fn backpressure_rejects_when_saturated() {
        let g = Arc::new(d3_model::zoo::chain_cnn(6, 8, 32));
        let pipeline = pipeline_for(&g, 7, None, StreamOptions::new().capacity(1));
        let input = Tensor::random(3, 32, 32, 5);
        // Flood without draining: the bounded ingress queue must reject
        // eventually instead of buffering arbitrarily.
        let mut saw_backpressure = false;
        for _ in 0..200 {
            match pipeline.submit(&input) {
                Ok(_) => {}
                Err(SubmitError::Backpressure) => {
                    saw_backpressure = true;
                    break;
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(saw_backpressure, "ingress queue never filled");
        let report = pipeline.close();
        assert!(report.rejected >= 1);
        // Every admitted frame still completed during close's drain.
        assert_eq!(report.measured.frames as u64, report.submitted);
    }

    #[test]
    fn shape_mismatch_is_rejected_without_admission() {
        let g = Arc::new(d3_model::zoo::chain_cnn(4, 8, 16));
        let pipeline = pipeline_for(&g, 2, None, StreamOptions::new());
        let wrong = Tensor::random(3, 8, 8, 1);
        assert!(matches!(
            pipeline.submit(&wrong),
            Err(SubmitError::ShapeMismatch { .. })
        ));
        assert_eq!(pipeline.submitted(), 0);
        assert!(matches!(
            pipeline.recv(),
            Err(StreamRecvError::NoFramesInFlight)
        ));
        let _ = pipeline.close();
    }

    #[test]
    fn recv_without_submissions_never_blocks() {
        let g = Arc::new(d3_model::zoo::chain_cnn(4, 8, 16));
        let pipeline = pipeline_for(&g, 2, None, StreamOptions::new());
        assert!(matches!(
            pipeline.recv(),
            Err(StreamRecvError::NoFramesInFlight)
        ));
        assert!(pipeline.try_recv().is_none());
        let report = pipeline.close();
        assert_eq!(report.measured.frames, 0);
        assert_eq!(report.measured.throughput_fps, 0.0);
    }

    #[test]
    fn non_monotone_plans_are_rejected() {
        let g = Arc::new(d3_model::zoo::chain_cnn(4, 8, 16));
        let n = g.len();
        let mut tiers = vec![Tier::Cloud; n];
        tiers[0] = Tier::Device;
        tiers[n - 1] = Tier::Device; // consumer upstream of its producer
        let problem = test_problem(&g);
        let deployment = Deployment::new(&problem, Assignment::new(tiers), None);
        let err =
            StreamPipeline::new(g.clone(), 1, &deployment, None, StreamOptions::new()).unwrap_err();
        assert!(matches!(err, StreamBuildError::NonMonotone { .. }));
    }

    #[test]
    fn uniform_cloud_plan_streams_through_empty_stages() {
        // All real layers on the cloud: device and edge stages are empty
        // pass-throughs, and the raw input must reach the cloud stage.
        let g = Arc::new(d3_model::zoo::tiny_cnn(16));
        let problem = test_problem(&g);
        let assignment = Assignment::uniform(g.len(), Tier::Cloud);
        let deployment = Deployment::new(&problem, assignment, None);
        let pipeline =
            StreamPipeline::new(g.clone(), 4, &deployment, None, StreamOptions::new()).unwrap();
        let input = Tensor::random(3, 16, 16, 2);
        pipeline.submit_blocking(&input).unwrap();
        let (_, got) = pipeline.recv().unwrap();
        let expect = Executor::new(&g, 4).run(&input);
        assert_eq!(max_abs_diff(&got, &expect), Some(0.0));
        let _ = pipeline.close();
    }

    #[test]
    fn apply_plan_swaps_mid_stream_without_dropping_frames() {
        let g = Arc::new(d3_model::zoo::chain_cnn(6, 8, 16));
        let mut pipeline = pipeline_for(&g, 5, None, StreamOptions::new());
        let exec = Executor::new(&g, 5);
        let inputs: Vec<Tensor> = (0..6).map(|k| Tensor::random(3, 16, 16, 40 + k)).collect();
        // Two frames in flight across the boundary.
        pipeline.submit_blocking(&inputs[0]).unwrap();
        pipeline.submit_blocking(&inputs[1]).unwrap();
        let before = pipeline.assignment().clone();
        let swap = pipeline
            .apply_plan(&update_to(
                &g,
                &before,
                Assignment::uniform(g.len(), Tier::Cloud),
                None,
            ))
            .unwrap();
        assert_eq!(
            swap.drained_frames, 2,
            "in-flight frames drained, not dropped"
        );
        for input in &inputs[2..] {
            pipeline.submit_blocking(input).unwrap();
        }
        for (k, input) in inputs.iter().enumerate() {
            let (id, got) = pipeline.recv().unwrap();
            assert_eq!(id, FrameId(k as u64), "submission order across the swap");
            assert_eq!(
                max_abs_diff(&got, &exec.run(input)),
                Some(0.0),
                "frame {k} diverged across the swap"
            );
        }
        let report = pipeline.close();
        assert_eq!(report.measured.frames, 6);
        assert_eq!(report.submitted, 6);
        assert_eq!(report.reconfigurations, 1);
    }

    #[test]
    fn apply_plan_reuses_unchanged_stage_executors() {
        let g = Arc::new(d3_model::zoo::chain_cnn(6, 8, 16));
        let mut pipeline = pipeline_for(&g, 9, None, StreamOptions::new());
        // Move exactly one vertex from cloud to edge: device unchanged.
        let before = pipeline.assignment().clone();
        let mut tiers = before.tiers().to_vec();
        let moved = tiers
            .iter()
            .position(|t| *t == Tier::Cloud)
            .expect("even split loads the cloud");
        tiers[moved] = Tier::Edge;
        let swap = pipeline
            .apply_plan(&update_to(&g, &before, Assignment::new(tiers), None))
            .unwrap();
        assert!(
            swap.reused.contains(&Tier::Device),
            "device segment unchanged"
        );
        assert!(swap.rebuilt.contains(&Tier::Edge));
        assert!(swap.rebuilt.contains(&Tier::Cloud));
        assert_eq!(swap.changed.len(), 1);
        // Still lossless after the swap.
        let input = Tensor::random(3, 16, 16, 77);
        pipeline.submit_blocking(&input).unwrap();
        let (_, got) = pipeline.recv().unwrap();
        let expect = Executor::new(&g, 9).run(&input);
        assert_eq!(max_abs_diff(&got, &expect), Some(0.0));
        let _ = pipeline.close();
    }

    #[test]
    fn apply_plan_rejects_bad_plans_and_keeps_streaming() {
        let g = Arc::new(d3_model::zoo::chain_cnn(4, 8, 16));
        let mut pipeline = pipeline_for(&g, 2, None, StreamOptions::new());
        let n = g.len();
        let mut tiers = vec![Tier::Cloud; n];
        tiers[0] = Tier::Device;
        tiers[n - 1] = Tier::Device;
        let before = pipeline.assignment().clone();
        let err = pipeline
            .apply_plan(&update_to(&g, &before, Assignment::new(tiers), None))
            .unwrap_err();
        assert!(matches!(err, StreamBuildError::NonMonotone { .. }));
        // The stream survived the rejected update.
        let input = Tensor::random(3, 16, 16, 3);
        pipeline.submit_blocking(&input).unwrap();
        let (_, got) = pipeline.recv().unwrap();
        let expect = Executor::new(&g, 2).run(&input);
        assert_eq!(max_abs_diff(&got, &expect), Some(0.0));
        assert_eq!(pipeline.reconfigurations(), 0);
        let _ = pipeline.close();
    }

    #[test]
    fn telemetry_tap_emits_stage_snapshots() {
        let g = Arc::new(d3_model::zoo::chain_cnn(4, 8, 16));
        let pipeline = pipeline_for(&g, 2, None, StreamOptions::new().telemetry_every(2));
        let tap = pipeline.telemetry();
        let input = Tensor::random(3, 16, 16, 3);
        for _ in 0..4 {
            pipeline.submit_blocking(&input).unwrap();
            let _ = pipeline.recv().unwrap();
        }
        let snaps = tap.drain();
        assert!(!snaps.is_empty(), "4 frames at window 2 must emit");
        let obs: Vec<&Observation> = snaps.iter().flat_map(|s| &s.observations).collect();
        assert!(obs.iter().any(|o| matches!(
            o,
            Observation::StageTime { seconds_per_frame, frames: 2, .. } if *seconds_per_frame >= 0.0
        )));
        assert!(obs
            .iter()
            .any(|o| matches!(o, Observation::QueueDepth { .. })));
        let _ = pipeline.close();
    }

    #[test]
    fn apply_plan_flushes_stale_telemetry() {
        // Snapshots measured under the old plan must not survive a swap:
        // a controller reading them would calibrate the new segments
        // from the old ones' stage times.
        let g = Arc::new(d3_model::zoo::chain_cnn(4, 8, 16));
        let mut pipeline = pipeline_for(&g, 2, None, StreamOptions::new().telemetry_every(1));
        let tap = pipeline.telemetry();
        let input = Tensor::random(3, 16, 16, 3);
        for _ in 0..3 {
            pipeline.submit_blocking(&input).unwrap();
            let _ = pipeline.recv().unwrap();
        }
        let before = pipeline.assignment().clone();
        pipeline
            .apply_plan(&update_to(
                &g,
                &before,
                Assignment::uniform(g.len(), Tier::Cloud),
                None,
            ))
            .unwrap();
        // Old workers were joined before the flush, so every pre-swap
        // snapshot was already queued — and is now gone.
        assert!(
            tap.try_recv().is_none(),
            "pre-swap telemetry must be flushed"
        );
        let _ = pipeline.close();
    }

    #[test]
    fn pooled_stream_is_bit_identical_and_ordered() {
        // Every stage pooled: outputs must stay frame-for-frame
        // bit-identical to single-node inference and in submission
        // order, because the per-stage resequencers undo any worker
        // interleaving.
        let g = Arc::new(d3_model::zoo::chain_cnn(6, 8, 16));
        let pipeline = pipeline_for(
            &g,
            13,
            None,
            StreamOptions::new()
                .capacity(16)
                .pool(PoolOptions::uniform(3)),
        );
        let exec = Executor::new(&g, 13);
        let inputs: Vec<Tensor> = (0..24)
            .map(|k| Tensor::random(3, 16, 16, 600 + k))
            .collect();
        for input in &inputs {
            pipeline.submit_blocking(input).unwrap();
        }
        for (k, input) in inputs.iter().enumerate() {
            let (id, got) = pipeline.recv().unwrap();
            assert_eq!(id, FrameId(k as u64), "pooled results out of order");
            assert_eq!(
                max_abs_diff(&got, &exec.run(input)),
                Some(0.0),
                "frame {k} diverged under pooling"
            );
        }
        let report = pipeline.close();
        assert_eq!(report.measured.frames, inputs.len());
        for stage in &report.stage_pools {
            assert_eq!(stage.workers, 3);
            assert_eq!(stage.resize_events, 0);
        }
    }

    #[test]
    fn deliberately_slow_worker_cannot_reorder_results() {
        // Every 4th frame stalls its device worker while pool siblings
        // race ahead with later frames — the resequencer must hold them
        // back. This is the strongest order-preservation probe the
        // fault-injection knob enables.
        let g = Arc::new(d3_model::zoo::chain_cnn(4, 8, 16));
        let pipeline = pipeline_for(
            &g,
            13,
            None,
            StreamOptions::new()
                .capacity(16)
                .workers(Tier::Device, 3)
                .inject_delay(Tier::Device, 4, Duration::from_millis(15)),
        );
        let exec = Executor::new(&g, 13);
        let inputs: Vec<Tensor> = (0..12)
            .map(|k| Tensor::random(3, 16, 16, 700 + k))
            .collect();
        for input in &inputs {
            pipeline.submit_blocking(input).unwrap();
        }
        for (k, input) in inputs.iter().enumerate() {
            let (id, got) = pipeline.recv().unwrap();
            assert_eq!(id, FrameId(k as u64), "slow worker leaked later frames");
            assert_eq!(max_abs_diff(&got, &exec.run(input)), Some(0.0));
        }
        let _ = pipeline.close();
    }

    #[test]
    fn batched_stream_stays_lossless_and_coalesces() {
        let g = Arc::new(d3_model::zoo::chain_cnn(6, 8, 16));
        let pipeline = pipeline_for(
            &g,
            17,
            None,
            StreamOptions::new()
                .capacity(16)
                .batching(BatchOptions::frames(4).deadline(Duration::from_millis(200)))
                // Hold the device stage briefly so admitted frames pile
                // up at the batcher instead of racing through singly.
                .inject_delay(Tier::Device, 1, Duration::from_millis(2)),
        );
        let exec = Executor::new(&g, 17);
        let inputs: Vec<Tensor> = (0..8).map(|k| Tensor::random(3, 16, 16, 800 + k)).collect();
        for input in &inputs {
            pipeline.submit_blocking(input).unwrap();
        }
        for (k, input) in inputs.iter().enumerate() {
            let (id, got) = pipeline.recv().unwrap();
            assert_eq!(id, FrameId(k as u64));
            assert_eq!(
                max_abs_diff(&got, &exec.run(input)),
                Some(0.0),
                "frame {k} diverged under batching"
            );
        }
        let report = pipeline.close();
        let device = &report.stage_pools[0];
        assert_eq!(report.measured.frames, inputs.len());
        assert!(
            device.batches < inputs.len() as u64,
            "batcher never coalesced: {} executor calls for {} frames",
            device.batches,
            inputs.len()
        );
    }

    #[test]
    fn resize_pool_swaps_live_without_dropping_frames() {
        let g = Arc::new(d3_model::zoo::chain_cnn(6, 8, 16));
        let mut pipeline = pipeline_for(&g, 19, None, StreamOptions::new().capacity(16));
        let exec = Executor::new(&g, 19);
        let inputs: Vec<Tensor> = (0..12)
            .map(|k| Tensor::random(3, 16, 16, 900 + k))
            .collect();
        // Two frames in flight across the resize boundary.
        pipeline.submit_blocking(&inputs[0]).unwrap();
        pipeline.submit_blocking(&inputs[1]).unwrap();
        let resize = pipeline.resize_pool(Tier::Device, 3).unwrap();
        assert_eq!((resize.from, resize.to), (1, 3));
        assert_eq!(pipeline.pool(), [3, 1, 1]);
        for input in &inputs[2..] {
            pipeline.submit_blocking(input).unwrap();
        }
        for (k, input) in inputs.iter().enumerate() {
            let (id, got) = pipeline.recv().unwrap();
            assert_eq!(id, FrameId(k as u64), "order across the resize");
            assert_eq!(
                max_abs_diff(&got, &exec.run(input)),
                Some(0.0),
                "frame {k} diverged across the resize"
            );
        }
        let report = pipeline.close();
        assert_eq!(report.measured.frames, inputs.len());
        assert_eq!(report.submitted, inputs.len() as u64);
        assert_eq!(report.stage_pools[0].resize_events, 1);
        assert_eq!(report.stage_pools[0].workers, 3);
        // A resize is not a plan swap.
        assert_eq!(report.reconfigurations, 0);
    }

    #[test]
    fn resize_to_current_size_is_a_noop() {
        let g = Arc::new(d3_model::zoo::chain_cnn(4, 8, 16));
        let mut pipeline = pipeline_for(&g, 3, None, StreamOptions::new());
        let resize = pipeline.resize_pool(Tier::Edge, 1).unwrap();
        assert_eq!((resize.from, resize.to, resize.drained_frames), (1, 1, 0));
        let report = pipeline.close();
        assert_eq!(report.stage_pools[1].resize_events, 0);
    }

    #[test]
    fn zero_pool_and_zero_batch_are_rejected() {
        let g = Arc::new(d3_model::zoo::chain_cnn(4, 8, 16));
        let problem = test_problem(&g);
        let forced = d3_partition::EvenSplit.partition(&problem).unwrap();
        let deployment = Deployment::new(&problem, forced, None);
        let mut opts = StreamOptions::new();
        opts.pool.device = PoolSize::Fixed(0);
        assert!(matches!(
            StreamPipeline::new(g.clone(), 1, &deployment, None, opts),
            Err(StreamBuildError::ZeroPool)
        ));
        let mut opts = StreamOptions::new();
        opts.batching.max_frames = 0;
        assert!(matches!(
            StreamPipeline::new(g.clone(), 1, &deployment, None, opts),
            Err(StreamBuildError::ZeroBatch)
        ));
        let mut pipeline = pipeline_for(&g, 1, None, StreamOptions::new());
        assert!(matches!(
            pipeline.resize_pool(Tier::Device, 0),
            Err(StreamBuildError::ZeroPool)
        ));
        let _ = pipeline.close();
    }

    #[test]
    fn pooled_utilization_never_exceeds_one() {
        // Saturate a 3-worker device stage with injected stalls: the
        // workers' summed busy time far exceeds the wall clock, so the
        // old per-wall accounting would report utilization ≈ 3. The
        // pool-aware denominator must keep every server ≤ 1.
        let g = Arc::new(d3_model::zoo::chain_cnn(4, 8, 16));
        let pipeline = pipeline_for(
            &g,
            23,
            None,
            StreamOptions::new()
                .capacity(16)
                .workers(Tier::Device, 3)
                .inject_delay(Tier::Device, 1, Duration::from_millis(10)),
        );
        let input = Tensor::random(3, 16, 16, 5);
        for _ in 0..12 {
            pipeline.submit_blocking(&input).unwrap();
        }
        while pipeline.pending() > 0 {
            let _ = pipeline.recv().unwrap();
        }
        let report = pipeline.close();
        for (name, &u) in report.server_names.iter().zip(&report.measured.utilization) {
            assert!(
                (0.0..=1.0 + 1e-6).contains(&u),
                "{name} utilization {u} out of range"
            );
        }
        // The stalled, pooled device stage dominated the pipeline.
        let (bottleneck, _) = report.bottleneck().unwrap();
        assert_eq!(bottleneck, "device");
    }

    #[test]
    fn pool_resize_composes_with_plan_swaps() {
        // Resize, then swap plans, then resize again: executors are
        // reused where segments are unchanged, and the stream stays
        // lossless throughout.
        let g = Arc::new(d3_model::zoo::chain_cnn(6, 8, 16));
        let mut pipeline = pipeline_for(&g, 29, None, StreamOptions::new());
        let exec = Executor::new(&g, 29);
        pipeline.resize_pool(Tier::Cloud, 2).unwrap();
        let before = pipeline.assignment().clone();
        let swap = pipeline
            .apply_plan(&update_to(
                &g,
                &before,
                Assignment::uniform(g.len(), Tier::Cloud),
                None,
            ))
            .unwrap();
        assert!(!swap.rebuilt.is_empty());
        pipeline.resize_pool(Tier::Cloud, 1).unwrap();
        let input = Tensor::random(3, 16, 16, 31);
        pipeline.submit_blocking(&input).unwrap();
        let (_, got) = pipeline.recv().unwrap();
        assert_eq!(max_abs_diff(&got, &exec.run(&input)), Some(0.0));
        let report = pipeline.close();
        assert_eq!(report.reconfigurations, 1);
        assert_eq!(report.stage_pools[2].resize_events, 2);
    }

    /// Network observations a telemetry tap collected, flattened.
    fn network_rates(tap: &TelemetryTap) -> Vec<LinkRates> {
        tap.drain()
            .iter()
            .flat_map(|s| &s.observations)
            .filter_map(|o| match o {
                Observation::Network { net } => Some(net.rates()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn prober_tracks_shaped_link_bandwidth() {
        // Shape both links to known rates; the piggybacked probe must
        // publish Network observations tracking them. The measured value
        // sits at or below the shaped rate (queueing and decode time add
        // to the wire time) but within the same band.
        let g = Arc::new(d3_model::zoo::chain_cnn(6, 8, 16));
        let pipeline = pipeline_for(
            &g,
            3,
            None,
            StreamOptions::new()
                .capacity(4)
                .telemetry_every(0)
                .shape_links(LinkShaping::links(4.0, 2.0))
                .probe(ProbeOptions::new().every(1).window(2)),
        );
        let tap = pipeline.telemetry();
        let input = Tensor::random(3, 16, 16, 5);
        for _ in 0..8 {
            pipeline.submit_blocking(&input).unwrap();
            let _ = pipeline.recv().unwrap();
        }
        let rates = network_rates(&tap);
        assert!(!rates.is_empty(), "the prober never published");
        let last = rates.last().unwrap();
        assert!(
            last.device_edge_mbps > 4.0 * 0.35 && last.device_edge_mbps < 4.0 * 1.2,
            "device-edge estimate {} not near the shaped 4.0 Mbps",
            last.device_edge_mbps
        );
        assert!(
            last.edge_cloud_mbps > 2.0 * 0.35 && last.edge_cloud_mbps < 2.0 * 1.2,
            "backbone estimate {} not near the shaped 2.0 Mbps",
            last.edge_cloud_mbps
        );
        // The belief accessor agrees with the last publication.
        let belief = pipeline.probed_rates().unwrap();
        assert_eq!(belief.edge_cloud_mbps, last.edge_cloud_mbps);
        let _ = pipeline.close();
    }

    #[test]
    fn idle_prober_publishes_without_traffic() {
        // No frames at all: the idle-fallback thread must keep the
        // bandwidth estimate fresh on its own.
        let g = Arc::new(d3_model::zoo::chain_cnn(4, 8, 16));
        let pipeline = pipeline_for(
            &g,
            3,
            None,
            StreamOptions::new()
                .telemetry_every(0)
                .shape_links(LinkShaping::backbone(50.0))
                .probe(
                    ProbeOptions::new()
                        .window(1)
                        .idle_fallback(Duration::from_millis(5)),
                ),
        );
        let tap = pipeline.telemetry();
        let deadline = Instant::now() + Duration::from_secs(2);
        let mut rates = Vec::new();
        while rates.is_empty() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
            rates = network_rates(&tap);
        }
        assert!(!rates.is_empty(), "idle prober never published");
        let last = rates.last().unwrap();
        assert!(
            last.edge_cloud_mbps > 50.0 * 0.3 && last.edge_cloud_mbps < 50.0 * 1.2,
            "idle estimate {} not near the shaped 50 Mbps",
            last.edge_cloud_mbps
        );
        drop(pipeline); // joins the prober thread promptly
    }

    #[test]
    fn shaped_stream_stays_lossless_and_probing_is_free_of_drops() {
        let g = Arc::new(d3_model::zoo::chain_cnn(4, 8, 16));
        let pipeline = pipeline_for(
            &g,
            9,
            None,
            StreamOptions::new()
                .capacity(8)
                .shape_links(LinkShaping::links(20.0, 10.0))
                .probe(ProbeOptions::new().every(2).window(3)),
        );
        let exec = Executor::new(&g, 9);
        let inputs: Vec<Tensor> = (0..6).map(|k| Tensor::random(3, 16, 16, 70 + k)).collect();
        for input in &inputs {
            pipeline.submit_blocking(input).unwrap();
        }
        for (k, input) in inputs.iter().enumerate() {
            let (id, got) = pipeline.recv().unwrap();
            assert_eq!(id, FrameId(k as u64));
            assert_eq!(
                max_abs_diff(&got, &exec.run(input)),
                Some(0.0),
                "frame {k} diverged under shaping + probing"
            );
        }
        let report = pipeline.close();
        assert_eq!(report.measured.frames as u64, report.submitted);
    }

    #[test]
    fn dropping_an_unclosed_pipeline_joins_workers() {
        let g = Arc::new(d3_model::zoo::chain_cnn(4, 8, 16));
        let pipeline = pipeline_for(&g, 6, None, StreamOptions::new());
        let input = Tensor::random(3, 16, 16, 8);
        // Leave frames in flight and results unclaimed, then drop.
        for _ in 0..3 {
            pipeline.submit_blocking(&input).unwrap();
        }
        drop(pipeline); // must not hang or leak; Drop joins the workers
    }

    // ------------------------------------------------------------------
    // Session multiplexing: many sessions, one resident pipeline.
    // ------------------------------------------------------------------

    #[test]
    fn interleaved_sessions_stay_lossless_and_ordered() {
        // Three sessions share one pipeline, each submitting and
        // draining from its own thread. Every session must see exactly
        // its own frames, bit-identical to solo inference and in its own
        // submission order, no matter how the threads interleave on the
        // shared stages.
        let g = Arc::new(d3_model::zoo::chain_cnn(4, 8, 16));
        let pipeline = pipeline_for(&g, 41, None, StreamOptions::new().capacity(16));
        let exec = Executor::new(&g, 41);
        let sessions = [
            pipeline.root_session(),
            pipeline.attach_session(1.0),
            pipeline.attach_session(1.0),
        ];
        std::thread::scope(|scope| {
            for (k, &sid) in sessions.iter().enumerate() {
                let (pipeline, exec) = (&pipeline, &exec);
                scope.spawn(move || {
                    let inputs: Vec<Tensor> = (0..8)
                        .map(|f| Tensor::random(3, 16, 16, 1000 + 100 * k as u64 + f))
                        .collect();
                    for input in &inputs {
                        pipeline.submit_blocking_as(sid, input).unwrap();
                    }
                    for (f, input) in inputs.iter().enumerate() {
                        let (id, got) = pipeline.recv_as(sid).unwrap();
                        assert_eq!(id, FrameId(f as u64), "session {k} out of order");
                        assert_eq!(
                            max_abs_diff(&got, &exec.run(input)),
                            Some(0.0),
                            "session {k} frame {f} diverged on the shared pipeline"
                        );
                    }
                });
            }
        });
        let report = pipeline.close();
        assert_eq!(report.sessions.len(), 3);
        assert_eq!(report.measured.frames, 24);
        for stats in &report.sessions {
            assert_eq!(stats.frames, 8);
            assert_eq!(stats.drops, 0);
            assert!(stats.p99_latency_s >= stats.p50_latency_s);
        }
    }

    #[test]
    fn weighted_admission_shares_the_gate_under_saturation() {
        // Stall the device stage so nothing completes while we flood:
        // the shared gate must hand the heavy session (weight 3) three
        // times the light session's in-flight share, and the floor must
        // keep the light session admissible at all.
        let g = Arc::new(d3_model::zoo::chain_cnn(4, 8, 16));
        let pipeline = pipeline_for(
            &g,
            43,
            None,
            StreamOptions::new().capacity(8).weight(3.0).inject_delay(
                Tier::Device,
                1,
                Duration::from_millis(40),
            ),
        );
        let heavy = pipeline.root_session();
        let light = pipeline.attach_session(1.0);
        let exec = Executor::new(&g, 43);
        let frame = |seed| Tensor::random(3, 16, 16, seed);
        let admit_until_throttled = |sid: SessionId, base: u64| -> u64 {
            let mut admitted = 0;
            for f in 0..16 {
                match pipeline.submit_as(sid, &frame(base + f)) {
                    Ok(_) => admitted += 1,
                    Err(SubmitError::Backpressure) => break,
                    Err(e) => panic!("unexpected {e}"),
                }
            }
            admitted
        };
        // capacity 8, weights 3:1 → quotas floor(8·3/4)=6 and
        // floor(8·1/4)=2.
        let heavy_admitted = admit_until_throttled(heavy, 2000);
        let light_admitted = admit_until_throttled(light, 3000);
        assert_eq!(heavy_admitted, 6, "heavy session's weighted share");
        assert_eq!(light_admitted, 2, "light session starved or over-served");
        // Both drain losslessly, in their own order.
        for (sid, base, n) in [(heavy, 2000, heavy_admitted), (light, 3000, light_admitted)] {
            for f in 0..n {
                let (id, got) = pipeline.recv_as(sid).unwrap();
                assert_eq!(id, FrameId(f));
                assert_eq!(max_abs_diff(&got, &exec.run(&frame(base + f))), Some(0.0));
            }
        }
        let report = pipeline.close();
        let stats: Vec<_> = report.sessions.iter().map(|s| s.frames).collect();
        assert_eq!(stats, [6, 2]);
    }

    #[test]
    fn shared_quiesce_keeps_attached_sessions_lossless() {
        // Two sessions with frames in flight across one apply_plan: the
        // shared pipeline quiesces exactly once (one reconfiguration),
        // and both sessions keep bit-identical, in-order delivery over
        // the boundary.
        let g = Arc::new(d3_model::zoo::chain_cnn(6, 8, 16));
        let mut pipeline = pipeline_for(&g, 47, None, StreamOptions::new().capacity(16));
        let exec = Executor::new(&g, 47);
        let a = pipeline.root_session();
        let b = pipeline.attach_session(2.0);
        let frame = |seed| Tensor::random(3, 16, 16, seed);
        for f in 0..2u64 {
            pipeline.submit_blocking_as(a, &frame(4000 + f)).unwrap();
            pipeline.submit_blocking_as(b, &frame(5000 + f)).unwrap();
        }
        let before = pipeline.assignment().clone();
        let swap = pipeline
            .apply_plan(&update_to(
                &g,
                &before,
                Assignment::uniform(g.len(), Tier::Cloud),
                None,
            ))
            .unwrap();
        // All four in-flight frames drained to the reorder buffer in the
        // single shared quiesce.
        assert_eq!(swap.drained_frames, 4);
        for f in 2..4u64 {
            pipeline.submit_blocking_as(a, &frame(4000 + f)).unwrap();
            pipeline.submit_blocking_as(b, &frame(5000 + f)).unwrap();
        }
        for (sid, base) in [(a, 4000), (b, 5000)] {
            for f in 0..4u64 {
                let (id, got) = pipeline.recv_as(sid).unwrap();
                assert_eq!(id, FrameId(f), "order across the shared swap");
                assert_eq!(
                    max_abs_diff(&got, &exec.run(&frame(base + f))),
                    Some(0.0),
                    "frame {f} diverged across the shared swap"
                );
            }
        }
        let report = pipeline.close();
        assert_eq!(report.reconfigurations, 1);
        assert_eq!(report.sessions.len(), 2);
        for stats in &report.sessions {
            assert_eq!((stats.frames, stats.drops), (4, 0));
        }
    }

    #[test]
    fn batches_coalesce_across_sessions() {
        // Two sessions trickle alternating frames; with the batch bound
        // above either session's total, any coalesced batch must mix
        // frames of both sessions — the batcher works on the shared
        // ingress stream, not per session.
        let g = Arc::new(d3_model::zoo::chain_cnn(6, 8, 16));
        let pipeline = pipeline_for(
            &g,
            53,
            None,
            StreamOptions::new()
                .capacity(16)
                .batching(BatchOptions::frames(8).deadline(Duration::from_millis(200)))
                .inject_delay(Tier::Device, 1, Duration::from_millis(2)),
        );
        let a = pipeline.root_session();
        let b = pipeline.attach_session(1.0);
        let exec = Executor::new(&g, 53);
        let frame = |seed| Tensor::random(3, 16, 16, seed);
        for f in 0..4u64 {
            pipeline.submit_blocking_as(a, &frame(6000 + f)).unwrap();
            pipeline.submit_blocking_as(b, &frame(7000 + f)).unwrap();
        }
        for (sid, base) in [(a, 6000), (b, 7000)] {
            for f in 0..4u64 {
                let (id, got) = pipeline.recv_as(sid).unwrap();
                assert_eq!(id, FrameId(f));
                assert_eq!(max_abs_diff(&got, &exec.run(&frame(base + f))), Some(0.0));
            }
        }
        let report = pipeline.close();
        assert_eq!(report.measured.frames, 8);
        // 8 frames, batch bound 8, submissions alternating sessions:
        // fewer executor calls than frames proves coalescing, and any
        // batch of ≥ 2 consecutive global ids spans both sessions.
        assert!(
            report.stage_pools[0].batches < 8,
            "batcher never coalesced across sessions: {} calls for 8 frames",
            report.stage_pools[0].batches
        );
    }

    #[test]
    fn hundred_sessions_share_one_stage_pool_set() {
        // The O(pool)-threads property: attaching 100 sessions spawns
        // zero threads, and every session still gets lossless in-order
        // delivery with its own stats.
        let g = Arc::new(d3_model::zoo::chain_cnn(4, 8, 16));
        let pipeline = pipeline_for(&g, 59, None, StreamOptions::new().capacity(16));
        let exec = Executor::new(&g, 59);
        let resident = pipeline.resident_threads();
        let mut sessions = vec![pipeline.root_session()];
        for _ in 1..100 {
            sessions.push(pipeline.attach_session(1.0));
        }
        assert_eq!(
            pipeline.resident_threads(),
            resident,
            "attaching sessions must not spawn threads"
        );
        assert_eq!(pipeline.sessions().len(), 100);
        let frame = |k: u64| Tensor::random(3, 16, 16, 10_000 + k);
        for (k, &sid) in sessions.iter().enumerate() {
            pipeline.submit_blocking_as(sid, &frame(k as u64)).unwrap();
        }
        for (k, &sid) in sessions.iter().enumerate() {
            let (id, got) = pipeline.recv_as(sid).unwrap();
            assert_eq!(id, FrameId(0), "each session sees its own seq 0");
            assert_eq!(
                max_abs_diff(&got, &exec.run(&frame(k as u64))),
                Some(0.0),
                "session {k} diverged in the 100-session burst"
            );
        }
        let report = pipeline.close();
        assert_eq!(report.sessions.len(), 100);
        assert_eq!(report.measured.frames, 100);
        for stats in &report.sessions {
            assert_eq!((stats.frames, stats.drops), (1, 0));
        }
    }

    #[test]
    fn detach_session_returns_final_stats_and_frees_share() {
        let g = Arc::new(d3_model::zoo::chain_cnn(4, 8, 16));
        let pipeline = pipeline_for(&g, 61, None, StreamOptions::new().capacity(8));
        let extra = pipeline.attach_session(1.0);
        let input = Tensor::random(3, 16, 16, 77);
        pipeline.submit_blocking_as(extra, &input).unwrap();
        let _ = pipeline.recv_as(extra).unwrap();
        let stats = pipeline.detach_session(extra).expect("attached");
        assert_eq!((stats.frames, stats.submitted, stats.drops), (1, 1, 0));
        assert!(pipeline.session_stats(extra).is_none());
        // The detached id no longer admits.
        assert!(matches!(
            pipeline.submit_as(extra, &input),
            Err(SubmitError::Closed)
        ));
        // The root session is unaffected.
        pipeline.submit_blocking(&input).unwrap();
        let _ = pipeline.recv().unwrap();
        let report = pipeline.close();
        assert_eq!(report.sessions.len(), 1, "only the root remains at close");
    }

    // ------------------------------------------------------------------
    // Property tests for the order-keeping primitives: any interleaving
    // of pooled-worker completions must re-sequence to dense submission
    // order, and the size-or-deadline batcher must never drop, duplicate
    // or reorder frames.
    // ------------------------------------------------------------------

    use proptest::prelude::*;

    /// Deterministic Fisher–Yates driven by SplitMix64 — the arbitrary
    /// completion interleaving of a worker pool.
    fn shuffle<T>(items: &mut [T], mut seed: u64) {
        let mut next = move || {
            seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = seed;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for i in (1..items.len()).rev() {
            items.swap(i, (next() % (i as u64 + 1)) as usize);
        }
    }

    /// One completed unit per batch: `(first_id, frame_count, frames)`.
    type CompletionUnit = (u64, usize, Vec<(FrameId, Tensor)>);

    fn completion_units(sizes: &[usize]) -> (u64, Vec<CompletionUnit>) {
        let mut units = Vec::new();
        let mut next_id = 0u64;
        for &size in sizes {
            let frames: Vec<(FrameId, Tensor)> = (next_id..next_id + size as u64)
                .map(|id| (FrameId(id), Tensor::zeros(1, 1, 1)))
                .collect();
            units.push((next_id, size, frames));
            next_id += size as u64;
        }
        (next_id, units)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The resequencer releases any interleaving of pooled
        /// completions strictly in submission order with dense ids —
        /// nothing dropped, nothing duplicated.
        #[test]
        fn resequencer_restores_any_interleaving(
            sizes in prop::collection::vec(1usize..=3, 1..=10),
            shuffle_seed in any::<u64>(),
        ) {
            let (total, mut units) = completion_units(&sizes);
            shuffle(&mut units, shuffle_seed);
            let (tx_seq, rx_seq) = bounded::<(u64, usize, StageOut)>(units.len() + 1);
            let (tx_out, rx_out) = bounded::<(FrameId, Tensor)>(total as usize + 1);
            let handle = std::thread::spawn(move || {
                resequencer(rx_seq, 0, Route::Results(tx_out));
            });
            for (first, count, frames) in units {
                prop_assert!(
                    tx_seq.send((first, count, StageOut::Results(frames))).is_ok(),
                    "resequencer died early"
                );
            }
            drop(tx_seq);
            handle.join().expect("resequencer exits cleanly");
            let mut released = Vec::new();
            while let Ok((id, _)) = rx_out.try_recv() {
                released.push(id.0);
            }
            let expect: Vec<u64> = (0..total).collect();
            prop_assert_eq!(released, expect);
        }

        /// The size-or-deadline batcher forwards every admitted frame
        /// exactly once, in submission order, never exceeding the batch
        /// bound.
        #[test]
        fn batcher_never_drops_duplicates_or_reorders(
            n in 1usize..=24,
            max_frames in 1usize..=5,
            deadline_ms in 0u64..=2,
        ) {
            let (tx_in, rx_in) = bounded::<BatchMsg>(n + 1);
            let (tx_out, rx_out) = bounded::<BatchMsg>(n + 1);
            for id in 0..n as u64 {
                let fed = tx_in.send(BatchMsg {
                    frames: vec![Frame {
                        id,
                        submitted_at: Stamp::ZERO,
                        payload: Vec::new(),
                    }],
                    stamp: None,
                });
                prop_assert!(fed.is_ok(), "feeding the batcher failed");
            }
            drop(tx_in); // admissions close; the batcher must flush
            let deadline = Duration::from_millis(deadline_ms);
            let clock = Clock::real();
            let handle = std::thread::spawn(move || {
                batcher(rx_in, tx_out, max_frames.max(2), deadline, &clock);
            });
            handle.join().expect("batcher exits cleanly");
            let mut seen = Vec::new();
            while let Ok(batch) = rx_out.try_recv() {
                prop_assert!(
                    batch.frames.len() <= max_frames.max(2),
                    "batch of {} exceeds the bound {}",
                    batch.frames.len(),
                    max_frames.max(2)
                );
                seen.extend(batch.frames.iter().map(|f| f.id));
            }
            let expect: Vec<u64> = (0..n as u64).collect();
            prop_assert_eq!(seen, expect);
        }
    }
}
