//! Real pipelined stream execution over a deployed plan.
//!
//! The discrete-event simulator ([`crate::pipeline`]) *predicts* how a
//! deployment behaves under a frame stream; this module *measures* it.
//! [`StreamPipeline`] turns the plan's tier segments (device → edge →
//! cloud) into three long-lived worker threads connected by **bounded**
//! channels: frame `N+1` starts on the device stage while frame `N` is
//! still on the edge stage, so sustained throughput is governed by the
//! slowest stage rather than the end-to-end sum — exactly the
//! bottleneck phenomenon the paper's VSM attacks ("the node with the
//! most processing time becomes the bottleneck", §I).
//!
//! Design notes:
//!
//! - **Admission control.** Every inter-stage queue is a bounded channel
//!   ([`crossbeam::channel::bounded`]); [`StreamPipeline::submit`] is
//!   non-blocking and reports [`SubmitError::Backpressure`] once the
//!   ingress queue fills, so an overloaded pipeline sheds frames at the
//!   door instead of hoarding unbounded memory.
//! - **Prebuilt weights.** Each stage owns a
//!   [`d3_model::SegmentExecutor`] whose operators (and weights) were
//!   materialized once at session open; the per-frame cost is pure
//!   tensor arithmetic. When the plan tiled the edge segment's conv
//!   runs, the edge stage instead holds prebuilt VSM tile executors
//!   (plus prebuilt operators for its untiled members) — still zero
//!   per-frame weight construction.
//! - **Live telemetry.** Each stage worker periodically publishes a
//!   [`TelemetrySnapshot`] (measured compute per frame, ingress queue
//!   depth) over a bounded channel; tap it mid-stream with
//!   [`StreamPipeline::telemetry`]. Producers drop snapshots when no one
//!   drains — telemetry never backpressures the data path.
//! - **Live reconfiguration.** [`StreamPipeline::apply_plan`] swaps the
//!   running pipeline onto a controller-emitted [`PlanUpdate`] *without
//!   dropping a frame*: admissions pause, in-flight frames drain to a
//!   reorder buffer at a frame boundary, stages whose segment did not
//!   change keep their prebuilt executors (weights and all), changed
//!   stages are rebuilt, and the stream resumes. Frame ids keep
//!   increasing across the swap and results stay in submission order.
//! - **Shared metrics shape.** Closing the pipeline yields a
//!   [`StreamReport`] whose [`StreamStats`] has the *same shape* the
//!   simulator emits (p50/p95/max latency, throughput, interleaved
//!   stage/link utilization), so predicted and measured pipelines are
//!   directly comparable.
//! - **Losslessness.** Tensors cross stages through the [`crate::wire`]
//!   codec, and stage executors reuse the deployment's weight seed:
//!   streamed outputs are bit-identical to one-shot
//!   [`crate::run_distributed`] / single-node inference — before,
//!   during and after a plan swap.

use crate::adapt::PlanUpdate;
use crate::deploy::{Deployment, VsmConfig};
use crate::pipeline::{percentile, simulate_stream, StageSpec, StreamStats};
use crate::telemetry::{Observation, TelemetrySnapshot, TelemetryTap};
use crate::wire;
use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use d3_model::{
    crossing_tensors, walk_segment, DnnGraph, Executor, LayerOp, NodeId, SegmentExecutor,
};
use d3_partition::Assignment;
use d3_simnet::Tier;
use d3_tensor::Tensor;
use d3_vsm::TiledRuns;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Bound of the telemetry snapshot queue; producers drop (never block)
/// once it fills.
const TELEMETRY_DEPTH: usize = 64;

/// Identifier of one submitted frame, unique and increasing within a
/// pipeline (rejected submissions may leave gaps).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FrameId(pub u64);

impl std::fmt::Display for FrameId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "frame#{}", self.0)
    }
}

/// Configuration of a streaming session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamOptions {
    /// Bound of every inter-stage queue (and of the result queue). Depth
    /// trades latency under overload for tolerance to jitter; once the
    /// ingress queue holds this many frames, [`StreamPipeline::submit`]
    /// reports backpressure.
    pub capacity: usize,
    /// Frames per telemetry window: every stage worker publishes a
    /// [`TelemetrySnapshot`] after this many processed frames. `0`
    /// disables telemetry emission.
    pub telemetry_every: u64,
}

impl Default for StreamOptions {
    fn default() -> Self {
        Self {
            capacity: 8,
            telemetry_every: 32,
        }
    }
}

impl StreamOptions {
    /// Default options (queue capacity 8, telemetry every 32 frames).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the per-stage queue bound.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    #[must_use]
    pub fn capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        self.capacity = capacity;
        self
    }

    /// Sets the telemetry window (frames per snapshot; 0 disables).
    #[must_use]
    pub fn telemetry_every(mut self, frames: u64) -> Self {
        self.telemetry_every = frames;
        self
    }
}

/// Why a deployment cannot run as a streaming pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamBuildError {
    /// A DAG link flows backwards against the device→edge→cloud pipeline
    /// (the plan violates the paper's Proposition 1 monotonicity).
    NonMonotone {
        /// Producer vertex.
        producer: NodeId,
        /// Consumer vertex placed on an earlier tier.
        consumer: NodeId,
    },
    /// The graph has several output vertices.
    MultiOutput {
        /// Output count.
        outputs: usize,
    },
    /// The plan covers a different vertex count than the streaming
    /// graph (e.g. a [`PlanUpdate`] built for another model).
    PlanMismatch {
        /// Vertices in the streaming graph.
        expected: usize,
        /// Vertices the plan covers.
        got: usize,
    },
    /// [`StreamOptions::capacity`] was set to zero (the field is public;
    /// the [`capacity`](StreamOptions::capacity) builder rejects this
    /// earlier).
    ZeroCapacity,
}

impl std::fmt::Display for StreamBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamBuildError::NonMonotone { producer, consumer } => write!(
                f,
                "link {producer} -> {consumer} flows backwards against the pipeline"
            ),
            StreamBuildError::MultiOutput { outputs } => {
                write!(
                    f,
                    "streaming requires a single-output graph (has {outputs})"
                )
            }
            StreamBuildError::PlanMismatch { expected, got } => write!(
                f,
                "plan covers {got} vertices but the streaming graph has {expected}"
            ),
            StreamBuildError::ZeroCapacity => write!(f, "queue capacity must be positive"),
        }
    }
}

impl std::error::Error for StreamBuildError {}

/// Why a frame was not admitted.
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitError {
    /// The ingress queue is full; retry after draining results.
    Backpressure,
    /// The input tensor does not match the model's input shape.
    ShapeMismatch {
        /// Expected `(c, h, w)`.
        expected: (usize, usize, usize),
        /// Received `(c, h, w)`.
        got: (usize, usize, usize),
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Backpressure => write!(f, "stream ingress queue is full"),
            SubmitError::ShapeMismatch { expected, got } => {
                write!(
                    f,
                    "input shape {got:?} does not match model (expects {expected:?})"
                )
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why [`StreamPipeline::recv`] returned no frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamRecvError {
    /// Every admitted frame has already been received.
    NoFramesInFlight,
}

impl std::fmt::Display for StreamRecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamRecvError::NoFramesInFlight => write!(f, "no frames in flight"),
        }
    }
}

impl std::error::Error for StreamRecvError {}

/// One frame travelling between stages: crossing tensors in wire format.
struct FrameMsg {
    id: u64,
    submitted_at: Instant,
    payload: Vec<(NodeId, Bytes)>,
}

/// How a stage executes its segment.
enum StageExec {
    /// Prebuilt-weights executor (device, cloud, and untiled edge).
    Prebuilt(SegmentExecutor),
    /// Edge segment with VSM tile-parallel conv runs, tile executors and
    /// remaining operators prebuilt once per session.
    Vsm(VsmStage),
}

impl StageExec {
    /// The segment members served (ascending) — the reuse key for live
    /// reconfiguration: an executor survives a plan swap iff its member
    /// set is unchanged.
    fn members(&self) -> &[NodeId] {
        match self {
            StageExec::Prebuilt(seg) => seg.members(),
            StageExec::Vsm(stage) => &stage.members,
        }
    }

    fn run(&self, boundary: HashMap<NodeId, Tensor>) -> HashMap<NodeId, Tensor> {
        match self {
            StageExec::Prebuilt(seg) => seg.run(boundary),
            StageExec::Vsm(stage) => stage.run(boundary),
        }
    }
}

/// An edge stage with VSM tile parallelism: the streaming counterpart of
/// [`execute_segment`](crate::distributed) with every weight — tiled and
/// untiled alike — materialized once at construction instead of per
/// frame. The tile-run rules themselves (grid clamp, plan-rejection
/// serial fallback, interior skipping) are the shared
/// [`d3_vsm::TiledRuns`].
struct VsmStage {
    graph: Arc<DnnGraph>,
    /// Segment members, ascending (ids are topological).
    members: Vec<NodeId>,
    /// Prepared tileable runs (prebuilt tile executors).
    runs: TiledRuns,
    /// Prebuilt operators for every member outside a tiled run.
    ops: HashMap<NodeId, LayerOp>,
}

impl VsmStage {
    /// Prepares the stage; `None` when the segment has no tileable run
    /// (callers then use a plain prebuilt executor).
    fn new(graph: Arc<DnnGraph>, seed: u64, members: &[NodeId], cfg: VsmConfig) -> Option<Self> {
        let mut sorted = members.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let exec = Executor::new(&graph, seed);
        let runs = TiledRuns::prepare(&exec, &sorted, cfg.grid, cfg.min_run_len);
        if runs.is_empty() {
            return None;
        }
        let ops = sorted
            .iter()
            .filter(|&&id| !runs.is_tiled(id))
            .map(|&id| (id, exec.build_op(id)))
            .collect();
        Some(Self {
            graph,
            members: sorted,
            runs,
            ops,
        })
    }

    /// Executes the segment for one frame; same boundary/crossing
    /// contract as [`SegmentExecutor::run`] (boundary by value — this is
    /// the per-frame hot path), with tileable runs going through their
    /// prebuilt tile executors tile-parallel.
    fn run(&self, boundary: HashMap<NodeId, Tensor>) -> HashMap<NodeId, Tensor> {
        let mut values = boundary;
        walk_segment(
            &self.graph,
            &self.members,
            &mut values,
            |id, values| {
                self.runs
                    .execute(id, values, |rid, inputs| self.ops[&rid].apply(inputs))
            },
            |id, inputs| self.ops[&id].apply(inputs),
        );
        crossing_tensors(&self.graph, &self.members, &values)
    }
}

/// Static per-stage routing plan.
struct StageCtx {
    /// The stage's tier (telemetry labels).
    tier: Tier,
    exec: StageExec,
    /// Payload ids this stage must decode (external inputs of its
    /// segment; for the last stage, also the graph output).
    needed: HashSet<NodeId>,
    /// Payload/output ids a later stage needs: forwarded in wire format.
    forward_ids: HashSet<NodeId>,
    output_node: NodeId,
    is_last: bool,
}

/// What a stage worker accumulated over its lifetime.
#[derive(Default)]
struct StageMetrics {
    decode_s: f64,
    compute_s: f64,
    encode_s: f64,
    /// Submit→completion latency per frame (final stage only).
    latencies_s: Vec<f64>,
    /// Completion instant of the last frame (final stage only).
    last_done: Option<Instant>,
}

impl StageMetrics {
    /// Merges a retiring worker generation into the accumulated totals
    /// (live reconfiguration replaces workers; measurements span them).
    fn absorb(&mut self, other: StageMetrics) {
        self.decode_s += other.decode_s;
        self.compute_s += other.compute_s;
        self.encode_s += other.encode_s;
        self.latencies_s.extend(other.latencies_s);
        self.last_done = match (self.last_done, other.last_done) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }
}

/// Per-stage routing derived from an assignment: segment members plus
/// which payload ids each stage decodes and forwards.
struct Routing {
    /// Segment members per rank, ascending.
    members: Vec<Vec<NodeId>>,
    needed: Vec<HashSet<NodeId>>,
    forward_ids: Vec<HashSet<NodeId>>,
}

/// Validates `assignment` as a forward pipeline over `graph` and derives
/// the stage routing — shared by pipeline construction and live
/// reconfiguration (a bad [`PlanUpdate`] is rejected here *before* the
/// running stream is touched).
fn plan_routing(
    graph: &DnnGraph,
    assignment: &Assignment,
    output_node: NodeId,
) -> Result<Routing, StreamBuildError> {
    if assignment.len() != graph.len() {
        return Err(StreamBuildError::PlanMismatch {
            expected: graph.len(),
            got: assignment.len(),
        });
    }
    for node in graph.nodes() {
        let from = assignment.tier(node.id);
        for &succ in &node.succs {
            if !from.precedes_eq(assignment.tier(succ)) {
                return Err(StreamBuildError::NonMonotone {
                    producer: node.id,
                    consumer: succ,
                });
            }
        }
    }
    // Per-stage routing: which payload ids each stage decodes, and
    // which it forwards for later stages.
    let members: Vec<Vec<NodeId>> = Tier::ALL.iter().map(|t| assignment.segment(*t)).collect();
    let mut needed: Vec<HashSet<NodeId>> = vec![HashSet::new(); 3];
    for (rank, stage_members) in members.iter().enumerate() {
        for &m in stage_members {
            for &p in &graph.node(m).preds {
                if assignment.tier(p).rank() != rank {
                    needed[rank].insert(p);
                }
            }
        }
    }
    // The graph input's tensor is always provided externally (it is
    // the submitted frame), and the final stage must hold the output
    // tensor even when an earlier tier produced it.
    needed[assignment.tier(graph.input()).rank()].insert(graph.input());
    if !members[2].contains(&output_node) {
        needed[2].insert(output_node);
    }
    let forward_ids: Vec<HashSet<NodeId>> = (0..3)
        .map(|s| needed[s + 1..].iter().flatten().copied().collect())
        .collect();
    Ok(Routing {
        members,
        needed,
        forward_ids,
    })
}

/// Builds the executor for one stage (VSM-tiled edge when the segment
/// has tileable runs, plain prebuilt weights otherwise).
fn build_stage_exec(
    graph: &Arc<DnnGraph>,
    seed: u64,
    members: &[NodeId],
    tier: Tier,
    vsm: Option<VsmConfig>,
) -> StageExec {
    if let (Tier::Edge, Some(cfg)) = (tier, vsm) {
        if let Some(stage) = VsmStage::new(graph.clone(), seed, members, cfg) {
            return StageExec::Vsm(stage);
        }
    }
    StageExec::Prebuilt(SegmentExecutor::new(graph.clone(), seed, members))
}

/// Spawns the three stage workers for `routing`, reusing the executors
/// in `reuse` whose member sets are unchanged (prebuilt weights survive
/// the swap). Returns the new ingress sender, result receiver, worker
/// handles and a per-rank reuse flag.
#[allow(clippy::too_many_arguments, clippy::type_complexity)]
fn spawn_stages(
    graph: &Arc<DnnGraph>,
    seed: u64,
    vsm: Option<VsmConfig>,
    capacity: usize,
    output_node: NodeId,
    routing: &Routing,
    telemetry_every: u64,
    telemetry_tx: &Sender<TelemetrySnapshot>,
    mut reuse: Vec<Option<StageExec>>,
) -> (
    Sender<FrameMsg>,
    Receiver<(FrameId, Tensor)>,
    Vec<JoinHandle<(StageCtx, StageMetrics)>>,
    [bool; 3],
) {
    // Channels: submit → device → edge → cloud → results.
    let (tx_in, rx_dev) = bounded::<FrameMsg>(capacity);
    let (tx_edge, rx_edge) = bounded::<FrameMsg>(capacity);
    let (tx_cloud, rx_cloud) = bounded::<FrameMsg>(capacity);
    let (tx_out, rx_out) = bounded::<(FrameId, Tensor)>(capacity);

    let mut handles = Vec::with_capacity(3);
    let receivers = [rx_dev, rx_edge, rx_cloud];
    let mut senders = [Some(tx_edge), Some(tx_cloud), None::<Sender<FrameMsg>>];
    let mut tx_out = Some(tx_out);
    let mut reused = [false; 3];
    for (rank, rx) in receivers.into_iter().enumerate() {
        let tier = Tier::ALL[rank];
        let members = &routing.members[rank];
        let exec = match reuse.get_mut(rank).and_then(Option::take) {
            Some(old) if old.members() == members.as_slice() => {
                reused[rank] = true;
                old
            }
            _ => build_stage_exec(graph, seed, members, tier, vsm),
        };
        let ctx = StageCtx {
            tier,
            exec,
            needed: routing.needed[rank].clone(),
            forward_ids: routing.forward_ids[rank].clone(),
            output_node,
            is_last: rank == 2,
        };
        let tx_next = senders[rank].take();
        // Only the final stage sends results: that way rx_out
        // disconnects — and recv() panics instead of hanging — as
        // soon as a worker dies anywhere in the chain (a death
        // cascades downstream through dropped channel ends).
        let tx_results = if rank == 2 { tx_out.take() } else { None };
        let ttx = telemetry_tx.clone();
        handles.push(std::thread::spawn(move || {
            stage_worker(ctx, rx, tx_next, tx_results, telemetry_every, ttx)
        }));
    }
    (tx_in, rx_out, handles, reused)
}

/// What a live plan swap did to the running pipeline.
#[derive(Debug, Clone)]
pub struct PlanSwap {
    /// Vertices whose tier changed (from the applied [`PlanUpdate`]).
    pub changed: Vec<NodeId>,
    /// Stages whose prebuilt executor (weights included) survived the
    /// swap because their segment was unchanged.
    pub reused: Vec<Tier>,
    /// Stages rebuilt for the new plan.
    pub rebuilt: Vec<Tier>,
    /// In-flight frames drained to the reorder buffer at the swap's
    /// frame boundary (none dropped; they surface through `recv` in
    /// submission order).
    pub drained_frames: u64,
}

/// Final report of a closed streaming session.
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// Measured statistics, in the exact shape the simulator's
    /// [`simulate_stream`] emits — compare them field by field.
    pub measured: StreamStats,
    /// The deployment's predicted stage specs (feed them to
    /// [`simulate_stream`] via [`StreamReport::predicted_stats`]). After
    /// live reconfigurations these are the *latest* plan's specs.
    pub predicted: Vec<StageSpec>,
    /// Server labels matching `measured.utilization` order:
    /// `[device, device→, edge, edge→, cloud]`.
    pub server_names: Vec<String>,
    /// Busy seconds per server, same order as `server_names`. A stage's
    /// busy time is its worker's compute (plus ingress decode on the
    /// device stage); a link's is the slower of its producer-encode and
    /// consumer-decode halves, which bounds its sustainable rate (the
    /// halves run on different threads, so their sum is not wall time).
    pub busy_s: Vec<f64>,
    /// Wall-clock seconds from session open to the last completion.
    pub wall_s: f64,
    /// Frames admitted by `submit`/`submit_blocking`.
    pub submitted: u64,
    /// Frames rejected by backpressure.
    pub rejected: u64,
    /// Live plan swaps applied over the session's lifetime.
    pub reconfigurations: u64,
}

impl StreamReport {
    /// Simulates the *predicted* pipeline under the given workload, for
    /// side-by-side comparison with [`StreamReport::measured`].
    #[must_use]
    pub fn predicted_stats(&self, fps: f64, n_frames: usize) -> StreamStats {
        simulate_stream(&self.predicted, fps, n_frames)
    }

    /// The busiest server — the pipeline's measured bottleneck — as
    /// `(label, utilization)`.
    #[must_use]
    pub fn bottleneck(&self) -> Option<(&str, f64)> {
        self.server_names
            .iter()
            .zip(&self.measured.utilization)
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite utilization"))
            .map(|(name, u)| (name.as_str(), *u))
    }

    /// Utilization of the named server (e.g. `"edge"`), when present.
    #[must_use]
    pub fn utilization_of(&self, server: &str) -> Option<f64> {
        self.server_names
            .iter()
            .position(|n| n == server)
            .map(|i| self.measured.utilization[i])
    }

    /// One human-readable line per server plus the headline numbers.
    #[must_use]
    pub fn summary(&self) -> String {
        let mut out = format!(
            "frames: {} ({} rejected) | throughput: {:.1} fps | latency p50/p95/max: \
             {:.1}/{:.1}/{:.1} ms | plan swaps: {}\n",
            self.measured.frames,
            self.rejected,
            self.measured.throughput_fps,
            self.measured.p50_latency_s * 1e3,
            self.measured.p95_latency_s * 1e3,
            self.measured.max_latency_s * 1e3,
            self.reconfigurations,
        );
        for (name, u) in self.server_names.iter().zip(&self.measured.utilization) {
            out.push_str(&format!("  {name:>8}: {:5.1}% busy\n", u * 100.0));
        }
        out
    }
}

/// A live pipelined executor: one worker thread per tier, bounded queues
/// between them, real tensors end to end.
///
/// Obtain one through `D3Runtime::open_stream` (or directly via
/// [`StreamPipeline::new`]), push frames with
/// [`submit`](StreamPipeline::submit), pull results with
/// [`recv`](StreamPipeline::recv), and [`close`](StreamPipeline::close)
/// to collect the [`StreamReport`]. Results arrive in submission order
/// (every queue is FIFO and every stage is a single worker), including
/// across [`apply_plan`](StreamPipeline::apply_plan) swaps. Dropping an
/// un-closed pipeline signals and joins its workers (no thread leaks);
/// only the report is lost.
pub struct StreamPipeline {
    graph: Arc<DnnGraph>,
    seed: u64,
    vsm: Option<VsmConfig>,
    capacity: usize,
    telemetry_every: u64,
    input_node: NodeId,
    input_shape: (usize, usize, usize),
    output_node: NodeId,
    assignment: Assignment,
    tx_in: Option<Sender<FrameMsg>>,
    rx_out: Receiver<(FrameId, Tensor)>,
    handles: Vec<JoinHandle<(StageCtx, StageMetrics)>>,
    /// Metrics absorbed from worker generations retired by plan swaps.
    retired: Vec<StageMetrics>,
    /// Frames drained at a swap's frame boundary, served before new
    /// results to preserve submission order.
    drained: Mutex<VecDeque<(FrameId, Tensor)>>,
    telemetry_tx: Sender<TelemetrySnapshot>,
    telemetry_rx: Receiver<TelemetrySnapshot>,
    predicted: Vec<StageSpec>,
    started: Instant,
    /// Admission instant of the first frame — the wall-clock anchor for
    /// throughput/utilization, so pre-stream idle time is not billed.
    first_submit: Mutex<Option<Instant>>,
    next_id: AtomicU64,
    submitted: AtomicU64,
    rejected: AtomicU64,
    delivered: AtomicU64,
    reconfigs: u64,
}

impl std::fmt::Debug for StreamPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamPipeline")
            .field("submitted", &self.submitted.load(Ordering::Relaxed))
            .field("delivered", &self.delivered.load(Ordering::Relaxed))
            .field("rejected", &self.rejected.load(Ordering::Relaxed))
            .field("reconfigurations", &self.reconfigs)
            .finish()
    }
}

impl StreamPipeline {
    /// Spins up the three stage workers for `deployment`'s plan over
    /// `graph` (weights derived from `seed`, edge tiling from `vsm`).
    ///
    /// # Errors
    ///
    /// Returns [`StreamBuildError`] when the plan cannot run as a
    /// forward pipeline (backwards link, or several graph outputs).
    pub fn new(
        graph: Arc<DnnGraph>,
        seed: u64,
        deployment: &Deployment,
        vsm: Option<VsmConfig>,
        options: StreamOptions,
    ) -> Result<Self, StreamBuildError> {
        if options.capacity == 0 {
            return Err(StreamBuildError::ZeroCapacity);
        }
        let outputs = graph.outputs();
        if outputs.len() != 1 {
            return Err(StreamBuildError::MultiOutput {
                outputs: outputs.len(),
            });
        }
        let output_node = outputs[0];
        let routing = plan_routing(&graph, &deployment.assignment, output_node)?;
        let (telemetry_tx, telemetry_rx) = bounded::<TelemetrySnapshot>(TELEMETRY_DEPTH);
        let (tx_in, rx_out, handles, _) = spawn_stages(
            &graph,
            seed,
            vsm,
            options.capacity,
            output_node,
            &routing,
            options.telemetry_every,
            &telemetry_tx,
            vec![None, None, None],
        );
        let shape = graph.input_shape();
        Ok(Self {
            input_node: graph.input(),
            input_shape: (shape.c, shape.h, shape.w),
            output_node,
            assignment: deployment.assignment.clone(),
            graph,
            seed,
            vsm,
            capacity: options.capacity,
            telemetry_every: options.telemetry_every,
            tx_in: Some(tx_in),
            rx_out,
            handles,
            retired: std::iter::repeat_with(StageMetrics::default)
                .take(3)
                .collect(),
            drained: Mutex::new(VecDeque::new()),
            telemetry_tx,
            telemetry_rx,
            predicted: deployment.stages.clone(),
            started: Instant::now(),
            first_submit: Mutex::new(None),
            next_id: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            delivered: AtomicU64::new(0),
            reconfigs: 0,
        })
    }

    fn encode_frame(&self, input: &Tensor) -> Result<FrameMsg, SubmitError> {
        let got = input.shape3();
        let got = (got.c, got.h, got.w);
        if got != self.input_shape {
            return Err(SubmitError::ShapeMismatch {
                expected: self.input_shape,
                got,
            });
        }
        Ok(FrameMsg {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            submitted_at: Instant::now(),
            payload: vec![(self.input_node, wire::encode(input))],
        })
    }

    /// Admits one frame without blocking.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Backpressure`] when the ingress queue is full, or
    /// [`SubmitError::ShapeMismatch`] for a wrongly-shaped tensor.
    ///
    /// # Panics
    ///
    /// Panics when a stage worker died (a partitioning bug).
    pub fn submit(&self, input: &Tensor) -> Result<FrameId, SubmitError> {
        let msg = self.encode_frame(input)?;
        let id = FrameId(msg.id);
        let admitted_at = msg.submitted_at;
        let tx = self.tx_in.as_ref().expect("pipeline closed");
        match tx.try_send(msg) {
            Ok(()) => {
                // The increment is submit's linearization point (see
                // pending()); it deliberately happens only for frames
                // that actually entered the pipeline, so the in-flight
                // accounting can never over-claim and strand a recv().
                self.submitted.fetch_add(1, Ordering::Relaxed);
                self.record_first_submit(admitted_at);
                Ok(id)
            }
            Err(TrySendError::Full(_)) => {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                Err(SubmitError::Backpressure)
            }
            Err(TrySendError::Disconnected(_)) => panic!("stage worker died"),
        }
    }

    /// Admits one frame, blocking while the ingress queue is full.
    ///
    /// # Errors
    ///
    /// [`SubmitError::ShapeMismatch`] for a wrongly-shaped tensor.
    ///
    /// # Panics
    ///
    /// Panics when a stage worker died (a partitioning bug).
    pub fn submit_blocking(&self, input: &Tensor) -> Result<FrameId, SubmitError> {
        let msg = self.encode_frame(input)?;
        let id = FrameId(msg.id);
        let admitted_at = msg.submitted_at;
        let tx = self.tx_in.as_ref().expect("pipeline closed");
        tx.send(msg).unwrap_or_else(|_| panic!("stage worker died"));
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.record_first_submit(admitted_at);
        Ok(id)
    }

    fn record_first_submit(&self, at: Instant) {
        let mut first = self.first_submit.lock().expect("first_submit poisoned");
        if first.is_none() {
            *first = Some(at);
        }
    }

    /// Waits for the next completed frame, in submission order (frames
    /// drained at a plan swap's boundary come first).
    ///
    /// # Errors
    ///
    /// [`StreamRecvError::NoFramesInFlight`] when every admitted frame
    /// was already received (a blocking wait would never return).
    pub fn recv(&self) -> Result<(FrameId, Tensor), StreamRecvError> {
        if let Some(frame) = self.drained.lock().expect("drained poisoned").pop_front() {
            self.delivered.fetch_add(1, Ordering::Relaxed);
            return Ok(frame);
        }
        if self.pending() == 0 {
            return Err(StreamRecvError::NoFramesInFlight);
        }
        let frame = self.rx_out.recv().expect("stage worker died");
        self.delivered.fetch_add(1, Ordering::Relaxed);
        Ok(frame)
    }

    /// Returns the next completed frame if one is ready.
    #[must_use]
    pub fn try_recv(&self) -> Option<(FrameId, Tensor)> {
        if let Some(frame) = self.drained.lock().expect("drained poisoned").pop_front() {
            self.delivered.fetch_add(1, Ordering::Relaxed);
            return Some(frame);
        }
        let frame = self.rx_out.try_recv().ok()?;
        self.delivered.fetch_add(1, Ordering::Relaxed);
        Some(frame)
    }

    /// Frames admitted but not yet received by the caller.
    ///
    /// Saturating: a very fast pipeline can deliver a frame to a
    /// concurrently draining thread before the submitting thread's
    /// counter increment lands, making `delivered` transiently exceed
    /// `submitted`. Reporting 0 in that window is sound — the submit has
    /// not linearized yet — and it can only make [`recv`](Self::recv)
    /// conservatively return [`StreamRecvError::NoFramesInFlight`],
    /// never block on a frame that is not coming.
    #[must_use]
    pub fn pending(&self) -> u64 {
        self.submitted
            .load(Ordering::Relaxed)
            .saturating_sub(self.delivered.load(Ordering::Relaxed))
    }

    /// Frames admitted so far.
    #[must_use]
    pub fn submitted(&self) -> u64 {
        self.submitted.load(Ordering::Relaxed)
    }

    /// Frames rejected by backpressure so far.
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// The plan the pipeline is currently executing.
    #[must_use]
    pub fn assignment(&self) -> &Assignment {
        &self.assignment
    }

    /// Live plan swaps applied so far.
    #[must_use]
    pub fn reconfigurations(&self) -> u64 {
        self.reconfigs
    }

    /// Opens a live telemetry tap: periodic per-stage snapshots
    /// (measured compute per frame, ingress queue depth) over a bounded
    /// channel. See [`TelemetryTap`] for consumer semantics.
    #[must_use]
    pub fn telemetry(&self) -> TelemetryTap {
        TelemetryTap {
            rx: self.telemetry_rx.clone(),
        }
    }

    /// Swaps the running pipeline onto `update`'s plan **without
    /// dropping a frame**: admissions pause, every in-flight frame
    /// completes under the old plan and lands in a reorder buffer
    /// (served by [`recv`](Self::recv) ahead of new results, preserving
    /// submission order), then the stage workers are rebuilt for the new
    /// plan — stages whose segment is unchanged keep their prebuilt
    /// executor, weights and all — and the stream resumes. Frame ids
    /// keep increasing across the swap.
    ///
    /// Outputs stay bit-identical to single-node inference on both sides
    /// of the boundary: the swap changes *where* layers run, never what
    /// they compute.
    ///
    /// # Errors
    ///
    /// Returns [`StreamBuildError`] when the update's plan cannot run as
    /// a forward pipeline; the running stream is left untouched (the
    /// plan is validated before any teardown).
    ///
    /// # Panics
    ///
    /// Panics when a stage worker died (a partitioning bug).
    pub fn apply_plan(&mut self, update: &PlanUpdate) -> Result<PlanSwap, StreamBuildError> {
        let deployment = &update.deployment;
        let routing = plan_routing(&self.graph, &deployment.assignment, self.output_node)?;

        // Quiesce at a frame boundary: stop admissions; the workers
        // drain every in-flight frame and exit. Completed frames are
        // parked in the reorder buffer, so the bounded result queue can
        // never stall the drain.
        drop(self.tx_in.take());
        let drained_frames;
        {
            let mut drained = self.drained.lock().expect("drained poisoned");
            let before = drained.len();
            while let Ok(frame) = self.rx_out.recv() {
                drained.push_back(frame);
            }
            drained_frames = (drained.len() - before) as u64;
        }
        let mut reuse: Vec<Option<StageExec>> = Vec::with_capacity(3);
        for (rank, handle) in self.handles.drain(..).enumerate() {
            let (ctx, metrics) = handle.join().expect("stage worker panicked");
            self.retired[rank].absorb(metrics);
            reuse.push(Some(ctx.exec));
        }
        // Every old-generation worker has exited: anything still queued
        // on the telemetry channel was measured under the *old* plan.
        // Flush it so a controller never calibrates the new segments
        // from stale stage times.
        while self.telemetry_rx.try_recv().is_ok() {}

        let (tx_in, rx_out, handles, reused) = spawn_stages(
            &self.graph,
            self.seed,
            self.vsm,
            self.capacity,
            self.output_node,
            &routing,
            self.telemetry_every,
            &self.telemetry_tx,
            reuse,
        );
        self.tx_in = Some(tx_in);
        self.rx_out = rx_out;
        self.handles = handles;
        self.assignment = deployment.assignment.clone();
        self.predicted = deployment.stages.clone();
        self.reconfigs += 1;
        let (mut kept, mut rebuilt) = (Vec::new(), Vec::new());
        for (rank, was_reused) in reused.into_iter().enumerate() {
            if was_reused {
                kept.push(Tier::ALL[rank]);
            } else {
                rebuilt.push(Tier::ALL[rank]);
            }
        }
        Ok(PlanSwap {
            changed: update.changed.clone(),
            reused: kept,
            rebuilt,
            drained_frames,
        })
    }

    /// Stops admissions, drains every in-flight frame, joins the stage
    /// workers and reports the measured stream statistics (spanning
    /// every plan the session executed).
    ///
    /// # Panics
    ///
    /// Panics when a stage worker panicked.
    #[must_use]
    pub fn close(mut self) -> StreamReport {
        drop(self.tx_in.take()); // stop admissions; workers drain and exit
        while self.rx_out.recv().is_ok() {} // unread frames are dropped
        let mut metrics: Vec<StageMetrics> = std::mem::take(&mut self.retired);
        for (rank, h) in self.handles.drain(..).enumerate() {
            let (_ctx, m) = h.join().expect("stage worker panicked");
            metrics[rank].absorb(m);
        }

        // Anchor the wall clock at the first admission (like the
        // per-frame latencies), so idle time between session open and
        // the stream's start does not dilute throughput/utilization.
        let anchor = self
            .first_submit
            .lock()
            .expect("first_submit poisoned")
            .unwrap_or(self.started);
        let last_done = metrics[2].last_done.unwrap_or(anchor);
        let wall = (last_done - anchor).as_secs_f64().max(f64::MIN_POSITIVE);
        let mut latencies = metrics[2].latencies_s.clone();
        latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let frames = latencies.len();
        // Interleaved servers, matching the simulator: stage, link, ….
        // Ingress decode counts toward the device stage (same thread as
        // its compute, so their sum never exceeds the wall clock). A
        // link's two halves — producer encode, consumer decode — run on
        // *different* threads and can overlap across frames, so summing
        // them could exceed the wall clock; the slower half bounds the
        // link's sustainable rate and is reported as its busy time.
        let link = |enc: f64, dec: f64| enc.max(dec);
        let busy_s = vec![
            metrics[0].compute_s + metrics[0].decode_s,
            link(metrics[0].encode_s, metrics[1].decode_s),
            metrics[1].compute_s,
            link(metrics[1].encode_s, metrics[2].decode_s),
            metrics[2].compute_s,
        ];
        let measured = StreamStats {
            frames,
            mean_latency_s: if frames == 0 {
                0.0
            } else {
                latencies.iter().sum::<f64>() / frames as f64
            },
            max_latency_s: latencies.last().copied().unwrap_or(0.0),
            p50_latency_s: percentile(&latencies, 0.50),
            p95_latency_s: percentile(&latencies, 0.95),
            throughput_fps: frames as f64 / wall,
            utilization: busy_s.iter().map(|b| b / wall).collect(),
        };
        let server_names = vec![
            "device".into(),
            "device→".into(),
            "edge".into(),
            "edge→".into(),
            "cloud".into(),
        ];
        StreamReport {
            measured,
            predicted: self.predicted.clone(),
            server_names,
            busy_s,
            wall_s: wall,
            submitted: self.submitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            reconfigurations: self.reconfigs,
        }
    }
}

impl Drop for StreamPipeline {
    /// An abandoned (un-[`close`](StreamPipeline::close)d) pipeline
    /// still signals its workers and joins them: admissions stop, the
    /// result queue is drained so no worker blocks on a full channel,
    /// and every thread exits before the pipeline's memory is released.
    fn drop(&mut self) {
        drop(self.tx_in.take());
        while self.rx_out.recv().is_ok() {}
        for handle in self.handles.drain(..) {
            // A worker that panicked already tore the session down;
            // don't double-panic inside drop.
            let _ = handle.join();
        }
    }
}

/// One stage's event loop: decode needed inputs, run the segment,
/// forward crossing tensors (or deliver the output), account busy time,
/// periodically publish telemetry.
fn stage_worker(
    ctx: StageCtx,
    rx: Receiver<FrameMsg>,
    tx_next: Option<Sender<FrameMsg>>,
    tx_results: Option<Sender<(FrameId, Tensor)>>,
    telemetry_every: u64,
    telemetry: Sender<TelemetrySnapshot>,
) -> (StageCtx, StageMetrics) {
    let metrics = pump(&ctx, rx, tx_next, tx_results, telemetry_every, &telemetry);
    (ctx, metrics)
}

fn pump(
    ctx: &StageCtx,
    rx: Receiver<FrameMsg>,
    tx_next: Option<Sender<FrameMsg>>,
    tx_results: Option<Sender<(FrameId, Tensor)>>,
    telemetry_every: u64,
    telemetry: &Sender<TelemetrySnapshot>,
) -> StageMetrics {
    let mut m = StageMetrics::default();
    let mut win_frames: u64 = 0;
    let mut win_compute = 0.0f64;
    while let Ok(FrameMsg {
        id,
        submitted_at,
        payload,
    }) = rx.recv()
    {
        let t0 = Instant::now();
        let mut boundary: HashMap<NodeId, Tensor> = HashMap::new();
        let mut forward: Vec<(NodeId, Bytes)> = Vec::new();
        for (nid, bytes) in payload {
            if ctx.needed.contains(&nid) {
                let tensor = wire::decode(bytes.clone()).expect("corrupt frame");
                boundary.insert(nid, tensor);
            }
            if ctx.forward_ids.contains(&nid) {
                forward.push((nid, bytes));
            }
        }
        // An output produced upstream arrives via payload; pull it out
        // before the segment consumes the boundary (the output vertex
        // has no successors, so no member needs it as an input).
        let payload_output = if ctx.is_last {
            boundary.remove(&ctx.output_node)
        } else {
            None
        };
        m.decode_s += t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        let mut outputs = ctx.exec.run(boundary);
        let compute = t1.elapsed().as_secs_f64();
        m.compute_s += compute;
        win_compute += compute;
        win_frames += 1;

        if ctx.is_last {
            let out_tensor = outputs
                .remove(&ctx.output_node)
                .or(payload_output)
                .expect("output tensor unavailable at final stage");
            m.latencies_s.push(submitted_at.elapsed().as_secs_f64());
            m.last_done = Some(Instant::now());
            let results = tx_results.as_ref().expect("final stage sends results");
            if results.send((FrameId(id), out_tensor)).is_err() {
                break; // session dropped; stop quietly
            }
        } else {
            let t2 = Instant::now();
            for (nid, tensor) in &outputs {
                // Skip ids already travelling in wire form (e.g. a raw
                // input this stage merely re-exposes).
                if ctx.forward_ids.contains(nid) && forward.iter().all(|(f, _)| f != nid) {
                    forward.push((*nid, wire::encode(tensor)));
                }
            }
            m.encode_s += t2.elapsed().as_secs_f64();
            let next = tx_next.as_ref().expect("non-final stage has a successor");
            if next
                .send(FrameMsg {
                    id,
                    submitted_at,
                    payload: forward,
                })
                .is_err()
            {
                break; // downstream worker gone with the session
            }
        }

        if telemetry_every > 0 && win_frames >= telemetry_every {
            // Best-effort publish: a full queue (no consumer) drops the
            // snapshot rather than slowing the frame path.
            let _ = telemetry.try_send(TelemetrySnapshot {
                observations: vec![
                    Observation::StageTime {
                        tier: ctx.tier,
                        seconds_per_frame: win_compute / win_frames as f64,
                        frames: win_frames,
                    },
                    Observation::QueueDepth {
                        tier: ctx.tier,
                        depth: rx.len(),
                    },
                ],
            });
            win_frames = 0;
            win_compute = 0.0;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapt::UpdateScope;
    use d3_partition::{Assignment, Partitioner, Problem};
    use d3_simnet::{NetworkCondition, TierProfiles};
    use d3_tensor::max_abs_diff;

    fn test_problem(g: &Arc<DnnGraph>) -> Problem {
        Problem::new(
            g.clone(),
            &TierProfiles::paper_testbed(),
            NetworkCondition::WiFi,
        )
    }

    fn pipeline_for(
        g: &Arc<DnnGraph>,
        seed: u64,
        vsm: Option<VsmConfig>,
        options: StreamOptions,
    ) -> StreamPipeline {
        let problem = test_problem(g);
        let forced = d3_partition::EvenSplit.partition(&problem).unwrap();
        let deployment = Deployment::new(&problem, forced, vsm);
        StreamPipeline::new(g.clone(), seed, &deployment, vsm, options).unwrap()
    }

    fn update_to(
        g: &Arc<DnnGraph>,
        from: &Assignment,
        to: Assignment,
        vsm: Option<VsmConfig>,
    ) -> PlanUpdate {
        let problem = test_problem(g);
        PlanUpdate {
            changed: from.diff(&to),
            deployment: Deployment::new(&problem, to, vsm),
            scope: UpdateScope::Full,
        }
    }

    #[test]
    fn streamed_frames_match_one_shot_inference() {
        let g = Arc::new(d3_model::zoo::chain_cnn(6, 8, 16));
        let pipeline = pipeline_for(&g, 3, None, StreamOptions::new());
        let exec = Executor::new(&g, 3);
        for k in 0..5u64 {
            let input = Tensor::random(3, 16, 16, 100 + k);
            let id = pipeline.submit_blocking(&input).unwrap();
            let (got_id, got) = pipeline.recv().unwrap();
            assert_eq!(got_id, id);
            assert_eq!(max_abs_diff(&got, &exec.run(&input)), Some(0.0));
        }
        let report = pipeline.close();
        assert_eq!(report.measured.frames, 5);
        assert_eq!(report.submitted, 5);
        assert_eq!(report.rejected, 0);
        assert_eq!(report.reconfigurations, 0);
        assert_eq!(report.measured.utilization.len(), 5);
    }

    #[test]
    fn vsm_edge_stage_stays_lossless() {
        let g = Arc::new(d3_model::zoo::chain_cnn(6, 8, 16));
        let vsm = Some(VsmConfig::default());
        let pipeline = pipeline_for(&g, 1, vsm, StreamOptions::new());
        let exec = Executor::new(&g, 1);
        let input = Tensor::random(3, 16, 16, 9);
        pipeline.submit_blocking(&input).unwrap();
        let (_, got) = pipeline.recv().unwrap();
        assert_eq!(max_abs_diff(&got, &exec.run(&input)), Some(0.0));
        let _ = pipeline.close();
    }

    #[test]
    fn backpressure_rejects_when_saturated() {
        let g = Arc::new(d3_model::zoo::chain_cnn(6, 8, 32));
        let pipeline = pipeline_for(&g, 7, None, StreamOptions::new().capacity(1));
        let input = Tensor::random(3, 32, 32, 5);
        // Flood without draining: the bounded ingress queue must reject
        // eventually instead of buffering arbitrarily.
        let mut saw_backpressure = false;
        for _ in 0..200 {
            match pipeline.submit(&input) {
                Ok(_) => {}
                Err(SubmitError::Backpressure) => {
                    saw_backpressure = true;
                    break;
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(saw_backpressure, "ingress queue never filled");
        let report = pipeline.close();
        assert!(report.rejected >= 1);
        // Every admitted frame still completed during close's drain.
        assert_eq!(report.measured.frames as u64, report.submitted);
    }

    #[test]
    fn shape_mismatch_is_rejected_without_admission() {
        let g = Arc::new(d3_model::zoo::chain_cnn(4, 8, 16));
        let pipeline = pipeline_for(&g, 2, None, StreamOptions::new());
        let wrong = Tensor::random(3, 8, 8, 1);
        assert!(matches!(
            pipeline.submit(&wrong),
            Err(SubmitError::ShapeMismatch { .. })
        ));
        assert_eq!(pipeline.submitted(), 0);
        assert!(matches!(
            pipeline.recv(),
            Err(StreamRecvError::NoFramesInFlight)
        ));
        let _ = pipeline.close();
    }

    #[test]
    fn recv_without_submissions_never_blocks() {
        let g = Arc::new(d3_model::zoo::chain_cnn(4, 8, 16));
        let pipeline = pipeline_for(&g, 2, None, StreamOptions::new());
        assert!(matches!(
            pipeline.recv(),
            Err(StreamRecvError::NoFramesInFlight)
        ));
        assert!(pipeline.try_recv().is_none());
        let report = pipeline.close();
        assert_eq!(report.measured.frames, 0);
        assert_eq!(report.measured.throughput_fps, 0.0);
    }

    #[test]
    fn non_monotone_plans_are_rejected() {
        let g = Arc::new(d3_model::zoo::chain_cnn(4, 8, 16));
        let n = g.len();
        let mut tiers = vec![Tier::Cloud; n];
        tiers[0] = Tier::Device;
        tiers[n - 1] = Tier::Device; // consumer upstream of its producer
        let problem = test_problem(&g);
        let deployment = Deployment::new(&problem, Assignment::new(tiers), None);
        let err =
            StreamPipeline::new(g.clone(), 1, &deployment, None, StreamOptions::new()).unwrap_err();
        assert!(matches!(err, StreamBuildError::NonMonotone { .. }));
    }

    #[test]
    fn uniform_cloud_plan_streams_through_empty_stages() {
        // All real layers on the cloud: device and edge stages are empty
        // pass-throughs, and the raw input must reach the cloud stage.
        let g = Arc::new(d3_model::zoo::tiny_cnn(16));
        let problem = test_problem(&g);
        let assignment = Assignment::uniform(g.len(), Tier::Cloud);
        let deployment = Deployment::new(&problem, assignment, None);
        let pipeline =
            StreamPipeline::new(g.clone(), 4, &deployment, None, StreamOptions::new()).unwrap();
        let input = Tensor::random(3, 16, 16, 2);
        pipeline.submit_blocking(&input).unwrap();
        let (_, got) = pipeline.recv().unwrap();
        let expect = Executor::new(&g, 4).run(&input);
        assert_eq!(max_abs_diff(&got, &expect), Some(0.0));
        let _ = pipeline.close();
    }

    #[test]
    fn apply_plan_swaps_mid_stream_without_dropping_frames() {
        let g = Arc::new(d3_model::zoo::chain_cnn(6, 8, 16));
        let mut pipeline = pipeline_for(&g, 5, None, StreamOptions::new());
        let exec = Executor::new(&g, 5);
        let inputs: Vec<Tensor> = (0..6).map(|k| Tensor::random(3, 16, 16, 40 + k)).collect();
        // Two frames in flight across the boundary.
        pipeline.submit_blocking(&inputs[0]).unwrap();
        pipeline.submit_blocking(&inputs[1]).unwrap();
        let before = pipeline.assignment().clone();
        let swap = pipeline
            .apply_plan(&update_to(
                &g,
                &before,
                Assignment::uniform(g.len(), Tier::Cloud),
                None,
            ))
            .unwrap();
        assert_eq!(
            swap.drained_frames, 2,
            "in-flight frames drained, not dropped"
        );
        for input in &inputs[2..] {
            pipeline.submit_blocking(input).unwrap();
        }
        for (k, input) in inputs.iter().enumerate() {
            let (id, got) = pipeline.recv().unwrap();
            assert_eq!(id, FrameId(k as u64), "submission order across the swap");
            assert_eq!(
                max_abs_diff(&got, &exec.run(input)),
                Some(0.0),
                "frame {k} diverged across the swap"
            );
        }
        let report = pipeline.close();
        assert_eq!(report.measured.frames, 6);
        assert_eq!(report.submitted, 6);
        assert_eq!(report.reconfigurations, 1);
    }

    #[test]
    fn apply_plan_reuses_unchanged_stage_executors() {
        let g = Arc::new(d3_model::zoo::chain_cnn(6, 8, 16));
        let mut pipeline = pipeline_for(&g, 9, None, StreamOptions::new());
        // Move exactly one vertex from cloud to edge: device unchanged.
        let before = pipeline.assignment().clone();
        let mut tiers = before.tiers().to_vec();
        let moved = tiers
            .iter()
            .position(|t| *t == Tier::Cloud)
            .expect("even split loads the cloud");
        tiers[moved] = Tier::Edge;
        let swap = pipeline
            .apply_plan(&update_to(&g, &before, Assignment::new(tiers), None))
            .unwrap();
        assert!(
            swap.reused.contains(&Tier::Device),
            "device segment unchanged"
        );
        assert!(swap.rebuilt.contains(&Tier::Edge));
        assert!(swap.rebuilt.contains(&Tier::Cloud));
        assert_eq!(swap.changed.len(), 1);
        // Still lossless after the swap.
        let input = Tensor::random(3, 16, 16, 77);
        pipeline.submit_blocking(&input).unwrap();
        let (_, got) = pipeline.recv().unwrap();
        let expect = Executor::new(&g, 9).run(&input);
        assert_eq!(max_abs_diff(&got, &expect), Some(0.0));
        let _ = pipeline.close();
    }

    #[test]
    fn apply_plan_rejects_bad_plans_and_keeps_streaming() {
        let g = Arc::new(d3_model::zoo::chain_cnn(4, 8, 16));
        let mut pipeline = pipeline_for(&g, 2, None, StreamOptions::new());
        let n = g.len();
        let mut tiers = vec![Tier::Cloud; n];
        tiers[0] = Tier::Device;
        tiers[n - 1] = Tier::Device;
        let before = pipeline.assignment().clone();
        let err = pipeline
            .apply_plan(&update_to(&g, &before, Assignment::new(tiers), None))
            .unwrap_err();
        assert!(matches!(err, StreamBuildError::NonMonotone { .. }));
        // The stream survived the rejected update.
        let input = Tensor::random(3, 16, 16, 3);
        pipeline.submit_blocking(&input).unwrap();
        let (_, got) = pipeline.recv().unwrap();
        let expect = Executor::new(&g, 2).run(&input);
        assert_eq!(max_abs_diff(&got, &expect), Some(0.0));
        assert_eq!(pipeline.reconfigurations(), 0);
        let _ = pipeline.close();
    }

    #[test]
    fn telemetry_tap_emits_stage_snapshots() {
        let g = Arc::new(d3_model::zoo::chain_cnn(4, 8, 16));
        let pipeline = pipeline_for(&g, 2, None, StreamOptions::new().telemetry_every(2));
        let tap = pipeline.telemetry();
        let input = Tensor::random(3, 16, 16, 3);
        for _ in 0..4 {
            pipeline.submit_blocking(&input).unwrap();
            let _ = pipeline.recv().unwrap();
        }
        let snaps = tap.drain();
        assert!(!snaps.is_empty(), "4 frames at window 2 must emit");
        let obs: Vec<&Observation> = snaps.iter().flat_map(|s| &s.observations).collect();
        assert!(obs.iter().any(|o| matches!(
            o,
            Observation::StageTime { seconds_per_frame, frames: 2, .. } if *seconds_per_frame >= 0.0
        )));
        assert!(obs
            .iter()
            .any(|o| matches!(o, Observation::QueueDepth { .. })));
        let _ = pipeline.close();
    }

    #[test]
    fn apply_plan_flushes_stale_telemetry() {
        // Snapshots measured under the old plan must not survive a swap:
        // a controller reading them would calibrate the new segments
        // from the old ones' stage times.
        let g = Arc::new(d3_model::zoo::chain_cnn(4, 8, 16));
        let mut pipeline = pipeline_for(&g, 2, None, StreamOptions::new().telemetry_every(1));
        let tap = pipeline.telemetry();
        let input = Tensor::random(3, 16, 16, 3);
        for _ in 0..3 {
            pipeline.submit_blocking(&input).unwrap();
            let _ = pipeline.recv().unwrap();
        }
        let before = pipeline.assignment().clone();
        pipeline
            .apply_plan(&update_to(
                &g,
                &before,
                Assignment::uniform(g.len(), Tier::Cloud),
                None,
            ))
            .unwrap();
        // Old workers were joined before the flush, so every pre-swap
        // snapshot was already queued — and is now gone.
        assert!(
            tap.try_recv().is_none(),
            "pre-swap telemetry must be flushed"
        );
        let _ = pipeline.close();
    }

    #[test]
    fn dropping_an_unclosed_pipeline_joins_workers() {
        let g = Arc::new(d3_model::zoo::chain_cnn(4, 8, 16));
        let pipeline = pipeline_for(&g, 6, None, StreamOptions::new());
        let input = Tensor::random(3, 16, 16, 8);
        // Leave frames in flight and results unclaimed, then drop.
        for _ in 0..3 {
            pipeline.submit_blocking(&input).unwrap();
        }
        drop(pipeline); // must not hang or leak; Drop joins the workers
    }
}
