//! Real pipelined stream execution over a deployed plan.
//!
//! The discrete-event simulator ([`crate::pipeline`]) *predicts* how a
//! deployment behaves under a frame stream; this module *measures* it.
//! [`StreamPipeline`] turns the plan's tier segments (device → edge →
//! cloud) into three long-lived worker threads connected by **bounded**
//! channels: frame `N+1` starts on the device stage while frame `N` is
//! still on the edge stage, so sustained throughput is governed by the
//! slowest stage rather than the end-to-end sum — exactly the
//! bottleneck phenomenon the paper's VSM attacks ("the node with the
//! most processing time becomes the bottleneck", §I).
//!
//! Design notes:
//!
//! - **Admission control.** Every inter-stage queue is a bounded channel
//!   ([`crossbeam::channel::bounded`]); [`StreamPipeline::submit`] is
//!   non-blocking and reports [`SubmitError::Backpressure`] once the
//!   ingress queue fills, so an overloaded pipeline sheds frames at the
//!   door instead of hoarding unbounded memory.
//! - **Prebuilt weights.** Each stage owns a
//!   [`d3_model::SegmentExecutor`] whose operators (and weights) were
//!   materialized once at session open; the per-frame cost is pure
//!   tensor arithmetic. When the plan tiled the edge segment's conv
//!   runs, the edge stage instead holds prebuilt VSM tile executors
//!   (plus prebuilt operators for its untiled members) — still zero
//!   per-frame weight construction.
//! - **Shared metrics shape.** Closing the pipeline yields a
//!   [`StreamReport`] whose [`StreamStats`] has the *same shape* the
//!   simulator emits (p50/p95/max latency, throughput, interleaved
//!   stage/link utilization), so predicted and measured pipelines are
//!   directly comparable.
//! - **Losslessness.** Tensors cross stages through the [`crate::wire`]
//!   codec, and stage executors reuse the deployment's weight seed:
//!   streamed outputs are bit-identical to one-shot
//!   [`crate::run_distributed`] / single-node inference.

use crate::deploy::{Deployment, VsmConfig};
use crate::pipeline::{percentile, simulate_stream, StageSpec, StreamStats};
use crate::wire;
use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use d3_model::{crossing_tensors, DnnGraph, Executor, LayerOp, NodeId, SegmentExecutor};
use d3_simnet::Tier;
use d3_tensor::Tensor;
use d3_vsm::{find_tileable_runs, TileExecutor, VsmPlan};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Identifier of one submitted frame, unique and increasing within a
/// pipeline (rejected submissions may leave gaps).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FrameId(pub u64);

impl std::fmt::Display for FrameId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "frame#{}", self.0)
    }
}

/// Configuration of a streaming session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamOptions {
    /// Bound of every inter-stage queue (and of the result queue). Depth
    /// trades latency under overload for tolerance to jitter; once the
    /// ingress queue holds this many frames, [`StreamPipeline::submit`]
    /// reports backpressure.
    pub capacity: usize,
}

impl Default for StreamOptions {
    fn default() -> Self {
        Self { capacity: 8 }
    }
}

impl StreamOptions {
    /// Default options (queue capacity 8).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the per-stage queue bound.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    #[must_use]
    pub fn capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        self.capacity = capacity;
        self
    }
}

/// Why a deployment cannot run as a streaming pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamBuildError {
    /// A DAG link flows backwards against the device→edge→cloud pipeline
    /// (the plan violates the paper's Proposition 1 monotonicity).
    NonMonotone {
        /// Producer vertex.
        producer: NodeId,
        /// Consumer vertex placed on an earlier tier.
        consumer: NodeId,
    },
    /// The graph has several output vertices.
    MultiOutput {
        /// Output count.
        outputs: usize,
    },
    /// [`StreamOptions::capacity`] was set to zero (the field is public;
    /// the [`capacity`](StreamOptions::capacity) builder rejects this
    /// earlier).
    ZeroCapacity,
}

impl std::fmt::Display for StreamBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamBuildError::NonMonotone { producer, consumer } => write!(
                f,
                "link {producer} -> {consumer} flows backwards against the pipeline"
            ),
            StreamBuildError::MultiOutput { outputs } => {
                write!(
                    f,
                    "streaming requires a single-output graph (has {outputs})"
                )
            }
            StreamBuildError::ZeroCapacity => write!(f, "queue capacity must be positive"),
        }
    }
}

impl std::error::Error for StreamBuildError {}

/// Why a frame was not admitted.
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitError {
    /// The ingress queue is full; retry after draining results.
    Backpressure,
    /// The input tensor does not match the model's input shape.
    ShapeMismatch {
        /// Expected `(c, h, w)`.
        expected: (usize, usize, usize),
        /// Received `(c, h, w)`.
        got: (usize, usize, usize),
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Backpressure => write!(f, "stream ingress queue is full"),
            SubmitError::ShapeMismatch { expected, got } => {
                write!(
                    f,
                    "input shape {got:?} does not match model (expects {expected:?})"
                )
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why [`StreamPipeline::recv`] returned no frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamRecvError {
    /// Every admitted frame has already been received.
    NoFramesInFlight,
}

impl std::fmt::Display for StreamRecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamRecvError::NoFramesInFlight => write!(f, "no frames in flight"),
        }
    }
}

impl std::error::Error for StreamRecvError {}

/// One frame travelling between stages: crossing tensors in wire format.
struct FrameMsg {
    id: u64,
    submitted_at: Instant,
    payload: Vec<(NodeId, Bytes)>,
}

/// How a stage executes its segment.
enum StageExec {
    /// Prebuilt-weights executor (device, cloud, and untiled edge).
    Prebuilt(SegmentExecutor),
    /// Edge segment with VSM tile-parallel conv runs, tile executors and
    /// remaining operators prebuilt once per session.
    Vsm(VsmStage),
}

/// One tileable run of the edge segment, prepared at session open.
struct PreparedRun {
    /// The vertex feeding the run (outside or upstream of it).
    input_node: NodeId,
    /// The run's final vertex — the only run member whose value
    /// materializes when the run executes tiled.
    last: NodeId,
    /// The run's members in chain order.
    run: Vec<NodeId>,
    /// Prebuilt tile executor; `None` means the plan was rejected and
    /// the run executes serially through `VsmStage::ops`.
    tiles: Option<TileExecutor>,
}

/// An edge stage with VSM tile parallelism: the streaming counterpart of
/// [`execute_segment`](crate::distributed) with every weight — tiled and
/// untiled alike — materialized once at construction instead of per
/// frame.
struct VsmStage {
    graph: Arc<DnnGraph>,
    /// Segment members, ascending (ids are topological).
    members: Vec<NodeId>,
    /// Prepared runs keyed by their head vertex.
    runs: HashMap<NodeId, PreparedRun>,
    /// Non-head run members: produced (or skipped) when their head runs.
    interior: HashSet<NodeId>,
    /// Prebuilt operators for every member outside a tiled run.
    ops: HashMap<NodeId, LayerOp>,
}

impl VsmStage {
    /// `found_runs` is the [`find_tileable_runs`] result for `members`,
    /// computed by the caller (which needed it to pick this path).
    fn new(
        graph: Arc<DnnGraph>,
        seed: u64,
        members: &[NodeId],
        cfg: VsmConfig,
        found_runs: Vec<Vec<NodeId>>,
    ) -> Self {
        let mut sorted = members.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let exec = Executor::new(&graph, seed);
        let mut runs = HashMap::new();
        let mut interior = HashSet::new();
        let mut tiled_members: HashSet<NodeId> = HashSet::new();
        for run in found_runs {
            let head = run[0];
            let last = *run.last().expect("non-empty run");
            let input_node = graph.node(head).preds[0];
            let out_shape = graph.node(last).shape;
            let rows = cfg.grid.0.min(out_shape.h).max(1);
            let cols = cfg.grid.1.min(out_shape.w).max(1);
            let tiles = VsmPlan::new(&graph, &run, rows, cols)
                .ok()
                .map(|plan| TileExecutor::new(&exec, plan));
            interior.extend(run.iter().skip(1).copied());
            if tiles.is_some() {
                tiled_members.extend(run.iter().copied());
            }
            runs.insert(
                head,
                PreparedRun {
                    input_node,
                    last,
                    run,
                    tiles,
                },
            );
        }
        let ops = sorted
            .iter()
            .filter(|id| !tiled_members.contains(id))
            .map(|&id| (id, exec.build_op(id)))
            .collect();
        Self {
            graph,
            members: sorted,
            runs,
            interior,
            ops,
        }
    }

    /// Executes the segment for one frame; same boundary/crossing
    /// contract as [`SegmentExecutor::run`] (boundary by value — this is
    /// the per-frame hot path), with tileable runs going through their
    /// prebuilt [`TileExecutor`]s tile-parallel.
    fn run(&self, boundary: HashMap<NodeId, Tensor>) -> HashMap<NodeId, Tensor> {
        let mut values = boundary;
        for &id in &self.members {
            if values.contains_key(&id) {
                continue; // provided as boundary or by an executed run
            }
            if let Some(prepared) = self.runs.get(&id) {
                let input = values
                    .get(&prepared.input_node)
                    .unwrap_or_else(|| panic!("run input {} missing", prepared.input_node))
                    .clone();
                match &prepared.tiles {
                    Some(tex) => {
                        values.insert(prepared.last, tex.run_parallel(&input));
                    }
                    None => {
                        // Un-plannable run: serial through prebuilt ops.
                        let mut cur = input;
                        for &rid in &prepared.run {
                            cur = self.ops[&rid].apply(&[&cur]);
                            values.insert(rid, cur.clone());
                        }
                    }
                }
                continue;
            }
            if self.interior.contains(&id) {
                continue; // tiled-run interior: never materialized
            }
            let node = self.graph.node(id);
            let inputs: Vec<&Tensor> = node
                .preds
                .iter()
                .map(|p| {
                    values
                        .get(p)
                        .unwrap_or_else(|| panic!("missing predecessor {p} for {id}"))
                })
                .collect();
            let out = self.ops[&id].apply(&inputs);
            values.insert(id, out);
        }
        crossing_tensors(&self.graph, &self.members, &values)
    }
}

/// Static per-stage routing plan.
struct StageCtx {
    exec: StageExec,
    /// Payload ids this stage must decode (external inputs of its
    /// segment; for the last stage, also the graph output).
    needed: HashSet<NodeId>,
    /// Payload/output ids a later stage needs: forwarded in wire format.
    forward_ids: HashSet<NodeId>,
    output_node: NodeId,
    is_last: bool,
}

/// What a stage worker accumulated over its lifetime.
#[derive(Default)]
struct StageMetrics {
    decode_s: f64,
    compute_s: f64,
    encode_s: f64,
    /// Submit→completion latency per frame (final stage only).
    latencies_s: Vec<f64>,
    /// Completion instant of the last frame (final stage only).
    last_done: Option<Instant>,
}

/// Final report of a closed streaming session.
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// Measured statistics, in the exact shape the simulator's
    /// [`simulate_stream`] emits — compare them field by field.
    pub measured: StreamStats,
    /// The deployment's predicted stage specs (feed them to
    /// [`simulate_stream`] via [`StreamReport::predicted_stats`]).
    pub predicted: Vec<StageSpec>,
    /// Server labels matching `measured.utilization` order:
    /// `[device, device→, edge, edge→, cloud]`.
    pub server_names: Vec<String>,
    /// Busy seconds per server, same order as `server_names`. A stage's
    /// busy time is its worker's compute (plus ingress decode on the
    /// device stage); a link's is the slower of its producer-encode and
    /// consumer-decode halves, which bounds its sustainable rate (the
    /// halves run on different threads, so their sum is not wall time).
    pub busy_s: Vec<f64>,
    /// Wall-clock seconds from session open to the last completion.
    pub wall_s: f64,
    /// Frames admitted by `submit`/`submit_blocking`.
    pub submitted: u64,
    /// Frames rejected by backpressure.
    pub rejected: u64,
}

impl StreamReport {
    /// Simulates the *predicted* pipeline under the given workload, for
    /// side-by-side comparison with [`StreamReport::measured`].
    #[must_use]
    pub fn predicted_stats(&self, fps: f64, n_frames: usize) -> StreamStats {
        simulate_stream(&self.predicted, fps, n_frames)
    }

    /// The busiest server — the pipeline's measured bottleneck — as
    /// `(label, utilization)`.
    #[must_use]
    pub fn bottleneck(&self) -> Option<(&str, f64)> {
        self.server_names
            .iter()
            .zip(&self.measured.utilization)
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite utilization"))
            .map(|(name, u)| (name.as_str(), *u))
    }

    /// Utilization of the named server (e.g. `"edge"`), when present.
    #[must_use]
    pub fn utilization_of(&self, server: &str) -> Option<f64> {
        self.server_names
            .iter()
            .position(|n| n == server)
            .map(|i| self.measured.utilization[i])
    }

    /// One human-readable line per server plus the headline numbers.
    #[must_use]
    pub fn summary(&self) -> String {
        let mut out = format!(
            "frames: {} ({} rejected) | throughput: {:.1} fps | latency p50/p95/max: \
             {:.1}/{:.1}/{:.1} ms\n",
            self.measured.frames,
            self.rejected,
            self.measured.throughput_fps,
            self.measured.p50_latency_s * 1e3,
            self.measured.p95_latency_s * 1e3,
            self.measured.max_latency_s * 1e3,
        );
        for (name, u) in self.server_names.iter().zip(&self.measured.utilization) {
            out.push_str(&format!("  {name:>8}: {:5.1}% busy\n", u * 100.0));
        }
        out
    }
}

/// A live pipelined executor: one worker thread per tier, bounded queues
/// between them, real tensors end to end.
///
/// Obtain one through `D3Runtime::open_stream` (or directly via
/// [`StreamPipeline::new`]), push frames with
/// [`submit`](StreamPipeline::submit), pull results with
/// [`recv`](StreamPipeline::recv), and [`close`](StreamPipeline::close)
/// to collect the [`StreamReport`]. Results arrive in submission order
/// (every queue is FIFO and every stage is a single worker).
pub struct StreamPipeline {
    input_node: NodeId,
    input_shape: (usize, usize, usize),
    tx_in: Option<Sender<FrameMsg>>,
    rx_out: Receiver<(FrameId, Tensor)>,
    handles: Vec<JoinHandle<StageMetrics>>,
    predicted: Vec<StageSpec>,
    started: Instant,
    /// Admission instant of the first frame — the wall-clock anchor for
    /// throughput/utilization, so pre-stream idle time is not billed.
    first_submit: Mutex<Option<Instant>>,
    next_id: AtomicU64,
    submitted: AtomicU64,
    rejected: AtomicU64,
    delivered: AtomicU64,
}

impl std::fmt::Debug for StreamPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamPipeline")
            .field("submitted", &self.submitted.load(Ordering::Relaxed))
            .field("delivered", &self.delivered.load(Ordering::Relaxed))
            .field("rejected", &self.rejected.load(Ordering::Relaxed))
            .finish()
    }
}

impl StreamPipeline {
    /// Spins up the three stage workers for `deployment`'s plan over
    /// `graph` (weights derived from `seed`, edge tiling from `vsm`).
    ///
    /// # Errors
    ///
    /// Returns [`StreamBuildError`] when the plan cannot run as a
    /// forward pipeline (backwards link, or several graph outputs).
    pub fn new(
        graph: Arc<DnnGraph>,
        seed: u64,
        deployment: &Deployment,
        vsm: Option<VsmConfig>,
        options: StreamOptions,
    ) -> Result<Self, StreamBuildError> {
        if options.capacity == 0 {
            return Err(StreamBuildError::ZeroCapacity);
        }
        let outputs = graph.outputs();
        if outputs.len() != 1 {
            return Err(StreamBuildError::MultiOutput {
                outputs: outputs.len(),
            });
        }
        let output_node = outputs[0];
        let assignment = &deployment.assignment;
        for node in graph.nodes() {
            let from = assignment.tier(node.id);
            for &succ in &node.succs {
                if !from.precedes_eq(assignment.tier(succ)) {
                    return Err(StreamBuildError::NonMonotone {
                        producer: node.id,
                        consumer: succ,
                    });
                }
            }
        }

        // Per-stage routing: which payload ids each stage decodes, and
        // which it forwards for later stages.
        let members: Vec<Vec<NodeId>> = Tier::ALL.iter().map(|t| assignment.segment(*t)).collect();
        let mut needed: Vec<HashSet<NodeId>> = vec![HashSet::new(); 3];
        for (rank, stage_members) in members.iter().enumerate() {
            for &m in stage_members {
                for &p in &graph.node(m).preds {
                    if assignment.tier(p).rank() != rank {
                        needed[rank].insert(p);
                    }
                }
            }
        }
        // The graph input's tensor is always provided externally (it is
        // the submitted frame), and the final stage must hold the output
        // tensor even when an earlier tier produced it.
        needed[assignment.tier(graph.input()).rank()].insert(graph.input());
        if !members[2].contains(&output_node) {
            needed[2].insert(output_node);
        }
        let forward_ids: Vec<HashSet<NodeId>> = (0..3)
            .map(|s| needed[s + 1..].iter().flatten().copied().collect())
            .collect();

        // Channels: submit → device → edge → cloud → results.
        let (tx_in, rx_dev) = bounded::<FrameMsg>(options.capacity);
        let (tx_edge, rx_edge) = bounded::<FrameMsg>(options.capacity);
        let (tx_cloud, rx_cloud) = bounded::<FrameMsg>(options.capacity);
        let (tx_out, rx_out) = bounded::<(FrameId, Tensor)>(options.capacity);

        let mut handles = Vec::with_capacity(3);
        let receivers = [rx_dev, rx_edge, rx_cloud];
        let mut senders = [Some(tx_edge), Some(tx_cloud), None::<Sender<FrameMsg>>];
        let mut tx_out = Some(tx_out);
        for (rank, (rx, stage_members)) in receivers.into_iter().zip(members.iter()).enumerate() {
            let tier = Tier::ALL[rank];
            let prebuilt =
                |graph: &Arc<DnnGraph>| SegmentExecutor::new(graph.clone(), seed, stage_members);
            let exec = match (tier, vsm) {
                (Tier::Edge, Some(cfg)) => {
                    let runs = find_tileable_runs(&graph, stage_members, cfg.min_run_len);
                    if runs.is_empty() {
                        StageExec::Prebuilt(prebuilt(&graph))
                    } else {
                        StageExec::Vsm(VsmStage::new(graph.clone(), seed, stage_members, cfg, runs))
                    }
                }
                _ => StageExec::Prebuilt(prebuilt(&graph)),
            };
            let ctx = StageCtx {
                exec,
                needed: needed[rank].clone(),
                forward_ids: forward_ids[rank].clone(),
                output_node,
                is_last: rank == 2,
            };
            let tx_next = senders[rank].take();
            // Only the final stage sends results: that way rx_out
            // disconnects — and recv() panics instead of hanging — as
            // soon as a worker dies anywhere in the chain (a death
            // cascades downstream through dropped channel ends).
            let tx_results = if rank == 2 { tx_out.take() } else { None };
            handles.push(std::thread::spawn(move || {
                stage_worker(ctx, rx, tx_next, tx_results)
            }));
        }

        let shape = graph.input_shape();
        Ok(Self {
            input_node: graph.input(),
            input_shape: (shape.c, shape.h, shape.w),
            tx_in: Some(tx_in),
            rx_out,
            handles,
            predicted: deployment.stages.clone(),
            started: Instant::now(),
            first_submit: Mutex::new(None),
            next_id: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            delivered: AtomicU64::new(0),
        })
    }

    fn encode_frame(&self, input: &Tensor) -> Result<FrameMsg, SubmitError> {
        let got = input.shape3();
        let got = (got.c, got.h, got.w);
        if got != self.input_shape {
            return Err(SubmitError::ShapeMismatch {
                expected: self.input_shape,
                got,
            });
        }
        Ok(FrameMsg {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            submitted_at: Instant::now(),
            payload: vec![(self.input_node, wire::encode(input))],
        })
    }

    /// Admits one frame without blocking.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Backpressure`] when the ingress queue is full, or
    /// [`SubmitError::ShapeMismatch`] for a wrongly-shaped tensor.
    ///
    /// # Panics
    ///
    /// Panics when a stage worker died (a partitioning bug).
    pub fn submit(&self, input: &Tensor) -> Result<FrameId, SubmitError> {
        let msg = self.encode_frame(input)?;
        let id = FrameId(msg.id);
        let admitted_at = msg.submitted_at;
        let tx = self.tx_in.as_ref().expect("pipeline closed");
        match tx.try_send(msg) {
            Ok(()) => {
                // The increment is submit's linearization point (see
                // pending()); it deliberately happens only for frames
                // that actually entered the pipeline, so the in-flight
                // accounting can never over-claim and strand a recv().
                self.submitted.fetch_add(1, Ordering::Relaxed);
                self.record_first_submit(admitted_at);
                Ok(id)
            }
            Err(TrySendError::Full(_)) => {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                Err(SubmitError::Backpressure)
            }
            Err(TrySendError::Disconnected(_)) => panic!("stage worker died"),
        }
    }

    /// Admits one frame, blocking while the ingress queue is full.
    ///
    /// # Errors
    ///
    /// [`SubmitError::ShapeMismatch`] for a wrongly-shaped tensor.
    ///
    /// # Panics
    ///
    /// Panics when a stage worker died (a partitioning bug).
    pub fn submit_blocking(&self, input: &Tensor) -> Result<FrameId, SubmitError> {
        let msg = self.encode_frame(input)?;
        let id = FrameId(msg.id);
        let admitted_at = msg.submitted_at;
        let tx = self.tx_in.as_ref().expect("pipeline closed");
        tx.send(msg).unwrap_or_else(|_| panic!("stage worker died"));
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.record_first_submit(admitted_at);
        Ok(id)
    }

    fn record_first_submit(&self, at: Instant) {
        let mut first = self.first_submit.lock().expect("first_submit poisoned");
        if first.is_none() {
            *first = Some(at);
        }
    }

    /// Waits for the next completed frame, in submission order.
    ///
    /// # Errors
    ///
    /// [`StreamRecvError::NoFramesInFlight`] when every admitted frame
    /// was already received (a blocking wait would never return).
    pub fn recv(&self) -> Result<(FrameId, Tensor), StreamRecvError> {
        if self.pending() == 0 {
            return Err(StreamRecvError::NoFramesInFlight);
        }
        let frame = self.rx_out.recv().expect("stage worker died");
        self.delivered.fetch_add(1, Ordering::Relaxed);
        Ok(frame)
    }

    /// Returns the next completed frame if one is ready.
    #[must_use]
    pub fn try_recv(&self) -> Option<(FrameId, Tensor)> {
        let frame = self.rx_out.try_recv().ok()?;
        self.delivered.fetch_add(1, Ordering::Relaxed);
        Some(frame)
    }

    /// Frames admitted but not yet received by the caller.
    ///
    /// Saturating: a very fast pipeline can deliver a frame to a
    /// concurrently draining thread before the submitting thread's
    /// counter increment lands, making `delivered` transiently exceed
    /// `submitted`. Reporting 0 in that window is sound — the submit has
    /// not linearized yet — and it can only make [`recv`](Self::recv)
    /// conservatively return [`StreamRecvError::NoFramesInFlight`],
    /// never block on a frame that is not coming.
    #[must_use]
    pub fn pending(&self) -> u64 {
        self.submitted
            .load(Ordering::Relaxed)
            .saturating_sub(self.delivered.load(Ordering::Relaxed))
    }

    /// Frames admitted so far.
    #[must_use]
    pub fn submitted(&self) -> u64 {
        self.submitted.load(Ordering::Relaxed)
    }

    /// Frames rejected by backpressure so far.
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Stops admissions, drains every in-flight frame, joins the stage
    /// workers and reports the measured stream statistics.
    ///
    /// # Panics
    ///
    /// Panics when a stage worker panicked.
    #[must_use]
    pub fn close(mut self) -> StreamReport {
        drop(self.tx_in.take()); // stop admissions; workers drain and exit
        while self.rx_out.recv().is_ok() {} // unread frames are dropped
        let metrics: Vec<StageMetrics> = self
            .handles
            .drain(..)
            .map(|h| h.join().expect("stage worker panicked"))
            .collect();

        // Anchor the wall clock at the first admission (like the
        // per-frame latencies), so idle time between session open and
        // the stream's start does not dilute throughput/utilization.
        let anchor = self
            .first_submit
            .lock()
            .expect("first_submit poisoned")
            .unwrap_or(self.started);
        let last_done = metrics[2].last_done.unwrap_or(anchor);
        let wall = (last_done - anchor).as_secs_f64().max(f64::MIN_POSITIVE);
        let mut latencies = metrics[2].latencies_s.clone();
        latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let frames = latencies.len();
        // Interleaved servers, matching the simulator: stage, link, ….
        // Ingress decode counts toward the device stage (same thread as
        // its compute, so their sum never exceeds the wall clock). A
        // link's two halves — producer encode, consumer decode — run on
        // *different* threads and can overlap across frames, so summing
        // them could exceed the wall clock; the slower half bounds the
        // link's sustainable rate and is reported as its busy time.
        let link = |enc: f64, dec: f64| enc.max(dec);
        let busy_s = vec![
            metrics[0].compute_s + metrics[0].decode_s,
            link(metrics[0].encode_s, metrics[1].decode_s),
            metrics[1].compute_s,
            link(metrics[1].encode_s, metrics[2].decode_s),
            metrics[2].compute_s,
        ];
        let measured = StreamStats {
            frames,
            mean_latency_s: if frames == 0 {
                0.0
            } else {
                latencies.iter().sum::<f64>() / frames as f64
            },
            max_latency_s: latencies.last().copied().unwrap_or(0.0),
            p50_latency_s: percentile(&latencies, 0.50),
            p95_latency_s: percentile(&latencies, 0.95),
            throughput_fps: frames as f64 / wall,
            utilization: busy_s.iter().map(|b| b / wall).collect(),
        };
        let server_names = vec![
            "device".into(),
            "device→".into(),
            "edge".into(),
            "edge→".into(),
            "cloud".into(),
        ];
        StreamReport {
            measured,
            predicted: self.predicted.clone(),
            server_names,
            busy_s,
            wall_s: wall,
            submitted: self.submitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
        }
    }
}

/// One stage's event loop: decode needed inputs, run the segment,
/// forward crossing tensors (or deliver the output), account busy time.
fn stage_worker(
    ctx: StageCtx,
    rx: Receiver<FrameMsg>,
    tx_next: Option<Sender<FrameMsg>>,
    tx_results: Option<Sender<(FrameId, Tensor)>>,
) -> StageMetrics {
    match &ctx.exec {
        StageExec::Prebuilt(seg) => pump(&ctx, rx, tx_next, tx_results, |b| seg.run(b)),
        StageExec::Vsm(stage) => pump(&ctx, rx, tx_next, tx_results, |b| stage.run(b)),
    }
}

fn pump<F>(
    ctx: &StageCtx,
    rx: Receiver<FrameMsg>,
    tx_next: Option<Sender<FrameMsg>>,
    tx_results: Option<Sender<(FrameId, Tensor)>>,
    run: F,
) -> StageMetrics
where
    F: Fn(HashMap<NodeId, Tensor>) -> HashMap<NodeId, Tensor>,
{
    let mut m = StageMetrics::default();
    while let Ok(FrameMsg {
        id,
        submitted_at,
        payload,
    }) = rx.recv()
    {
        let t0 = Instant::now();
        let mut boundary: HashMap<NodeId, Tensor> = HashMap::new();
        let mut forward: Vec<(NodeId, Bytes)> = Vec::new();
        for (nid, bytes) in payload {
            if ctx.needed.contains(&nid) {
                let tensor = wire::decode(bytes.clone()).expect("corrupt frame");
                boundary.insert(nid, tensor);
            }
            if ctx.forward_ids.contains(&nid) {
                forward.push((nid, bytes));
            }
        }
        // An output produced upstream arrives via payload; pull it out
        // before the segment consumes the boundary (the output vertex
        // has no successors, so no member needs it as an input).
        let payload_output = if ctx.is_last {
            boundary.remove(&ctx.output_node)
        } else {
            None
        };
        m.decode_s += t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        let mut outputs = run(boundary);
        m.compute_s += t1.elapsed().as_secs_f64();

        if ctx.is_last {
            let out_tensor = outputs
                .remove(&ctx.output_node)
                .or(payload_output)
                .expect("output tensor unavailable at final stage");
            m.latencies_s.push(submitted_at.elapsed().as_secs_f64());
            m.last_done = Some(Instant::now());
            let results = tx_results.as_ref().expect("final stage sends results");
            if results.send((FrameId(id), out_tensor)).is_err() {
                break; // session dropped; stop quietly
            }
        } else {
            let t2 = Instant::now();
            for (nid, tensor) in &outputs {
                // Skip ids already travelling in wire form (e.g. a raw
                // input this stage merely re-exposes).
                if ctx.forward_ids.contains(nid) && forward.iter().all(|(f, _)| f != nid) {
                    forward.push((*nid, wire::encode(tensor)));
                }
            }
            m.encode_s += t2.elapsed().as_secs_f64();
            let next = tx_next.as_ref().expect("non-final stage has a successor");
            if next
                .send(FrameMsg {
                    id,
                    submitted_at,
                    payload: forward,
                })
                .is_err()
            {
                break; // downstream worker gone with the session
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use d3_partition::{Assignment, Partitioner, Problem};
    use d3_simnet::{NetworkCondition, TierProfiles};
    use d3_tensor::max_abs_diff;

    fn pipeline_for(
        g: &Arc<DnnGraph>,
        seed: u64,
        vsm: Option<VsmConfig>,
        options: StreamOptions,
    ) -> StreamPipeline {
        let problem = Problem::new(
            g.clone(),
            &TierProfiles::paper_testbed(),
            NetworkCondition::WiFi,
        );
        let forced = d3_partition::EvenSplit.partition(&problem).unwrap();
        let deployment = Deployment::new(&problem, forced, vsm);
        StreamPipeline::new(g.clone(), seed, &deployment, vsm, options).unwrap()
    }

    #[test]
    fn streamed_frames_match_one_shot_inference() {
        let g = Arc::new(d3_model::zoo::chain_cnn(6, 8, 16));
        let pipeline = pipeline_for(&g, 3, None, StreamOptions::new());
        let exec = Executor::new(&g, 3);
        for k in 0..5u64 {
            let input = Tensor::random(3, 16, 16, 100 + k);
            let id = pipeline.submit_blocking(&input).unwrap();
            let (got_id, got) = pipeline.recv().unwrap();
            assert_eq!(got_id, id);
            assert_eq!(max_abs_diff(&got, &exec.run(&input)), Some(0.0));
        }
        let report = pipeline.close();
        assert_eq!(report.measured.frames, 5);
        assert_eq!(report.submitted, 5);
        assert_eq!(report.rejected, 0);
        assert_eq!(report.measured.utilization.len(), 5);
    }

    #[test]
    fn vsm_edge_stage_stays_lossless() {
        let g = Arc::new(d3_model::zoo::chain_cnn(6, 8, 16));
        let vsm = Some(VsmConfig::default());
        let pipeline = pipeline_for(&g, 1, vsm, StreamOptions::new());
        let exec = Executor::new(&g, 1);
        let input = Tensor::random(3, 16, 16, 9);
        pipeline.submit_blocking(&input).unwrap();
        let (_, got) = pipeline.recv().unwrap();
        assert_eq!(max_abs_diff(&got, &exec.run(&input)), Some(0.0));
        let _ = pipeline.close();
    }

    #[test]
    fn backpressure_rejects_when_saturated() {
        let g = Arc::new(d3_model::zoo::chain_cnn(6, 8, 32));
        let pipeline = pipeline_for(&g, 7, None, StreamOptions::new().capacity(1));
        let input = Tensor::random(3, 32, 32, 5);
        // Flood without draining: the bounded ingress queue must reject
        // eventually instead of buffering arbitrarily.
        let mut saw_backpressure = false;
        for _ in 0..200 {
            match pipeline.submit(&input) {
                Ok(_) => {}
                Err(SubmitError::Backpressure) => {
                    saw_backpressure = true;
                    break;
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(saw_backpressure, "ingress queue never filled");
        let report = pipeline.close();
        assert!(report.rejected >= 1);
        // Every admitted frame still completed during close's drain.
        assert_eq!(report.measured.frames as u64, report.submitted);
    }

    #[test]
    fn shape_mismatch_is_rejected_without_admission() {
        let g = Arc::new(d3_model::zoo::chain_cnn(4, 8, 16));
        let pipeline = pipeline_for(&g, 2, None, StreamOptions::new());
        let wrong = Tensor::random(3, 8, 8, 1);
        assert!(matches!(
            pipeline.submit(&wrong),
            Err(SubmitError::ShapeMismatch { .. })
        ));
        assert_eq!(pipeline.submitted(), 0);
        assert!(matches!(
            pipeline.recv(),
            Err(StreamRecvError::NoFramesInFlight)
        ));
        let _ = pipeline.close();
    }

    #[test]
    fn recv_without_submissions_never_blocks() {
        let g = Arc::new(d3_model::zoo::chain_cnn(4, 8, 16));
        let pipeline = pipeline_for(&g, 2, None, StreamOptions::new());
        assert!(matches!(
            pipeline.recv(),
            Err(StreamRecvError::NoFramesInFlight)
        ));
        assert!(pipeline.try_recv().is_none());
        let report = pipeline.close();
        assert_eq!(report.measured.frames, 0);
        assert_eq!(report.measured.throughput_fps, 0.0);
    }

    #[test]
    fn non_monotone_plans_are_rejected() {
        let g = Arc::new(d3_model::zoo::chain_cnn(4, 8, 16));
        let n = g.len();
        let mut tiers = vec![Tier::Cloud; n];
        tiers[0] = Tier::Device;
        tiers[n - 1] = Tier::Device; // consumer upstream of its producer
        let problem = Problem::new(
            g.clone(),
            &TierProfiles::paper_testbed(),
            NetworkCondition::WiFi,
        );
        let deployment = Deployment::new(&problem, Assignment::new(tiers), None);
        let err =
            StreamPipeline::new(g.clone(), 1, &deployment, None, StreamOptions::new()).unwrap_err();
        assert!(matches!(err, StreamBuildError::NonMonotone { .. }));
    }

    #[test]
    fn uniform_cloud_plan_streams_through_empty_stages() {
        // All real layers on the cloud: device and edge stages are empty
        // pass-throughs, and the raw input must reach the cloud stage.
        let g = Arc::new(d3_model::zoo::tiny_cnn(16));
        let problem = Problem::new(
            g.clone(),
            &TierProfiles::paper_testbed(),
            NetworkCondition::WiFi,
        );
        let assignment = Assignment::uniform(g.len(), Tier::Cloud);
        let deployment = Deployment::new(&problem, assignment, None);
        let pipeline =
            StreamPipeline::new(g.clone(), 4, &deployment, None, StreamOptions::new()).unwrap();
        let input = Tensor::random(3, 16, 16, 2);
        pipeline.submit_blocking(&input).unwrap();
        let (_, got) = pipeline.recv().unwrap();
        let expect = Executor::new(&g, 4).run(&input);
        assert_eq!(max_abs_diff(&got, &expect), Some(0.0));
        let _ = pipeline.close();
    }
}
