//! Runtime adaptation: the online half of "dynamic" DNN decomposition.
//!
//! The paper's system keeps observing per-layer processing times and
//! network bandwidth while the pipeline runs; when an observation drifts
//! outside the hysteresis band (the "upper and lower thresholds",
//! §III-E), it triggers HPA's *local* re-partition around the affected
//! vertices instead of re-solving the whole DAG.
//!
//! This module is the **decide** step of the observe → decide → apply
//! loop:
//!
//! - [`Observation`]s arrive from any telemetry source (live stream
//!   stages, the simulator, the profiler, bandwidth probes — see
//!   [`crate::telemetry`]),
//! - an [`AdaptivePolicy`] turns each observation into a [`Decision`]
//!   (hold / local re-partition / full re-solve / pool resize); the
//!   paper's mechanism is [`HysteresisLocal`], with [`FullResolve`] and
//!   [`NoAdapt`] as the comparison points and [`AutoscalePolicy`] as the
//!   queue-depth-driven worker-pool autoscaler,
//! - the [`AdaptiveEngine`] controller executes decisions against its
//!   live [`Problem`] and emits [`ControlUpdate`]s — complete
//!   redeployments ([`PlanUpdate`]) a running `StreamSession` applies
//!   mid-stream via `apply_plan`, or pool resizes ([`PoolUpdate`]) it
//!   applies via `resize_pool`.
//!
//! ## Stage-time calibration
//!
//! Per-vertex and network observations carry model-unit semantics and
//! fold directly into the problem. Measured *stage* times
//! ([`Observation::StageTime`]) come from wall clocks that need not agree
//! with the cost model's units, so the controller anchors the first
//! sample per tier as a calibration reference and reacts to the drift
//! *ratio* against that anchor, scaling the segment's vertex weights
//! proportionally. Any re-partition invalidates the anchors (segments
//! changed), and the next snapshot recalibrates.

use crate::codec::{self, WireCodec};
use crate::deploy::{Deployment, VsmConfig};
use crate::telemetry::{Observation, TelemetrySnapshot};
use d3_model::{DnnGraph, NodeId};
use d3_partition::{
    repartition_local, Assignment, DriftMonitor, Hpa, HpaOptions, Partitioner, Problem,
};
use d3_simnet::{NetworkCondition, Tier};

/// What a policy decided to do about one observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Keep the current plan (inside the tolerance band, calibration
    /// sample, or an observation kind the policy ignores).
    Hold,
    /// Re-partition locally around the trigger vertex (the paper's
    /// mechanism: the trigger, its SIS vertices, its successors and
    /// their SIS vertices are recomputed).
    Local(NodeId),
    /// Re-solve the whole problem with HPA.
    Full,
    /// Resize one pipeline stage's worker pool to `workers` (the plan is
    /// untouched — only thread counts change). Emitted by queue-aware
    /// policies such as [`AutoscalePolicy`].
    Resize {
        /// The stage to resize.
        tier: Tier,
        /// Target worker count (absolute, not a delta).
        workers: usize,
    },
    /// Switch one inter-tier link's wire codec (emitted by
    /// [`CodecSwitcher`] on bandwidth drift). The controller installs the
    /// codec's [`d3_partition::CodecProfile`] on the live problem — so
    /// later re-partitions optimize against the codec-adjusted link cost
    /// — and asks the apply side to switch the running stream's link.
    SwitchCodec {
        /// Link index, shared with the stream layer (0: device→edge, 1:
        /// edge→cloud; these coincide with the problem's
        /// [`d3_simnet::Tier::link_index`] values).
        link: usize,
        /// The codec to run on the link.
        codec: WireCodec,
    },
}

/// Read-only controller state a policy consults when deciding.
pub struct PolicyView<'a> {
    problem: &'a Problem,
    assignment: &'a Assignment,
    reference: &'a [[f64; 3]],
    reference_backbone_mbps: f64,
    stage_anchor: &'a [Option<f64>; 3],
}

impl PolicyView<'_> {
    /// The live weighted problem (already reflecting the observation
    /// being decided).
    #[must_use]
    pub fn problem(&self) -> &Problem {
        self.problem
    }

    /// The currently deployed assignment.
    #[must_use]
    pub fn assignment(&self) -> &Assignment {
        self.assignment
    }

    /// The vertex's processing time at the last (re-)partition — the
    /// hysteresis reference.
    #[must_use]
    pub fn reference_vertex_s(&self, id: NodeId, tier: Tier) -> f64 {
        self.reference[id.index()][tier.rank()]
    }

    /// Backbone bandwidth at the last re-partition.
    #[must_use]
    pub fn reference_backbone_mbps(&self) -> f64 {
        self.reference_backbone_mbps
    }

    /// The measured stage-time anchor for `tier` (None until the first
    /// snapshot after a (re-)partition calibrates it).
    #[must_use]
    pub fn stage_anchor_s(&self, tier: Tier) -> Option<f64> {
        self.stage_anchor[tier.rank()]
    }

    /// The heaviest vertex of `tier`'s current segment under the live
    /// weights — the natural local-repartition trigger for stage-level
    /// drift.
    #[must_use]
    pub fn heaviest_member(&self, tier: Tier) -> Option<NodeId> {
        let input = self.problem.graph().input();
        self.assignment
            .segment(tier)
            .into_iter()
            .filter(|&id| id != input)
            .max_by(|&a, &b| {
                self.problem
                    .vertex_time(a, tier)
                    .total_cmp(&self.problem.vertex_time(b, tier))
            })
    }
}

/// An adaptation policy: turns [`Observation`]s into [`Decision`]s.
///
/// Policies are deliberately *pure deciders* — they never mutate the
/// plan themselves. The [`AdaptiveEngine`] folds the observation into
/// the live problem, asks the policy, executes the decision, and
/// re-anchors the references; that split keeps every policy's bookkeeping
/// identical and makes policies trivially comparable on the same trace.
pub trait AdaptivePolicy: Send + Sync {
    /// Short policy name for reports.
    fn name(&self) -> &'static str;

    /// Decides what to do about `obs`, given the controller state.
    fn decide(&mut self, view: &PolicyView<'_>, obs: &Observation) -> Decision;

    /// Clones the policy into a fresh boxed instance — used by the
    /// runtime to stamp one controller per stream session from an
    /// attached prototype.
    fn fork(&self) -> Box<dyn AdaptivePolicy>;
}

/// The paper's default policy (§III-E): hysteresis thresholds gate every
/// signal; vertex- and stage-level drift triggers a *local* re-partition
/// around the affected vertex, bandwidth drift re-solves fully (link
/// weights change globally, so the local neighbourhood is the whole
/// frontier and a full solve is O(|V|+|L|) anyway).
#[derive(Debug, Clone, Copy, Default)]
pub struct HysteresisLocal(pub DriftMonitor);

impl AdaptivePolicy for HysteresisLocal {
    fn name(&self) -> &'static str {
        "hysteresis-local"
    }

    fn decide(&mut self, view: &PolicyView<'_>, obs: &Observation) -> Decision {
        match obs {
            Observation::VertexTime {
                vertex,
                tier,
                seconds,
            } => {
                if self
                    .0
                    .should_repartition(view.reference_vertex_s(*vertex, *tier), *seconds)
                {
                    Decision::Local(*vertex)
                } else {
                    Decision::Hold
                }
            }
            Observation::StageTime {
                tier,
                seconds_per_frame,
                ..
            } => match view.stage_anchor_s(*tier) {
                Some(anchor) if self.0.should_repartition(anchor, *seconds_per_frame) => view
                    .heaviest_member(*tier)
                    .map_or(Decision::Hold, Decision::Local),
                _ => Decision::Hold, // in band, or calibration sample
            },
            Observation::Network { net } => {
                if self
                    .0
                    .should_repartition(view.reference_backbone_mbps(), net.rates().edge_cloud_mbps)
                {
                    Decision::Full
                } else {
                    Decision::Hold
                }
            }
            Observation::QueueDepth { .. } => Decision::Hold,
        }
    }

    fn fork(&self) -> Box<dyn AdaptivePolicy> {
        Box::new(*self)
    }
}

/// Comparison policy: the same hysteresis gates as [`HysteresisLocal`],
/// but every triggered update re-solves the whole DAG — the brute-force
/// alternative the paper's local mechanism is measured against.
#[derive(Debug, Clone, Copy, Default)]
pub struct FullResolve(pub DriftMonitor);

impl AdaptivePolicy for FullResolve {
    fn name(&self) -> &'static str {
        "full-resolve"
    }

    fn decide(&mut self, view: &PolicyView<'_>, obs: &Observation) -> Decision {
        // Reuse the local policy's gates, escalating any trigger.
        match HysteresisLocal(self.0).decide(view, obs) {
            Decision::Hold => Decision::Hold,
            Decision::Local(_) | Decision::Full => Decision::Full,
            // Never emitted by the inner gates.
            other @ (Decision::Resize { .. } | Decision::SwitchCodec { .. }) => other,
        }
    }

    fn fork(&self) -> Box<dyn AdaptivePolicy> {
        Box::new(*self)
    }
}

/// Null policy: ingest telemetry, never change the plan (the frozen
/// baseline every adaptation experiment compares against).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoAdapt;

impl AdaptivePolicy for NoAdapt {
    fn name(&self) -> &'static str {
        "no-adapt"
    }

    fn decide(&mut self, _view: &PolicyView<'_>, _obs: &Observation) -> Decision {
        Decision::Hold
    }

    fn fork(&self) -> Box<dyn AdaptivePolicy> {
        Box::new(*self)
    }
}

/// Queue-depth-driven pool autoscaling: the consumer of
/// [`Observation::QueueDepth`] that closes the measure-then-adapt loop
/// for worker pools. A stage whose ingress queue stays at or above
/// [`scale_up_depth`](Self::scale_up_depth) for
/// [`patience`](Self::patience) consecutive snapshots gets its pool
/// doubled (clamped to [`max_workers`](Self::max_workers)); a stage
/// whose queue stays at or below
/// [`scale_down_depth`](Self::scale_down_depth) gets it halved (clamped
/// to [`min_workers`](Self::min_workers)). Hysteresis between the two
/// thresholds — the same discipline [`HysteresisLocal`] applies to
/// timing drift — keeps the pool from flapping. Every other observation
/// kind is held, so an `AutoscalePolicy` composes with plan-level
/// policies only by running in its own controller; it never re-partitions.
///
/// The policy tracks its own per-tier target, starting at
/// `min_workers` — open the session with `pool = min_workers` so the
/// first emitted resize is consistent (an equal-size resize is a no-op
/// at the pipeline anyway).
#[derive(Debug, Clone)]
pub struct AutoscalePolicy {
    /// Smallest pool the policy scales down to (also its assumed
    /// starting size). Default 1.
    pub min_workers: usize,
    /// Largest pool the policy scales up to. Default 4.
    pub max_workers: usize,
    /// Queue depth at/above which a snapshot votes to scale up.
    /// Default 4 (half the default ingress capacity).
    pub scale_up_depth: usize,
    /// Queue depth at/below which a snapshot votes to scale down.
    /// Default 0 (an empty queue).
    pub scale_down_depth: usize,
    /// Consecutive votes required before acting. Default 2.
    pub patience: u32,
    /// Current per-tier target (the policy's belief of the pool).
    target: [usize; 3],
    up_streak: [u32; 3],
    down_streak: [u32; 3],
}

impl Default for AutoscalePolicy {
    fn default() -> Self {
        Self::new(1, 4)
    }
}

impl AutoscalePolicy {
    /// An autoscaler driving every stage's pool within
    /// `[min_workers, max_workers]`, starting from `min_workers`.
    ///
    /// # Panics
    ///
    /// Panics when `min_workers` is zero or exceeds `max_workers`.
    #[must_use]
    pub fn new(min_workers: usize, max_workers: usize) -> Self {
        assert!(min_workers > 0, "pools need at least one worker");
        assert!(min_workers <= max_workers, "min must not exceed max");
        Self {
            min_workers,
            max_workers,
            scale_up_depth: 4,
            scale_down_depth: 0,
            patience: 2,
            target: [min_workers; 3],
            up_streak: [0; 3],
            down_streak: [0; 3],
        }
    }

    /// Sets the scale-up / scale-down queue-depth thresholds.
    ///
    /// # Panics
    ///
    /// Panics when `down` is not strictly below `up` (the hysteresis
    /// band would be empty and the pool would flap).
    #[must_use]
    pub fn thresholds(mut self, up: usize, down: usize) -> Self {
        assert!(down < up, "scale-down threshold must sit below scale-up");
        self.scale_up_depth = up;
        self.scale_down_depth = down;
        self
    }

    /// Sets how many consecutive votes trigger a resize.
    ///
    /// # Panics
    ///
    /// Panics when `patience` is zero.
    #[must_use]
    pub fn patience(mut self, patience: u32) -> Self {
        assert!(patience > 0, "patience must be positive");
        self.patience = patience;
        self
    }

    /// The policy's current per-tier pool target.
    #[must_use]
    pub fn targets(&self) -> [usize; 3] {
        self.target
    }
}

impl AdaptivePolicy for AutoscalePolicy {
    fn name(&self) -> &'static str {
        "autoscale"
    }

    fn decide(&mut self, _view: &PolicyView<'_>, obs: &Observation) -> Decision {
        let Observation::QueueDepth { tier, depth } = obs else {
            return Decision::Hold;
        };
        let rank = tier.rank();
        if *depth >= self.scale_up_depth {
            self.down_streak[rank] = 0;
            self.up_streak[rank] += 1;
            if self.up_streak[rank] >= self.patience && self.target[rank] < self.max_workers {
                self.up_streak[rank] = 0;
                self.target[rank] = (self.target[rank] * 2).min(self.max_workers);
                return Decision::Resize {
                    tier: *tier,
                    workers: self.target[rank],
                };
            }
        } else if *depth <= self.scale_down_depth {
            self.up_streak[rank] = 0;
            self.down_streak[rank] += 1;
            if self.down_streak[rank] >= self.patience && self.target[rank] > self.min_workers {
                self.down_streak[rank] = 0;
                self.target[rank] = (self.target[rank] / 2).max(self.min_workers);
                return Decision::Resize {
                    tier: *tier,
                    workers: self.target[rank],
                };
            }
        } else {
            // Inside the band: reset both streaks (hysteresis).
            self.up_streak[rank] = 0;
            self.down_streak[rank] = 0;
        }
        Decision::Hold
    }

    fn fork(&self) -> Box<dyn AdaptivePolicy> {
        Box::new(self.clone())
    }
}

/// Bandwidth-driven per-link codec switching: the consumer of
/// [`Observation::Network`] that closes the measure-then-adapt loop for
/// wire codecs. When a link's measured rate stays at or below
/// [`engage_mbps`](Self::engage_mbps) for [`patience`](Self::patience)
/// consecutive network observations, the policy asks for
/// [`codec`](Self::codec) on that link; once the rate recovers to
/// [`disengage_mbps`](Self::disengage_mbps) or above for `patience`
/// observations, it asks for [`WireCodec::Raw`] again. The gap between
/// the two thresholds is the hysteresis band that keeps a jittery link
/// from flapping between formats.
///
/// The policy is deliberately *stateless about the pipeline*: whether a
/// link is currently compressed is read from the live problem's
/// [`d3_partition::CodecProfile`] (which only the controller's `execute`
/// updates) — so a switch withheld by a fleet arbiter's cooldown is
/// simply re-proposed on the next low-bandwidth observation instead of
/// being lost.
///
/// Every observation the switcher does not act on is delegated to the
/// wrapped `inner` policy, so codec switching composes with plan-level
/// adaptation (e.g. [`HysteresisLocal`]) in one controller.
pub struct CodecSwitcher {
    /// The plan-level policy handling everything the switcher holds.
    inner: Box<dyn AdaptivePolicy>,
    /// The codec to engage on a starved link.
    pub codec: WireCodec,
    /// Link rate (Mbit/s) at/below which an observation votes to engage.
    pub engage_mbps: f64,
    /// Link rate (Mbit/s) at/above which an observation votes to revert
    /// to raw. Must exceed `engage_mbps` (hysteresis).
    pub disengage_mbps: f64,
    /// Consecutive votes required before acting. Default 2.
    pub patience: u32,
    low_streak: [u32; 2],
    high_streak: [u32; 2],
}

impl CodecSwitcher {
    /// A switcher engaging `codec` below `engage_mbps` and reverting to
    /// raw above `disengage_mbps`, delegating everything else to `inner`.
    ///
    /// # Panics
    ///
    /// Panics when the thresholds leave no hysteresis band
    /// (`disengage_mbps <= engage_mbps`) or when `codec` is raw.
    #[must_use]
    pub fn new(
        inner: Box<dyn AdaptivePolicy>,
        codec: WireCodec,
        engage_mbps: f64,
        disengage_mbps: f64,
    ) -> Self {
        assert!(
            disengage_mbps > engage_mbps,
            "disengage threshold must sit above engage (hysteresis)"
        );
        assert!(
            codec != WireCodec::Raw,
            "engaging the raw codec would make the switcher a no-op"
        );
        Self {
            inner,
            codec,
            engage_mbps,
            disengage_mbps,
            patience: 2,
            low_streak: [0; 2],
            high_streak: [0; 2],
        }
    }

    /// Sets how many consecutive votes trigger a switch.
    ///
    /// # Panics
    ///
    /// Panics when `patience` is zero.
    #[must_use]
    pub fn patience(mut self, patience: u32) -> Self {
        assert!(patience > 0, "patience must be positive");
        self.patience = patience;
        self
    }
}

impl AdaptivePolicy for CodecSwitcher {
    fn name(&self) -> &'static str {
        "codec-switch"
    }

    fn decide(&mut self, view: &PolicyView<'_>, obs: &Observation) -> Decision {
        let Observation::Network { net } = obs else {
            return self.inner.decide(view, obs);
        };
        let rates = net.rates();
        let per_link = [rates.device_edge_mbps, rates.edge_cloud_mbps];
        for (link, mbps) in per_link.into_iter().enumerate() {
            // The authoritative "is this link compressed" bit lives in
            // the problem, not the policy, so withheld switches re-fire.
            let engaged = !view.problem().link_codec(link).is_raw();
            if !engaged && mbps <= self.engage_mbps {
                self.high_streak[link] = 0;
                self.low_streak[link] += 1;
                if self.low_streak[link] >= self.patience {
                    self.low_streak[link] = 0;
                    return Decision::SwitchCodec {
                        link,
                        codec: self.codec,
                    };
                }
            } else if engaged && mbps >= self.disengage_mbps {
                self.low_streak[link] = 0;
                self.high_streak[link] += 1;
                if self.high_streak[link] >= self.patience {
                    self.high_streak[link] = 0;
                    return Decision::SwitchCodec {
                        link,
                        codec: WireCodec::Raw,
                    };
                }
            } else {
                // Inside the band (or already where the vote points):
                // reset both streaks (hysteresis).
                self.low_streak[link] = 0;
                self.high_streak[link] = 0;
            }
        }
        // No switch fired: the bandwidth signal still belongs to the
        // plan-level policy (it may want a re-partition).
        self.inner.decide(view, obs)
    }

    fn fork(&self) -> Box<dyn AdaptivePolicy> {
        Box::new(Self {
            inner: self.inner.fork(),
            codec: self.codec,
            engage_mbps: self.engage_mbps,
            disengage_mbps: self.disengage_mbps,
            patience: self.patience,
            low_streak: [0; 2],
            high_streak: [0; 2],
        })
    }
}

/// Per-tier cost inflation a multi-tenant arbiter applies to one
/// tenant's re-partitions: each factor scales the apparent vertex cost
/// of its tier during the solve (the live problem itself is untouched),
/// so a tier other tenants have already committed load to looks slower
/// and HPA naturally routes work around it. Factors of exactly `1.0`
/// leave the solve bit-identical to the uncontended path — a
/// single-tenant fleet therefore makes the same decisions as a plain
/// [`AdaptiveEngine`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TierContention {
    /// Multiplier per tier rank (device, edge, cloud).
    pub factors: [f64; 3],
}

impl Default for TierContention {
    fn default() -> Self {
        Self::neutral()
    }
}

impl TierContention {
    /// No contention: every factor is exactly `1.0`.
    #[must_use]
    pub fn neutral() -> Self {
        Self { factors: [1.0; 3] }
    }

    /// Whether every factor is exactly `1.0` (the solve may skip the
    /// scaled clone entirely).
    #[must_use]
    pub fn is_neutral(&self) -> bool {
        self.factors == [1.0; 3]
    }
}

/// How much of the plan a [`PlanUpdate`] recomputed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateScope {
    /// HPA's local repair around a drifted vertex.
    Local,
    /// A full re-solve.
    Full,
}

/// A complete, deployable plan change emitted by the controller: the new
/// deployment (assignment, stage specs, Θ, VSM plans) plus the diff
/// against the previous plan. Feed it to `StreamSession::apply_plan` to
/// swap a running stream onto the new plan.
#[derive(Debug, Clone)]
pub struct PlanUpdate {
    /// The new deployment, built from the controller's live problem.
    pub deployment: Deployment,
    /// Vertices whose tier changed relative to the previous plan.
    pub changed: Vec<NodeId>,
    /// Whether a local repair or a full solve produced it.
    pub scope: UpdateScope,
}

/// A pool-resize directive emitted by the controller: set one stage's
/// worker count. Feed it to `StreamSession::resize_pool` (or
/// `StreamPipeline::resize_pool`) to apply it at a lossless frame
/// boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolUpdate {
    /// The stage to resize.
    pub tier: Tier,
    /// Target worker count.
    pub workers: usize,
}

/// A codec-switch directive emitted by the controller: run `codec` on
/// one inter-tier link. Feed it to `StreamSession`'s update path (or
/// `StreamPipeline::set_link_codec`) — the switch is quiesce-free, since
/// wire frames are self-describing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodecUpdate {
    /// Link index (0: device→edge, 1: edge→cloud).
    pub link: usize,
    /// The codec to run on the link.
    pub codec: WireCodec,
}

/// Everything an [`AdaptiveEngine`] can ask the apply side to do: swap
/// the partition plan, resize a stage's worker pool, or switch a link's
/// wire codec. One observation produces at most one update.
#[derive(Debug, Clone)]
pub enum ControlUpdate {
    /// Redeploy onto a new partition plan.
    Plan(PlanUpdate),
    /// Resize one stage's worker pool.
    Pool(PoolUpdate),
    /// Switch one inter-tier link's wire codec.
    Codec(CodecUpdate),
}

/// The adaptive partition controller: ingests [`Observation`]s, lets its
/// [`AdaptivePolicy`] decide, and emits [`PlanUpdate`]s.
pub struct AdaptiveEngine {
    problem: Problem,
    assignment: Assignment,
    opts: HpaOptions,
    policy: Box<dyn AdaptivePolicy>,
    vsm: Option<VsmConfig>,
    /// Vertex weights at the last (re-)partition, the hysteresis
    /// reference.
    reference: Vec<[f64; 3]>,
    /// Backbone bandwidth at the last re-partition.
    reference_backbone_mbps: f64,
    /// Measured stage-time anchors (wall-clock calibration per tier).
    stage_anchor: [Option<f64>; 3],
    /// Count of local re-partitions triggered.
    pub local_updates: usize,
    /// Count of full re-partitions triggered (network-wide drift).
    pub full_updates: usize,
    /// Count of pool resizes emitted (queue-depth autoscaling).
    pub pool_updates: usize,
    /// Count of link codec switches emitted (bandwidth-driven).
    pub codec_updates: usize,
    /// Observations suppressed by the policy (held inside the band).
    pub suppressed: usize,
}

impl std::fmt::Debug for AdaptiveEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdaptiveEngine")
            .field("graph", &self.problem.graph().name())
            .field("policy", &self.policy.name())
            .field("local_updates", &self.local_updates)
            .field("full_updates", &self.full_updates)
            .field("pool_updates", &self.pool_updates)
            .field("codec_updates", &self.codec_updates)
            .field("suppressed", &self.suppressed)
            .finish()
    }
}

impl AdaptiveEngine {
    /// Partitions `problem` with HPA and starts monitoring under
    /// `policy`.
    pub fn new(problem: Problem, opts: HpaOptions, policy: Box<dyn AdaptivePolicy>) -> Self {
        let assignment = Hpa(opts.clone())
            .partition(&problem)
            .expect("HPA applies to every topology");
        Self::with_assignment(problem, assignment, opts, policy)
    }

    /// Starts monitoring from an already-computed `assignment` (e.g. the
    /// plan a [`Deployment`](crate::Deployment) shipped with, possibly
    /// produced by a non-HPA partitioner). The initial plan is adopted
    /// as-is; *re*-partitions triggered by drift use HPA with `opts` —
    /// the paper's adaptation mechanism.
    pub fn with_assignment(
        problem: Problem,
        assignment: Assignment,
        opts: HpaOptions,
        policy: Box<dyn AdaptivePolicy>,
    ) -> Self {
        let reference = snapshot(&problem);
        let reference_backbone_mbps = backbone_mbps(problem.net());
        Self {
            problem,
            assignment,
            opts,
            policy,
            vsm: None,
            reference,
            reference_backbone_mbps,
            stage_anchor: [None; 3],
            local_updates: 0,
            full_updates: 0,
            pool_updates: 0,
            codec_updates: 0,
            suppressed: 0,
        }
    }

    /// Sets the VSM configuration emitted [`PlanUpdate`]s deploy with
    /// (None: partition-only deployments).
    #[must_use]
    pub fn with_vsm(mut self, vsm: Option<VsmConfig>) -> Self {
        self.vsm = vsm;
        self
    }

    /// The graph being managed.
    pub fn graph(&self) -> &DnnGraph {
        self.problem.graph()
    }

    /// Current assignment.
    pub fn assignment(&self) -> &Assignment {
        &self.assignment
    }

    /// Name of the active adaptation policy.
    pub fn policy_name(&self) -> &str {
        self.policy.name()
    }

    /// Current single-frame latency Θ under the live weights.
    pub fn current_theta(&self) -> f64 {
        self.assignment.total_latency(&self.problem)
    }

    /// Borrow the live problem (read-only).
    pub fn problem(&self) -> &Problem {
        &self.problem
    }

    /// Ingests one observation: folds it into the live problem, lets the
    /// policy decide, and executes the decision. Returns a
    /// [`ControlUpdate`] when something must change on the apply side —
    /// [`ControlUpdate::Plan`] when the plan actually changed (a
    /// triggered re-partition that lands on the same assignment
    /// re-anchors the references but emits nothing — there is nothing to
    /// redeploy), or [`ControlUpdate::Pool`] when a queue-aware policy
    /// wants a stage's worker pool resized.
    pub fn ingest(&mut self, obs: &Observation) -> Option<ControlUpdate> {
        let decision = self.absorb_and_decide(obs)?;
        self.execute(decision, obs, &TierContention::neutral())
    }

    /// The fold + decide half of [`ingest`](Self::ingest), split out so
    /// a fleet arbiter can gate or contend the execution: folds the
    /// observation into the live problem and returns the policy's
    /// decision (`None` when the observation was swallowed — invalid or
    /// a calibration sample). The caller is expected to follow up with
    /// [`execute`](Self::execute); a withheld Local/Full decision leaves
    /// the hysteresis references untouched, so the same drift
    /// re-triggers once the gate lifts.
    pub(crate) fn absorb_and_decide(&mut self, obs: &Observation) -> Option<Decision> {
        if !self.fold(obs) {
            return None;
        }
        // Policy decision against the reference anchors.
        let view = PolicyView {
            problem: &self.problem,
            assignment: &self.assignment,
            reference: &self.reference,
            reference_backbone_mbps: self.reference_backbone_mbps,
            stage_anchor: &self.stage_anchor,
        };
        Some(self.policy.decide(&view, obs))
    }

    /// Folds one observation into the live problem. Returns `false` when
    /// the observation must be swallowed without a policy decision: a
    /// malformed measurement (a NaN/negative reading — failed probe, 0/0
    /// upstream — must never poison the weights while the hysteresis
    /// band, false for NaN comparisons, holds) or a stage-time
    /// calibration sample.
    fn fold(&mut self, obs: &Observation) -> bool {
        if !observation_is_valid(obs) {
            return false;
        }
        match obs {
            Observation::VertexTime {
                vertex,
                tier,
                seconds,
            } => self.problem.set_vertex_time(*vertex, *tier, *seconds),
            Observation::StageTime {
                tier,
                seconds_per_frame,
                ..
            } => {
                let rank = tier.rank();
                match self.stage_anchor[rank] {
                    None => {
                        // First snapshot since the last (re-)partition:
                        // calibrate, nothing to decide yet.
                        if *seconds_per_frame > 0.0 {
                            self.stage_anchor[rank] = Some(*seconds_per_frame);
                        }
                        return false;
                    }
                    Some(anchor) if anchor > 0.0 && *seconds_per_frame > 0.0 => {
                        // Scale the segment's weights by the measured
                        // drift ratio, from the *reference* weights so
                        // repeated in-band snapshots never compound.
                        let ratio = seconds_per_frame / anchor;
                        let input = self.problem.graph().input();
                        for m in self.assignment.segment(*tier) {
                            if m == input {
                                continue;
                            }
                            let base = self.reference[m.index()][rank];
                            self.problem.set_vertex_time(m, *tier, base * ratio);
                        }
                    }
                    _ => {}
                }
            }
            Observation::Network { net } => self.problem.set_net(*net),
            Observation::QueueDepth { .. } => {}
        }
        true
    }

    /// The live problem as one tenant of a contended fleet sees it:
    /// vertex costs inflated by the arbiter's per-tier factors (a
    /// neutral contention returns an untouched clone-free reference via
    /// [`std::borrow::Cow`]-like dispatch at the call sites).
    fn contended_problem(&self, contention: &TierContention) -> Problem {
        let mut scaled = self.problem.clone();
        let ids: Vec<NodeId> = scaled.graph().ids().collect();
        for tier in Tier::ALL {
            let factor = contention.factors[tier.rank()];
            if factor != 1.0 {
                for &id in &ids {
                    scaled.scale_vertex(id, tier, factor);
                }
            }
        }
        scaled
    }

    /// Executes a policy decision against the (possibly contended)
    /// problem view.
    pub(crate) fn execute(
        &mut self,
        decision: Decision,
        obs: &Observation,
        contention: &TierContention,
    ) -> Option<ControlUpdate> {
        match decision {
            Decision::Hold => {
                if !matches!(obs, Observation::QueueDepth { .. }) {
                    self.suppressed += 1;
                }
                None
            }
            Decision::Local(trigger) => {
                let update = if contention.is_neutral() {
                    repartition_local(&self.problem, &self.assignment, trigger, &self.opts)
                } else {
                    let contended = self.contended_problem(contention);
                    repartition_local(&contended, &self.assignment, trigger, &self.opts)
                };
                self.local_updates += 1;
                self.finish_repartition(update.assignment, UpdateScope::Local, obs)
                    .map(ControlUpdate::Plan)
            }
            Decision::Full => {
                let assignment = if contention.is_neutral() {
                    Hpa(self.opts.clone()).partition(&self.problem)
                } else {
                    Hpa(self.opts.clone()).partition(&self.contended_problem(contention))
                }
                .expect("HPA applies to every topology");
                self.full_updates += 1;
                self.finish_repartition(assignment, UpdateScope::Full, obs)
                    .map(ControlUpdate::Plan)
            }
            Decision::Resize { tier, workers } => {
                // Pool sizing never touches the cost model, the plan or
                // the hysteresis references — it is purely an apply-side
                // directive.
                self.pool_updates += 1;
                Some(ControlUpdate::Pool(PoolUpdate { tier, workers }))
            }
            Decision::SwitchCodec { link, codec } => {
                // Unlike a resize, a codec switch *does* touch the cost
                // model: the link's codec profile changes its effective
                // weight, so every later re-partition optimizes against
                // the compressed link. The hysteresis references stay
                // untouched — vertex weights did not move.
                self.problem.set_link_codec(link, codec::profile(codec));
                self.codec_updates += 1;
                Some(ControlUpdate::Codec(CodecUpdate { link, codec }))
            }
        }
    }

    /// Ingests every observation of a snapshot and returns the one
    /// update to apply. Within a kind, later updates win (later
    /// observations already incorporate earlier ones); across kinds a
    /// **plan** update always wins: the controller has already adopted
    /// the new assignment internally, so dropping it would desync the
    /// deployed pipeline from every future local repair, whereas a
    /// dropped pool resize is simply re-emitted by the autoscaler on the
    /// next congested window.
    pub fn ingest_snapshot(&mut self, snapshot: &TelemetrySnapshot) -> Option<ControlUpdate> {
        let prior_codec = [self.problem.link_codec(0), self.problem.link_codec(1)];
        let mut last_plan = None;
        let mut last_pool = None;
        let mut last_codec = None;
        for obs in &snapshot.observations {
            match self.ingest(obs) {
                Some(ControlUpdate::Plan(update)) => last_plan = Some(update),
                Some(ControlUpdate::Pool(update)) => last_pool = Some(update),
                Some(ControlUpdate::Codec(update)) => last_codec = Some(update),
                None => {}
            }
        }
        // Plan first (the controller already adopted it internally),
        // then codec (the problem's link profile already changed), then
        // pool (freely re-emitted by the autoscaler).
        if last_plan.is_some() {
            if let Some(update) = last_codec {
                // The plan wins this snapshot, so the codec switch never
                // reaches the pipeline: restore the link's prior profile
                // — [`CodecSwitcher`] reads engagement from the problem,
                // so the dropped switch is re-proposed on the next
                // low-bandwidth observation instead of being lost.
                self.problem
                    .set_link_codec(update.link, prior_codec[update.link]);
            }
            return last_plan.map(ControlUpdate::Plan);
        }
        last_codec
            .map(ControlUpdate::Codec)
            .or(last_pool.map(ControlUpdate::Pool))
    }

    /// Evicts this tenant from `tier`: re-solves the whole problem with
    /// `tier` removed from the allowed set (under the arbiter's
    /// contention view of the remaining tiers), so a higher-priority
    /// tenant's segment can take the freed capacity. Returns the plan
    /// change, or `None` when the tenant already had nothing on `tier`
    /// (the solve lands on the same assignment). Counts as a full
    /// update.
    pub(crate) fn evict_from(
        &mut self,
        tier: Tier,
        contention: &TierContention,
    ) -> Option<PlanUpdate> {
        let allowed: Vec<Tier> = self
            .opts
            .allowed
            .iter()
            .copied()
            .filter(|t| *t != tier)
            .collect();
        if allowed.is_empty() {
            return None; // nowhere left to run — never evict the last tier
        }
        let opts = self.opts.clone().with_tiers(&allowed);
        let solved = if contention.is_neutral() {
            Hpa(opts).partition(&self.problem)
        } else {
            Hpa(opts).partition(&self.contended_problem(contention))
        };
        // HPA applies to every topology, but if a solve ever does fail
        // the safe outcome is to skip the eviction and keep the current
        // plan — not to take the pipeline down.
        let assignment = solved.ok()?;
        self.full_updates += 1;
        // Full-scope re-anchor: the eviction is a global plan change.
        let anchor_obs = Observation::Network {
            net: self.problem.net(),
        };
        self.finish_repartition(assignment, UpdateScope::Full, &anchor_obs)
    }

    /// Per-tier compute seconds per frame the current plan commits under
    /// the live weights (the input vertex excluded) — this tenant's row
    /// of a fleet's resource ledger.
    #[must_use]
    pub fn committed_s(&self) -> [f64; 3] {
        let input = self.problem.graph().input();
        let mut out = [0.0; 3];
        for tier in Tier::ALL {
            out[tier.rank()] = self
                .assignment
                .segment(tier)
                .into_iter()
                .filter(|&id| id != input)
                .map(|id| self.problem.vertex_time(id, tier))
                .sum();
        }
        out
    }

    /// Bytes per frame the current plan ships across each inter-tier
    /// link, as `[device↔edge, edge↔cloud, device↔cloud]` — the
    /// bandwidth row of a fleet's resource ledger. A tensor consumed by
    /// several vertices of the same remote tier crosses once. These are
    /// **on-wire** bytes: a codec profile installed on a link shrinks its
    /// row by the codec's achieved ratio, so the ledger never
    /// double-charges compressed traffic.
    #[must_use]
    pub fn committed_link_bytes(&self) -> [u64; 3] {
        let mut out = [0u64; 3];
        let mut seen = std::collections::HashSet::new();
        for node in self.problem.graph().nodes() {
            let a = self.assignment.tier(node.id);
            for &succ in &node.succs {
                let Some(link) = a.link_index(self.assignment.tier(succ)) else {
                    continue; // same tier
                };
                if seen.insert((node.id, link)) {
                    let raw = node.output_bytes();
                    let profile = self.problem.link_codec(link);
                    out[link] += if profile.is_raw() {
                        raw
                    } else {
                        (raw as f64 * profile.ratio).ceil() as u64
                    };
                }
            }
        }
        out
    }

    /// Re-anchors references after a triggered re-partition and builds
    /// the [`PlanUpdate`] when the assignment actually changed.
    fn finish_repartition(
        &mut self,
        new_assignment: Assignment,
        scope: UpdateScope,
        obs: &Observation,
    ) -> Option<PlanUpdate> {
        let changed = self.assignment.diff(&new_assignment);
        // Re-anchor at the new operating point (before adopting the new
        // assignment: stage-level re-anchoring targets the segment that
        // actually drifted — the *old* one).
        match (scope, obs) {
            (
                UpdateScope::Local,
                Observation::VertexTime {
                    vertex,
                    tier,
                    seconds,
                },
            ) => {
                self.reference[vertex.index()][tier.rank()] = *seconds;
            }
            (UpdateScope::Local, Observation::StageTime { tier, .. }) => {
                // The segment's weights drifted as a block: re-anchor
                // exactly the old segment's members to their live
                // weights. Other vertices keep their references, so
                // per-vertex drift held by hysteresis elsewhere is not
                // silently absorbed.
                for m in self.assignment.segment(*tier) {
                    self.reference[m.index()][tier.rank()] = self.problem.vertex_time(m, *tier);
                }
            }
            _ => {
                // Full solves re-anchor everything.
                self.reference = snapshot(&self.problem);
                self.reference_backbone_mbps = backbone_mbps(self.problem.net());
            }
        }
        self.assignment = new_assignment;
        // Segments may have moved: measured stage anchors are stale.
        self.stage_anchor = [None; 3];
        if changed.is_empty() {
            return None;
        }
        Some(PlanUpdate {
            deployment: Deployment::new(&self.problem, self.assignment.clone(), self.vsm),
            changed,
            scope,
        })
    }
}

/// Whether an observation carries sane, finite measurements.
fn observation_is_valid(obs: &Observation) -> bool {
    match obs {
        Observation::VertexTime { seconds, .. } => seconds.is_finite() && *seconds >= 0.0,
        Observation::StageTime {
            seconds_per_frame, ..
        } => seconds_per_frame.is_finite() && *seconds_per_frame >= 0.0,
        Observation::Network { net } => {
            let r = net.rates();
            [r.device_edge_mbps, r.edge_cloud_mbps, r.device_cloud_mbps]
                .iter()
                .all(|mbps| mbps.is_finite() && *mbps > 0.0)
        }
        Observation::QueueDepth { .. } => true,
    }
}

fn snapshot(problem: &Problem) -> Vec<[f64; 3]> {
    problem
        .graph()
        .ids()
        .map(|id| {
            [
                problem.vertex_time(id, Tier::Device),
                problem.vertex_time(id, Tier::Edge),
                problem.vertex_time(id, Tier::Cloud),
            ]
        })
        .collect()
}

fn backbone_mbps(net: NetworkCondition) -> f64 {
    net.rates().edge_cloud_mbps
}

#[cfg(test)]
mod tests {
    use super::*;
    use d3_model::zoo;
    use d3_simnet::TierProfiles;

    fn engine(g: &DnnGraph) -> AdaptiveEngine {
        let p = Problem::new(g, &TierProfiles::paper_testbed(), NetworkCondition::WiFi);
        AdaptiveEngine::new(p, HpaOptions::paper(), Box::new(HysteresisLocal::default()))
    }

    fn vertex_obs(e: &AdaptiveEngine, id: NodeId, factor: f64) -> Observation {
        let tier = e.assignment().tier(id);
        Observation::VertexTime {
            vertex: id,
            tier,
            seconds: e.problem().vertex_time(id, tier) * factor,
        }
    }

    #[test]
    fn small_jitter_is_suppressed() {
        let g = zoo::resnet18(224);
        let mut e = engine(&g);
        let id = NodeId(5);
        assert!(e.ingest(&vertex_obs(&e, id, 1.1)).is_none());
        assert!(e.ingest(&vertex_obs(&e, id, 0.9)).is_none());
        assert_eq!(e.suppressed, 2);
        assert_eq!(e.local_updates, 0);
    }

    #[test]
    fn large_drift_triggers_local_update() {
        let g = zoo::resnet18(224);
        let mut e = engine(&g);
        let id = NodeId(5);
        e.ingest(&vertex_obs(&e, id, 5.0));
        assert_eq!(e.local_updates, 1);
        assert!(e.assignment().is_monotone(e.problem()));
    }

    #[test]
    fn repeated_drift_reanchors_reference() {
        let g = zoo::alexnet(224);
        let mut e = engine(&g);
        let id = NodeId(2);
        let obs = vertex_obs(&e, id, 3.0);
        e.ingest(&obs);
        assert_eq!(e.local_updates, 1);
        // Same value again: inside the new band, suppressed.
        assert!(e.ingest(&obs).is_none());
        assert_eq!(e.local_updates, 1);
        assert_eq!(e.suppressed, 1);
    }

    #[test]
    fn network_change_triggers_full_repartition() {
        let g = zoo::vgg16(224);
        let mut e = engine(&g);
        let before = e.assignment().clone();
        // Wi-Fi (31.53 Mbps backbone) → 4G (13.79): ratio 0.44, outside band.
        e.ingest(&Observation::Network {
            net: NetworkCondition::FourG,
        });
        assert_eq!(e.full_updates, 1);
        // The new plan must be at least as good as the stale one under 4G.
        let stale = before.total_latency(e.problem());
        assert!(e.current_theta() <= stale + 1e-12);
    }

    #[test]
    fn similar_network_is_suppressed() {
        let g = zoo::vgg16(224);
        let mut e = engine(&g);
        // 31.53 → 28 Mbps: within the 0.7–1.4 band.
        assert!(e
            .ingest(&Observation::Network {
                net: NetworkCondition::custom_backbone(28.0)
            })
            .is_none());
        assert_eq!(e.full_updates, 0);
    }

    #[test]
    fn adaptation_keeps_latency_reasonable_through_a_day() {
        // Sweep bandwidth up and down; adapted Θ must never exceed the
        // never-adapting baseline.
        let g = zoo::inception_v4(224);
        let p = Problem::new(&g, &TierProfiles::paper_testbed(), NetworkCondition::WiFi);
        let frozen = Hpa::paper().partition(&p).unwrap();
        let mut e = engine(&g);
        for mbps in [31.53, 10.0, 4.0, 8.0, 60.0, 100.0, 31.53] {
            e.ingest(&Observation::Network {
                net: NetworkCondition::custom_backbone(mbps),
            });
            let mut frozen_problem =
                Problem::new(&g, &TierProfiles::paper_testbed(), e.problem().net());
            frozen_problem.set_net(e.problem().net());
            let adapted = e.current_theta();
            let stale = frozen.total_latency(&frozen_problem);
            assert!(
                adapted <= stale + 1e-9,
                "at {mbps} Mbps adapted {adapted} > stale {stale}"
            );
        }
    }

    #[test]
    fn plan_updates_carry_the_diff_and_a_consistent_deployment() {
        let g = zoo::vgg16(224);
        let mut e = engine(&g);
        let before = e.assignment().clone();
        let Some(ControlUpdate::Plan(update)) = e.ingest(&Observation::Network {
            net: NetworkCondition::custom_backbone(2.0),
        }) else {
            panic!("10x bandwidth collapse must repartition");
        };
        assert_eq!(update.scope, UpdateScope::Full);
        assert!(!update.changed.is_empty());
        assert_eq!(
            update.changed,
            before.diff(&update.deployment.assignment),
            "diff must describe old -> new"
        );
        assert_eq!(update.deployment.assignment.tiers(), e.assignment().tiers());
    }

    #[test]
    fn stage_time_first_sample_calibrates_then_drift_triggers() {
        let g = zoo::vgg16(224);
        let mut e = engine(&g);
        // Drift whichever tier actually carries layers under this plan.
        let tier = Tier::ALL
            .into_iter()
            .max_by_key(|t| {
                e.assignment()
                    .segment(*t)
                    .iter()
                    .filter(|&&id| id != e.graph().input())
                    .count()
            })
            .unwrap();
        // Calibration: arbitrary wall-clock scale, no decision.
        let calib = Observation::StageTime {
            tier,
            seconds_per_frame: 0.5,
            frames: 16,
        };
        assert!(e.ingest(&calib).is_none());
        assert_eq!(e.suppressed, 0);
        // In-band snapshot: suppressed.
        assert!(e
            .ingest(&Observation::StageTime {
                tier,
                seconds_per_frame: 0.55,
                frames: 16,
            })
            .is_none());
        assert_eq!(e.suppressed, 1);
        // 3x drift: triggers a local repartition around the heaviest
        // edge vertex.
        e.ingest(&Observation::StageTime {
            tier,
            seconds_per_frame: 1.5,
            frames: 16,
        });
        assert_eq!(e.local_updates, 1);
        assert!(e.assignment().is_monotone(e.problem()));
    }

    #[test]
    fn full_resolve_policy_escalates_local_triggers() {
        let g = zoo::resnet18(224);
        let p = Problem::new(&g, &TierProfiles::paper_testbed(), NetworkCondition::WiFi);
        let mut e = AdaptiveEngine::new(p, HpaOptions::paper(), Box::new(FullResolve::default()));
        let id = NodeId(5);
        e.ingest(&vertex_obs(&e, id, 6.0));
        assert_eq!(e.full_updates, 1);
        assert_eq!(e.local_updates, 0);
    }

    #[test]
    fn no_adapt_policy_never_changes_the_plan() {
        let g = zoo::vgg16(224);
        let p = Problem::new(&g, &TierProfiles::paper_testbed(), NetworkCondition::WiFi);
        let before = Hpa::paper().partition(&p).unwrap();
        let mut e = AdaptiveEngine::new(p, HpaOptions::paper(), Box::new(NoAdapt));
        assert!(e
            .ingest(&Observation::Network {
                net: NetworkCondition::custom_backbone(1.0)
            })
            .is_none());
        assert!(e.ingest(&vertex_obs(&e, NodeId(3), 50.0)).is_none());
        assert_eq!(e.assignment().tiers(), before.tiers());
        assert_eq!(e.full_updates + e.local_updates, 0);
    }

    #[test]
    fn malformed_observations_are_rejected_outright() {
        let g = zoo::alexnet(224);
        let mut e = engine(&g);
        let theta = e.current_theta();
        assert!(e
            .ingest(&Observation::VertexTime {
                vertex: NodeId(3),
                tier: Tier::Cloud,
                seconds: f64::NAN,
            })
            .is_none());
        assert!(e
            .ingest(&Observation::StageTime {
                tier: Tier::Edge,
                seconds_per_frame: f64::NEG_INFINITY,
                frames: 1,
            })
            .is_none());
        assert!(e
            .ingest(&Observation::Network {
                net: NetworkCondition::custom_backbone(f64::NAN),
            })
            .is_none());
        assert_eq!(e.current_theta(), theta, "no poison folded into weights");
        assert_eq!(e.local_updates + e.full_updates, 0);
    }

    #[test]
    fn stage_repartition_keeps_references_of_non_members() {
        // Held (in-band) per-vertex drift must survive a stage-triggered
        // repartition of a segment the vertex does NOT belong to: only
        // the drifted segment's members re-anchor on that tier
        // dimension.
        let g = zoo::vgg16(224);
        let p = Problem::new(&g, &TierProfiles::paper_testbed(), NetworkCondition::WiFi);
        // Force a split plan so every tier has a segment.
        let assignment = d3_partition::EvenSplit.partition(&p).unwrap();
        let mut e = AdaptiveEngine::with_assignment(
            p,
            assignment,
            HpaOptions::paper(),
            Box::new(HysteresisLocal::default()),
        );
        let tier = Tier::Edge;
        // A vertex assigned elsewhere, drifting on `tier`'s dimension.
        let v = g
            .layer_ids()
            .find(|&id| e.assignment().tier(id) != tier)
            .expect("even split loads all tiers");
        let base = e.problem().vertex_time(v, tier);
        e.ingest(&Observation::VertexTime {
            vertex: v,
            tier,
            seconds: base * 1.3,
        });
        assert_eq!(e.suppressed, 1, "1.3x is inside the band");
        // Stage-level drift triggers a local repartition on `tier`.
        e.ingest(&Observation::StageTime {
            tier,
            seconds_per_frame: 0.5,
            frames: 8,
        });
        e.ingest(&Observation::StageTime {
            tier,
            seconds_per_frame: 1.5,
            frames: 8,
        });
        assert_eq!(e.local_updates, 1);
        // The held vertex's reference was NOT silently re-anchored: a
        // further 1.3x step (1.69x of the original anchor) now escapes
        // the band.
        let before = e.local_updates + e.full_updates;
        e.ingest(&Observation::VertexTime {
            vertex: v,
            tier,
            seconds: base * 1.69,
        });
        assert!(
            e.local_updates + e.full_updates > before,
            "cumulative drift past the band must still trigger"
        );
    }

    #[test]
    fn policies_fork_into_independent_instances() {
        let proto: Box<dyn AdaptivePolicy> = Box::new(HysteresisLocal::default());
        let forked = proto.fork();
        assert_eq!(proto.name(), forked.name());
    }

    fn depth(tier: Tier, depth: usize) -> Observation {
        Observation::QueueDepth { tier, depth }
    }

    fn autoscale_engine(g: &DnnGraph, policy: AutoscalePolicy) -> AdaptiveEngine {
        let p = Problem::new(g, &TierProfiles::paper_testbed(), NetworkCondition::WiFi);
        AdaptiveEngine::new(p, HpaOptions::paper(), Box::new(policy))
    }

    #[test]
    fn autoscale_scales_up_after_patience_and_respects_max() {
        let g = zoo::alexnet(224);
        let mut e = autoscale_engine(&g, AutoscalePolicy::new(1, 4).thresholds(4, 0).patience(2));
        // First congested snapshot: one vote, held.
        assert!(e.ingest(&depth(Tier::Device, 6)).is_none());
        // Second: patience reached, pool doubles 1 → 2.
        let Some(ControlUpdate::Pool(up)) = e.ingest(&depth(Tier::Device, 6)) else {
            panic!("sustained congestion must resize");
        };
        assert_eq!((up.tier, up.workers), (Tier::Device, 2));
        // Keep congesting: 2 → 4, then pinned at max.
        assert!(e.ingest(&depth(Tier::Device, 7)).is_none());
        let Some(ControlUpdate::Pool(up)) = e.ingest(&depth(Tier::Device, 7)) else {
            panic!("still congested");
        };
        assert_eq!(up.workers, 4);
        assert!(e.ingest(&depth(Tier::Device, 9)).is_none());
        assert!(e.ingest(&depth(Tier::Device, 9)).is_none(), "at max: hold");
        assert_eq!(e.pool_updates, 2);
        // The plan never moved — autoscaling is pool-only.
        assert_eq!(e.local_updates + e.full_updates, 0);
    }

    #[test]
    fn autoscale_scales_down_on_idle_queues_and_respects_min() {
        let g = zoo::alexnet(224);
        let mut e = autoscale_engine(&g, AutoscalePolicy::new(1, 4).thresholds(4, 0).patience(1));
        // Pump the edge pool up to 4.
        for _ in 0..2 {
            let _ = e.ingest(&depth(Tier::Edge, 8));
        }
        // Idle queue: halve back down to 2, then 1, then hold at min.
        let Some(ControlUpdate::Pool(down)) = e.ingest(&depth(Tier::Edge, 0)) else {
            panic!("idle queue must scale down");
        };
        assert_eq!((down.tier, down.workers), (Tier::Edge, 2));
        let Some(ControlUpdate::Pool(down)) = e.ingest(&depth(Tier::Edge, 0)) else {
            panic!("still idle");
        };
        assert_eq!(down.workers, 1);
        assert!(e.ingest(&depth(Tier::Edge, 0)).is_none(), "at min: hold");
    }

    #[test]
    fn autoscale_band_resets_streaks_and_ignores_other_signals() {
        let g = zoo::alexnet(224);
        let mut e = autoscale_engine(&g, AutoscalePolicy::new(1, 4).thresholds(4, 0).patience(2));
        // One congested vote, then an in-band snapshot: streak resets,
        // so the next congested vote does not trigger either.
        assert!(e.ingest(&depth(Tier::Cloud, 5)).is_none());
        assert!(e.ingest(&depth(Tier::Cloud, 2)).is_none());
        assert!(e.ingest(&depth(Tier::Cloud, 5)).is_none());
        assert_eq!(e.pool_updates, 0);
        // Timing and network drift are someone else's job: held, and
        // the plan never moves.
        let id = NodeId(2);
        let _ = e.ingest(&vertex_obs(&e, id, 50.0));
        let _ = e.ingest(&Observation::Network {
            net: NetworkCondition::custom_backbone(0.5),
        });
        assert_eq!(e.local_updates + e.full_updates, 0);
    }

    #[test]
    fn autoscale_forks_with_fresh_state() {
        let mut proto = AutoscalePolicy::new(1, 4).patience(1);
        let forked = proto.fork();
        assert_eq!(forked.name(), "autoscale");
        // Mutating the original does not affect the fork's decisions.
        let g = zoo::alexnet(224);
        let e = autoscale_engine(&g, AutoscalePolicy::new(1, 4).patience(1));
        let p = Problem::new(&g, &TierProfiles::paper_testbed(), NetworkCondition::WiFi);
        let a = Hpa(HpaOptions::paper()).partition(&p).unwrap();
        let view = PolicyView {
            problem: &p,
            assignment: &a,
            reference: &[],
            reference_backbone_mbps: 0.0,
            stage_anchor: &[None; 3],
        };
        assert_eq!(
            proto.decide(&view, &depth(Tier::Device, 9)),
            Decision::Resize {
                tier: Tier::Device,
                workers: 2
            }
        );
        let _ = e; // silence unused when assertions change
    }
}
