//! Runtime adaptation: the online half of "dynamic" DNN decomposition.
//!
//! The profiler keeps observing per-layer processing times and network
//! bandwidth while the pipeline runs. When an observation drifts outside
//! the hysteresis band (the paper's "upper and lower thresholds", §III-E),
//! the engine triggers HPA's *local* re-partition around the affected
//! vertices instead of re-solving the whole DAG.

use d3_model::{DnnGraph, NodeId};
use d3_partition::{
    repartition_local, Assignment, DriftMonitor, Hpa, HpaOptions, Partitioner, Problem,
};
use d3_simnet::{NetworkCondition, Tier};

/// The adaptive partition controller.
pub struct AdaptiveEngine {
    problem: Problem,
    assignment: Assignment,
    opts: HpaOptions,
    monitor: DriftMonitor,
    /// Vertex weights at the last (re-)partition, the hysteresis reference.
    reference: Vec<[f64; 3]>,
    /// Backbone bandwidth at the last re-partition.
    reference_backbone_mbps: f64,
    /// Count of local re-partitions triggered.
    pub local_updates: usize,
    /// Count of full re-partitions triggered (network-wide drift).
    pub full_updates: usize,
    /// Observations suppressed by hysteresis.
    pub suppressed: usize,
}

impl AdaptiveEngine {
    /// Partitions `problem` with HPA and starts monitoring.
    pub fn new(problem: Problem, opts: HpaOptions, monitor: DriftMonitor) -> Self {
        let assignment = Hpa(opts.clone())
            .partition(&problem)
            .expect("HPA applies to every topology");
        Self::with_assignment(problem, assignment, opts, monitor)
    }

    /// Starts monitoring from an already-computed `assignment` (e.g. the
    /// plan a [`Deployment`](crate::Deployment) shipped with, possibly
    /// produced by a non-HPA partitioner). The initial plan is adopted
    /// as-is; *re*-partitions triggered by drift use HPA with `opts` —
    /// the paper's adaptation mechanism.
    pub fn with_assignment(
        problem: Problem,
        assignment: Assignment,
        opts: HpaOptions,
        monitor: DriftMonitor,
    ) -> Self {
        let reference = snapshot(&problem);
        let reference_backbone_mbps = backbone_mbps(problem.net());
        Self {
            problem,
            assignment,
            opts,
            monitor,
            reference,
            reference_backbone_mbps,
            local_updates: 0,
            full_updates: 0,
            suppressed: 0,
        }
    }

    /// The graph being managed.
    pub fn graph(&self) -> &DnnGraph {
        self.problem.graph()
    }

    /// Current assignment.
    pub fn assignment(&self) -> &Assignment {
        &self.assignment
    }

    /// Current single-frame latency Θ under the live weights.
    pub fn current_theta(&self) -> f64 {
        self.assignment.total_latency(&self.problem)
    }

    /// Reports a new measured processing time for `(vertex, tier)`.
    /// Returns `true` when the observation escaped the hysteresis band and
    /// a local re-partition ran.
    pub fn observe_vertex(&mut self, id: NodeId, tier: Tier, seconds: f64) -> bool {
        self.problem.set_vertex_time(id, tier, seconds);
        let reference = self.reference[id.index()][tier.rank()];
        if !self.monitor.should_repartition(reference, seconds) {
            self.suppressed += 1;
            return false;
        }
        let update = repartition_local(&self.problem, &self.assignment, id, &self.opts);
        self.assignment = update.assignment;
        self.local_updates += 1;
        // Re-anchor the reference at the new operating point.
        self.reference[id.index()][tier.rank()] = seconds;
        true
    }

    /// Reports a new network condition. Bandwidth drift outside the band
    /// re-runs HPA (link weights change globally, so the paper's local
    /// neighbourhood is the whole frontier; a full solve is O(|V|+|L|)
    /// anyway).
    pub fn observe_network(&mut self, net: NetworkCondition) -> bool {
        let new_mbps = backbone_mbps(net);
        self.problem.set_net(net);
        if !self
            .monitor
            .should_repartition(self.reference_backbone_mbps, new_mbps)
        {
            self.suppressed += 1;
            return false;
        }
        self.assignment = Hpa(self.opts.clone())
            .partition(&self.problem)
            .expect("HPA applies to every topology");
        self.full_updates += 1;
        self.reference = snapshot(&self.problem);
        self.reference_backbone_mbps = new_mbps;
        true
    }

    /// Borrow the live problem (read-only).
    pub fn problem(&self) -> &Problem {
        &self.problem
    }
}

fn snapshot(problem: &Problem) -> Vec<[f64; 3]> {
    problem
        .graph()
        .ids()
        .map(|id| {
            [
                problem.vertex_time(id, Tier::Device),
                problem.vertex_time(id, Tier::Edge),
                problem.vertex_time(id, Tier::Cloud),
            ]
        })
        .collect()
}

fn backbone_mbps(net: NetworkCondition) -> f64 {
    net.rates().edge_cloud_mbps
}

#[cfg(test)]
mod tests {
    use super::*;
    use d3_model::zoo;
    use d3_simnet::TierProfiles;

    fn engine(g: &DnnGraph) -> AdaptiveEngine {
        let p = Problem::new(g, &TierProfiles::paper_testbed(), NetworkCondition::WiFi);
        AdaptiveEngine::new(p, HpaOptions::paper(), DriftMonitor::default())
    }

    #[test]
    fn small_jitter_is_suppressed() {
        let g = zoo::resnet18(224);
        let mut e = engine(&g);
        let id = NodeId(5);
        let tier = e.assignment().tier(id);
        let t = e.problem().vertex_time(id, tier);
        assert!(!e.observe_vertex(id, tier, t * 1.1));
        assert!(!e.observe_vertex(id, tier, t * 0.9));
        assert_eq!(e.suppressed, 2);
        assert_eq!(e.local_updates, 0);
    }

    #[test]
    fn large_drift_triggers_local_update() {
        let g = zoo::resnet18(224);
        let mut e = engine(&g);
        let id = NodeId(5);
        let tier = e.assignment().tier(id);
        let t = e.problem().vertex_time(id, tier);
        assert!(e.observe_vertex(id, tier, t * 5.0));
        assert_eq!(e.local_updates, 1);
        assert!(e.assignment().is_monotone(e.problem()));
    }

    #[test]
    fn repeated_drift_reanchors_reference() {
        let g = zoo::alexnet(224);
        let mut e = engine(&g);
        let id = NodeId(2);
        let tier = e.assignment().tier(id);
        let t = e.problem().vertex_time(id, tier);
        assert!(e.observe_vertex(id, tier, t * 3.0));
        // Same value again: inside the new band, suppressed.
        assert!(!e.observe_vertex(id, tier, t * 3.0));
        assert_eq!(e.local_updates, 1);
    }

    #[test]
    fn network_change_triggers_full_repartition() {
        let g = zoo::vgg16(224);
        let mut e = engine(&g);
        let before = e.assignment().clone();
        // Wi-Fi (31.53 Mbps backbone) → 4G (13.79): ratio 0.44, outside band.
        assert!(e.observe_network(NetworkCondition::FourG));
        assert_eq!(e.full_updates, 1);
        // The new plan must be at least as good as the stale one under 4G.
        let stale = before.total_latency(e.problem());
        assert!(e.current_theta() <= stale + 1e-12);
    }

    #[test]
    fn similar_network_is_suppressed() {
        let g = zoo::vgg16(224);
        let mut e = engine(&g);
        // 31.53 → 28 Mbps: within the 0.7–1.4 band.
        assert!(!e.observe_network(NetworkCondition::custom_backbone(28.0)));
        assert_eq!(e.full_updates, 0);
    }

    #[test]
    fn adaptation_keeps_latency_reasonable_through_a_day() {
        // Sweep bandwidth up and down; adapted Θ must never exceed the
        // never-adapting baseline.
        let g = zoo::inception_v4(224);
        let p = Problem::new(&g, &TierProfiles::paper_testbed(), NetworkCondition::WiFi);
        let frozen = Hpa::paper().partition(&p).unwrap();
        let mut e = engine(&g);
        for mbps in [31.53, 10.0, 4.0, 8.0, 60.0, 100.0, 31.53] {
            e.observe_network(NetworkCondition::custom_backbone(mbps));
            let mut frozen_problem =
                Problem::new(&g, &TierProfiles::paper_testbed(), e.problem().net());
            frozen_problem.set_net(e.problem().net());
            let adapted = e.current_theta();
            let stale = frozen.total_latency(&frozen_problem);
            assert!(
                adapted <= stale + 1e-9,
                "at {mbps} Mbps adapted {adapted} > stale {stale}"
            );
        }
    }
}
